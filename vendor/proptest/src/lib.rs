//! Offline stand-in for the `proptest` crate.
//!
//! The workspace builds without crates.io access, so the property tests run
//! on this vendored mini-runner instead of the real proptest. It keeps the
//! same source-level API for the subset the workspace uses — the
//! [`proptest!`] macro (including `#![proptest_config(..)]`), integer-range
//! and tuple strategies, [`prop_map`](strategy::Strategy::prop_map),
//! `prop::collection::vec`, `prop::sample::select`, `any::<T>()`, and the
//! `prop_assert*` / `prop_assume!` macros — with two deliberate
//! simplifications:
//!
//! - **Deterministic generation, no persistence.** Each `(test, case)` pair
//!   derives its RNG from a hash of the test's module path and the case
//!   index, so every run explores the same cases and a failure message's
//!   case index is enough to reproduce it. `.proptest-regressions` files
//!   are not read; known-bad seeds are pinned as plain unit tests instead.
//! - **No shrinking.** A failing case reports its index and message rather
//!   than a minimised input.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod test_runner {
    //! The case runner: configuration, per-case RNG, and failure plumbing.

    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// Runner configuration (`ProptestConfig` in user code).
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct Config {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
    }

    impl Config {
        /// A config that runs `cases` successful cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            // Matches real proptest's default case count.
            Self { cases: 256 }
        }
    }

    /// Why a single case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case is retried.
        Reject(String),
        /// A `prop_assert*` failed; the whole test fails.
        Fail(String),
    }

    /// Result type the generated per-case closure returns.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Per-case random source, derived deterministically from the test
    /// name and case index.
    #[derive(Clone, Debug)]
    pub struct TestRng(StdRng);

    impl TestRng {
        /// Builds the RNG for `case_index` of the test named `name`.
        pub fn for_case(name: &str, case_index: u32) -> Self {
            // FNV-1a over the name, mixed with the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            Self(StdRng::seed_from_u64(
                h ^ (u64::from(case_index).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
            ))
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    use crate::test_runner::TestRng;

    /// A recipe for generating random values of one type.
    ///
    /// Unlike real proptest there is no value tree: a strategy generates a
    /// plain value and failures are not shrunk.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map {
                source: self,
                map: f,
            }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        source: S,
        map: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.map)(self.source.generate(rng))
        }
    }

    fn uniform_u64(rng: &mut TestRng, low: u64, high: u64) -> u64 {
        debug_assert!(low <= high);
        let span = high.wrapping_sub(low);
        if span == u64::MAX {
            return rng.next_u64();
        }
        low + ((u128::from(rng.next_u64()) * u128::from(span + 1)) >> 64) as u64
    }

    macro_rules! impl_int_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    uniform_u64(rng, self.start as u64, self.end as u64 - 1) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start() <= self.end(), "empty range strategy");
                    uniform_u64(rng, *self.start() as u64, *self.end() as u64) as $t
                }
            }
        )*};
    }

    impl_int_strategies!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);

    /// Types with a canonical whole-domain strategy (see [`any`]).
    pub trait Arbitrary: Sized {
        /// Generates one uniformly distributed value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_uint!(u8, u16, u32, u64, usize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy over a type's whole domain, returned by [`any`].
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Any<T>(PhantomData<fn() -> T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The whole-domain strategy for `T` (`any::<u32>()` etc.).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use std::ops::{Range, RangeInclusive};

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Inclusive length bounds for a generated collection.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            Self {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy generating a `Vec` of values from an element strategy.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.hi - self.size.lo) as u64;
            let extra = if span == 0 {
                0
            } else {
                ((u128::from(rng.next_u64()) * u128::from(span + 1)) >> 64) as u64
            };
            let len = self.size.lo + extra as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy for `Vec`s with the given element strategy and length
    /// range.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod sample {
    //! Sampling strategies (`prop::sample::select`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy picking uniformly from a fixed set of options.
    #[derive(Clone, Debug)]
    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = ((u128::from(rng.next_u64()) * self.options.len() as u128) >> 64) as usize;
            self.options[idx].clone()
        }
    }

    /// A strategy drawing uniformly from `options`.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select over an empty set");
        Select { options }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.

    pub use crate::strategy::{any, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Namespace mirroring the real crate's `prop` module re-export.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Defines property tests. Mirrors real proptest's surface syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
///
/// Each test runs `config.cases` successful cases with deterministic
/// per-case RNGs; `prop_assume!` rejections retry with the next case index.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $(
        $(#[$attr:meta])*
        fn $name:ident( $( $pat:pat in $strat:expr ),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$attr])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let mut passed: u32 = 0;
            let mut rejected: u32 = 0;
            while passed < config.cases {
                let case_index = passed + rejected;
                assert!(
                    rejected <= config.cases.saturating_mul(16) + 256,
                    "proptest `{}`: too many prop_assume! rejections",
                    stringify!($name),
                );
                let mut __prop_rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    case_index,
                );
                let __prop_result: $crate::test_runner::TestCaseResult = (|| {
                    let ( $( $pat, )+ ) = (
                        $( $crate::strategy::Strategy::generate(&($strat), &mut __prop_rng), )+
                    );
                    $body
                    ::std::result::Result::Ok(())
                })();
                match __prop_result {
                    ::std::result::Result::Ok(()) => passed += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {
                        rejected += 1;
                    }
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest `{}` failed at deterministic case {}: {}",
                            stringify!($name),
                            case_index,
                            msg,
                        );
                    }
                }
            }
        }
    )*};
}

/// Fails the current case with a message unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: `{:?}` == `{:?}`", __l, __r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!(
                    "assertion failed: `{:?}` == `{:?}`: {}",
                    __l,
                    __r,
                    format!($($fmt)+),
                ),
            ));
        }
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: `{:?}` != `{:?}`", __l, __r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!(
                    "assertion failed: `{:?}` != `{:?}`: {}",
                    __l,
                    __r,
                    format!($($fmt)+),
                ),
            ));
        }
    }};
}

/// Rejects the current case (retried with a different one) unless `cond`
/// holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                format!("assumption failed: {}", stringify!($cond)),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(a in 1u16..=256, b in 0usize..64, c in 0u64..1 << 20) {
            prop_assert!((1..=256).contains(&a));
            prop_assert!(b < 64);
            prop_assert!(c < 1 << 20, "c = {}", c);
        }

        #[test]
        fn tuples_and_maps_compose(
            (x, y) in (0u8..=3, 1u16..=8).prop_map(|(a, b)| (a, b * 2)),
            v in prop::collection::vec(any::<bool>(), 4..=9),
        ) {
            prop_assert!(x <= 3);
            prop_assert!((2..=16).contains(&y) && y % 2 == 0);
            prop_assert!((4..=9).contains(&v.len()));
        }

        #[test]
        fn select_picks_members(k in prop::sample::select(vec![2u16, 4, 8, 16])) {
            prop_assert!([2, 4, 8, 16].contains(&k));
        }

        #[test]
        fn assume_rejects_and_retries(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let strat = (1u16..=256, 0u64..1 << 20);
        let mut a = TestRng::for_case("det", 7);
        let mut b = TestRng::for_case("det", 7);
        assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
    }

    #[test]
    #[should_panic(expected = "failed at deterministic case")]
    fn failures_panic_with_case_index() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]
            fn always_fails(n in 0u32..10) {
                prop_assert!(n > 100, "n was {}", n);
            }
        }
        always_fails();
    }
}

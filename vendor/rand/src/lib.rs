//! Offline stand-in for the `rand` crate.
//!
//! The workspace builds in environments with no crates.io access, so the
//! external `rand` dependency is replaced by this vendored shim exposing
//! exactly the 0.8-era API surface the workspace uses: `rngs::StdRng`,
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] methods `gen`,
//! `gen_range` (over unsigned integer ranges), and `gen_bool`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — deterministic
//! per seed, which is the only statistical property the simulation relies
//! on. The output stream intentionally makes no attempt to match the real
//! `rand` crate's `StdRng` (ChaCha12); seeds are workspace-local.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Core entropy source: a stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (only the `seed_from_u64` entry point is provided).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types producible by [`Rng::gen`] (the shim's analogue of sampling from
/// rand's `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_uint!(u8, u16, u32, u64, usize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Unsigned integers that can be drawn uniformly from a range.
pub trait UniformInt: Sized + Copy {
    /// Draws uniformly from `[low, high]` (inclusive on both ends).
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_uniform_uint {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "empty sample range");
                let span = (high as u64).wrapping_sub(low as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                // Widening-multiply range reduction; the bias over a 64-bit
                // draw is far below anything a traffic model can observe.
                let scaled =
                    ((u128::from(rng.next_u64()) * u128::from(span + 1)) >> 64) as u64;
                (low as u64 + scaled) as $t
            }
        }
    )*};
}

impl_uniform_uint!(u8, u16, u32, u64, usize);

/// Range arguments accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: UniformInt> SampleRange<T> for Range<T>
where
    T: PartialOrd + std::ops::Sub<Output = T> + From<u8>,
{
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "empty sample range");
        T::sample_inclusive(rng, self.start, self.end - T::from(1u8))
    }
}

impl<T: UniformInt> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        T::sample_inclusive(rng, low, high)
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of an inferred [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws uniformly from `range` (`low..high` or `low..=high`).
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ behind the name the
    /// real crate uses, so call sites need no changes.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, the canonical xoshiro seeding routine.
            let mut x = state;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let va: Vec<u64> = (0..16).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.gen()).collect();
        assert_eq!(va, vb);
        let mut c = StdRng::seed_from_u64(43);
        let vc: Vec<u64> = (0..16).map(|_| c.gen()).collect();
        assert_ne!(va, vc);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: u16 = rng.gen_range(1..=32);
            assert!((1..=32).contains(&v));
            let w: u64 = rng.gen_range(0..=7);
            assert!(w <= 7);
            let x: usize = rng.gen_range(3..9);
            assert!((3..9).contains(&x));
        }
    }

    #[test]
    fn gen_range_covers_the_whole_range() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "suspicious coin: {heads}");
    }
}

//! Offline stand-in for the `criterion` crate.
//!
//! The workspace builds without crates.io access, so the `[[bench]]`
//! targets run on this minimal harness instead of real criterion. It keeps
//! the same source-level API for the subset the benches use — groups,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `iter`,
//! `iter_with_setup`, `criterion_group!`/`criterion_main!` — and prints one
//! mean-per-iteration line per benchmark.
//!
//! Statistical machinery (outlier detection, HTML reports) is intentionally
//! absent: the numbers are honest wall-clock means, good enough to track
//! relative regressions, and the harness stays dependency-free. Passing
//! `--test` (as `cargo test` does for bench targets) runs each body once.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Target measuring time per benchmark, overridable with
/// `CRITERION_MEASURE_MS`.
fn measure_budget() -> Duration {
    let ms = std::env::var("CRITERION_MEASURE_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(200);
    Duration::from_millis(ms)
}

/// A named benchmark, optionally parameterised.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A benchmark named `function_name` with a parameter suffix.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// A benchmark identified by its parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

/// Timing handle passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `routine` for the harness-chosen iteration count, timing the
    /// whole batch.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Runs `routine` on a fresh `setup()` value per iteration, timing only
    /// the routine.
    pub fn iter_with_setup<S, O, Setup: FnMut() -> S, R: FnMut(S) -> O>(
        &mut self,
        mut setup: Setup,
        mut routine: R,
    ) {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// The benchmark manager handed to `criterion_group!` targets.
#[derive(Debug)]
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo test` invokes harness=false bench binaries with `--test`;
        // run each body once there instead of measuring.
        let test_mode = std::env::args().any(|a| a == "--test");
        Self { test_mode }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Measures one ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, f: F) {
        run_one(self.test_mode, &id.into(), f);
    }
}

/// A group of related benchmarks sharing a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim sizes batches by wall-clock
    /// budget instead of sample count.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Measures one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into());
        run_one(self.criterion.test_mode, &full, f);
        self
    }

    /// Measures one parameterised benchmark within the group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.id);
        run_one(self.criterion.test_mode, &full, |b| f(b, input));
        self
    }

    /// Ends the group (a no-op; present for API compatibility).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(test_mode: bool, id: &str, mut f: F) {
    // Calibration pass: one iteration, also the warmup.
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    if test_mode {
        println!("test {id} ... ok (bench ran once)");
        return;
    }
    let per_iter = bencher.elapsed.max(Duration::from_nanos(1));
    let budget = measure_budget();
    let iters = (budget.as_nanos() / per_iter.as_nanos()).clamp(1, 100_000) as u64;
    bencher.iters = iters;
    f(&mut bencher);
    let mean = bencher.elapsed / u32::try_from(iters).expect("iters clamped to 100k");
    println!("bench {id:<48} {mean:>12.2?}/iter ({iters} iters)");
}

/// Declares a function running each listed benchmark target in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running each listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut count = 0u64;
        let mut b = Bencher {
            iters: 7,
            elapsed: Duration::ZERO,
        };
        b.iter(|| count += 1);
        assert_eq!(count, 7);
    }

    #[test]
    fn iter_with_setup_times_only_the_routine() {
        let mut b = Bencher {
            iters: 3,
            elapsed: Duration::ZERO,
        };
        let mut setups = 0u64;
        b.iter_with_setup(
            || {
                setups += 1;
                42u64
            },
            |v| v * 2,
        );
        assert_eq!(setups, 3);
    }

    #[test]
    fn group_api_composes() {
        let mut c = Criterion { test_mode: true };
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.bench_function("one", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::new("two", 8), &8, |b, &x| b.iter(|| x * 2));
        group.bench_with_input(BenchmarkId::from_parameter(16), &16, |b, &x| {
            b.iter(|| x * 2)
        });
        group.finish();
        c.bench_function("free", |b| b.iter(|| ()));
    }
}

//! Micro-benchmarks of the arena `ChannelPool` hot paths: index-addressed
//! ring push/pop against a `VecDeque` baseline, and bulk batch-window
//! moves against their per-element equivalent. The same workloads feed the
//! `pool_microbench` binary, which records the means in
//! `BENCH_kernel.json`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use realm_bench::poolbench;

const OPS: u64 = 4096;

fn bench_channel_pool(c: &mut Criterion) {
    let mut group = c.benchmark_group("channel_pool");
    group.bench_function("ring_push_pop", |b| {
        b.iter(|| poolbench::ring_push_pop(black_box(OPS)))
    });
    group.bench_function("vecdeque_push_pop", |b| {
        b.iter(|| poolbench::vecdeque_push_pop(black_box(OPS)))
    });
    group.bench_function("ring_relay_per_cycle", |b| {
        b.iter(|| poolbench::ring_relay_per_cycle(black_box(OPS)))
    });
    group.bench_function("ring_batch_move", |b| {
        b.iter(|| poolbench::ring_batch_move(black_box(OPS)))
    });
    group.bench_function("vecdeque_relay_per_cycle", |b| {
        b.iter(|| poolbench::vecdeque_relay_per_cycle(black_box(OPS)))
    });
    group.bench_function("vecdeque_batch_move", |b| {
        b.iter(|| poolbench::vecdeque_batch_move(black_box(OPS)))
    });
    group.finish();
}

criterion_group!(benches, bench_channel_pool);
criterion_main!(benches);

//! Criterion bench over the Fig. 6a fragmentation sweep: wall-clock cost of
//! simulating each configuration, and a regression guard on the simulator's
//! throughput for the paper's key operating points.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use cheshire_soc::experiments::{single_source, with_fragmentation, without_reservation};

fn bench_fragmentation(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6a");
    group.sample_size(10);
    let accesses = 200;

    group.bench_function("single_source", |b| {
        b.iter(|| black_box(single_source(black_box(accesses))))
    });
    group.bench_function("without_reservation", |b| {
        b.iter(|| black_box(without_reservation(black_box(accesses))))
    });
    for frag in [1u16, 16, 256] {
        group.bench_with_input(
            BenchmarkId::new("with_fragmentation", frag),
            &frag,
            |b, &f| b.iter(|| black_box(with_fragmentation(f, black_box(accesses)))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fragmentation);
criterion_main!(benches);

//! Micro-benchmark of the interconnect substrate: simulated-cycle
//! throughput of a saturated crossbar + memory system.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use axi4::{Addr, SubordinateId, TxnId};
use axi_mem::{MemoryConfig, MemoryModel};
use axi_sim::{AxiBundle, Sim};
use axi_traffic::{DmaConfig, DmaModel};
use axi_xbar::{AddressMap, Crossbar};

fn saturated_system() -> Sim {
    let mut sim = Sim::new();
    let mgr = AxiBundle::with_defaults(sim.pool_mut());
    let llc = AxiBundle::with_defaults(sim.pool_mut());
    let spm = AxiBundle::with_defaults(sim.pool_mut());
    let mut map = AddressMap::new();
    map.add(Addr::new(0x8000_0000), 1 << 20, SubordinateId::new(0))
        .expect("static map");
    map.add(Addr::new(0x1000_0000), 1 << 20, SubordinateId::new(1))
        .expect("static map");
    sim.add(DmaModel::new(
        DmaConfig {
            region_a: (Addr::new(0x8000_0000), 1 << 20),
            region_b: (Addr::new(0x1000_0000), 1 << 20),
            burst_beats: 256,
            outstanding: 8,
            total_transfers: None,
            id: TxnId::new(0),
            start_cycle: 0,
        },
        mgr,
    ));
    sim.add(Crossbar::new(map, vec![mgr], vec![llc, spm]).expect("static ports"));
    sim.add(MemoryModel::new(
        MemoryConfig::llc(Addr::new(0x8000_0000), 1 << 20),
        llc,
    ));
    sim.add(MemoryModel::new(
        MemoryConfig::spm(Addr::new(0x1000_0000), 1 << 20),
        spm,
    ));
    sim
}

fn bench_interconnect(c: &mut Criterion) {
    let mut group = c.benchmark_group("interconnect");
    group.sample_size(20);
    group.bench_function("saturated_10k_cycles", |b| {
        b.iter_with_setup(saturated_system, |mut sim| {
            sim.run(10_000);
            black_box(sim.cycle())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_interconnect);
criterion_main!(benches);

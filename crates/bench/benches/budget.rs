//! Criterion bench over the Fig. 6b budget sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use cheshire_soc::experiments::with_budget;

fn bench_budget(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6b");
    group.sample_size(10);
    let accesses = 200;

    for divisor in [1u64, 3, 5] {
        let budget = 8 * 1024 / divisor;
        group.bench_with_input(
            BenchmarkId::new("with_budget", format!("1_{divisor}")),
            &budget,
            |b, &budget| b.iter(|| black_box(with_budget(budget, black_box(accesses)))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_budget);
criterion_main!(benches);

//! Micro-benchmarks of the memory substrates: sequential service throughput
//! of the flat model, the DRAM model, and the cache hierarchy.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use axi4::{Addr, ArBeat, BurstKind, BurstLen, BurstSize, TxnId};
use axi_mem::{CacheConfig, CacheModel, DramConfig, DramModel, MemoryConfig, MemoryModel};
use axi_sim::{AxiBundle, ComponentId, Sim};

const BASE: Addr = Addr::new(0x8000_0000);

/// Streams `n` sequential 16-beat reads through `build`'s memory and runs
/// to drain.
fn stream_reads<F>(n: u64, build: F) -> u64
where
    F: FnOnce(&mut Sim, AxiBundle) -> ComponentId,
{
    let mut sim = Sim::new();
    let port = AxiBundle::with_defaults(sim.pool_mut());
    build(&mut sim, port);
    let mut issued = 0;
    let mut lasts = 0;
    while lasts < n {
        let c = sim.cycle();
        if issued < n && sim.pool().peek(port.ar, c).is_none() {
            let ar = ArBeat::new(
                TxnId::new(0),
                BASE + issued * 128,
                BurstLen::new(16).expect("16 beats valid"),
                BurstSize::bus64(),
                BurstKind::Incr,
            );
            if sim.pool_mut().try_push(port.ar, c, ar).is_ok() {
                issued += 1;
            }
        }
        sim.step();
        let c = sim.cycle();
        if let Some(r) = sim.pool_mut().pop(port.r, c) {
            if r.last {
                lasts += 1;
            }
        }
        assert!(sim.cycle() < n * 10_000, "bench stream wedged");
    }
    sim.cycle()
}

fn bench_memories(c: &mut Criterion) {
    let mut group = c.benchmark_group("memory_stream_64x16beat");
    group.sample_size(20);
    group.bench_function("flat_spm", |b| {
        b.iter(|| {
            black_box(stream_reads(64, |sim, port| {
                sim.add(MemoryModel::new(MemoryConfig::spm(BASE, 1 << 20), port))
            }))
        })
    });
    group.bench_function("dram", |b| {
        b.iter(|| {
            black_box(stream_reads(64, |sim, port| {
                sim.add(DramModel::new(DramConfig::ddr3(BASE, 1 << 20), port))
            }))
        })
    });
    group.bench_function("cache_over_dram", |b| {
        b.iter(|| {
            black_box(stream_reads(64, |sim, port| {
                let back = AxiBundle::with_defaults(sim.pool_mut());
                let id = sim.add(CacheModel::new(CacheConfig::llc(BASE, 1 << 20), port, back));
                sim.add(DramModel::new(DramConfig::ddr3(BASE, 1 << 20), back));
                id
            }))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_memories);
criterion_main!(benches);

//! Micro-benchmarks of the REALM unit's hot paths: fragmentation planning,
//! per-cycle tick cost, and the area model.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use axi4::{fragment, Addr, BurstKind, BurstLen, BurstSize, Cache};
use axi_realm::area::{AreaBreakdown, AreaParams};
use axi_realm::{DesignConfig, RealmUnit, RuntimeConfig};
use axi_sim::{AxiBundle, Sim};

fn bench_fragment_planning(c: &mut Criterion) {
    let mut group = c.benchmark_group("fragment_plan");
    for granularity in [1u16, 16, 256] {
        group.bench_with_input(
            BenchmarkId::from_parameter(granularity),
            &granularity,
            |b, &g| {
                b.iter(|| {
                    fragment(
                        BurstKind::Incr,
                        black_box(Addr::new(0x8000_0000)),
                        BurstLen::new(256).expect("256 beats valid"),
                        BurstSize::bus64(),
                        false,
                        Cache::NORMAL,
                        g,
                    )
                })
            },
        );
    }
    group.finish();
}

fn bench_idle_tick(c: &mut Criterion) {
    c.bench_function("realm_unit_idle_tick_1000", |b| {
        b.iter_with_setup(
            || {
                let mut sim = Sim::new();
                let up = AxiBundle::with_defaults(sim.pool_mut());
                let down = AxiBundle::with_defaults(sim.pool_mut());
                sim.add(RealmUnit::new(
                    DesignConfig::cheshire(),
                    RuntimeConfig::open(2),
                    up,
                    down,
                ));
                sim
            },
            |mut sim| {
                sim.run(1000);
                black_box(sim.cycle())
            },
        )
    });
}

fn bench_area_model(c: &mut Criterion) {
    c.bench_function("area_model_evaluate", |b| {
        b.iter(|| AreaBreakdown::evaluate(black_box(AreaParams::cheshire())))
    });
}

criterion_group!(
    benches,
    bench_fragment_planning,
    bench_idle_tick,
    bench_area_model
);
criterion_main!(benches);

//! Regression test for run-to-run determinism of published artifacts.
//!
//! The simulator must be a pure function of its configuration: two runs of
//! the same experiment — monitors attached, full contention — must produce
//! **byte-identical** report JSON. This is what the BTreeMap migration of
//! the sim-visible state buys: no iteration-order-dependent arithmetic
//! anywhere between the traffic generators and the serialized rows.

use cheshire_soc::experiments::llc_regulation;
use cheshire_soc::{Regulation, Testbench, TestbenchConfig};
use realm_bench::{ExperimentReport, Row};

/// One contended run (core + worst-case DMA, budgets active, protocol
/// monitors attached), rendered into a report exactly as the experiment
/// binaries do.
fn run_once() -> String {
    let mut cfg = TestbenchConfig::single_source(300);
    cfg.dma = Some(TestbenchConfig::worst_case_dma());
    cfg.core_regulation = Regulation::Realm(llc_regulation(256, 0, 0));
    cfg.dma_regulation = Regulation::Realm(llc_regulation(1, 1024, 1_000));
    cfg.monitors = true;

    let mut tb = Testbench::new(cfg);
    assert!(tb.run_until_core_done(5_000_000));
    tb.assert_conformance();
    let r = tb.result();

    let mut report = ExperimentReport::new("determinism", "byte-identity probe");
    report.push(Row::new(
        "contended",
        vec![
            ("cycles", r.cycles as f64),
            ("core_accesses", r.core_accesses as f64),
            ("lat_mean", r.core_latency.mean().unwrap_or(0.0)),
            ("lat_max", r.core_latency.max().unwrap_or(0) as f64),
            ("dma_bytes", r.dma_bytes as f64),
            ("llc_beats", r.llc_beats as f64),
            ("ticks", r.kernel.ticks_executed as f64),
            ("skipped", r.kernel.cycles_skipped as f64),
        ],
    ));
    report.to_json().pretty()
}

#[test]
fn report_json_is_byte_identical_across_runs() {
    let first = run_once();
    let second = run_once();
    assert_eq!(first, second, "report JSON differs between identical runs");
    // Sanity: the probe actually measured something.
    assert!(first.contains("\"cycles\""));
}

#[test]
fn lint_report_json_is_byte_identical_across_runs() {
    let build = || {
        let mut cfg = TestbenchConfig::single_source(1);
        cfg.dma = Some(TestbenchConfig::worst_case_dma());
        cfg.core_regulation = Regulation::Realm(llc_regulation(1, 8 * 1024, 1_000));
        cfg.dma_regulation = Regulation::Realm(llc_regulation(1, 8 * 1024, 1_000));
        cfg.monitors = false;
        Testbench::new(cfg).lint_report().to_json()
    };
    assert_eq!(build(), build(), "analyzer JSON differs between runs");
}

//! Shared helpers for the experiment binaries and Criterion benches of the
//! AXI-REALM reproduction. See the `fig6a`, `fig6b`, `table1`, `table2`,
//! and `ablations` binaries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod conformance;
pub mod json;
pub mod poolbench;
pub mod report;
pub mod sweep;
pub mod telemetry;

pub use conformance::MonitorRig;
pub use report::{ExperimentReport, Row};
pub use sweep::{run_sweep, PointRuntime, SweepOutcome};
pub use telemetry::{maybe_export, point_row};

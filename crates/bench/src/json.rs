//! Dependency-free JSON support for experiment reports.
//!
//! The harness writes and re-reads its own `results/*.json` files; nothing
//! external consumes them mid-flight. That closed loop lets us carry a tiny
//! ordered JSON value type instead of a serde dependency (unavailable in
//! offline builds). The pretty printer matches serde_json's layout
//! (two-space indent, `"key": value`) so existing result files and diffs
//! stay stable.

use std::fmt::Write as _;

/// A JSON value. Object keys keep insertion order so output is
/// deterministic.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer, printed without a fractional part. Counters (cycle and
    /// tick counts, thread counts) use this so `"ticks": 3884796` does not
    /// come out as the float-flavoured `3884796.0`.
    Int(i64),
    /// A non-integer JSON number (stored as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key in an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number (integer or float).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(n) => Some(*n as f64),
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The integer payload. Floats qualify only when they are exactly
    /// integral, so counters survive a trip through older float-formatted
    /// files.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(n) => Some(*n),
            Json::Num(n) if *n == n.trunc() && n.abs() < 9e15 => Some(*n as i64),
            _ => None,
        }
    }

    /// The integer payload as `u64`; `None` for negatives.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_i64().and_then(|n| u64::try_from(n).ok())
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders with two-space indentation, serde_json-pretty style.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Num(n) => write_number(out, *n),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) if items.is_empty() => out.push_str("[]"),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(fields) if fields.is_empty() => out.push_str("{}"),
            Json::Obj(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no Inf/NaN; null is serde_json's lossy stance too.
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9e15 {
        // Integral values print without an exponent and with the `.0`
        // serde_json uses for f64 fields.
        let _ = write!(out, "{n:.1}");
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document.
///
/// # Errors
///
/// Returns a message with the byte offset of the first syntax error.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing content at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected `{}` at byte {}",
                char::from(byte),
                self.pos
            ))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected content at byte {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_owned()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?;
                            // Surrogate pairs are absent from our own output;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so slicing
                    // on char boundaries is safe).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| "invalid utf-8")?;
                    let c = s.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let token = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("bad number at byte {start}"))?;
        // A token with no fraction or exponent is an integer when it fits
        // i64; everything else falls back to f64.
        if !token.bytes().any(|b| matches!(b, b'.' | b'e' | b'E')) {
            if let Ok(n) = token.parse::<i64>() {
                return Ok(Json::Int(n));
            }
        }
        token
            .parse::<f64>()
            .map(Json::Num)
            .ok()
            .ok_or_else(|| format!("bad number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_reports_shape() {
        let doc = Json::Obj(vec![
            ("id".to_owned(), Json::Str("Fig. 6a".to_owned())),
            (
                "rows".to_owned(),
                Json::Arr(vec![Json::Obj(vec![
                    ("label".to_owned(), Json::Str("256".to_owned())),
                    (
                        "values".to_owned(),
                        Json::Arr(vec![Json::Arr(vec![
                            Json::Str("perf_pct".to_owned()),
                            Json::Num(0.7),
                        ])]),
                    ),
                ])]),
            ),
            ("notes".to_owned(), Json::Arr(vec![])),
        ]);
        let text = doc.pretty();
        assert_eq!(parse(&text).unwrap(), doc);
    }

    #[test]
    fn pretty_matches_serde_layout() {
        let doc = Json::Obj(vec![
            ("id".to_owned(), Json::Str("X".to_owned())),
            ("n".to_owned(), Json::Num(42.0)),
            ("x".to_owned(), Json::Num(1.5)),
        ]);
        let text = doc.pretty();
        assert!(text.contains("\"id\": \"X\""), "{text}");
        assert!(text.contains("\"n\": 42.0"), "{text}");
        assert!(text.contains("\"x\": 1.5"), "{text}");
        assert!(text.starts_with("{\n  "), "{text}");
    }

    #[test]
    fn integer_counters_roundtrip_without_float_suffix() {
        // Regression: counters such as `"ticks_executed": 3884796` used to be
        // emitted as `3884796.0` because every number was an f64.
        let doc = Json::Obj(vec![
            ("ticks_executed".to_owned(), Json::Int(3_884_796)),
            ("threads".to_owned(), Json::Int(1)),
            ("cycles_skipped".to_owned(), Json::Int(0)),
            ("big".to_owned(), Json::Int(9_007_199_254_740_993)),
            ("rate".to_owned(), Json::Num(1.5)),
        ]);
        let text = doc.pretty();
        assert!(text.contains("\"ticks_executed\": 3884796"), "{text}");
        assert!(!text.contains("3884796.0"), "{text}");
        assert!(text.contains("\"threads\": 1,"), "{text}");
        // Beyond f64's exact-integer range, so a float detour would corrupt it.
        assert!(text.contains("\"big\": 9007199254740993"), "{text}");
        let back = parse(&text).unwrap();
        assert_eq!(back, doc);
        assert_eq!(
            back.get("big").unwrap().as_u64(),
            Some(9_007_199_254_740_993)
        );
        assert_eq!(back.get("threads").unwrap().as_i64(), Some(1));
        assert_eq!(back.get("threads").unwrap().as_f64(), Some(1.0));
    }

    #[test]
    fn integral_floats_still_read_as_counters() {
        // Older result files carry `42.0`; as_i64/as_u64 accept those too.
        let v = parse("{\"n\": 42.0}").unwrap();
        assert_eq!(v.get("n"), Some(&Json::Num(42.0)));
        assert_eq!(v.get("n").unwrap().as_i64(), Some(42));
        assert_eq!(v.get("n").unwrap().as_u64(), Some(42));
    }

    #[test]
    fn escapes_roundtrip() {
        let doc = Json::Str("a\"b\\c\nd\te\u{1}".to_owned());
        assert_eq!(parse(&doc.pretty()).unwrap(), doc);
    }

    #[test]
    fn parses_whitespace_and_nesting() {
        let text = r#" { "a" : [ 1 , -2.5e2 , true , false , null ] , "b" : { } } "#;
        let v = parse(text).unwrap();
        assert_eq!(
            v.get("a").and_then(Json::as_arr).map(<[Json]>::len),
            Some(5)
        );
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[1], Json::Num(-250.0));
        assert_eq!(v.get("b"), Some(&Json::Obj(vec![])));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "tru", "\"unterminated", "1 2"] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }
}

//! Tabular experiment reporting: aligned console tables plus JSON dumps.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

use serde::{Deserialize, Serialize};

/// One row of an experiment table: a label plus named numeric columns.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Row {
    /// Row label (e.g. the fragmentation size or budget ratio).
    pub label: String,
    /// `(column name, value)` pairs, in column order.
    pub values: Vec<(String, f64)>,
}

impl Row {
    /// Creates a row from a label and `(column, value)` pairs.
    pub fn new<L: Into<String>>(label: L, values: Vec<(&str, f64)>) -> Self {
        Self {
            label: label.into(),
            values: values
                .into_iter()
                .map(|(k, v)| (k.to_owned(), v))
                .collect(),
        }
    }
}

/// An experiment's rendered result: title, column set, rows, and notes.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ExperimentReport {
    /// Experiment identifier (e.g. "Fig. 6a").
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// Data rows.
    pub rows: Vec<Row>,
    /// Free-form notes (paper reference values, caveats).
    pub notes: Vec<String>,
}

impl ExperimentReport {
    /// Creates an empty report.
    pub fn new<I: Into<String>, T: Into<String>>(id: I, title: T) -> Self {
        Self {
            id: id.into(),
            title: title.into(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn push(&mut self, row: Row) {
        self.rows.push(row);
    }

    /// Appends a note line.
    pub fn note<S: Into<String>>(&mut self, note: S) {
        self.notes.push(note.into());
    }

    /// Renders the report as an aligned console table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== {} — {} ==", self.id, self.title);
        if self.rows.is_empty() {
            let _ = writeln!(out, "(no rows)");
        } else {
            let cols: Vec<&str> = self.rows[0]
                .values
                .iter()
                .map(|(k, _)| k.as_str())
                .collect();
            let label_w = self
                .rows
                .iter()
                .map(|r| r.label.len())
                .max()
                .unwrap_or(0)
                .max(8);
            let _ = write!(out, "{:label_w$}", "");
            for c in &cols {
                let _ = write!(out, "  {c:>14}");
            }
            let _ = writeln!(out);
            for row in &self.rows {
                let _ = write!(out, "{:label_w$}", row.label);
                for (_, v) in &row.values {
                    if v.fract() == 0.0 && v.abs() < 1e12 {
                        let _ = write!(out, "  {:>14}", *v as i64);
                    } else {
                        let _ = write!(out, "  {v:>14.2}");
                    }
                }
                let _ = writeln!(out);
            }
        }
        for note in &self.notes {
            let _ = writeln!(out, "note: {note}");
        }
        out
    }

    /// Renders one column as a horizontal ASCII bar chart, scaled to the
    /// column's maximum — a quick visual check of a sweep's shape without
    /// leaving the terminal.
    ///
    /// Rows lacking the column are skipped; an unknown column yields a
    /// note-only chart.
    pub fn render_chart(&self, column: &str, width: usize) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "-- {} ({column}) --", self.id);
        let values: Vec<(&str, f64)> = self
            .rows
            .iter()
            .filter_map(|r| {
                r.values
                    .iter()
                    .find(|(k, _)| k == column)
                    .map(|(_, v)| (r.label.as_str(), *v))
            })
            .collect();
        let max = values.iter().map(|(_, v)| *v).fold(f64::MIN, f64::max);
        if values.is_empty() || max <= 0.0 {
            let _ = writeln!(out, "(no data)");
            return out;
        }
        let label_w = values.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
        for (label, value) in values {
            let bar = ((value / max) * width as f64).round().max(0.0) as usize;
            let _ = writeln!(out, "{label:label_w$} |{} {value:.2}", "#".repeat(bar));
        }
        out
    }

    /// Renders the report as a GitHub-flavoured Markdown table (used to
    /// paste measured results into `EXPERIMENTS.md`).
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "### {} — {}", self.id, self.title);
        let _ = writeln!(out);
        if let Some(first) = self.rows.first() {
            let _ = write!(out, "| |");
            for (k, _) in &first.values {
                let _ = write!(out, " {k} |");
            }
            let _ = writeln!(out);
            let _ = write!(out, "|---|");
            for _ in &first.values {
                let _ = write!(out, "---|");
            }
            let _ = writeln!(out);
            for row in &self.rows {
                let _ = write!(out, "| {} |", row.label);
                for (_, v) in &row.values {
                    if v.fract() == 0.0 && v.abs() < 1e12 {
                        let _ = write!(out, " {} |", *v as i64);
                    } else {
                        let _ = write!(out, " {v:.2} |");
                    }
                }
                let _ = writeln!(out);
            }
        }
        for note in &self.notes {
            let _ = writeln!(out, "\n> {note}");
        }
        out
    }

    /// Writes the report as JSON next to the printed table.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_json<P: AsRef<Path>>(&self, path: P) -> std::io::Result<()> {
        let json = serde_json::to_string_pretty(self).expect("report serializes");
        fs::write(path, json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut rep = ExperimentReport::new("Fig. 6a", "fragmentation sweep");
        rep.push(Row::new("256", vec![("perf_pct", 0.7), ("max_lat", 264.0)]));
        rep.push(Row::new("1", vec![("perf_pct", 68.2), ("max_lat", 10.0)]));
        rep.note("paper: 0.7% → 68.2%");
        let text = rep.render();
        assert!(text.contains("Fig. 6a"));
        assert!(text.contains("perf_pct"));
        assert!(text.contains("68.20"));
        assert!(text.contains("note: paper"));
    }

    #[test]
    fn integers_render_without_decimals() {
        let mut rep = ExperimentReport::new("T", "t");
        rep.push(Row::new("r", vec![("count", 42.0)]));
        assert!(rep.render().contains("42"));
        assert!(!rep.render().contains("42.00"));
    }

    #[test]
    fn markdown_has_header_and_rows() {
        let mut rep = ExperimentReport::new("Fig. X", "demo");
        rep.push(Row::new("a", vec![("perf", 81.53), ("n", 3.0)]));
        rep.note("a note");
        let md = rep.to_markdown();
        assert!(md.contains("### Fig. X — demo"));
        assert!(md.contains("| | perf | n |"));
        assert!(md.contains("| a | 81.53 | 3 |"));
        assert!(md.contains("> a note"));
    }

    #[test]
    fn chart_scales_to_max() {
        let mut rep = ExperimentReport::new("C", "chart");
        rep.push(Row::new("a", vec![("perf", 50.0)]));
        rep.push(Row::new("b", vec![("perf", 100.0)]));
        let chart = rep.render_chart("perf", 10);
        let lines: Vec<&str> = chart.lines().collect();
        assert!(lines[1].contains("#####"), "{chart}");
        assert!(lines[2].contains("##########"), "{chart}");
        assert!(lines[1].matches('#').count() < lines[2].matches('#').count());
    }

    #[test]
    fn chart_handles_missing_column() {
        let mut rep = ExperimentReport::new("C", "chart");
        rep.push(Row::new("a", vec![("x", 1.0)]));
        assert!(rep.render_chart("nope", 10).contains("(no data)"));
        assert!(ExperimentReport::new("E", "e").render_chart("x", 10).contains("(no data)"));
    }

    #[test]
    fn json_roundtrip() {
        let mut rep = ExperimentReport::new("X", "x");
        rep.push(Row::new("a", vec![("v", 1.5)]));
        let dir = std::env::temp_dir().join("realm_report_test.json");
        rep.write_json(&dir).unwrap();
        let text = std::fs::read_to_string(&dir).unwrap();
        assert!(text.contains("\"id\": \"X\""));
        let _ = std::fs::remove_file(dir);
    }
}

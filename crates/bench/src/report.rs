//! Tabular experiment reporting: aligned console tables plus JSON dumps.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

use crate::json::{self, Json};

/// One row of an experiment table: a label plus named numeric columns.
#[derive(Clone, Debug, PartialEq)]
pub struct Row {
    /// Row label (e.g. the fragmentation size or budget ratio).
    pub label: String,
    /// `(column name, value)` pairs, in column order.
    pub values: Vec<(String, f64)>,
}

impl Row {
    /// Creates a row from a label and `(column, value)` pairs.
    pub fn new<L: Into<String>>(label: L, values: Vec<(&str, f64)>) -> Self {
        Self {
            label: label.into(),
            values: values.into_iter().map(|(k, v)| (k.to_owned(), v)).collect(),
        }
    }

    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("label".to_owned(), Json::Str(self.label.clone())),
            (
                "values".to_owned(),
                Json::Arr(
                    self.values
                        .iter()
                        .map(|(k, v)| Json::Arr(vec![Json::Str(k.clone()), Json::Num(*v)]))
                        .collect(),
                ),
            ),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, String> {
        let label = v
            .get("label")
            .and_then(Json::as_str)
            .ok_or("row missing `label`")?
            .to_owned();
        let values = v
            .get("values")
            .and_then(Json::as_arr)
            .ok_or("row missing `values`")?
            .iter()
            .map(|pair| {
                let pair = pair.as_arr().ok_or("value entry is not a pair")?;
                match pair {
                    // Int covers hand-edited or integer-formatted files; our
                    // own writer emits Num for row values.
                    [Json::Str(k), n] => n
                        .as_f64()
                        .map(|n| (k.clone(), n))
                        .ok_or_else(|| "value entry is not [name, number]".to_owned()),
                    _ => Err("value entry is not [name, number]".to_owned()),
                }
            })
            .collect::<Result<_, String>>()?;
        Ok(Self { label, values })
    }
}

/// An experiment's rendered result: title, column set, rows, and notes,
/// plus deterministic kernel `runtime` counters from the sweep harness.
#[derive(Clone, Debug, PartialEq)]
pub struct ExperimentReport {
    /// Experiment identifier (e.g. "Fig. 6a").
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// Data rows.
    pub rows: Vec<Row>,
    /// Free-form notes (paper reference values, caveats).
    pub notes: Vec<String>,
    /// Per-point kernel counters (ticks executed, cycles skipped) from the
    /// sweep harness. Deterministic, unlike wall-clock, so they live in the
    /// report; wall-clock goes to `BENCH_kernel.json` instead.
    pub runtime: Vec<Row>,
    /// Per-point component telemetry (isolation trips, latency-histogram
    /// bounds, …) distilled from each run's [`TelemetrySink`] registry.
    /// Only kernel-invariant component-side signals belong here — the CI
    /// kernel-equivalence job diffs these files across all four kernels,
    /// and the transparency job diffs them with telemetry export on vs.
    /// off, so the rows must not depend on `REALM_TELEMETRY`/`REALM_TRACE`
    /// or on which kernel ran.
    ///
    /// [`TelemetrySink`]: realm_telemetry::TelemetrySink
    pub telemetry: Vec<Row>,
}

impl ExperimentReport {
    /// Creates an empty report.
    pub fn new<I: Into<String>, T: Into<String>>(id: I, title: T) -> Self {
        Self {
            id: id.into(),
            title: title.into(),
            rows: Vec::new(),
            notes: Vec::new(),
            runtime: Vec::new(),
            telemetry: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn push(&mut self, row: Row) {
        self.rows.push(row);
    }

    /// Appends a note line.
    pub fn note<S: Into<String>>(&mut self, note: S) {
        self.notes.push(note.into());
    }

    /// Renders the report as an aligned console table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== {} — {} ==", self.id, self.title);
        if self.rows.is_empty() {
            let _ = writeln!(out, "(no rows)");
        } else {
            let cols: Vec<&str> = self.rows[0]
                .values
                .iter()
                .map(|(k, _)| k.as_str())
                .collect();
            let label_w = self
                .rows
                .iter()
                .map(|r| r.label.len())
                .max()
                .unwrap_or(0)
                .max(8);
            let _ = write!(out, "{:label_w$}", "");
            for c in &cols {
                let _ = write!(out, "  {c:>14}");
            }
            let _ = writeln!(out);
            for row in &self.rows {
                let _ = write!(out, "{:label_w$}", row.label);
                for (_, v) in &row.values {
                    if v.fract() == 0.0 && v.abs() < 1e12 {
                        let _ = write!(out, "  {:>14}", *v as i64);
                    } else {
                        let _ = write!(out, "  {v:>14.2}");
                    }
                }
                let _ = writeln!(out);
            }
        }
        for note in &self.notes {
            let _ = writeln!(out, "note: {note}");
        }
        out
    }

    /// Renders one column as a horizontal ASCII bar chart, scaled to the
    /// column's maximum — a quick visual check of a sweep's shape without
    /// leaving the terminal.
    ///
    /// Rows lacking the column are skipped; an unknown column yields a
    /// note-only chart.
    pub fn render_chart(&self, column: &str, width: usize) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "-- {} ({column}) --", self.id);
        let values: Vec<(&str, f64)> = self
            .rows
            .iter()
            .filter_map(|r| {
                r.values
                    .iter()
                    .find(|(k, _)| k == column)
                    .map(|(_, v)| (r.label.as_str(), *v))
            })
            .collect();
        let max = values.iter().map(|(_, v)| *v).fold(f64::MIN, f64::max);
        if values.is_empty() || max <= 0.0 {
            let _ = writeln!(out, "(no data)");
            return out;
        }
        let label_w = values.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
        for (label, value) in values {
            let bar = ((value / max) * width as f64).round().max(0.0) as usize;
            let _ = writeln!(out, "{label:label_w$} |{} {value:.2}", "#".repeat(bar));
        }
        out
    }

    /// Renders the report as a GitHub-flavoured Markdown table (used to
    /// paste measured results into `EXPERIMENTS.md`).
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "### {} — {}", self.id, self.title);
        let _ = writeln!(out);
        if let Some(first) = self.rows.first() {
            let _ = write!(out, "| |");
            for (k, _) in &first.values {
                let _ = write!(out, " {k} |");
            }
            let _ = writeln!(out);
            let _ = write!(out, "|---|");
            for _ in &first.values {
                let _ = write!(out, "---|");
            }
            let _ = writeln!(out);
            for row in &self.rows {
                let _ = write!(out, "| {} |", row.label);
                for (_, v) in &row.values {
                    if v.fract() == 0.0 && v.abs() < 1e12 {
                        let _ = write!(out, " {} |", *v as i64);
                    } else {
                        let _ = write!(out, " {v:.2} |");
                    }
                }
                let _ = writeln!(out);
            }
        }
        if !self.telemetry.is_empty() {
            let _ = writeln!(out, "\nTelemetry (kernel-invariant, per point):\n");
            if let Some(first) = self.telemetry.first() {
                let _ = write!(out, "| |");
                for (k, _) in &first.values {
                    let _ = write!(out, " {k} |");
                }
                let _ = writeln!(out);
                let _ = write!(out, "|---|");
                for _ in &first.values {
                    let _ = write!(out, "---|");
                }
                let _ = writeln!(out);
                for row in &self.telemetry {
                    let _ = write!(out, "| {} |", row.label);
                    for (_, v) in &row.values {
                        if v.fract() == 0.0 && v.abs() < 1e12 {
                            let _ = write!(out, " {} |", *v as i64);
                        } else {
                            let _ = write!(out, " {v:.2} |");
                        }
                    }
                    let _ = writeln!(out);
                }
            }
        }
        for note in &self.notes {
            let _ = writeln!(out, "\n> {note}");
        }
        out
    }

    /// The report as a JSON value (field order matches the files the seed's
    /// serde derive produced, with `runtime` appended).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("id".to_owned(), Json::Str(self.id.clone())),
            ("title".to_owned(), Json::Str(self.title.clone())),
            (
                "rows".to_owned(),
                Json::Arr(self.rows.iter().map(Row::to_json).collect()),
            ),
            (
                "notes".to_owned(),
                Json::Arr(self.notes.iter().map(|n| Json::Str(n.clone())).collect()),
            ),
            (
                "runtime".to_owned(),
                Json::Arr(self.runtime.iter().map(Row::to_json).collect()),
            ),
            (
                "telemetry".to_owned(),
                Json::Arr(self.telemetry.iter().map(Row::to_json).collect()),
            ),
        ])
    }

    /// Rebuilds a report from a parsed JSON value.
    ///
    /// # Errors
    ///
    /// Describes the first missing or mistyped field.
    pub fn from_json(v: &Json) -> Result<Self, String> {
        let field_str = |key: &str| {
            v.get(key)
                .and_then(Json::as_str)
                .map(str::to_owned)
                .ok_or(format!("report missing `{key}`"))
        };
        let rows = |key: &str| {
            v.get(key)
                .and_then(Json::as_arr)
                .unwrap_or(&[])
                .iter()
                .map(Row::from_json)
                .collect::<Result<Vec<Row>, String>>()
        };
        Ok(Self {
            id: field_str("id")?,
            title: field_str("title")?,
            rows: v
                .get("rows")
                .and_then(Json::as_arr)
                .ok_or("report missing `rows`")?
                .iter()
                .map(Row::from_json)
                .collect::<Result<_, String>>()?,
            notes: v
                .get("notes")
                .and_then(Json::as_arr)
                .ok_or("report missing `notes`")?
                .iter()
                .map(|n| {
                    n.as_str()
                        .map(str::to_owned)
                        .ok_or_else(|| "note is not a string".to_owned())
                })
                .collect::<Result<_, String>>()?,
            // Absent in files written before the sweep harness existed.
            runtime: rows("runtime")?,
            // Absent in files written before the telemetry registry existed.
            telemetry: rows("telemetry")?,
        })
    }

    /// Parses a report from JSON text.
    ///
    /// # Errors
    ///
    /// Reports JSON syntax errors or missing fields.
    pub fn from_json_str(text: &str) -> Result<Self, String> {
        Self::from_json(&json::parse(text)?)
    }

    /// Writes the report as JSON next to the printed table.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_json<P: AsRef<Path>>(&self, path: P) -> std::io::Result<()> {
        fs::write(path, self.to_json().pretty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut rep = ExperimentReport::new("Fig. 6a", "fragmentation sweep");
        rep.push(Row::new("256", vec![("perf_pct", 0.7), ("max_lat", 264.0)]));
        rep.push(Row::new("1", vec![("perf_pct", 68.2), ("max_lat", 10.0)]));
        rep.note("paper: 0.7% → 68.2%");
        let text = rep.render();
        assert!(text.contains("Fig. 6a"));
        assert!(text.contains("perf_pct"));
        assert!(text.contains("68.20"));
        assert!(text.contains("note: paper"));
    }

    #[test]
    fn integers_render_without_decimals() {
        let mut rep = ExperimentReport::new("T", "t");
        rep.push(Row::new("r", vec![("count", 42.0)]));
        assert!(rep.render().contains("42"));
        assert!(!rep.render().contains("42.00"));
    }

    #[test]
    fn markdown_has_header_and_rows() {
        let mut rep = ExperimentReport::new("Fig. X", "demo");
        rep.push(Row::new("a", vec![("perf", 81.53), ("n", 3.0)]));
        rep.note("a note");
        let md = rep.to_markdown();
        assert!(md.contains("### Fig. X — demo"));
        assert!(md.contains("| | perf | n |"));
        assert!(md.contains("| a | 81.53 | 3 |"));
        assert!(md.contains("> a note"));
    }

    #[test]
    fn chart_scales_to_max() {
        let mut rep = ExperimentReport::new("C", "chart");
        rep.push(Row::new("a", vec![("perf", 50.0)]));
        rep.push(Row::new("b", vec![("perf", 100.0)]));
        let chart = rep.render_chart("perf", 10);
        let lines: Vec<&str> = chart.lines().collect();
        assert!(lines[1].contains("#####"), "{chart}");
        assert!(lines[2].contains("##########"), "{chart}");
        assert!(lines[1].matches('#').count() < lines[2].matches('#').count());
    }

    #[test]
    fn chart_handles_missing_column() {
        let mut rep = ExperimentReport::new("C", "chart");
        rep.push(Row::new("a", vec![("x", 1.0)]));
        assert!(rep.render_chart("nope", 10).contains("(no data)"));
        assert!(ExperimentReport::new("E", "e")
            .render_chart("x", 10)
            .contains("(no data)"));
    }

    #[test]
    fn json_roundtrip() {
        let mut rep = ExperimentReport::new("X", "x");
        rep.push(Row::new("a", vec![("v", 1.5)]));
        rep.note("n");
        rep.runtime
            .push(Row::new("a", vec![("ticks_executed", 10.0)]));
        rep.telemetry
            .push(Row::new("a", vec![("isolation_trips", 2.0)]));
        let dir = std::env::temp_dir().join("realm_report_test.json");
        rep.write_json(&dir).unwrap();
        let text = std::fs::read_to_string(&dir).unwrap();
        assert!(text.contains("\"id\": \"X\""));
        assert_eq!(ExperimentReport::from_json_str(&text).unwrap(), rep);
        let _ = std::fs::remove_file(dir);
    }

    #[test]
    fn json_without_runtime_section_still_parses() {
        // Files written before the sweep harness existed lack `runtime`.
        let text = r#"{
  "id": "Fig. 6a",
  "title": "t",
  "rows": [{ "label": "256", "values": [["perf_pct", 0.7]] }],
  "notes": ["legacy"]
}"#;
        let rep = ExperimentReport::from_json_str(text).unwrap();
        assert_eq!(rep.id, "Fig. 6a");
        assert_eq!(rep.rows[0].values[0], ("perf_pct".to_owned(), 0.7));
        assert!(rep.runtime.is_empty());
        assert!(rep.telemetry.is_empty());
    }
}

//! Protocol-monitor attachment for the hand-assembled experiment binaries.
//!
//! `cheshire_soc::Testbench` wires [`ProtocolMonitor`]s automatically; the
//! extension and related-work binaries build their systems directly on a
//! [`Sim`] and use this rig to get the same coverage: one monitor per named
//! port, link and boundary conservation via a [`Scoreboard`], and a final
//! [`MonitorRig::assert_clean`]. Honours `REALM_MONITORS=0` like the
//! testbench.

use axi_conformance::{ConformanceReport, ProtocolMonitor, Scoreboard};
use axi_sim::{AxiBundle, ComponentId, Sim};

/// Accumulates monitors and scoreboard relations while a binary assembles
/// its system by hand.
pub struct MonitorRig {
    monitors: Vec<ComponentId>,
    scoreboard: Scoreboard,
    enabled: bool,
}

impl MonitorRig {
    /// Creates a rig; monitors default on unless `REALM_MONITORS` is set to
    /// `0`, `off`, or `false`.
    pub fn new() -> Self {
        let enabled = !matches!(
            std::env::var("REALM_MONITORS").as_deref(),
            Ok("0") | Ok("off") | Ok("false")
        );
        Self {
            monitors: Vec::new(),
            scoreboard: Scoreboard::new(),
            enabled,
        }
    }

    /// Attaches a monitor to `bundle` under `name` (no-op when disabled).
    pub fn port(&mut self, sim: &mut Sim, name: &str, bundle: AxiBundle) {
        if self.enabled {
            self.monitors
                .push(ProtocolMonitor::attach(sim, name, bundle));
        }
    }

    /// Declares a beat-conserving link between two monitored ports.
    pub fn link(&mut self, up: &str, down: &str) {
        if self.enabled {
            self.scoreboard = std::mem::take(&mut self.scoreboard).link(up, down);
        }
    }

    /// Declares an interconnect boundary between monitored port groups.
    pub fn boundary(&mut self, managers: &[&str], subordinates: &[&str]) {
        if self.enabled {
            self.scoreboard = std::mem::take(&mut self.scoreboard).boundary(managers, subordinates);
        }
    }

    /// Panics with the full report if any monitor saw a violation. The
    /// access sanitizer's verdict (`REALM_SANITIZE=1`) is checked even
    /// when the rig itself is disabled: an undeclared wire access is a
    /// port-declaration bug regardless of whether protocol monitors run.
    pub fn assert_clean(&self, sim: &Sim) {
        let san = sim.sanitizer_violations();
        assert!(
            san.is_empty(),
            "access sanitizer recorded {} violation(s) ({} dropped beyond the cap):\n{}",
            san.len(),
            sim.sanitizer_violations_dropped(),
            san.iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("\n")
        );
        if self.enabled {
            ConformanceReport::collect(sim, &self.monitors, &self.scoreboard).assert_clean();
        }
    }
}

impl Default for MonitorRig {
    fn default() -> Self {
        Self::new()
    }
}

//! Reproduces **Table II**: the per-sub-block area coefficients of
//! AXI-REALM, and evaluates the model across the paper's parameter ranges.
//! The parameter-range evaluation fans out through the sweep harness; the
//! model is analytic, so every point reports `KernelStats::default()`.
//!
//! ```text
//! cargo run --release -p realm-bench --bin table2
//! ```

use axi_realm::area::{block_area_ge, AreaBreakdown, AreaParams, SUB_BLOCKS};
use axi_sim::KernelStats;
use realm_bench::{run_sweep, ExperimentReport, Row};

fn main() {
    // Analytic binary: no simulator is constructed, so gate on the
    // default Cheshire system explicitly (REALM_LINT=0 skips).
    cheshire_soc::startup_lint("table2");

    // Part 1: the coefficient matrix exactly as published.
    let mut coeffs = ExperimentReport::new(
        "Table II",
        "area coefficients of AXI-REALM's sub-blocks (GE per parameter unit, 1 GHz typical)",
    );
    for block in &SUB_BLOCKS {
        let co = block.coefficients;
        coeffs.push(Row::new(
            format!("{} [{}]", block.name, block.scope),
            vec![
                ("addr/bit", co.addr_width),
                ("data/bit", co.data_width),
                ("pending/elem", co.num_pending),
                ("depth/elem", co.buffer_depth),
                ("storage/kibit", co.storage_kibit),
                ("constant", co.constant),
            ],
        ));
    }
    coeffs.note("coefficients transcribed verbatim from the paper's Table II");
    coeffs.note("storage = buffer depth x data width; interpreted in kibit (see EXPERIMENTS.md)");
    print!("{}", coeffs.render());
    if let Err(e) = coeffs.write_json("results/table2_coefficients.json") {
        eprintln!("could not write results/table2_coefficients.json: {e}");
    }

    // Part 2: model evaluation across the published parameter ranges.
    let mut sweep = ExperimentReport::new(
        "Table II (evaluated)",
        "area model across the paper's parameter ranges (single unit + its config registers)",
    );
    let points = [
        ("32b/2pend/d2", 32, 32, 2, 2),
        ("32b/8pend/d8", 32, 32, 8, 8),
        ("48b/8pend/d16", 48, 48, 8, 16),
        ("64b/2pend/d2", 64, 64, 2, 2),
        ("64b/8pend/d16*", 64, 64, 8, 16), // the Cheshire point
        ("64b/16pend/d16", 64, 64, 16, 16),
    ];
    let labelled = points
        .iter()
        .map(|&(label, aw, dw, pending, depth)| {
            (
                label.to_owned(),
                AreaParams {
                    addr_width: aw,
                    data_width: dw,
                    num_pending: pending,
                    buffer_depth: depth,
                    num_regions: 2,
                    num_units: 1,
                    splitter_present: true,
                },
            )
        })
        .collect();
    let outcome = run_sweep(labelled, |&params| {
        (AreaBreakdown::evaluate(params), KernelStats::default())
    });
    for (b, rt) in outcome.results.iter().zip(&outcome.runtime) {
        sweep.push(Row::new(
            rt.label.clone(),
            vec![
                ("unit_kGE", b.units_ge() / 1000.0),
                ("cfg_kGE", b.config_ge() / 1000.0),
                ("total_kGE", b.total_ge() / 1000.0),
            ],
        ));
    }
    // Per-block detail at the Cheshire point.
    let cheshire = AreaBreakdown::evaluate(AreaParams::cheshire());
    for line in &cheshire.lines {
        sweep.push(Row::new(
            format!("  {}", line.block.name),
            vec![
                ("unit_kGE", line.per_instance_ge / 1000.0),
                ("cfg_kGE", line.instances),
                ("total_kGE", line.total_ge / 1000.0),
            ],
        ));
    }
    sweep.runtime = outcome.runtime_rows();
    sweep.note(
        "* Cheshire evaluation point (per-block rows: per-instance kGE, instance count, total kGE)",
    );
    sweep.note(format!(
        "Burst Splitter per-instance check: {:.1} GE at the Cheshire point",
        block_area_ge(&SUB_BLOCKS[6], &AreaParams::cheshire())
    ));
    print!("{}", sweep.render());
    if let Err(e) = sweep.write_json("results/table2_evaluated.json") {
        eprintln!("could not write results/table2_evaluated.json: {e}");
    }
    // Analytic binary: no simulator ran, so the registry is empty (see
    // table1).
    realm_bench::telemetry::maybe_export_registry("table2", &realm_telemetry::TelemetrySink::new());
}

//! Extension experiment: AXI-REALM over a row-buffer DRAM main memory.
//!
//! The paper claims the design is *"independent of the memory system's
//! architecture"* (§III). This experiment swaps the hot LLC for a
//! bank/row-aware DRAM model and re-runs the fragmentation sweep: the same
//! collapse-and-recovery shape must appear even though service latency is
//! now address-dependent.
//!
//! ```text
//! cargo run --release -p realm-bench --bin extension_dram
//! ```

use axi4::{Addr, SubordinateId, TxnId};
use axi_mem::{DramConfig, DramModel, MemoryConfig, MemoryModel};
use axi_realm::{DesignConfig, RealmUnit, RegionConfig, RuntimeConfig};
use axi_sim::{AxiBundle, BundleCapacity, KernelStats, Sim};
use axi_traffic::{CoreModel, CoreWorkload, DmaConfig, DmaModel};
use axi_xbar::{AddressMap, Crossbar};
use realm_bench::telemetry::maybe_export_registry;
use realm_bench::{point_row, run_sweep, ExperimentReport, MonitorRig, Row};
use realm_telemetry::TelemetrySink;

const DRAM_BASE: Addr = Addr::new(0x8000_0000);
const DRAM_SIZE: u64 = 16 << 20;
const SPM_BASE: Addr = Addr::new(0x1000_0000);
const SPM_SIZE: u64 = 1 << 20;

struct Outcome {
    cycles: u64,
    lat_mean: f64,
    lat_max: u64,
    row_hit_rate: f64,
    telemetry: TelemetrySink,
}

fn run(frag_len: Option<u16>, with_dma: bool) -> (Outcome, KernelStats) {
    let mut sim = Sim::new();
    let cap = BundleCapacity::uniform(4);

    let core_up = AxiBundle::new(sim.pool_mut(), cap);
    let core_down = AxiBundle::new(sim.pool_mut(), cap);
    let dram_port = AxiBundle::new(sim.pool_mut(), cap);
    let spm_port = AxiBundle::new(sim.pool_mut(), cap);

    let runtime = |frag: u16| {
        let mut rt = RuntimeConfig::open(2);
        rt.frag_len = frag;
        rt.regions[0] = RegionConfig {
            base: DRAM_BASE,
            size: DRAM_SIZE,
            budget_max: 0,
            period: 0,
        };
        rt
    };
    // The core always runs behind a pass-through unit (present in silicon).
    sim.add(
        RealmUnit::new(DesignConfig::cheshire(), runtime(256), core_up, core_down)
            .named("realm.core"),
    );

    let core = sim.add(CoreModel::new(
        CoreWorkload::susan(DRAM_BASE, 1_000),
        core_up,
    ));
    // The DMA path exists only in contended runs: an always-present unit
    // with no manager behind it would leave its upstream wires dangling
    // (realm-lint: wire-dangling).
    let dma_frag = frag_len.unwrap_or(256);
    let dma_ports = with_dma.then(|| {
        let dma_up = AxiBundle::new(sim.pool_mut(), cap);
        let dma_down = AxiBundle::new(sim.pool_mut(), cap);
        sim.add(
            RealmUnit::new(
                DesignConfig::cheshire(),
                runtime(dma_frag),
                dma_up,
                dma_down,
            )
            .named("realm.dma"),
        );
        let mut dma =
            DmaConfig::worst_case((DRAM_BASE + 0x80_0000, 0x8_0000), (SPM_BASE, SPM_SIZE));
        dma.id = TxnId::new(1);
        sim.add(DmaModel::new(dma, dma_up));
        (dma_up, dma_down)
    });

    let mut mgr_ports = vec![core_down];
    if let Some((_, dma_down)) = dma_ports {
        mgr_ports.push(dma_down);
    }
    let mut map = AddressMap::new();
    map.add(DRAM_BASE, DRAM_SIZE, SubordinateId::new(0))
        .expect("map");
    map.add(SPM_BASE, SPM_SIZE, SubordinateId::new(1))
        .expect("map");
    sim.add(Crossbar::new(map, mgr_ports, vec![dram_port, spm_port]).expect("ports"));
    let dram = sim.add(DramModel::new(
        DramConfig::ddr3(DRAM_BASE, DRAM_SIZE),
        dram_port,
    ));
    sim.add(MemoryModel::new(
        MemoryConfig::spm(SPM_BASE, SPM_SIZE),
        spm_port,
    ));

    let mut rig = MonitorRig::new();
    rig.port(&mut sim, "core", core_up);
    rig.port(&mut sim, "core.xbar", core_down);
    let mut boundary_mgrs = vec!["core.xbar"];
    if let Some((dma_up, dma_down)) = dma_ports {
        rig.port(&mut sim, "dma", dma_up);
        rig.port(&mut sim, "dma.xbar", dma_down);
        rig.link("dma", "dma.xbar");
        boundary_mgrs.push("dma.xbar");
    }
    rig.port(&mut sim, "dram", dram_port);
    rig.port(&mut sim, "spm", spm_port);
    rig.link("core", "core.xbar");
    rig.boundary(&boundary_mgrs, &["dram", "spm"]);

    // Elaboration-time analysis before the first cycle.
    if realm_lint::enabled_by_env() {
        let mut model = realm_lint::SystemModel::new()
            .window("dram", DRAM_BASE, DRAM_SIZE)
            .window("spm", SPM_BASE, SPM_SIZE)
            .bandwidth("dram", 8)
            .bandwidth("spm", 8)
            .id_space(15, if with_dma { 2 } else { 1 })
            .realm("realm.core", DesignConfig::cheshire(), runtime(256));
        if with_dma {
            model = model.realm("realm.dma", DesignConfig::cheshire(), runtime(dma_frag));
        }
        realm_lint::apply(
            "extension_dram",
            &realm_lint::analyze(&sim.topology(), &model),
        );
    }

    assert!(sim.run_until(100_000_000, |s| s
        .component::<CoreModel>(core)
        .unwrap()
        .is_done()));
    let c = sim.component::<CoreModel>(core).unwrap();
    let d = sim.component::<DramModel>(dram).unwrap();
    let outcome = Outcome {
        cycles: c.finished_at().expect("core done"),
        lat_mean: c.latency().mean().unwrap_or(0.0),
        lat_max: c.latency().max().unwrap_or(0),
        row_hit_rate: d.stats().hit_rate().unwrap_or(0.0),
        telemetry: sim.telemetry(),
    };
    rig.assert_clean(&sim);
    (outcome, sim.kernel_stats())
}

fn main() {
    let mut report = ExperimentReport::new(
        "Extension: DRAM",
        "fragmentation sweep over a row-buffer DRAM main memory (no LLC)",
    );
    let mut points: Vec<(String, (Option<u16>, bool))> = vec![
        ("single-source".to_owned(), (None, false)),
        ("no-reservation".to_owned(), (None, true)),
    ];
    points.extend([64u16, 16, 4, 1].map(|frag| (format!("frag={frag}"), (Some(frag), true))));
    let outcome = run_sweep(points, |&(frag, with_dma)| run(frag, with_dma));
    let base_cycles = outcome.results[0].cycles;
    let mut merged = TelemetrySink::new();
    for (o, rt) in outcome.results.iter().zip(&outcome.runtime) {
        report.push(Row::new(
            rt.label.clone(),
            vec![
                ("perf_pct", base_cycles as f64 / o.cycles as f64 * 100.0),
                ("lat_mean", o.lat_mean),
                ("lat_max", o.lat_max as f64),
                ("row_hit_pct", o.row_hit_rate * 100.0),
            ],
        ));
        report.telemetry.push(point_row(&rt.label, &o.telemetry));
        merged.merge(&o.telemetry);
    }
    report.runtime = outcome.runtime_rows();
    report.note("same qualitative shape as Fig. 6a despite address-dependent DRAM timing");
    report.note("REALM itself is untouched: only the downstream memory model changed");
    report.note(
        "insight: on DRAM the optimum granularity is >1 beat — single-beat interleaving \
         thrashes the row buffer, so frag=4 beats frag=1",
    );
    print!("{}", report.render());
    println!("{}", outcome.summary("extension_dram"));
    if let Err(e) = report.write_json("results/extension_dram.json") {
        eprintln!("could not write results/extension_dram.json: {e}");
    }
    maybe_export_registry("extension_dram", &merged);
}

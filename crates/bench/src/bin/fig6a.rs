//! Reproduces **Fig. 6a**: Susan-on-CVA6 performance under DSA-DMA
//! contention at varying transfer fragmentation, plus the *single-source*
//! and *without reservation* baselines, and the worst-case memory access
//! latency the section reports (264 → below ten cycles).
//!
//! All eleven points run through the parallel sweep harness; results are
//! bit-identical to the old serial loop (set `REALM_SWEEP_THREADS=1` to
//! check). Wall-clock and kernel throughput land in `BENCH_kernel.json` at
//! the repo root; the deterministic kernel counters go into the report's
//! `runtime` section.
//!
//! ```text
//! cargo run --release -p realm-bench --bin fig6a
//! ```

use cheshire_soc::experiments::{
    fragmentation_sweep_points, llc_regulation, single_source, with_fragmentation,
    without_reservation, DEFAULT_ACCESSES, MAX_CYCLES,
};
use cheshire_soc::{Regulation, RunResult, Testbench, TestbenchConfig};
use realm_bench::telemetry::{maybe_export_registry, maybe_export_trace};
use realm_bench::{point_row, run_sweep, ExperimentReport, Row};
use realm_telemetry::TelemetrySink;

/// One sweep point of Fig. 6a.
enum Point {
    Single,
    NoReservation,
    Frag(u16),
}

fn row(label: &str, r: &RunResult, base: &RunResult) -> Row {
    Row::new(
        label,
        vec![
            ("perf_pct", r.performance_pct(base)),
            ("exec_cycles", r.cycles as f64),
            ("lat_min", r.core_latency.min().unwrap_or(0) as f64),
            ("lat_mean", r.core_latency.mean().unwrap_or(0.0)),
            ("lat_max", r.core_latency.max().unwrap_or(0) as f64),
            (
                "lat_p99_bound",
                r.core_histogram.percentile_bound(0.99).unwrap_or(0) as f64,
            ),
        ],
    )
}

fn main() {
    let accesses = DEFAULT_ACCESSES;
    let mut points = vec![
        ("single-source".to_owned(), Point::Single),
        ("no-reservation".to_owned(), Point::NoReservation),
    ];
    points.extend(
        fragmentation_sweep_points()
            .into_iter()
            .map(|frag| (format!("frag={frag}"), Point::Frag(frag))),
    );

    let outcome = run_sweep(points, |point| {
        let r = match point {
            Point::Single => single_source(accesses),
            Point::NoReservation => without_reservation(accesses),
            Point::Frag(frag) => with_fragmentation(*frag, accesses),
        };
        let kernel = r.kernel;
        (r, kernel)
    });

    let mut report = ExperimentReport::new(
        "Fig. 6a",
        "core performance vs. DMA burst fragmentation (equal budgets, very large period)",
    );
    let base = &outcome.results[0];
    for (r, rt) in outcome.results.iter().zip(&outcome.runtime) {
        report.push(row(&rt.label, r, base));
    }
    report.runtime = outcome.runtime_rows();
    report.telemetry = outcome
        .results
        .iter()
        .zip(&outcome.runtime)
        .map(|(r, rt)| point_row(&rt.label, &r.telemetry))
        .collect();

    report
        .note("paper: without reservation <0.7 % of single-source, min access latency 264 cycles");
    report.note("paper: frag=1 restores 68.2 % of single-source, latency <10 cycles (2 above single-source)");
    report.note("shape to check: perf rises monotonically as fragmentation shrinks 256 -> 1");

    print!("{}", report.render());
    print!("{}", report.render_chart("perf_pct", 50));
    println!("{}", outcome.summary("fig6a"));
    if let Err(e) = report.write_json("results/fig6a.json") {
        eprintln!("could not write results/fig6a.json: {e}");
    }

    // Full-registry dump (REALM_TELEMETRY=1) of the whole sweep.
    let mut merged = TelemetrySink::new();
    for r in &outcome.results {
        merged.merge(&r.telemetry);
    }
    maybe_export_registry("fig6a", &merged);

    // Trace-demo and kernel self-profile run: a skewed-budget shape
    // (frag=1, period 1000, DMA at 1/5 of the core's budget) exercises
    // budget exhaustion and isolation, so an armed REALM_TRACE yields
    // per-manager transaction spans plus budget-exhausted instants. The
    // same run supplies the island partition and the per-component kernel
    // profile for BENCH_kernel.json; none of its numbers enter
    // results/fig6a.json.
    let mut cfg = TestbenchConfig::single_source(accesses);
    cfg.dma = Some(TestbenchConfig::worst_case_dma());
    cfg.core_regulation = Regulation::Realm(llc_regulation(1, 8 * 1024, 1000));
    cfg.dma_regulation = Regulation::Realm(llc_regulation(1, 8 * 1024 / 5, 1000));
    let mut tb = Testbench::new(cfg);
    let partition = tb.partition();
    assert!(
        tb.run_until_core_done(MAX_CYCLES),
        "trace-demo run exceeded {MAX_CYCLES} cycles"
    );
    maybe_export_trace(&tb.telemetry());
    if let Err(e) = outcome.write_kernel_baseline_full(
        "BENCH_kernel.json",
        "fig6a",
        Some(&partition),
        Some(&tb.sim().profile()),
    ) {
        eprintln!("could not write BENCH_kernel.json: {e}");
    }
}

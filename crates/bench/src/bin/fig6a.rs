//! Reproduces **Fig. 6a**: Susan-on-CVA6 performance under DSA-DMA
//! contention at varying transfer fragmentation, plus the *single-source*
//! and *without reservation* baselines, and the worst-case memory access
//! latency the section reports (264 → below ten cycles).
//!
//! ```text
//! cargo run --release -p realm-bench --bin fig6a
//! ```

use cheshire_soc::experiments::{
    fragmentation_sweep_points, single_source, with_fragmentation, without_reservation,
    DEFAULT_ACCESSES,
};
use cheshire_soc::RunResult;
use realm_bench::{ExperimentReport, Row};

fn row(label: &str, r: &RunResult, base: &RunResult) -> Row {
    Row::new(
        label,
        vec![
            ("perf_pct", r.performance_pct(base)),
            ("exec_cycles", r.cycles as f64),
            ("lat_min", r.core_latency.min().unwrap_or(0) as f64),
            ("lat_mean", r.core_latency.mean().unwrap_or(0.0)),
            ("lat_max", r.core_latency.max().unwrap_or(0) as f64),
            ("lat_p99_bound", r.core_histogram.percentile_bound(0.99).unwrap_or(0) as f64),
        ],
    )
}

fn main() {
    let accesses = DEFAULT_ACCESSES;
    let mut report = ExperimentReport::new(
        "Fig. 6a",
        "core performance vs. DMA burst fragmentation (equal budgets, very large period)",
    );

    let base = single_source(accesses);
    report.push(row("single-source", &base, &base));

    let worst = without_reservation(accesses);
    report.push(row("no-reservation", &worst, &base));

    for frag in fragmentation_sweep_points() {
        let r = with_fragmentation(frag, accesses);
        report.push(row(&format!("frag={frag}"), &r, &base));
    }

    report.note("paper: without reservation <0.7 % of single-source, min access latency 264 cycles");
    report.note("paper: frag=1 restores 68.2 % of single-source, latency <10 cycles (2 above single-source)");
    report.note("shape to check: perf rises monotonically as fragmentation shrinks 256 -> 1");

    print!("{}", report.render());
    print!("{}", report.render_chart("perf_pct", 50));
    if let Err(e) = report.write_json("results/fig6a.json") {
        eprintln!("could not write results/fig6a.json: {e}");
    }
}

//! CI gate: runs the elaboration-time analyzer (realm-lint Pass A) and
//! the static dependence analysis (Pass C) over every experiment
//! configuration the suite ships and writes a combined machine-readable
//! report, including each system's island partition and evaluation
//! schedule.
//!
//! ```text
//! cargo run --release -p realm-bench --bin lint_gate [-- OUTPUT.json]
//! ```
//!
//! One labeled entry per experiment family; exits 1 if any configuration
//! carries an error-severity finding (warnings — e.g. the deliberate
//! Fig. 6b over-subscription — are recorded but do not fail the gate).

use std::process::ExitCode;

use axi4::Addr;
use axi_traffic::StallPlan;
use cheshire_soc::{experiments, Regulation, Testbench, TestbenchConfig, LLC_BASE};

/// The experiment configurations of the suite's ten binaries, as
/// testbench configs (the hand-built extension binaries additionally gate
/// their own bespoke topologies at startup).
fn configs() -> Vec<(&'static str, TestbenchConfig)> {
    let contended = |core_reg: Regulation, dma_reg: Regulation| {
        let mut cfg = TestbenchConfig::single_source(1);
        cfg.dma = Some(TestbenchConfig::worst_case_dma());
        cfg.core_regulation = core_reg;
        cfg.dma_regulation = dma_reg;
        cfg.monitors = false; // construction-only: nothing runs
        cfg
    };
    let open = || Regulation::Realm(experiments::llc_regulation(256, 0, 0));

    let mut out = Vec::new();
    // fig6a: single-source baseline, uncontrolled contention, finest
    // fragmentation.
    let mut single = TestbenchConfig::single_source(1);
    single.core_regulation = open();
    single.monitors = false;
    out.push(("fig6a-single-source", single));
    out.push(("fig6a-no-reservation", contended(open(), open())));
    out.push((
        "fig6a-frag1",
        contended(
            Regulation::Realm(experiments::llc_regulation(1, 0, 0)),
            Regulation::Realm(experiments::llc_regulation(1, 0, 0)),
        ),
    ));
    // fig6b: the paper's budget split (deliberately over-subscribed:
    // expect budget warnings in the artifact, zero errors).
    out.push((
        "fig6b-budget",
        contended(
            Regulation::Realm(experiments::llc_regulation(1, 8 * 1024, 1000)),
            Regulation::Realm(experiments::llc_regulation(1, 8 * 1024, 1000)),
        ),
    ));
    // timeline: tight DMA budget showing isolation duty cycles.
    out.push((
        "timeline",
        contended(
            Regulation::Realm(experiments::llc_regulation(256, 0, 0)),
            Regulation::Realm(experiments::llc_regulation(1, 1024, 1000)),
        ),
    ));
    // ablations: throttling unit enabled on the DMA.
    let mut throttled = experiments::llc_regulation(1, 4 * 1024, 1000);
    throttled.throttle = true;
    out.push((
        "ablations-throttle",
        contended(open(), Regulation::Realm(throttled)),
    ));
    // design_space: smaller hardware point (fewer pending, shallow buffer).
    let mut small = contended(open(), open());
    small.realm_design.num_pending = 2;
    small.realm_design.write_buffer_depth = 4;
    out.push(("design_space-small", small));
    // related_work / DoS leg: stalling writer behind a regulated unit.
    let mut dos = TestbenchConfig::single_source(1);
    dos.core_regulation = open();
    dos.staller = Some(StallPlan::forever(Addr::new(LLC_BASE.raw() + 0x20_0000)));
    dos.staller_regulation = Regulation::Realm(experiments::llc_regulation(1, 0, 0));
    dos.monitors = false;
    out.push(("related_work-dos", dos));
    // table1 / table2: the analytic binaries gate on the default system.
    out.push(("table1-default-system", contended(open(), open())));
    out.push(("table2-default-system", contended(open(), open())));
    out
}

fn main() -> ExitCode {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "results/lint_gate.json".to_owned());

    let mut entries = Vec::new();
    let mut total_errors = 0usize;
    for (name, cfg) in configs() {
        // The constructor itself gates (and would panic on errors) unless
        // REALM_LINT=0; collect the report explicitly so the artifact is
        // written either way.
        let tb = Testbench::new(cfg);
        let report = tb.lint_report();
        let partition = tb.partition();
        total_errors += report.error_count();
        println!(
            "lint_gate: {name}: {} error(s), {} warning(s); {} island(s), \
             largest {}, schedule depth {}",
            report.error_count(),
            report.warning_count(),
            partition.island_count(),
            partition.largest_island(),
            partition.depth
        );
        entries.push(format!(
            "{{\"system\":\"{name}\",\"report\":{},\"partition\":{}}}",
            report.to_json(),
            partition.to_json()
        ));
    }

    let json = format!("{{\"systems\":[{}]}}", entries.join(","));
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("lint_gate: cannot write {out_path}: {e}");
        return ExitCode::from(2);
    }
    println!("lint_gate: wrote {out_path}");

    if total_errors == 0 {
        println!("lint_gate: all experiment configurations analyzer-clean");
        ExitCode::SUCCESS
    } else {
        println!("lint_gate: {total_errors} error(s) across configurations");
        ExitCode::FAILURE
    }
}

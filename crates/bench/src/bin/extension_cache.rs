//! Extension experiment: the full memory hierarchy — a real set-associative
//! write-back LLC in front of row-buffer DRAM — replacing the paper's
//! hot-LLC approximation.
//!
//! The paper measures with a hot LLC ("accesses by CVA6 take at most eight
//! cycles ... assuming the LLC is hot"). Here the cache actually warms up:
//! the core's working set must fit, the DMA's streaming traffic thrashes
//! capacity, and REALM's fragmentation still restores the core — now with
//! measured hit rates instead of an assumption.
//!
//! ```text
//! cargo run --release -p realm-bench --bin extension_cache
//! ```

use axi4::{Addr, SubordinateId, TxnId};
use axi_mem::{CacheConfig, CacheModel, DramConfig, DramModel, MemoryConfig, MemoryModel};
use axi_realm::{DesignConfig, RealmUnit, RegionConfig, RuntimeConfig};
use axi_sim::{AxiBundle, BundleCapacity, KernelStats, Sim};
use axi_traffic::{CoreModel, CoreWorkload, DmaConfig, DmaModel};
use axi_xbar::{AddressMap, Crossbar};
use realm_bench::telemetry::maybe_export_registry;
use realm_bench::{point_row, run_sweep, ExperimentReport, MonitorRig, Row};
use realm_telemetry::TelemetrySink;

const MEM_BASE: Addr = Addr::new(0x8000_0000);
const MEM_SIZE: u64 = 16 << 20;
const SPM_BASE: Addr = Addr::new(0x1000_0000);
const SPM_SIZE: u64 = 1 << 20;

struct Outcome {
    cycles: u64,
    lat_mean: f64,
    hit_rate: f64,
    writebacks: u64,
    telemetry: TelemetrySink,
}

fn run(frag_len: Option<u16>, with_dma: bool) -> (Outcome, KernelStats) {
    let mut sim = Sim::new();
    let cap = BundleCapacity::uniform(4);

    let core_up = AxiBundle::new(sim.pool_mut(), cap);
    let core_down = AxiBundle::new(sim.pool_mut(), cap);
    let cache_front = AxiBundle::new(sim.pool_mut(), cap);
    let cache_back = AxiBundle::new(sim.pool_mut(), cap);
    let spm_port = AxiBundle::new(sim.pool_mut(), cap);

    let runtime = |frag: u16| {
        let mut rt = RuntimeConfig::open(2);
        rt.frag_len = frag;
        rt.regions[0] = RegionConfig {
            base: MEM_BASE,
            size: MEM_SIZE,
            budget_max: 0,
            period: 0,
        };
        rt
    };
    sim.add(
        RealmUnit::new(DesignConfig::cheshire(), runtime(256), core_up, core_down)
            .named("realm.core"),
    );

    // Core working set (64 KiB) fits the 128 KiB LLC.
    let core = sim.add(CoreModel::new(
        CoreWorkload::susan(MEM_BASE, 2_000),
        core_up,
    ));
    // The DMA path (manager, REALM unit, crossbar port) exists only in
    // contended runs — an always-present unit with no manager behind it
    // would leave its upstream wires dangling (realm-lint: wire-dangling).
    let dma_frag = frag_len.unwrap_or(256);
    let dma_ports = with_dma.then(|| {
        let dma_up = AxiBundle::new(sim.pool_mut(), cap);
        let dma_down = AxiBundle::new(sim.pool_mut(), cap);
        sim.add(
            RealmUnit::new(
                DesignConfig::cheshire(),
                runtime(dma_frag),
                dma_up,
                dma_down,
            )
            .named("realm.dma"),
        );
        let mut dma = DmaConfig::worst_case((MEM_BASE + 0x80_0000, 0x8_0000), (SPM_BASE, SPM_SIZE));
        dma.id = TxnId::new(1);
        sim.add(DmaModel::new(dma, dma_up));
        (dma_up, dma_down)
    });

    let mut mgr_ports = vec![core_down];
    if let Some((_, dma_down)) = dma_ports {
        mgr_ports.push(dma_down);
    }
    let mut map = AddressMap::new();
    map.add(MEM_BASE, MEM_SIZE, SubordinateId::new(0))
        .expect("map");
    map.add(SPM_BASE, SPM_SIZE, SubordinateId::new(1))
        .expect("map");
    sim.add(Crossbar::new(map, mgr_ports, vec![cache_front, spm_port]).expect("ports"));
    let cache = sim.add(CacheModel::new(
        CacheConfig::llc(MEM_BASE, MEM_SIZE),
        cache_front,
        cache_back,
    ));
    sim.add(DramModel::new(
        DramConfig::ddr3(MEM_BASE, MEM_SIZE),
        cache_back,
    ));
    sim.add(MemoryModel::new(
        MemoryConfig::spm(SPM_BASE, SPM_SIZE),
        spm_port,
    ));

    // Protocol monitors on every port. The cache is intentionally not a
    // scoreboard link: hits absorb traffic and writebacks create it, so
    // only its two ports' own protocol rules apply.
    let mut rig = MonitorRig::new();
    rig.port(&mut sim, "core", core_up);
    rig.port(&mut sim, "core.xbar", core_down);
    let mut boundary_mgrs = vec!["core.xbar"];
    if let Some((dma_up, dma_down)) = dma_ports {
        rig.port(&mut sim, "dma", dma_up);
        rig.port(&mut sim, "dma.xbar", dma_down);
        rig.link("dma", "dma.xbar");
        boundary_mgrs.push("dma.xbar");
    }
    rig.port(&mut sim, "llc", cache_front);
    rig.port(&mut sim, "dram", cache_back);
    rig.port(&mut sim, "spm", spm_port);
    rig.link("core", "core.xbar");
    rig.boundary(&boundary_mgrs, &["llc", "spm"]);

    // Elaboration-time analysis before the first cycle.
    if realm_lint::enabled_by_env() {
        let mut model = realm_lint::SystemModel::new()
            .window("llc", MEM_BASE, MEM_SIZE)
            .window("spm", SPM_BASE, SPM_SIZE)
            .bandwidth("llc", 8)
            .bandwidth("spm", 8)
            .id_space(15, if with_dma { 2 } else { 1 })
            .realm("realm.core", DesignConfig::cheshire(), runtime(256));
        if with_dma {
            model = model.realm("realm.dma", DesignConfig::cheshire(), runtime(dma_frag));
        }
        realm_lint::apply(
            "extension_cache",
            &realm_lint::analyze(&sim.topology(), &model),
        );
    }

    assert!(sim.run_until(200_000_000, |s| s
        .component::<CoreModel>(core)
        .unwrap()
        .is_done()));
    let c = sim.component::<CoreModel>(core).unwrap();
    let k = sim.component::<CacheModel>(cache).unwrap();
    let outcome = Outcome {
        cycles: c.finished_at().expect("core done"),
        lat_mean: c.latency().mean().unwrap_or(0.0),
        hit_rate: k.stats().hit_rate().unwrap_or(0.0),
        writebacks: k.stats().writebacks,
        telemetry: sim.telemetry(),
    };
    rig.assert_clean(&sim);
    (outcome, sim.kernel_stats())
}

fn main() {
    let mut report = ExperimentReport::new(
        "Extension: cache",
        "fragmentation sweep with a real write-back LLC over DRAM (no hot-cache assumption)",
    );
    let mut points: Vec<(String, (Option<u16>, bool))> = vec![
        ("single-source".to_owned(), (None, false)),
        ("no-reservation".to_owned(), (None, true)),
    ];
    points.extend([16u16, 4, 1].map(|frag| (format!("frag={frag}"), (Some(frag), true))));
    let outcome = run_sweep(points, |&(frag, with_dma)| run(frag, with_dma));
    let base_cycles = outcome.results[0].cycles;
    let mut merged = TelemetrySink::new();
    for (o, rt) in outcome.results.iter().zip(&outcome.runtime) {
        report.push(Row::new(
            rt.label.clone(),
            vec![
                ("perf_pct", base_cycles as f64 / o.cycles as f64 * 100.0),
                ("lat_mean", o.lat_mean),
                ("llc_hit_pct", o.hit_rate * 100.0),
                ("writebacks", o.writebacks as f64),
            ],
        ));
        report.telemetry.push(point_row(&rt.label, &o.telemetry));
        merged.merge(&o.telemetry);
    }
    report.runtime = outcome.runtime_rows();
    report.note("the core's 64 KiB working set fits the 128 KiB LLC: hits dominate once warm");
    report.note("the DMA streams 512 KiB through the same cache, evicting the core's lines");
    report.note("REALM recovers the core even though contention now includes capacity misses");
    print!("{}", report.render());
    println!("{}", outcome.summary("extension_cache"));
    if let Err(e) = report.write_json("results/extension_cache.json") {
        eprintln!("could not write results/extension_cache.json: {e}");
    }
    maybe_export_registry("extension_cache", &merged);
}

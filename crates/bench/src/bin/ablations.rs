//! Ablations of the design choices §III calls out: the write buffer under
//! a stalling writer, the throttling unit, and splitter bypass for
//! single-word managers. Each ablation's two variants run as one parallel
//! sweep.
//!
//! ```text
//! cargo run --release -p realm-bench --bin ablations
//! ```

use axi_traffic::StallPlan;
use cheshire_soc::experiments::llc_regulation;
use cheshire_soc::{Regulation, Testbench, TestbenchConfig, LLC_BASE};
use realm_bench::telemetry::maybe_export_registry;
use realm_bench::{point_row, run_sweep, ExperimentReport, Row};
use realm_telemetry::TelemetrySink;

/// Write-buffer ablation: core progress with a stalling writer present,
/// with and without a REALM unit in front of the attacker. Returns the
/// report plus the merged telemetry registry of both variants.
fn dos_ablation() -> (ExperimentReport, TelemetrySink) {
    let mut report = ExperimentReport::new(
        "Ablation A",
        "write buffer vs. stalling-writer DoS (400 core accesses, 2M-cycle cap)",
    );
    let points = vec![
        ("unprotected".to_owned(), false),
        ("write-buffer".to_owned(), true),
    ];
    let outcome = run_sweep(points, |&protected| {
        let mut cfg = TestbenchConfig::single_source(400);
        cfg.staller = Some(StallPlan::forever(LLC_BASE + 0x10_0000));
        if protected {
            cfg.staller_regulation = Regulation::Realm(llc_regulation(16, 0, 0));
        }
        let mut tb = Testbench::new(cfg);
        let finished = tb.run_until_core_done(2_000_000);
        tb.assert_conformance();
        let accesses = tb.core().completed_accesses();
        let w_stalls = tb.xbar().w_stall_cycles(0);
        (
            (finished, accesses, w_stalls, tb.telemetry()),
            tb.sim().kernel_stats(),
        )
    });
    let mut merged = TelemetrySink::new();
    for ((finished, accesses, w_stalls, telemetry), rt) in
        outcome.results.iter().zip(&outcome.runtime)
    {
        report.push(Row::new(
            rt.label.clone(),
            vec![
                ("core_done", f64::from(u8::from(*finished))),
                ("accesses", *accesses as f64),
                ("w_stall_cycles", *w_stalls as f64),
            ],
        ));
        report.telemetry.push(point_row(&rt.label, telemetry));
        merged.merge(telemetry);
    }
    report.runtime = outcome.runtime_rows();
    report.note("paper §III-A: the buffer forwards AW and W only once the data is fully contained");
    report.note(
        "shape to check: unprotected run never finishes; protected run completes with ~0 W stalls",
    );
    (report, merged)
}

/// Throttle ablation: outstanding-transaction scaling as the budget drains.
fn throttle_ablation() -> (ExperimentReport, TelemetrySink) {
    let mut report = ExperimentReport::new(
        "Ablation B",
        "throttling unit: worst-case core latency with and without budget-aware backpressure",
    );
    let points = vec![
        ("no-throttle".to_owned(), false),
        ("throttle".to_owned(), true),
    ];
    let outcome = run_sweep(points, |&throttle| {
        let mut cfg = TestbenchConfig::single_source(1_000);
        cfg.dma = Some(TestbenchConfig::worst_case_dma());
        let mut core_rt = llc_regulation(256, 0, 0);
        core_rt.frag_len = 1;
        cfg.core_regulation = Regulation::Realm(core_rt);
        let mut dma_rt = llc_regulation(1, 4096, 1000);
        dma_rt.throttle = throttle;
        cfg.dma_regulation = Regulation::Realm(dma_rt);
        let mut tb = Testbench::new(cfg);
        assert!(tb.run_until_core_done(50_000_000));
        tb.assert_conformance();
        let r = tb.result();
        let kernel = r.kernel;
        (r, kernel)
    });
    let mut merged = TelemetrySink::new();
    for (r, rt) in outcome.results.iter().zip(&outcome.runtime) {
        report.push(Row::new(
            rt.label.clone(),
            vec![
                ("exec_cycles", r.cycles as f64),
                ("lat_mean", r.core_latency.mean().unwrap_or(0.0)),
                ("lat_max", r.core_latency.max().unwrap_or(0) as f64),
                ("dma_Bpercyc", r.dma_bytes as f64 / r.cycles as f64),
            ],
        ));
        report.telemetry.push(point_row(&rt.label, &r.telemetry));
        merged.merge(&r.telemetry);
    }
    report.runtime = outcome.runtime_rows();
    report.note("throttling modulates backpressure before the budget expires (paper Fig. 4)");
    (report, merged)
}

/// Splitter-bypass ablation: a single-word manager needs no splitter; the
/// design-time option removes its area without changing behaviour.
fn splitter_ablation() -> (ExperimentReport, TelemetrySink) {
    use axi_realm::area::{AreaBreakdown, AreaParams};
    let mut report = ExperimentReport::new(
        "Ablation C",
        "splitter omitted for single-word managers: identical timing, smaller unit",
    );
    let points = vec![
        ("with-splitter".to_owned(), true),
        ("no-splitter".to_owned(), false),
    ];
    let outcome = run_sweep(points, |&present| {
        let mut cfg = TestbenchConfig::single_source(1_000);
        let mut design = axi_realm::DesignConfig::cheshire();
        design.splitter_present = present;
        cfg.realm_design = design;
        cfg.core_regulation = Regulation::Realm(llc_regulation(256, 0, 0));
        let mut tb = Testbench::new(cfg);
        assert!(tb.run_until_core_done(10_000_000));
        tb.assert_conformance();
        let r = tb.result();
        let kernel = r.kernel;
        (r, kernel)
    });
    let mut merged = TelemetrySink::new();
    for ((r, rt), present) in outcome
        .results
        .iter()
        .zip(&outcome.runtime)
        .zip([true, false])
    {
        let mut params = AreaParams::cheshire();
        params.num_units = 1;
        params.splitter_present = present;
        let area = AreaBreakdown::evaluate(params);
        report.push(Row::new(
            rt.label.clone(),
            vec![
                ("exec_cycles", r.cycles as f64),
                ("lat_max", r.core_latency.max().unwrap_or(0) as f64),
                ("unit_kGE", area.units_ge() / 1000.0),
            ],
        ));
        report.telemetry.push(point_row(&rt.label, &r.telemetry));
        merged.merge(&r.telemetry);
    }
    report.runtime = outcome.runtime_rows();
    report.note(
        "paper §III-A: the splitter can be disabled at design time to reduce the area footprint",
    );
    report.note("shape to check: identical cycles/latency, smaller unit area");
    (report, merged)
}

fn main() {
    for ((report, telemetry), name, path) in [
        (dos_ablation(), "ablation_dos", "results/ablation_dos.json"),
        (
            throttle_ablation(),
            "ablation_throttle",
            "results/ablation_throttle.json",
        ),
        (
            splitter_ablation(),
            "ablation_splitter",
            "results/ablation_splitter.json",
        ),
    ] {
        print!("{}", report.render());
        println!();
        if let Err(e) = report.write_json(path) {
            eprintln!("could not write {path}: {e}");
        }
        // Three reports share one process; each gets its own registry dump
        // (the REALM_TRACE path would be overwritten thrice, so traces are
        // fig6a/timeline territory).
        maybe_export_registry(name, &telemetry);
    }
}

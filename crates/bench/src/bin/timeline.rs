//! Time-resolved view of budget regulation: per-window core latency, DMA
//! duty cycle, and isolation, sampled over consecutive reservation periods.
//!
//! This is the observability story of §III-A as a time series: the budget's
//! duty cycle is directly visible, as is the core's latency dropping the
//! instant the DMA's budget runs dry each period. The run is inherently
//! sequential (each window continues the same simulator), so it enters the
//! sweep harness as a single point — for uniform kernel-counter reporting,
//! not parallelism.
//!
//! ```text
//! cargo run --release -p realm-bench --bin timeline
//! ```

use cheshire_soc::experiments::llc_regulation;
use cheshire_soc::{Regulation, Testbench, TestbenchConfig};
use realm_bench::{maybe_export, point_row, run_sweep, ExperimentReport, Row};

fn main() {
    const PERIOD: u64 = 1_000;
    const DMA_BUDGET: u64 = 2 * 1024; // ~25 % duty cycle

    let outcome = run_sweep(vec![("timeline".to_owned(), ())], |()| {
        let mut cfg = TestbenchConfig::single_source(u64::MAX / 2);
        cfg.dma = Some(TestbenchConfig::worst_case_dma());
        cfg.core_regulation = Regulation::Realm(llc_regulation(256, 0, 0));
        cfg.dma_regulation = Regulation::Realm(llc_regulation(1, DMA_BUDGET, PERIOD));
        let mut tb = Testbench::new(cfg);
        tb.run(2 * PERIOD); // warm up past the first periods

        let timeline = tb.run_timeline(16, PERIOD / 4); // 4 samples per period
        tb.assert_conformance();
        let kernel = tb.sim().kernel_stats();
        ((timeline, tb.telemetry()), kernel)
    });
    let (timeline, telemetry) = &outcome.results[0];

    let mut report = ExperimentReport::new(
        "Timeline",
        format!("quarter-period samples (DMA budget {DMA_BUDGET} B / {PERIOD} cycles)"),
    );
    for s in &timeline.samples {
        report.push(Row::new(
            format!("@{}", s.cycle),
            vec![
                ("core_acc", s.core_accesses as f64),
                ("core_lat", s.core_mean_latency.unwrap_or(0.0)),
                ("dma_reg_B", s.dma_regulated_bytes as f64),
                ("isolated_cyc", s.dma_isolated_cycles as f64),
            ],
        ));
    }
    report.runtime = outcome.runtime_rows();
    report.telemetry = vec![point_row("timeline", telemetry)];
    report.note("dma_reg_B concentrates in the first quarter of each period (budget duty cycle)");
    report.note("core_lat falls once the DMA budget is spent; isolation fills the remainder");
    print!("{}", report.render());
    print!("{}", report.render_chart("dma_reg_B", 40));
    print!("{}", report.render_chart("core_lat", 40));
    if let Err(e) = report.write_json("results/timeline.json") {
        eprintln!("could not write results/timeline.json: {e}");
    }
    // A single sequential run, so its trace is coherent: the only binary
    // besides fig6a that honours REALM_TRACE.
    maybe_export("timeline", telemetry);
}

//! Coverage-guided fuzzing campaign with the differential bandwidth-bound
//! oracle, executed on the parallel sweep workers.
//!
//! The campaign driver ([`realm_fuzz::Campaign`]) is a deterministic batch
//! state machine: it schedules a batch of specs, this binary fans the batch
//! out through `run_sweep` (results return in input order, so the
//! trajectory is bit-identical to a serial run), and feeds the outcomes
//! back. Seeds come from `tests/corpus/*.txt` when present, so every key
//! in the checked-in coverage baseline is reachable in round 0 regardless
//! of the time box.
//!
//! Environment knobs:
//!
//! - `REALM_FUZZ_SECONDS` — wall-clock box for mutation rounds (default 5;
//!   round 0 always runs).
//! - `REALM_FUZZ_SEED` — campaign master seed (default `0xF0CC`).
//! - `REALM_FUZZ_BATCH` — specs per mutation round (default 16).
//! - `REALM_SWEEP_THREADS` — worker count (default: all cores).
//! - `REALM_FUZZ_WRITE_BASELINE=1` — rewrite
//!   `tests/corpus/coverage_baseline.txt` from this run's round-0 coverage
//!   and exit (use after adding corpus entries).
//!
//! Writes `results/fuzz_campaign.json` and exits nonzero on any oracle
//! violation, conformance violation, unfinished run, or baseline coverage
//! key this campaign failed to reach.
//!
//! ```text
//! cargo run --release -p realm-bench --bin fuzz_campaign
//! ```

use std::collections::BTreeSet;
use std::time::{Duration, Instant};

use realm_bench::json::Json;
use realm_bench::run_sweep;
use realm_fuzz::{Campaign, CampaignConfig, SystemSpec};

const CORPUS_DIR: &str = "tests/corpus";
const BASELINE_PATH: &str = "tests/corpus/coverage_baseline.txt";
const RESULTS_PATH: &str = "results/fuzz_campaign.json";

fn env_u64(key: &str, default: u64) -> u64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Corpus seeds, sorted by file name for a deterministic round 0; the
/// built-in baselines when the corpus directory is missing or empty.
fn load_seeds() -> Vec<(String, SystemSpec)> {
    let mut entries: Vec<(String, SystemSpec)> = Vec::new();
    if let Ok(dir) = std::fs::read_dir(CORPUS_DIR) {
        let mut paths: Vec<_> = dir
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| {
                p.extension().is_some_and(|e| e == "txt")
                    && p.file_name().is_some_and(|n| n != "coverage_baseline.txt")
            })
            .collect();
        paths.sort();
        for path in paths {
            let name = path.file_name().unwrap().to_string_lossy().into_owned();
            let text = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
            let spec = SystemSpec::parse(&text)
                .unwrap_or_else(|e| panic!("parse {}: {e}", path.display()));
            entries.push((name, spec));
        }
    }
    if entries.is_empty() {
        entries = [0xA11CE_u64, 0xB0B, 0xC0FFEE]
            .iter()
            .map(|&s| (format!("builtin-{s:#x}"), SystemSpec::baseline(s)))
            .collect();
    }
    entries
}

/// Baseline coverage keys (one per line, `#` comments), if checked in.
fn load_baseline() -> Option<BTreeSet<String>> {
    let text = std::fs::read_to_string(BASELINE_PATH).ok()?;
    Some(
        text.lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
            .map(str::to_owned)
            .collect(),
    )
}

fn int(v: u64) -> Json {
    Json::Int(v as i64)
}

fn main() {
    let seconds = std::env::var("REALM_FUZZ_SECONDS")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(5.0);
    let cfg = CampaignConfig {
        seed: env_u64("REALM_FUZZ_SEED", 0xF0CC),
        batch: env_u64("REALM_FUZZ_BATCH", 16) as usize,
        guided: true,
    };

    let seeds = load_seeds();
    println!(
        "fuzz-campaign: {} seeds ({}), batch {}, seed {:#x}, {seconds}s box",
        seeds.len(),
        seeds
            .iter()
            .map(|(n, _)| n.as_str())
            .collect::<Vec<_>>()
            .join(", "),
        cfg.batch,
        cfg.seed,
    );

    let mut campaign = Campaign::new(cfg.clone(), seeds.iter().map(|(_, s)| s.clone()).collect());
    let start = Instant::now();
    let deadline = Duration::from_secs_f64(seconds);
    let mut threads = 1usize;
    let _ = threads;
    let mut round0_keys: BTreeSet<String> = BTreeSet::new();

    // Round 0 (the seeds) always runs; mutation rounds fill the time box.
    loop {
        let batch = campaign.next_batch();
        let outcome = run_sweep(batch.clone(), |spec| {
            let run = realm_fuzz::run_spec(spec);
            let kernel = run.kernel;
            (run, kernel)
        });
        threads = outcome.threads;
        campaign.absorb(outcome.results);
        if round0_keys.is_empty() {
            round0_keys = campaign.seen_keys().clone();
        }
        // Log rounds that moved the coverage frontier (plus a heartbeat
        // every 100) — a long campaign has thousands of silent rounds.
        let round = campaign.curve().len() - 1;
        let last = campaign.curve().last().expect("absorbed at least once");
        let moved = campaign.curve().len() < 2
            || last.keys > campaign.curve()[campaign.curve().len() - 2].keys;
        if moved || round.is_multiple_of(100) {
            println!(
                "  round {round:>4}: {:>6} runs, {:>3} keys, corpus {:>3}, {:>5} checked",
                last.runs,
                last.keys,
                campaign.corpus().len(),
                campaign.oracle_checked(),
            );
        }
        if start.elapsed() >= deadline {
            break;
        }
    }
    let wall = start.elapsed();

    if std::env::var("REALM_FUZZ_WRITE_BASELINE").is_ok_and(|v| v == "1") {
        let mut out = String::from(
            "# Coverage keys reached by replaying tests/corpus/*.txt (campaign round 0).\n\
             # Regenerate: REALM_FUZZ_WRITE_BASELINE=1 cargo run --release -p realm-bench --bin fuzz_campaign\n",
        );
        for key in &round0_keys {
            out.push_str(key);
            out.push('\n');
        }
        std::fs::write(BASELINE_PATH, out).expect("write coverage baseline");
        println!(
            "wrote {} round-0 coverage keys to {BASELINE_PATH}",
            round0_keys.len()
        );
        return;
    }

    let baseline = load_baseline();
    let missing: Vec<String> = baseline
        .as_ref()
        .map(|b| {
            b.iter()
                .filter(|k| !campaign.seen_keys().contains(*k))
                .cloned()
                .collect()
        })
        .unwrap_or_default();

    let curve = Json::Arr(
        campaign
            .curve()
            .iter()
            .map(|p| {
                Json::Obj(vec![
                    ("runs".to_owned(), int(p.runs)),
                    ("keys".to_owned(), int(p.keys)),
                ])
            })
            .collect(),
    );
    let violations = Json::Arr(
        campaign
            .violations()
            .iter()
            .map(|v| {
                Json::Obj(vec![
                    ("manager".to_owned(), int(v.check.manager as u64)),
                    ("bound".to_owned(), int(v.check.bound)),
                    ("finish".to_owned(), int(v.check.finish)),
                    ("spec".to_owned(), Json::Str(v.spec.to_text())),
                    ("minimized".to_owned(), Json::Str(v.minimized.to_text())),
                ])
            })
            .collect(),
    );
    let doc = Json::Obj(vec![
        (
            "experiment".to_owned(),
            Json::Str("fuzz-campaign".to_owned()),
        ),
        ("seed".to_owned(), int(cfg.seed)),
        ("batch".to_owned(), int(cfg.batch as u64)),
        ("guided".to_owned(), Json::Bool(true)),
        ("threads".to_owned(), int(threads as u64)),
        ("seconds_budget".to_owned(), Json::Num(seconds)),
        ("wall_ms".to_owned(), Json::Num(wall.as_secs_f64() * 1e3)),
        ("rounds".to_owned(), int(campaign.curve().len() as u64)),
        ("runs".to_owned(), int(campaign.runs())),
        ("coverage_keys".to_owned(), int(campaign.coverage_keys())),
        ("round0_keys".to_owned(), int(round0_keys.len() as u64)),
        (
            "corpus_size".to_owned(),
            int(campaign.corpus().len() as u64),
        ),
        ("feasible_runs".to_owned(), int(campaign.feasible_runs())),
        ("oracle_checked".to_owned(), int(campaign.oracle_checked())),
        (
            "oracle_violations".to_owned(),
            int(campaign.violations().len() as u64),
        ),
        (
            "conformance_violations".to_owned(),
            int(campaign.conformance_violations()),
        ),
        (
            "unfinished_runs".to_owned(),
            int(campaign.unfinished_runs()),
        ),
        (
            "baseline_keys".to_owned(),
            baseline
                .as_ref()
                .map_or(Json::Null, |b| int(b.len() as u64)),
        ),
        (
            "baseline_missing".to_owned(),
            Json::Arr(missing.iter().cloned().map(Json::Str).collect()),
        ),
        ("curve".to_owned(), curve),
        ("violations".to_owned(), violations),
    ]);
    let _ = std::fs::create_dir_all("results");
    if let Err(e) = std::fs::write(RESULTS_PATH, doc.pretty()) {
        eprintln!("could not write {RESULTS_PATH}: {e}");
    }

    println!(
        "fuzz-campaign: {} runs over {} rounds in {:.1}s ({threads} workers): \
         {} coverage keys, corpus {}, {} bound checks, {} feasible runs",
        campaign.runs(),
        campaign.curve().len(),
        wall.as_secs_f64(),
        campaign.coverage_keys(),
        campaign.corpus().len(),
        campaign.oracle_checked(),
        campaign.feasible_runs(),
    );

    let mut failed = false;
    if !campaign.violations().is_empty() {
        failed = true;
        eprintln!(
            "FAIL: {} oracle violation(s) — minimized reproducers in {RESULTS_PATH}",
            campaign.violations().len()
        );
        for v in campaign.violations() {
            eprintln!(
                "  manager {} finished at {} > bound {}; minimized:\n{}",
                v.check.manager,
                v.check.finish,
                v.check.bound,
                v.minimized.to_text()
            );
        }
    }
    if campaign.conformance_violations() > 0 {
        failed = true;
        eprintln!(
            "FAIL: {} protocol-monitor violation(s)",
            campaign.conformance_violations()
        );
    }
    if campaign.unfinished_runs() > 0 {
        failed = true;
        eprintln!(
            "FAIL: {} run(s) hit the {}-cycle cap",
            campaign.unfinished_runs(),
            realm_fuzz::MAX_RUN_CYCLES
        );
    }
    match &baseline {
        Some(b) if !missing.is_empty() => {
            failed = true;
            eprintln!(
                "FAIL: coverage regressed vs {BASELINE_PATH}: {} of {} baseline keys unreached:",
                missing.len(),
                b.len()
            );
            for key in &missing {
                eprintln!("  {key}");
            }
        }
        Some(b) => println!(
            "coverage holds the baseline: all {} keys reached (+{} beyond)",
            b.len(),
            campaign.coverage_keys() - b.len() as u64
        ),
        None => println!("no {BASELINE_PATH}; skipping the coverage floor check"),
    }
    if failed {
        std::process::exit(1);
    }
}

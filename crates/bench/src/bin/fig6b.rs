//! Reproduces **Fig. 6b**: core performance as the DMA's budget shrinks
//! from 8 KiB (1/1) to 1.6 KiB (1/5) per 1000-cycle period, fragmentation
//! fixed at one beat. All six points fan out through the sweep harness.
//!
//! ```text
//! cargo run --release -p realm-bench --bin fig6b
//! ```

use cheshire_soc::experiments::{
    budget_sweep_points, single_source, with_budget, DEFAULT_ACCESSES,
};
use realm_bench::{point_row, run_sweep, ExperimentReport, Row};
use realm_telemetry::TelemetrySink;

fn main() {
    let accesses = DEFAULT_ACCESSES;
    // `None` is the single-source baseline; `Some(b)` a DMA budget point.
    let mut points: Vec<(String, Option<u64>)> = vec![("single-source".to_owned(), None)];
    points.extend(
        budget_sweep_points()
            .into_iter()
            .map(|(label, budget)| (label, Some(budget))),
    );

    let outcome = run_sweep(points, |point| {
        let r = match point {
            None => single_source(accesses),
            Some(budget) => with_budget(*budget, accesses),
        };
        let kernel = r.kernel;
        (r, kernel)
    });

    let mut report = ExperimentReport::new(
        "Fig. 6b",
        "core performance vs. DMA budget imbalance (frag=1, period=1000)",
    );
    let base = &outcome.results[0];
    report.push(Row::new(
        "single-source",
        vec![
            ("dma_budget_B", 0.0),
            ("perf_pct", 100.0),
            ("lat_max", base.core_latency.max().unwrap_or(0) as f64),
            ("dma_Bpercyc", 0.0),
        ],
    ));
    for ((r, rt), (_, budget)) in outcome.results[1..]
        .iter()
        .zip(&outcome.runtime[1..])
        .zip(budget_sweep_points())
    {
        report.push(Row::new(
            rt.label.clone(),
            vec![
                ("dma_budget_B", budget as f64),
                ("perf_pct", r.performance_pct(base)),
                ("lat_max", r.core_latency.max().unwrap_or(0) as f64),
                ("dma_Bpercyc", r.dma_bytes as f64 / r.cycles as f64),
            ],
        ));
    }
    report.runtime = outcome.runtime_rows();
    report.telemetry = outcome
        .results
        .iter()
        .zip(&outcome.runtime)
        .map(|(r, rt)| point_row(&rt.label, &r.telemetry))
        .collect();

    report.note(
        "paper: performance approaches the single-source ideal (>95 %) as the DMA budget shrinks",
    );
    report.note("paper: worst-case access latency falls below eight cycles at skewed budgets");
    report.note("shape to check: perf_pct strictly rises 1/1 -> 1/5; DMA throughput falls");

    print!("{}", report.render());
    print!("{}", report.render_chart("perf_pct", 50));
    println!("{}", outcome.summary("fig6b"));
    if let Err(e) = report.write_json("results/fig6b.json") {
        eprintln!("could not write results/fig6b.json: {e}");
    }
    let mut merged = TelemetrySink::new();
    for r in &outcome.results {
        merged.merge(&r.telemetry);
    }
    // Registry only: a merged five-point sweep would interleave spans on
    // shared unit tracks, so fig6b leaves REALM_TRACE to fig6a/timeline.
    realm_bench::telemetry::maybe_export_registry("fig6b", &merged);
}

//! Related-work comparison (paper §II, made quantitative): no regulation
//! vs. an ABE-style burst equalizer vs. full AXI-REALM, on the two axes the
//! paper argues about — fairness under DMA contention and survival of a
//! stalling-writer DoS — plus the modelled area cost of each option.
//!
//! ```text
//! cargo run --release -p realm-bench --bin related_work
//! ```

use axi4::{Addr, SubordinateId, TxnId};
use axi_mem::{MemoryConfig, MemoryModel};
use axi_realm::area::{AreaBreakdown, AreaParams};
use axi_realm::baseline::{BurstEqualizer, EqualizerConfig};
use axi_realm::{DesignConfig, RealmUnit, RegionConfig, RuntimeConfig};
use axi_sim::{AxiBundle, BundleCapacity, ComponentId, KernelStats, Sim};
use axi_traffic::{CoreModel, CoreWorkload, DmaConfig, DmaModel, StallPlan, StallingManager};
use axi_xbar::{AddressMap, Crossbar};
use realm_bench::telemetry::maybe_export_registry;
use realm_bench::{point_row, run_sweep, ExperimentReport, MonitorRig, Row};
use realm_telemetry::TelemetrySink;

const LLC_BASE: Addr = Addr::new(0x8000_0000);
const LLC_SIZE: u64 = 16 << 20;
const SPM_BASE: Addr = Addr::new(0x1000_0000);
const SPM_SIZE: u64 = 1 << 20;

/// Which regulator guards the untrusted managers.
#[derive(Clone, Copy)]
enum Regulator {
    None,
    Abe { nominal: u16 },
    Realm { frag: u16 },
}

/// Attaches the chosen regulator between `up` and a fresh downstream port.
fn attach(sim: &mut Sim, regulator: Regulator, up: AxiBundle) -> AxiBundle {
    let cap = BundleCapacity::uniform(4);
    match regulator {
        Regulator::None => up,
        Regulator::Abe { nominal } => {
            let down = AxiBundle::new(sim.pool_mut(), cap);
            sim.add(BurstEqualizer::new(
                EqualizerConfig::nominal(nominal),
                up,
                down,
            ));
            down
        }
        Regulator::Realm { frag } => {
            let down = AxiBundle::new(sim.pool_mut(), cap);
            let mut rt = RuntimeConfig::open(2);
            rt.frag_len = frag;
            rt.regions[0] = RegionConfig {
                base: LLC_BASE,
                size: LLC_SIZE,
                budget_max: 0,
                period: 0,
            };
            sim.add(RealmUnit::new(DesignConfig::cheshire(), rt, up, down));
            down
        }
    }
}

struct Scenario {
    core: ComponentId,
    sim: Sim,
    rig: MonitorRig,
}

/// Builds core (monitor-only REALM, as in silicon) + one untrusted manager
/// behind `regulator`.
fn build(regulator: Regulator, dma: bool, staller: bool, accesses: u64) -> Scenario {
    let mut sim = Sim::new();
    let cap = BundleCapacity::uniform(4);

    // Core behind a pass-through REALM unit (present in all variants).
    let core_up = AxiBundle::new(sim.pool_mut(), cap);
    let core_down = attach(&mut sim, Regulator::Realm { frag: 256 }, core_up);
    let core = sim.add(CoreModel::new(
        CoreWorkload::susan(LLC_BASE, accesses),
        core_up,
    ));

    let mut rig = MonitorRig::new();
    rig.port(&mut sim, "core", core_up);
    rig.port(&mut sim, "core.xbar", core_down);
    rig.link("core", "core.xbar");
    let mut boundary_mgrs = vec!["core.xbar"];

    // With `Regulator::None` the regulator's downstream IS the manager's
    // port, so only one monitor applies (and there is no link to check).
    let regulated = !matches!(regulator, Regulator::None);

    let mut mgr_ports = vec![core_down];
    if dma {
        let up = AxiBundle::new(sim.pool_mut(), cap);
        let mut cfg = DmaConfig::worst_case((LLC_BASE + 0x80_0000, 0x8_0000), (SPM_BASE, SPM_SIZE));
        cfg.id = TxnId::new(1);
        sim.add(DmaModel::new(cfg, up));
        let down = attach(&mut sim, regulator, up);
        rig.port(&mut sim, "dma", up);
        if regulated {
            rig.port(&mut sim, "dma.xbar", down);
            rig.link("dma", "dma.xbar");
        }
        boundary_mgrs.push(if regulated { "dma.xbar" } else { "dma" });
        mgr_ports.push(down);
    }
    if staller {
        let up = AxiBundle::new(sim.pool_mut(), cap);
        sim.add(StallingManager::new(
            StallPlan::forever(LLC_BASE + 0x20_0000),
            up,
        ));
        let down = attach(&mut sim, regulator, up);
        rig.port(&mut sim, "staller", up);
        if regulated {
            rig.port(&mut sim, "staller.xbar", down);
            rig.link("staller", "staller.xbar");
        }
        boundary_mgrs.push(if regulated { "staller.xbar" } else { "staller" });
        mgr_ports.push(down);
    }

    let llc_port = AxiBundle::new(sim.pool_mut(), cap);
    let spm_port = AxiBundle::new(sim.pool_mut(), cap);
    let mut map = AddressMap::new();
    map.add(LLC_BASE, LLC_SIZE, SubordinateId::new(0))
        .expect("map");
    map.add(SPM_BASE, SPM_SIZE, SubordinateId::new(1))
        .expect("map");
    sim.add(Crossbar::new(map, mgr_ports, vec![llc_port, spm_port]).expect("ports"));
    sim.add(MemoryModel::new(
        MemoryConfig::llc(LLC_BASE, LLC_SIZE),
        llc_port,
    ));
    sim.add(MemoryModel::new(
        MemoryConfig::spm(SPM_BASE, SPM_SIZE),
        spm_port,
    ));
    rig.port(&mut sim, "llc", llc_port);
    rig.port(&mut sim, "spm", spm_port);
    rig.boundary(&boundary_mgrs, &["llc", "spm"]);

    // Elaboration-time analysis before the first cycle. Only REALM-style
    // regulators carry a RuntimeConfig; the ABE equalizer has no region
    // semantics to declare and is checked structurally via its ports.
    if realm_lint::enabled_by_env() {
        let realm_rt = |frag: u16| {
            let mut rt = RuntimeConfig::open(2);
            rt.frag_len = frag;
            rt.regions[0] = RegionConfig {
                base: LLC_BASE,
                size: LLC_SIZE,
                budget_max: 0,
                period: 0,
            };
            rt
        };
        let n_managers = 1 + usize::from(dma) + usize::from(staller);
        let mut model = realm_lint::SystemModel::new()
            .window("llc", LLC_BASE, LLC_SIZE)
            .window("spm", SPM_BASE, SPM_SIZE)
            .bandwidth("llc", 8)
            .bandwidth("spm", 8)
            .id_space(15, n_managers)
            .realm("realm.core", DesignConfig::cheshire(), realm_rt(256));
        if let Regulator::Realm { frag } = regulator {
            if dma {
                model = model.realm("realm.dma", DesignConfig::cheshire(), realm_rt(frag));
            }
            if staller {
                model = model.realm("realm.staller", DesignConfig::cheshire(), realm_rt(frag));
            }
        }
        realm_lint::apply(
            "related_work",
            &realm_lint::analyze(&sim.topology(), &model),
        );
    }

    // Feed Pass C's beat-batching plan, as the SoC testbench does. The
    // non-arena kernels ignore it; under REALM_KERNEL=arena the enabled
    // units pin their horizons at zero, so results stay bit-identical.
    let (partition, _) = realm_lint::analyze_deps(&sim.topology(), &realm_lint::SystemModel::new());
    sim.set_batch_plan(partition.batch_allowed);

    Scenario { core, sim, rig }
}

fn main() {
    const ACCESSES: u64 = 1_000;
    let mut report = ExperimentReport::new(
        "Related work",
        "no regulation vs. ABE-style equalizer vs. AXI-REALM (contended perf, DoS survival, area)",
    );

    // Baseline execution time (core alone, pass-through unit).
    let base = {
        let mut s = build(Regulator::None, false, false, ACCESSES);
        assert!(s.sim.run_until(10_000_000, |sim| sim
            .component::<CoreModel>(s.core)
            .unwrap()
            .is_done()));
        s.rig.assert_clean(&s.sim);
        s.sim
            .component::<CoreModel>(s.core)
            .unwrap()
            .finished_at()
            .unwrap()
    };

    let area_of = |variant: &str| -> f64 {
        let mut p = AreaParams::cheshire();
        p.num_units = 1;
        match variant {
            // ABE ≈ splitter + isolate/throttle, no write buffer, no
            // tracking counters, no budget registers.
            "abe" => {
                let b = AreaBreakdown::evaluate(p);
                b.lines
                    .iter()
                    .filter(|l| {
                        matches!(
                            l.block.name,
                            "Burst Splitter" | "Meta Buffer" | "Isolate & Throttle"
                        )
                    })
                    .map(|l| l.total_ge)
                    .sum::<f64>()
                    / 1000.0
            }
            "realm" => AreaBreakdown::evaluate(p).total_ge() / 1000.0,
            _ => 0.0,
        }
    };

    // Both legs of each variant run inside one sweep point; the point's
    // kernel counters are the sum over its two simulators.
    let points = vec![
        ("none".to_owned(), Regulator::None),
        ("abe".to_owned(), Regulator::Abe { nominal: 1 }),
        ("realm".to_owned(), Regulator::Realm { frag: 1 }),
    ];
    let outcome = run_sweep(points, |&regulator| {
        // Leg 1: contention recovery.
        let mut s = build(regulator, true, false, ACCESSES);
        assert!(s.sim.run_until(100_000_000, |sim| sim
            .component::<CoreModel>(s.core)
            .unwrap()
            .is_done()));
        s.rig.assert_clean(&s.sim);
        let contended = s.sim.component::<CoreModel>(s.core).unwrap();
        let contended_cycles = contended.finished_at().unwrap();
        let lat_max = contended.latency().max().unwrap_or(0);

        // Leg 2: DoS survival (stalling writer instead of the DMA).
        let mut d = build(regulator, false, true, 300);
        let survived = d.sim.run_until(2_000_000, |sim| {
            sim.component::<CoreModel>(d.core).unwrap().is_done()
        });
        d.rig.assert_clean(&d.sim);

        let (k1, k2) = (s.sim.kernel_stats(), d.sim.kernel_stats());
        let kernel = KernelStats {
            ticks_executed: k1.ticks_executed + k2.ticks_executed,
            cycles_skipped: k1.cycles_skipped + k2.cycles_skipped,
            fast_forwards: k1.fast_forwards + k2.fast_forwards,
            component_ticks: k1.component_ticks + k2.component_ticks,
            component_skips: k1.component_skips + k2.component_skips,
            wire_events: k1.wire_events + k2.wire_events,
            batched_beats: k1.batched_beats + k2.batched_beats,
            batch_windows: k1.batch_windows + k2.batch_windows,
        };
        // The point's telemetry, like its kernel counters, sums both legs.
        let mut telemetry = s.sim.telemetry();
        telemetry.merge(&d.sim.telemetry());
        ((contended_cycles, lat_max, survived, telemetry), kernel)
    });
    let mut merged = TelemetrySink::new();
    for ((contended_cycles, lat_max, survived, telemetry), rt) in
        outcome.results.iter().zip(&outcome.runtime)
    {
        report.push(Row::new(
            rt.label.clone(),
            vec![
                ("perf_pct", base as f64 / *contended_cycles as f64 * 100.0),
                ("lat_max", *lat_max as f64),
                ("dos_survived", f64::from(u8::from(*survived))),
                ("area_kGE", area_of(&rt.label)),
            ],
        ));
        report.telemetry.push(point_row(&rt.label, telemetry));
        merged.merge(telemetry);
    }
    report.runtime = outcome.runtime_rows();

    report
        .note("ABE (Restuccia et al. [12]): nominal burst size + outstanding cap, no write buffer");
    report.note("expected shape: ABE matches REALM on contended performance but fails the DoS leg");
    report.note("REALM's extra area buys the write buffer, budgets, and monitoring");
    print!("{}", report.render());
    println!("{}", outcome.summary("related_work"));
    if let Err(e) = report.write_json("results/related_work.json") {
        eprintln!("could not write results/related_work.json: {e}");
    }
    maybe_export_registry("related_work", &merged);
}

//! Design-space exploration: the cost/benefit surface of the REALM unit's
//! design-time parameters.
//!
//! Sweeps the pending-transaction count (the dominant area term of the
//! burst splitter, 729.4 GE per element in Table II) against fragmentation
//! granularity, reporting regulated core performance next to the unit's
//! modelled area — the trade an integrator actually navigates when sizing
//! the unit for a new SoC. The baseline and all eight grid points fan out
//! through the parallel sweep harness.
//!
//! ```text
//! cargo run --release -p realm-bench --bin design_space
//! ```

use axi_realm::area::{AreaBreakdown, AreaParams};
use axi_realm::DesignConfig;
use cheshire_soc::experiments::llc_regulation;
use cheshire_soc::{Regulation, Testbench, TestbenchConfig};
use realm_bench::telemetry::maybe_export_registry;
use realm_bench::{point_row, run_sweep, ExperimentReport, Row};
use realm_telemetry::TelemetrySink;

const ACCESSES: u64 = 1_000;
const PENDING: [usize; 4] = [2, 4, 8, 16];
const FRAGS: [u16; 2] = [1, 16];

/// The uncontended baseline or one (pending, frag) grid point.
enum Point {
    Baseline,
    Sized { num_pending: usize, frag_len: u16 },
}

fn run_point(point: &Point) -> (u64, u64, TelemetrySink, axi_sim::KernelStats) {
    let mut tb = match point {
        Point::Baseline => {
            let mut cfg = TestbenchConfig::single_source(ACCESSES);
            cfg.core_regulation = Regulation::Realm(llc_regulation(256, 0, 0));
            Testbench::new(cfg)
        }
        Point::Sized {
            num_pending,
            frag_len,
        } => {
            let mut cfg = TestbenchConfig::single_source(ACCESSES);
            cfg.dma = Some(TestbenchConfig::worst_case_dma());
            let mut design = DesignConfig::cheshire();
            design.num_pending = *num_pending;
            cfg.realm_design = design;
            cfg.core_regulation = Regulation::Realm(llc_regulation(256, 0, 0));
            cfg.dma_regulation = Regulation::Realm(llc_regulation(*frag_len, 0, 0));
            Testbench::new(cfg)
        }
    };
    assert!(tb.run_until_core_done(100_000_000), "run exceeded cap");
    tb.assert_conformance();
    let r = tb.result();
    (
        r.cycles,
        r.core_latency.max().unwrap_or(0),
        r.telemetry,
        r.kernel,
    )
}

fn main() {
    let mut points = vec![("baseline".to_owned(), Point::Baseline)];
    for num_pending in PENDING {
        for frag_len in FRAGS {
            points.push((
                format!("pending={num_pending} frag={frag_len}"),
                Point::Sized {
                    num_pending,
                    frag_len,
                },
            ));
        }
    }

    let outcome = run_sweep(points, |point| {
        let (cycles, lat_max, telemetry, kernel) = run_point(point);
        ((cycles, lat_max, telemetry), kernel)
    });

    let mut report = ExperimentReport::new(
        "Design space",
        "pending-transaction count vs. fragmentation: core performance and unit area",
    );
    let base = outcome.results[0].0;
    let mut rest = outcome.results[1..].iter().zip(&outcome.runtime[1..]);
    for num_pending in PENDING {
        let mut params = AreaParams::cheshire();
        params.num_pending = num_pending as u32;
        params.num_units = 1;
        let unit_kge = AreaBreakdown::evaluate(params).units_ge() / 1000.0;
        for _ in FRAGS {
            let ((cycles, lat_max, _), rt) = rest.next().expect("grid point ran");
            report.push(Row::new(
                rt.label.clone(),
                vec![
                    ("perf_pct", base as f64 / *cycles as f64 * 100.0),
                    ("lat_max", *lat_max as f64),
                    ("unit_kGE", unit_kge),
                ],
            ));
        }
    }
    report.runtime = outcome.runtime_rows();
    let mut merged = TelemetrySink::new();
    for ((_, _, telemetry), rt) in outcome.results.iter().zip(&outcome.runtime) {
        report.telemetry.push(point_row(&rt.label, telemetry));
        merged.merge(telemetry);
    }

    report.note("pending transactions cost 729.4 GE each in the splitter (Table II)");
    report
        .note("fewer pending slots also bound how many DMA fragments can queue ahead of the core");
    print!("{}", report.render());
    println!("{}", outcome.summary("design_space"));
    if let Err(e) = report.write_json("results/design_space.json") {
        eprintln!("could not write results/design_space.json: {e}");
    }
    maybe_export_registry("design_space", &merged);
}

//! Design-space exploration: the cost/benefit surface of the REALM unit's
//! design-time parameters.
//!
//! Sweeps the pending-transaction count (the dominant area term of the
//! burst splitter, 729.4 GE per element in Table II) against fragmentation
//! granularity, reporting regulated core performance next to the unit's
//! modelled area — the trade an integrator actually navigates when sizing
//! the unit for a new SoC.
//!
//! ```text
//! cargo run --release -p realm-bench --bin design_space
//! ```

use axi_realm::area::{AreaBreakdown, AreaParams};
use axi_realm::DesignConfig;
use cheshire_soc::experiments::llc_regulation;
use cheshire_soc::{Regulation, Testbench, TestbenchConfig};
use realm_bench::{ExperimentReport, Row};

fn run_point(num_pending: usize, frag_len: u16, accesses: u64) -> (u64, u64) {
    let mut cfg = TestbenchConfig::single_source(accesses);
    cfg.dma = Some(TestbenchConfig::worst_case_dma());
    let mut design = DesignConfig::cheshire();
    design.num_pending = num_pending;
    cfg.realm_design = design;
    cfg.core_regulation = Regulation::Realm(llc_regulation(256, 0, 0));
    cfg.dma_regulation = Regulation::Realm(llc_regulation(frag_len, 0, 0));
    let mut tb = Testbench::new(cfg);
    assert!(tb.run_until_core_done(100_000_000), "run exceeded cap");
    let r = tb.result();
    (r.cycles, r.core_latency.max().unwrap_or(0))
}

fn main() {
    const ACCESSES: u64 = 1_000;
    let mut report = ExperimentReport::new(
        "Design space",
        "pending-transaction count vs. fragmentation: core performance and unit area",
    );

    // Baseline for the performance percentage.
    let base = {
        let mut cfg = TestbenchConfig::single_source(ACCESSES);
        cfg.core_regulation = Regulation::Realm(llc_regulation(256, 0, 0));
        let mut tb = Testbench::new(cfg);
        assert!(tb.run_until_core_done(10_000_000));
        tb.result().cycles
    };

    for num_pending in [2usize, 4, 8, 16] {
        let mut params = AreaParams::cheshire();
        params.num_pending = num_pending as u32;
        params.num_units = 1;
        let unit_kge = AreaBreakdown::evaluate(params).units_ge() / 1000.0;
        for frag_len in [1u16, 16] {
            let (cycles, lat_max) = run_point(num_pending, frag_len, ACCESSES);
            report.push(Row::new(
                format!("pending={num_pending} frag={frag_len}"),
                vec![
                    ("perf_pct", base as f64 / cycles as f64 * 100.0),
                    ("lat_max", lat_max as f64),
                    ("unit_kGE", unit_kge),
                ],
            ));
        }
    }

    report.note("pending transactions cost 729.4 GE each in the splitter (Table II)");
    report.note("fewer pending slots also bound how many DMA fragments can queue ahead of the core");
    print!("{}", report.render());
    if let Err(e) = report.write_json("results/design_space.json") {
        eprintln!("could not write results/design_space.json: {e}");
    }
}

//! Appends `ChannelPool` micro-benchmark means to `BENCH_kernel.json`.
//!
//! Runs the four `poolbench` workloads — ring vs `VecDeque`, per-cycle vs
//! bulk batch move — with a fixed wall-clock budget each, and writes their
//! mean ns-per-beat under a `pool_microbench` key in the kernel baseline
//! file (first CLI argument, `BENCH_kernel.json` by default), preserving
//! every other key. Wall-clock is machine-dependent, which is exactly why
//! these numbers live in the bench baseline and not in `results/*.json`.

use std::time::{Duration, Instant};

/// One benchmark workload: the JSON key it reports under, and the
/// beats-to-checksum function it times.
type Workload = (&'static str, fn(u64) -> u64);

use realm_bench::json::{parse, Json};
use realm_bench::poolbench;

/// Beats moved per timed call.
const OPS: u64 = 4096;
/// Measurement budget per workload.
const BUDGET: Duration = Duration::from_millis(200);

/// Mean nanoseconds per beat over as many `f(OPS)` calls as fit in
/// [`BUDGET`], after one warmup/calibration call.
fn measure(f: fn(u64) -> u64) -> f64 {
    let start = Instant::now();
    std::hint::black_box(f(OPS));
    let per_call = start.elapsed().max(Duration::from_nanos(1));
    let calls = (BUDGET.as_nanos() / per_call.as_nanos()).clamp(1, 1_000_000) as u64;
    let start = Instant::now();
    for _ in 0..calls {
        std::hint::black_box(f(OPS));
    }
    start.elapsed().as_nanos() as f64 / (calls * OPS) as f64
}

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_kernel.json".to_owned());

    let workloads: [Workload; 6] = [
        ("ring_push_pop_ns_per_beat", poolbench::ring_push_pop),
        (
            "vecdeque_push_pop_ns_per_beat",
            poolbench::vecdeque_push_pop,
        ),
        (
            "ring_relay_per_cycle_ns_per_beat",
            poolbench::ring_relay_per_cycle,
        ),
        ("ring_batch_move_ns_per_beat", poolbench::ring_batch_move),
        (
            "vecdeque_relay_per_cycle_ns_per_beat",
            poolbench::vecdeque_relay_per_cycle,
        ),
        (
            "vecdeque_batch_move_ns_per_beat",
            poolbench::vecdeque_batch_move,
        ),
    ];
    let mut section = vec![
        ("ops_per_call".to_owned(), Json::Int(OPS as i64)),
        ("batch_depth".to_owned(), Json::Int(poolbench::BATCH as i64)),
    ];
    for (key, f) in workloads {
        let ns = measure(f);
        println!("pool_microbench {key:<36} {ns:>8.2} ns/beat");
        section.push((key.to_owned(), Json::Num(ns)));
    }

    // Merge into the existing baseline: drop any stale section, keep the
    // rest of the document untouched.
    let doc = std::fs::read_to_string(&path)
        .ok()
        .and_then(|text| parse(&text).ok());
    let mut fields = match doc {
        Some(Json::Obj(fields)) => fields
            .into_iter()
            .filter(|(k, _)| k != "pool_microbench")
            .collect(),
        _ => Vec::new(),
    };
    fields.push(("pool_microbench".to_owned(), Json::Obj(section)));
    std::fs::write(&path, Json::Obj(fields).pretty()).expect("write kernel baseline");
    println!("appended pool_microbench to {path}");
}

//! Reproduces **Table I**: the area decomposition of the Cheshire SoC with
//! three REALM units.
//!
//! The non-REALM block areas are the paper's published synthesis results
//! (we have no 12 nm flow); the REALM contributions are *recomputed* from
//! the Table II area model at the Cheshire parameter point and printed next
//! to the published values. The per-block rows go through the sweep harness
//! like every other binary; being analytic, each point reports
//! `KernelStats::default()` (no simulator runs here).
//!
//! ```text
//! cargo run --release -p realm-bench --bin table1
//! ```

use axi_realm::area::{AreaBreakdown, AreaParams};
use axi_sim::KernelStats;
use realm_bench::{run_sweep, ExperimentReport, Row};

/// Published Table I block areas in kGE (SoC blocks other than AXI-REALM).
const PUBLISHED_BLOCKS: &[(&str, f64)] = &[
    ("CVA6", 1860.0),
    ("LLC", 1350.0),
    ("Interconnect", 206.0),
    ("Peripherals", 163.0),
    ("iDMA", 26.3),
    ("Bootrom", 12.9),
    ("IRQ subsys", 11.1),
    ("Rest", 20.5),
];

/// Published AXI-REALM contributions in kGE.
const PUBLISHED_RT_UNITS: f64 = 83.6;
const PUBLISHED_RT_CFG: f64 = 9.8;
const PUBLISHED_SOC: f64 = 3810.0;

fn main() {
    // Analytic binary: no simulator is constructed, so gate on the
    // default Cheshire system explicitly (REALM_LINT=0 skips).
    cheshire_soc::startup_lint("table1");

    let breakdown = AreaBreakdown::evaluate(AreaParams::cheshire());
    let model_units = breakdown.units_ge() / 1000.0;
    let model_cfg = breakdown.config_ge() / 1000.0;

    let base_soc: f64 = PUBLISHED_BLOCKS.iter().map(|(_, kge)| kge).sum();
    let soc_total = base_soc + model_units + model_cfg;

    let mut report = ExperimentReport::new(
        "Table I",
        "area decomposition of the Cheshire SoC (kGE; published vs. area-model estimate)",
    );
    let points = PUBLISHED_BLOCKS
        .iter()
        .map(|&(name, kge)| (name.to_owned(), kge))
        .collect();
    let outcome = run_sweep(points, |&kge| (kge, KernelStats::default()));
    for (&kge, rt) in outcome.results.iter().zip(&outcome.runtime) {
        report.push(Row::new(
            rt.label.clone(),
            vec![
                ("published_kGE", kge),
                ("modelled_kGE", kge), // non-REALM blocks are taken as published
                ("pct_of_soc", kge / soc_total * 100.0),
            ],
        ));
    }
    report.push(Row::new(
        "3 RT units",
        vec![
            ("published_kGE", PUBLISHED_RT_UNITS),
            ("modelled_kGE", model_units),
            ("pct_of_soc", model_units / soc_total * 100.0),
        ],
    ));
    report.push(Row::new(
        "RT CFG",
        vec![
            ("published_kGE", PUBLISHED_RT_CFG),
            ("modelled_kGE", model_cfg),
            ("pct_of_soc", model_cfg / soc_total * 100.0),
        ],
    ));
    report.push(Row::new(
        "SoC total",
        vec![
            ("published_kGE", PUBLISHED_SOC),
            ("modelled_kGE", soc_total),
            ("pct_of_soc", 100.0),
        ],
    ));
    report.runtime = outcome.runtime_rows();

    let overhead = (model_units + model_cfg) / soc_total * 100.0;
    report.note(format!(
        "AXI-REALM overhead: modelled {overhead:.2} % of the SoC (paper: 2.45 %, 83.6 kGE units + 9.8 kGE cfg)"
    ));
    report.note(
        "RT unit parameterisation: 64 b addr/data, write buffer depth 16, 8 outstanding, 2 regions",
    );

    print!("{}", report.render());
    if let Err(e) = report.write_json("results/table1.json") {
        eprintln!("could not write results/table1.json: {e}");
    }
    // Analytic binary: no simulator ran, so the registry is empty — the
    // dump still appears under REALM_TELEMETRY so tooling sees a uniform
    // file set across all experiment binaries.
    realm_bench::telemetry::maybe_export_registry("table1", &realm_telemetry::TelemetrySink::new());
}

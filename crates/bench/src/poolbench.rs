//! Micro-workloads for the arena `ChannelPool`: the index-addressed ring
//! hot path against a `VecDeque` baseline, per-cycle against bulk
//! batch-window moves.
//!
//! The same four workloads back two consumers: the `channel_pool`
//! criterion bench (interactive wall-clock numbers) and the
//! `pool_microbench` binary, which appends mean ns-per-beat figures to
//! `BENCH_kernel.json` next to the kernel sweep baseline.

use std::collections::VecDeque;

use axi4::{BBeat, TxnId};
use axi_sim::{ChannelPool, WireId};

/// Ring capacity used by every workload — the default per-wire depth the
/// simulated bundles run with.
pub const RING_CAP: usize = 8;

/// Beats moved per simulated batch window in the bulk workloads.
pub const BATCH: u64 = 6;

fn beat(k: u64) -> BBeat {
    BBeat::okay(TxnId::new((k & 0xffff) as u32))
}

/// One beat relayed per simulated cycle through a pool ring: pop the beat
/// pushed last cycle, push this cycle's — the steady-state per-cycle hot
/// path every wire sees under load. Returns a checksum so the work cannot
/// be elided.
pub fn ring_push_pop(ops: u64) -> u64 {
    let mut pool = ChannelPool::new();
    let wire = pool.new_wire::<BBeat>(RING_CAP);
    let mut sum = 0u64;
    for c in 0..ops {
        if let Some(b) = pool.pop(wire, c) {
            sum = sum.wrapping_add(u64::from(b.id.raw()));
        }
        pool.push(wire, c, beat(c));
    }
    sum
}

/// The same per-cycle relay against a `VecDeque` of `(cycle, beat)` pairs
/// with the pool's visibility rule (`pushed < cycle`) checked per pop —
/// the layout the arena rings replaced.
pub fn vecdeque_push_pop(ops: u64) -> u64 {
    let mut queue: VecDeque<(u64, BBeat)> = VecDeque::with_capacity(RING_CAP);
    let mut sum = 0u64;
    for c in 0..ops {
        if queue.front().is_some_and(|&(pushed, _)| pushed < c) {
            let (_, b) = queue.pop_front().expect("front checked");
            sum = sum.wrapping_add(u64::from(b.id.raw()));
        }
        queue.push_back((c, beat(c)));
    }
    sum
}

/// Shared harness for the relay workloads: per window, preload [`BATCH`]
/// beats on the source (stamped on consecutive cycles, as a per-cycle
/// producer leaves them), move them with `relay`, drain the destination.
/// Every variant pays identical preload/drain costs, so per-beat deltas
/// between them isolate the move itself.
fn pool_relay_windows(
    ops: u64,
    relay: impl Fn(&mut ChannelPool, WireId<BBeat>, WireId<BBeat>, u64) -> u64,
) -> u64 {
    let mut pool = ChannelPool::new();
    let src = pool.new_wire::<BBeat>(RING_CAP);
    let dst = pool.new_wire::<BBeat>(RING_CAP);
    let mut sum = 0u64;
    let mut c = 0u64;
    let windows = ops / BATCH;
    for _ in 0..windows {
        for _ in 0..BATCH {
            pool.push(src, c, beat(c));
            c += 1;
        }
        let moved = relay(&mut pool, src, dst, c);
        debug_assert_eq!(moved, BATCH);
        for _ in 0..moved {
            if let Some(b) = pool.pop(dst, c + 1) {
                sum = sum.wrapping_add(u64::from(b.id.raw()));
            }
            c += 1;
        }
        c += 1;
    }
    sum
}

/// One batch window relayed per cycle-pair, the pre-batching way: one
/// `pop` + one `push` per beat with per-cycle re-stamping.
pub fn ring_relay_per_cycle(ops: u64) -> u64 {
    pool_relay_windows(ops, |pool, src, dst, start| {
        let mut k = 0u64;
        while k < BATCH {
            let cycle = start + k;
            let Some(b) = pool.pop(src, cycle) else { break };
            pool.push(dst, cycle, b);
            k += 1;
        }
        k
    })
}

/// The same window moved in one [`ChannelPool::batch_relay`] sweep — the
/// bulk copy a batch window executes.
pub fn ring_batch_move(ops: u64) -> u64 {
    pool_relay_windows(ops, |pool, src, dst, start| {
        pool.batch_relay(src, dst, start, BATCH)
    })
}

/// Shared harness for the `VecDeque` relay baselines, mirroring
/// [`pool_relay_windows`] element for element.
fn deque_relay_windows(
    ops: u64,
    relay: impl Fn(&mut VecDeque<(u64, BBeat)>, &mut VecDeque<(u64, BBeat)>, u64) -> u64,
) -> u64 {
    let mut src: VecDeque<(u64, BBeat)> = VecDeque::with_capacity(RING_CAP);
    let mut dst: VecDeque<(u64, BBeat)> = VecDeque::with_capacity(RING_CAP);
    let mut sum = 0u64;
    let mut c = 0u64;
    let windows = ops / BATCH;
    for _ in 0..windows {
        for _ in 0..BATCH {
            src.push_back((c, beat(c)));
            c += 1;
        }
        let moved = relay(&mut src, &mut dst, c);
        debug_assert_eq!(moved, BATCH);
        for _ in 0..moved {
            if let Some((_, b)) = dst.pop_front() {
                sum = sum.wrapping_add(u64::from(b.id.raw()));
            }
            c += 1;
        }
        c += 1;
    }
    sum
}

/// `VecDeque` window move, one element at a time with the visibility rule
/// checked per beat — what the per-cycle relay cost in the pre-arena
/// layout.
pub fn vecdeque_relay_per_cycle(ops: u64) -> u64 {
    deque_relay_windows(ops, |src, dst, start| {
        let mut k = 0u64;
        while k < BATCH {
            let cycle = start + k;
            match src.front() {
                Some(&(pushed, _)) if pushed < cycle && dst.len() < RING_CAP => {
                    let (_, b) = src.pop_front().expect("front checked");
                    dst.push_back((cycle, b));
                    k += 1;
                }
                _ => break,
            }
        }
        k
    })
}

/// `VecDeque` bulk window move via `drain`/`extend` — the closest a
/// pointer-chasing deque gets to the ring's contiguous sweep.
pub fn vecdeque_batch_move(ops: u64) -> u64 {
    deque_relay_windows(ops, |src, dst, start| {
        let take = usize::try_from(BATCH)
            .expect("small window") // full window visible
            .min(src.len())
            .min(RING_CAP - dst.len());
        let mut cycle = start;
        dst.extend(src.drain(..take).map(|(_, b)| {
            let stamped = (cycle, b);
            cycle += 1;
            stamped
        }));
        take as u64
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The ring and VecDeque variants model the same transfer discipline:
    /// identical beat streams produce identical checksums, so the bench
    /// compares implementations, not workloads.
    #[test]
    fn variants_agree_on_the_moved_beats() {
        assert_eq!(ring_push_pop(4096), vecdeque_push_pop(4096));
        assert_eq!(ring_batch_move(4096), ring_relay_per_cycle(4096));
        assert_eq!(ring_batch_move(4096), vecdeque_relay_per_cycle(4096));
        assert_eq!(ring_batch_move(4096), vecdeque_batch_move(4096));
        assert_ne!(ring_push_pop(512), 0);
        assert_ne!(ring_batch_move(512), 0);
    }
}

//! Parallel sweep harness: fan experiment points across threads, keep
//! results in point order, and collect per-point kernel/runtime metrics.
//!
//! Every experiment binary used to iterate its sweep serially; this module
//! replaces those loops with one runner. Each point's closure builds its
//! own simulator (a `Sim` is not `Send`, and per-thread construction keeps
//! points fully independent), so simulated results are bit-identical
//! whatever the thread count — parallelism and fast-forwarding may only
//! change wall-clock. Set `REALM_SWEEP_THREADS=1` to force the serial
//! order, or any other value to cap the worker count.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use axi_sim::KernelStats;

use crate::Row;

/// Wall-clock and kernel counters for one sweep point.
#[derive(Clone, Debug)]
pub struct PointRuntime {
    /// The point's label (also used in report runtime rows).
    pub label: String,
    /// Wall-clock time spent simulating this point.
    pub wall: Duration,
    /// Kernel counters of the point's simulator at the end of the run.
    pub kernel: KernelStats,
}

impl PointRuntime {
    /// Simulated cycles per wall-clock second (executed + skipped).
    pub fn cycles_per_sec(&self) -> f64 {
        self.kernel.cycles_total() as f64 / self.wall.as_secs_f64().max(1e-9)
    }

    /// A deterministic report row. Only the total simulated cycle count
    /// appears here: it is identical under the event kernel and forced
    /// cycle stepping (`REALM_KERNEL=step`), so `results/*.json` stays
    /// bit-identical whichever kernel ran. Kernel-dependent counters
    /// (ticks executed, skips, wire events) belong in `BENCH_kernel.json`
    /// via [`SweepOutcome::write_kernel_baseline`].
    pub fn to_runtime_row(&self) -> Row {
        Row::new(
            self.label.clone(),
            vec![("cycles", self.kernel.cycles_total() as f64)],
        )
    }
}

/// Everything a sweep produced: per-point results in input order plus
/// observability.
#[derive(Debug)]
pub struct SweepOutcome<R> {
    /// One result per point, in the order the points were given.
    pub results: Vec<R>,
    /// Per-point runtime metrics, same order.
    pub runtime: Vec<PointRuntime>,
    /// Worker threads actually used.
    pub threads: usize,
    /// Wall-clock for the whole sweep.
    pub wall: Duration,
}

impl<R> SweepOutcome<R> {
    /// Deterministic runtime rows for an [`crate::ExperimentReport`].
    pub fn runtime_rows(&self) -> Vec<Row> {
        self.runtime
            .iter()
            .map(PointRuntime::to_runtime_row)
            .collect()
    }

    /// Total simulated cycles per wall-clock second across the sweep.
    pub fn cycles_per_sec(&self) -> f64 {
        let cycles: u64 = self.runtime.iter().map(|p| p.kernel.cycles_total()).sum();
        cycles as f64 / self.wall.as_secs_f64().max(1e-9)
    }

    /// Sum of executed ticks across points.
    pub fn ticks_executed(&self) -> u64 {
        self.runtime.iter().map(|p| p.kernel.ticks_executed).sum()
    }

    /// Sum of skipped cycles across points.
    pub fn cycles_skipped(&self) -> u64 {
        self.runtime.iter().map(|p| p.kernel.cycles_skipped).sum()
    }

    /// Sum of per-component tick executions across points.
    pub fn component_ticks(&self) -> u64 {
        self.runtime.iter().map(|p| p.kernel.component_ticks).sum()
    }

    /// Sum of per-component elided ticks across points.
    pub fn component_skips(&self) -> u64 {
        self.runtime.iter().map(|p| p.kernel.component_skips).sum()
    }

    /// Sum of recorded wire push/pop wake events across points.
    pub fn wire_events(&self) -> u64 {
        self.runtime.iter().map(|p| p.kernel.wire_events).sum()
    }

    /// Sum of beats moved by bulk batch windows across points (a subset of
    /// the beats `wire_events` already counts).
    pub fn batched_beats(&self) -> u64 {
        self.runtime.iter().map(|p| p.kernel.batched_beats).sum()
    }

    /// Sum of batch windows the arena kernel executed across points.
    pub fn batch_windows(&self) -> u64 {
        self.runtime.iter().map(|p| p.kernel.batch_windows).sum()
    }

    /// A one-line human summary of the sweep's runtime, for stdout (not for
    /// `results/*.json`, which must stay deterministic).
    pub fn summary(&self, name: &str) -> String {
        let ticks = self.ticks_executed();
        let skipped = self.cycles_skipped();
        format!(
            "[{name}] {} points on {} thread(s) in {:.3}s: {ticks} ticks + {skipped} skipped \
             = {} cycles ({:.2}M cyc/s)",
            self.results.len(),
            self.threads,
            self.wall.as_secs_f64(),
            ticks + skipped,
            self.cycles_per_sec() / 1e6,
        )
    }

    /// Writes the wall-clock baseline for this sweep as JSON — throughput,
    /// thread count, and per-point timings. Wall-clock is machine-dependent,
    /// so it lives here (`BENCH_kernel.json` at the repo root) instead of in
    /// the deterministic `results/*.json` reports.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_kernel_baseline<P: AsRef<std::path::Path>>(
        &self,
        path: P,
        experiment: &str,
    ) -> std::io::Result<()> {
        self.write_kernel_baseline_with_partition(path, experiment, None)
    }

    /// Like [`SweepOutcome::write_kernel_baseline`], with the system's
    /// static dependence partition (Pass C of `realm-lint`) summarized in
    /// a `partition` row: component count, island count, largest island,
    /// and zero-latency schedule depth. The partition is a property of the
    /// simulated system, not of the machine, but it rides along here so
    /// the kernel baseline records how much island-level parallelism the
    /// measured system exposes.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_kernel_baseline_with_partition<P: AsRef<std::path::Path>>(
        &self,
        path: P,
        experiment: &str,
        partition: Option<&realm_lint::Partition>,
    ) -> std::io::Result<()> {
        self.write_kernel_baseline_full(path, experiment, partition, None)
    }

    /// Like [`SweepOutcome::write_kernel_baseline_with_partition`], with the
    /// kernel self-profile of one representative run appended as a
    /// `profile` section: per-component visit/wake/batch counts from
    /// [`axi_sim::Sim::profile`], plus wall-time per component when the
    /// `self-profile` feature is on (0 otherwise — the clock reads are
    /// compiled out of default builds).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_kernel_baseline_full<P: AsRef<std::path::Path>>(
        &self,
        path: P,
        experiment: &str,
        partition: Option<&realm_lint::Partition>,
        profile: Option<&[axi_sim::ComponentProfile]>,
    ) -> std::io::Result<()> {
        use crate::json::Json;
        let num = Json::Num;
        // Counters are emitted as JSON integers (`Json::Int`), never as
        // `.0`-suffixed floats; only derived rates and wall-clock stay f64.
        let int = |n: u64| Json::Int(i64::try_from(n).unwrap_or(i64::MAX));
        let points = self
            .runtime
            .iter()
            .map(|p| {
                Json::Obj(vec![
                    ("label".to_owned(), Json::Str(p.label.clone())),
                    ("wall_ms".to_owned(), num(p.wall.as_secs_f64() * 1e3)),
                    ("ticks_executed".to_owned(), int(p.kernel.ticks_executed)),
                    ("cycles_skipped".to_owned(), int(p.kernel.cycles_skipped)),
                    ("fast_forwards".to_owned(), int(p.kernel.fast_forwards)),
                    ("component_ticks".to_owned(), int(p.kernel.component_ticks)),
                    ("component_skips".to_owned(), int(p.kernel.component_skips)),
                    ("wire_events".to_owned(), int(p.kernel.wire_events)),
                    ("batched_beats".to_owned(), int(p.kernel.batched_beats)),
                    ("batch_windows".to_owned(), int(p.kernel.batch_windows)),
                    ("cycles_per_sec".to_owned(), num(p.cycles_per_sec())),
                ])
            })
            .collect();
        // Which kernel produced these numbers (same resolution rules as
        // axi-sim's REALM_KERNEL handling; anything unrecognized is the
        // default event kernel).
        let kernel = match std::env::var("REALM_KERNEL").as_deref() {
            Ok("step") | Ok("stepped") | Ok("cycle") => "step",
            Ok("islands") | Ok("island") => "islands",
            Ok("arena") | Ok("compiled") => "arena",
            _ => "event",
        };
        let mut doc = vec![
            ("experiment".to_owned(), Json::Str(experiment.to_owned())),
            ("kernel".to_owned(), Json::Str(kernel.to_owned())),
            ("threads".to_owned(), int(self.threads as u64)),
            ("wall_ms".to_owned(), num(self.wall.as_secs_f64() * 1e3)),
            ("cycles_per_sec".to_owned(), num(self.cycles_per_sec())),
            ("ticks_executed".to_owned(), int(self.ticks_executed())),
            ("cycles_skipped".to_owned(), int(self.cycles_skipped())),
            ("component_ticks".to_owned(), int(self.component_ticks())),
            ("component_skips".to_owned(), int(self.component_skips())),
            ("wire_events".to_owned(), int(self.wire_events())),
            ("batched_beats".to_owned(), int(self.batched_beats())),
            ("batch_windows".to_owned(), int(self.batch_windows())),
            ("points".to_owned(), Json::Arr(points)),
        ];
        if let Some(p) = partition {
            doc.push((
                "partition".to_owned(),
                Json::Obj(vec![
                    ("components".to_owned(), int(p.names.len() as u64)),
                    ("islands".to_owned(), int(p.island_count() as u64)),
                    ("largest_island".to_owned(), int(p.largest_island() as u64)),
                    ("schedule_depth".to_owned(), int(p.depth as u64)),
                    ("batch_approved".to_owned(), int(p.batch_approved() as u64)),
                ]),
            ));
        }
        if let Some(profile) = profile {
            doc.push((
                "profile".to_owned(),
                crate::telemetry::profile_json(profile),
            ));
        }
        std::fs::write(path, Json::Obj(doc).pretty())
    }
}

fn worker_count(points: usize) -> usize {
    let available = std::thread::available_parallelism().map_or(1, usize::from);
    let requested = std::env::var("REALM_SWEEP_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(available);
    requested.min(points).max(1)
}

/// Runs every labelled point through `run`, in parallel, returning results
/// in the input order.
///
/// `run` is called once per point and must return the point's result plus
/// the final [`KernelStats`] of the simulator it built (use
/// `KernelStats::default()` for analytic points with no simulator).
///
/// # Panics
///
/// Propagates a panic from any point after all workers finish.
pub fn run_sweep<I, R, F>(points: Vec<(String, I)>, run: F) -> SweepOutcome<R>
where
    I: Sync,
    R: Send,
    F: Fn(&I) -> (R, KernelStats) + Sync,
{
    let sweep_start = Instant::now();
    let threads = worker_count(points.len());
    let n = points.len();
    let next = AtomicUsize::new(0);
    let collected: Mutex<Vec<Option<(R, PointRuntime)>>> =
        Mutex::new((0..n).map(|_| None).collect());

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let idx = next.fetch_add(1, Ordering::Relaxed);
                let Some((label, input)) = points.get(idx) else {
                    break;
                };
                let start = Instant::now();
                let (result, kernel) = run(input);
                let runtime = PointRuntime {
                    label: label.clone(),
                    wall: start.elapsed(),
                    kernel,
                };
                collected.lock().expect("no poisoned sweep slots")[idx] = Some((result, runtime));
            });
        }
    });

    let slots = collected.into_inner().expect("no poisoned sweep slots");
    let mut results = Vec::with_capacity(n);
    let mut runtime = Vec::with_capacity(n);
    for slot in slots {
        let (r, rt) = slot.expect("every sweep point ran");
        results.push(r);
        runtime.push(rt);
    }
    SweepOutcome {
        results,
        runtime,
        threads,
        wall: sweep_start.elapsed(),
    }
}

/// Labels points with `Display`-formatted inputs — the common case where
/// the sweep parameter itself is the label.
pub fn labelled<I: std::fmt::Display + Clone>(points: &[I]) -> Vec<(String, I)> {
    points.iter().map(|p| (p.to_string(), p.clone())).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(ticks: u64, skipped: u64) -> KernelStats {
        KernelStats {
            ticks_executed: ticks,
            cycles_skipped: skipped,
            fast_forwards: u64::from(skipped > 0),
            component_ticks: ticks * 2,
            component_skips: skipped * 2,
            wire_events: ticks,
            batched_beats: ticks / 2,
            batch_windows: u64::from(ticks > 1),
        }
    }

    #[test]
    fn results_keep_point_order() {
        let points = labelled(&[5u64, 1, 4, 2, 3, 9, 8, 7, 6, 0]);
        let outcome = run_sweep(points, |&p| {
            // Uneven work so threads finish out of order.
            std::thread::sleep(Duration::from_millis(p));
            (p * 10, stats(p, 0))
        });
        assert_eq!(outcome.results, [50, 10, 40, 20, 30, 90, 80, 70, 60, 0]);
        let labels: Vec<&str> = outcome.runtime.iter().map(|r| r.label.as_str()).collect();
        assert_eq!(labels, ["5", "1", "4", "2", "3", "9", "8", "7", "6", "0"]);
        assert!(outcome.threads >= 1);
    }

    #[test]
    fn kernel_counters_aggregate() {
        let outcome = run_sweep(labelled(&[1u64, 2, 3]), |&p| (p, stats(p * 100, p)));
        assert_eq!(outcome.ticks_executed(), 600);
        assert_eq!(outcome.cycles_skipped(), 6);
        assert_eq!(outcome.component_ticks(), 1200);
        assert_eq!(outcome.component_skips(), 12);
        assert_eq!(outcome.wire_events(), 600);
        assert_eq!(outcome.batched_beats(), 300);
        assert_eq!(outcome.batch_windows(), 3);
        let rows = outcome.runtime_rows();
        assert_eq!(rows.len(), 3);
        // Runtime rows carry only the kernel-invariant total, so report
        // files diff clean between the event kernel and forced stepping.
        assert_eq!(rows[1].values, [("cycles".to_owned(), 202.0)]);
        assert_eq!(rows[2].values, [("cycles".to_owned(), 303.0)]);
    }

    #[test]
    fn baseline_counters_are_json_integers() {
        let outcome = run_sweep(labelled(&[7u64]), |&p| (p, stats(p * 1000, p)));
        let dir = std::env::temp_dir().join("realm_sweep_baseline_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_kernel.json");
        outcome.write_kernel_baseline(&path, "unit").unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let doc = crate::json::parse(&text).unwrap();
        assert_eq!(
            doc.get("ticks_executed"),
            Some(&crate::json::Json::Int(7000))
        );
        assert!(text.contains("\"ticks_executed\": 7000,"), "{text}");
        assert!(!text.contains("\"ticks_executed\": 7000.0"), "{text}");
        assert!(!text.contains("\"threads\": 1.0"), "{text}");
        let point = &doc.get("points").unwrap().as_arr().unwrap()[0];
        assert_eq!(
            point.get("wire_events"),
            Some(&crate::json::Json::Int(7000))
        );
        assert_eq!(
            point.get("component_skips"),
            Some(&crate::json::Json::Int(14))
        );
        assert_eq!(
            point.get("batched_beats"),
            Some(&crate::json::Json::Int(3500))
        );
        assert_eq!(doc.get("batch_windows"), Some(&crate::json::Json::Int(1)));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_sweep_is_fine() {
        let outcome = run_sweep(Vec::<(String, u32)>::new(), |&p| (p, stats(0, 0)));
        assert!(outcome.results.is_empty());
    }

    #[test]
    fn serial_env_forces_one_thread() {
        // worker_count respects the env var; set and restore around the
        // check to avoid leaking into other tests.
        std::env::set_var("REALM_SWEEP_THREADS", "1");
        let n = worker_count(8);
        std::env::remove_var("REALM_SWEEP_THREADS");
        assert_eq!(n, 1);
    }
}

//! Telemetry distillation and export for the experiment binaries.
//!
//! Every binary harvests a [`TelemetrySink`] per sweep point (it rides
//! inside `RunResult`) and distills it two ways:
//!
//! * **Always** — a kernel-invariant [`Row`] per point via [`point_row`],
//!   stored in the report's `telemetry` section. These rows are computed
//!   unconditionally, so `results/*.json` is bit-identical whether or not
//!   any export env var is set (the CI transparency job diffs exactly
//!   that), and they only draw on component-side counters/histograms,
//!   which are bit-identical across all four kernels.
//! * **Opt-in** — [`maybe_export`] dumps the full registry to
//!   `results/telemetry/<name>.json` when `REALM_TELEMETRY` is set, and a
//!   Chrome `trace_event` JSON (open it at <https://ui.perfetto.dev>) to
//!   the path named by `REALM_TRACE`. Neither dump feeds back into the
//!   deterministic reports.
//!
//! [`TelemetrySink`]: realm_telemetry::TelemetrySink

use std::path::PathBuf;

use axi_sim::ComponentProfile;
use realm_telemetry::{chrome_trace, to_json_string, Histogram, TelemetrySink};

use crate::json::Json;
use crate::Row;

/// Whether `REALM_TELEMETRY` asks for full registry dumps. Unset, empty,
/// `0`, and `off` mean no; anything else means yes.
pub fn telemetry_from_env() -> bool {
    match std::env::var("REALM_TELEMETRY").as_deref() {
        Ok("") | Ok("0") | Ok("off") | Err(_) => false,
        Ok(_) => true,
    }
}

/// The Chrome-trace output path named by `REALM_TRACE`, if tracing is on.
/// The variable's value *is* the path (`REALM_TRACE=out.json`); empty,
/// `0`, and `off` disable tracing, matching
/// [`realm_telemetry::trace_from_env`].
pub fn trace_path_from_env() -> Option<PathBuf> {
    match std::env::var("REALM_TRACE").as_deref() {
        Ok("") | Ok("0") | Ok("off") | Err(_) => None,
        Ok(path) => Some(PathBuf::from(path)),
    }
}

/// Exports the full telemetry registry if the env vars ask for it:
/// `REALM_TELEMETRY` writes `results/telemetry/<name>.json`, `REALM_TRACE`
/// writes a Chrome trace to its own value. A no-op when neither is set, so
/// binaries call it unconditionally. Export failures are reported on
/// stderr but never fail the experiment.
pub fn maybe_export(name: &str, sink: &TelemetrySink) {
    maybe_export_registry(name, sink);
    maybe_export_trace(sink);
}

/// The registry half of [`maybe_export`]: dumps the full sink to
/// `results/telemetry/<name>.json` when `REALM_TELEMETRY` is set.
pub fn maybe_export_registry(name: &str, sink: &TelemetrySink) {
    if telemetry_from_env() {
        let dir = PathBuf::from("results/telemetry");
        let path = dir.join(format!("{name}.json"));
        let write = std::fs::create_dir_all(&dir)
            .and_then(|()| std::fs::write(&path, to_json_string(sink)));
        match write {
            Ok(()) => eprintln!("[telemetry] wrote {}", path.display()),
            Err(e) => eprintln!("[telemetry] could not write {}: {e}", path.display()),
        }
    }
}

/// The trace half of [`maybe_export`]: writes a Chrome trace of the sink's
/// spans and instants to the path `REALM_TRACE` names, when set. Binaries
/// with a dedicated trace-demo run (fig6a) call this with that run's sink
/// instead of the sweep-wide merge.
pub fn maybe_export_trace(sink: &TelemetrySink) {
    if let Some(path) = trace_path_from_env() {
        match std::fs::write(&path, chrome_trace(sink)) {
            Ok(()) => eprintln!("[telemetry] wrote trace {}", path.display()),
            Err(e) => eprintln!("[telemetry] could not write trace {}: {e}", path.display()),
        }
    }
}

/// True when `key` is `"<component>.<signal>"` — the component-level
/// signal, not a nested per-region one like
/// `realm.core.region0.read_latency`. Component names may themselves be
/// dotted (`realm.core`), so the only exclusion is a trailing
/// `region<digits>` path segment before the signal.
fn is_component_signal(key: &str, signal: &str) -> bool {
    let Some(prefix) = key.strip_suffix(signal).and_then(|p| p.strip_suffix('.')) else {
        return false;
    };
    let last_segment = prefix.rsplit('.').next().unwrap_or(prefix);
    let is_region = last_segment
        .strip_prefix("region")
        .is_some_and(|rest| !rest.is_empty() && rest.bytes().all(|b| b.is_ascii_digit()));
    !is_region
}

/// Sums every component-level counter named `signal` (e.g. the total
/// `isolation_trips` across all REALM units in the system).
pub fn sum_counters(sink: &TelemetrySink, signal: &str) -> u64 {
    sink.counters()
        .iter()
        .filter(|(k, _)| is_component_signal(k, signal))
        .map(|(_, &v)| v)
        .sum()
}

/// Merges every component-level histogram named `signal` (e.g. all units'
/// `read_latency`) into one. Per-region histograms are excluded — they are
/// sub-samples of the component-level ones and would double-count.
pub fn merged_histogram(sink: &TelemetrySink, signal: &str) -> Histogram {
    let mut merged = Histogram::new();
    for (_, h) in sink
        .histograms()
        .iter()
        .filter(|(k, _)| is_component_signal(k, signal))
    {
        merged.merge(h);
    }
    merged
}

/// Distills one run's registry into the kernel-invariant report row for the
/// `telemetry` section: REALM regulation totals plus latency-histogram
/// bounds. Every value comes from component state (never `kernel.*`
/// counters), so the row is identical under all four kernels and
/// independent of whether trace/telemetry export was armed.
pub fn point_row(label: &str, sink: &TelemetrySink) -> Row {
    let read = merged_histogram(sink, "read_latency");
    let write = merged_histogram(sink, "write_latency");
    let bound = |h: &Histogram, p: f64| h.quantile_bound(p).unwrap_or(0) as f64;
    Row::new(
        label,
        vec![
            (
                "isolation_trips",
                sum_counters(sink, "isolation_trips") as f64,
            ),
            (
                "budget_exhaustions",
                sum_counters(sink, "budget_exhaustions") as f64,
            ),
            (
                "isolated_cycles",
                sum_counters(sink, "isolated_cycles") as f64,
            ),
            ("read_lat_med", bound(&read, 0.5)),
            ("read_lat_p99", bound(&read, 0.99)),
            ("read_lat_max", read.max() as f64),
            ("write_lat_med", bound(&write, 0.5)),
            ("write_lat_p99", bound(&write, 0.99)),
        ],
    )
}

/// Per-point telemetry rows for a whole sweep, labels taken from `labels`.
pub fn point_rows<'a, L, S>(labelled: L) -> Vec<Row>
where
    L: IntoIterator<Item = (&'a str, S)>,
    S: std::borrow::Borrow<TelemetrySink>,
{
    labelled
        .into_iter()
        .map(|(label, sink)| point_row(label, sink.borrow()))
        .collect()
}

/// The kernel self-profile as a JSON array for `BENCH_kernel.json`:
/// per-component visits, batch-window cycles, wakes, and (with the
/// `self-profile` feature) wall-time.
pub fn profile_json(profile: &[ComponentProfile]) -> Json {
    let int = |n: u64| Json::Int(i64::try_from(n).unwrap_or(i64::MAX));
    Json::Arr(
        profile
            .iter()
            .map(|p| {
                Json::Obj(vec![
                    ("name".to_owned(), Json::Str(p.name.clone())),
                    ("visits".to_owned(), int(p.visits)),
                    ("batch_cycles".to_owned(), int(p.batch_cycles)),
                    ("wakes".to_owned(), int(p.wakes)),
                    ("wall_ns".to_owned(), int(p.wall_ns)),
                ])
            })
            .collect(),
    )
}

/// Validates that `text` is a well-formed Chrome `trace_event` JSON
/// document: a `traceEvents` array whose entries all carry the mandatory
/// fields for their phase (`M` metadata, `X` complete spans with `dur`,
/// `i` instants with scope `t`), with non-negative integer timestamps.
/// Used by the schema unit test and by integration checks on the traces
/// the binaries emit.
///
/// # Errors
///
/// Describes the first malformed event.
pub fn validate_chrome_trace(text: &str) -> Result<(), String> {
    let doc = crate::json::parse(text)?;
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("trace missing `traceEvents` array")?;
    for (i, ev) in events.iter().enumerate() {
        let field = |key: &str| {
            ev.get(key)
                .ok_or_else(|| format!("event {i} missing `{key}`"))
        };
        let str_field = |key: &str| {
            field(key)?
                .as_str()
                .map(str::to_owned)
                .ok_or_else(|| format!("event {i} `{key}` is not a string"))
        };
        let int_field = |key: &str| {
            field(key)?
                .as_u64()
                .ok_or_else(|| format!("event {i} `{key}` is not a non-negative integer"))
        };
        let ph = str_field("ph")?;
        str_field("name")?;
        int_field("pid")?;
        int_field("tid")?;
        match ph.as_str() {
            "M" => {
                // Thread-name metadata: args.name carries the track label.
                ev.get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("metadata event {i} missing `args.name`"))?;
            }
            "X" => {
                int_field("ts")?;
                int_field("dur")?;
            }
            "i" => {
                int_field("ts")?;
                let scope = str_field("s")?;
                if scope != "t" && scope != "p" && scope != "g" {
                    return Err(format!("instant event {i} has invalid scope `{scope}`"));
                }
            }
            other => return Err(format!("event {i} has unsupported phase `{other}`")),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_sink() -> TelemetrySink {
        let mut sink = TelemetrySink::new();
        sink.counter("core_realm.isolation_trips", 2);
        sink.counter("dma_realm.isolation_trips", 3);
        sink.counter("dma_realm.budget_exhaustions", 3);
        sink.counter("core_realm.isolated_cycles", 0);
        sink.counter("kernel.contract_violations", 7); // must be ignored
        for v in [1, 2, 4, 8, 100] {
            sink.record("core_realm.read_latency", v);
        }
        sink.record("core_realm.region0.read_latency", 1_000_000); // excluded
        sink.record("dma_realm.write_latency", 6);
        sink.span("core", "read", 10, 20);
        sink.instant("dma_realm", "isolation-trip", 15);
        sink
    }

    #[test]
    fn component_signal_matching_skips_regions() {
        assert!(is_component_signal(
            "core_realm.read_latency",
            "read_latency"
        ));
        // Dotted component names (the SoC testbench's `realm.core`) match.
        assert!(is_component_signal(
            "realm.core.read_latency",
            "read_latency"
        ));
        assert!(!is_component_signal(
            "realm.core.region0.read_latency",
            "read_latency"
        ));
        // A bare signal name has no component prefix.
        assert!(!is_component_signal("read_latency", "read_latency"));
        // Mid-segment suffixes are not matches.
        assert!(!is_component_signal("unit.xread_latency", "read_latency"));
    }

    #[test]
    fn point_row_distills_kernel_invariant_signals() {
        let row = point_row("frag=1", &demo_sink());
        assert_eq!(row.label, "frag=1");
        let get = |k: &str| {
            row.values
                .iter()
                .find(|(name, _)| name == k)
                .map(|(_, v)| *v)
                .unwrap()
        };
        assert_eq!(get("isolation_trips"), 5.0);
        assert_eq!(get("budget_exhaustions"), 3.0);
        assert_eq!(get("isolated_cycles"), 0.0);
        // Region sub-histograms stay out: max comes from the component-level
        // samples (100), not the 1e6 region outlier.
        assert_eq!(get("read_lat_max"), 100.0);
        assert_eq!(get("write_lat_med"), 6.0);
        // `kernel.*` counters never surface in the row.
        assert!(row.values.iter().all(|(k, _)| !k.contains("contract")));
    }

    #[test]
    fn exported_chrome_trace_passes_schema_validation() {
        let text = chrome_trace(&demo_sink());
        validate_chrome_trace(&text).unwrap();
        assert!(
            text.contains("\"ph\": \"X\"") || text.contains("\"ph\":\"X\""),
            "{text}"
        );
        assert!(text.contains("isolation-trip"), "{text}");
    }

    #[test]
    fn schema_validation_rejects_malformed_traces() {
        assert!(validate_chrome_trace("{}").is_err());
        assert!(validate_chrome_trace(r#"{"traceEvents": [{"ph": "X"}]}"#).is_err());
        let bad_scope = r#"{"traceEvents": [{"ph": "i", "name": "e", "pid": 1,
                            "tid": 1, "ts": 5, "s": "z"}]}"#;
        assert!(validate_chrome_trace(bad_scope)
            .unwrap_err()
            .contains("invalid scope"));
        let bad_phase = r#"{"traceEvents": [{"ph": "Q", "name": "e", "pid": 1,
                            "tid": 1}]}"#;
        assert!(validate_chrome_trace(bad_phase)
            .unwrap_err()
            .contains("unsupported phase"));
    }

    #[test]
    fn profile_json_uses_integer_counters() {
        let profile = vec![ComponentProfile {
            index: 0,
            name: "core".to_owned(),
            visits: 42,
            batch_cycles: 7,
            wakes: 3,
            wall_ns: 0,
        }];
        let json = profile_json(&profile);
        let entry = &json.as_arr().unwrap()[0];
        assert_eq!(entry.get("visits"), Some(&Json::Int(42)));
        assert_eq!(entry.get("wall_ns"), Some(&Json::Int(0)));
        assert_eq!(entry.get("name").and_then(Json::as_str), Some("core"));
    }

    #[test]
    fn env_gates_parse_off_values() {
        // Serialized against other env-reading tests by running in one
        // process; set/restore around each check.
        for off in ["", "0", "off"] {
            std::env::set_var("REALM_TELEMETRY", off);
            assert!(!telemetry_from_env(), "REALM_TELEMETRY={off:?}");
            std::env::set_var("REALM_TRACE", off);
            assert!(trace_path_from_env().is_none(), "REALM_TRACE={off:?}");
        }
        std::env::set_var("REALM_TELEMETRY", "1");
        assert!(telemetry_from_env());
        std::env::set_var("REALM_TRACE", "/tmp/out.json");
        assert_eq!(trace_path_from_env(), Some(PathBuf::from("/tmp/out.json")));
        std::env::remove_var("REALM_TELEMETRY");
        std::env::remove_var("REALM_TRACE");
        assert!(!telemetry_from_env());
        assert!(trace_path_from_env().is_none());
    }
}

//! Budget and period selection from measured statistics.
//!
//! The paper's abstract promises that AXI-REALM *"tracks each manager's
//! access and interference statistics for optimal budget and period
//! selection"* — this module closes that loop: it turns the M&R unit's
//! measured counters into concrete budget/period register values for a
//! target bandwidth share, the computation an integrator (or hypervisor)
//! performs between a profiling run and deployment.

use crate::counters::RegionStats;

/// Peak payload bandwidth of the simulated 64-bit bus, in bytes per cycle.
pub const BUS_BYTES_PER_CYCLE: f64 = 8.0;

/// A concrete budget/period recommendation.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct BudgetAdvice {
    /// Suggested byte budget per period.
    pub budget: u64,
    /// Suggested reservation period in cycles.
    pub period: u64,
    /// The manager's measured demand in bytes per cycle.
    pub measured_demand: f64,
    /// The bandwidth share the suggestion grants (of bus peak).
    pub granted_share: f64,
    /// `true` if the budget actually constrains the measured demand.
    pub is_binding: bool,
}

impl BudgetAdvice {
    /// The sustained byte rate the suggestion allows.
    pub fn allowed_rate(&self) -> f64 {
        self.budget as f64 / self.period as f64
    }
}

/// Suggests a budget capping a manager at `target_share` of bus bandwidth.
///
/// `stats` and `elapsed_cycles` come from a profiling run (read them from
/// the unit's registers or [`RegionStats`] directly); `period` is chosen by
/// the caller — shorter periods bound the worst-case burst a depleted
/// manager can still have in flight, at the cost of more frequent
/// replenishment (the paper's Fig. 6b uses 1000 cycles).
///
/// # Panics
///
/// Panics if `target_share` is outside `(0.0, 1.0]`, or `period` or
/// `elapsed_cycles` is zero.
///
/// ```
/// use axi_realm::planner::suggest_budget;
/// use axi_realm::RegionStats;
///
/// let mut stats = RegionStats::default();
/// stats.bytes_total = 600_000; // measured over 100k cycles: 6 B/cycle
/// let advice = suggest_budget(&stats, 100_000, 0.25, 1_000);
/// assert_eq!(advice.budget, 2_000); // 25% of 8 B/cycle × 1000 cycles
/// assert!(advice.is_binding);       // demand (6) exceeds the cap (2)
/// ```
pub fn suggest_budget(
    stats: &RegionStats,
    elapsed_cycles: u64,
    target_share: f64,
    period: u64,
) -> BudgetAdvice {
    assert!(
        target_share > 0.0 && target_share <= 1.0,
        "target share must be in (0, 1]"
    );
    assert!(period > 0, "period must be nonzero");
    assert!(elapsed_cycles > 0, "profiling window must be nonzero");
    let measured_demand = stats.bytes_total as f64 / elapsed_cycles as f64;
    let allowed = target_share * BUS_BYTES_PER_CYCLE;
    let budget = (allowed * period as f64).floor() as u64;
    BudgetAdvice {
        budget,
        period,
        measured_demand,
        granted_share: target_share,
        is_binding: measured_demand > allowed,
    }
}

/// Splits the bus among managers proportionally to given weights, returning
/// one advice per manager — the multi-tenant variant (weights are SLA
/// tiers, as in the SmartNIC scenario).
///
/// # Panics
///
/// Panics if `weights` is empty, any weight is zero, or `period` is zero.
pub fn split_by_weight(weights: &[u32], period: u64) -> Vec<BudgetAdvice> {
    assert!(!weights.is_empty(), "need at least one manager");
    assert!(period > 0, "period must be nonzero");
    let total: u64 = weights.iter().map(|&w| u64::from(w)).sum();
    assert!(
        total > 0 && weights.iter().all(|&w| w > 0),
        "weights must be positive"
    );
    weights
        .iter()
        .map(|&w| {
            let share = f64::from(w) / total as f64;
            BudgetAdvice {
                budget: (share * BUS_BYTES_PER_CYCLE * period as f64).floor() as u64,
                period,
                measured_demand: 0.0,
                granted_share: share,
                is_binding: false,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(bytes: u64) -> RegionStats {
        RegionStats {
            bytes_total: bytes,
            ..RegionStats::default()
        }
    }

    #[test]
    fn caps_at_the_requested_share() {
        let advice = suggest_budget(&stats(800_000), 100_000, 0.5, 1_000);
        assert_eq!(advice.budget, 4_000);
        assert!((advice.allowed_rate() - 4.0).abs() < 1e-9);
        assert!(advice.is_binding, "8 B/cycle demand > 4 B/cycle cap");
    }

    #[test]
    fn non_binding_when_demand_is_low() {
        let advice = suggest_budget(&stats(10_000), 100_000, 0.5, 1_000);
        assert!(!advice.is_binding, "0.1 B/cycle demand < 4 B/cycle cap");
        assert!((advice.measured_demand - 0.1).abs() < 1e-9);
    }

    #[test]
    fn weight_split_sums_to_the_bus() {
        let advice = split_by_weight(&[4, 2, 1, 1], 1_000);
        assert_eq!(advice.len(), 4);
        let total: u64 = advice.iter().map(|a| a.budget).sum();
        assert_eq!(total, 8_000, "the whole 8 B/cycle bus is allocated");
        assert_eq!(advice[0].budget, 4_000);
        assert_eq!(advice[3].budget, 1_000);
    }

    #[test]
    #[should_panic(expected = "target share")]
    fn rejects_bad_share() {
        let _ = suggest_budget(&stats(1), 1, 1.5, 1_000);
    }

    #[test]
    #[should_panic(expected = "weights must be positive")]
    fn rejects_zero_weight() {
        let _ = split_by_weight(&[1, 0], 1_000);
    }
}

//! The bus guard: TID-based exclusive ownership of the configuration space.

use axi4::{Resp, TxnId};
use axi_mem::MmioDevice;

/// Value read from the guard register while the space is unclaimed, and
/// written to release ownership.
pub const GUARD_UNCLAIMED: u64 = u64::MAX;

/// Protects a configuration device against misbehaving or malicious
/// managers (paper §III-B).
///
/// After reset the space is *unclaimed*: every access except to the guard
/// register errors. The first write to the guard register claims exclusive
/// ownership for the writer's transaction ID — in Cheshire, CVA6 (or a
/// hardware root of trust) claims it early in boot. The owner can *hand
/// over* to another manager by writing that manager's TID, or release by
/// writing [`GUARD_UNCLAIMED`].
///
/// ```
/// use axi_realm::{BusGuard, GUARD_UNCLAIMED};
/// use axi_mem::MmioDevice;
/// use axi4::{Resp, TxnId};
///
/// struct Reg(u64);
/// impl MmioDevice for Reg {
///     fn read(&mut self, _: u64, _: TxnId) -> (u64, Resp) { (self.0, Resp::Okay) }
///     fn write(&mut self, _: u64, d: u64, _: u8, _: TxnId) -> Resp { self.0 = d; Resp::Okay }
/// }
///
/// let mut g = BusGuard::new(Reg(0));
/// let cva6 = TxnId::new(0);
/// let rogue = TxnId::new(7);
/// // Unclaimed: inner space errors.
/// assert_eq!(g.write(0x8, 1, 0xff, rogue), Resp::SlvErr);
/// // CVA6 claims, then owns the space.
/// assert_eq!(g.write(0x0, 0, 0xff, cva6), Resp::Okay);
/// assert_eq!(g.write(0x8, 1, 0xff, cva6), Resp::Okay);
/// assert_eq!(g.write(0x8, 2, 0xff, rogue), Resp::SlvErr);
/// ```
#[derive(Debug)]
pub struct BusGuard<D> {
    inner: D,
    owner: Option<u32>,
    guard_offset: u64,
}

impl<D: MmioDevice> BusGuard<D> {
    /// Wraps `inner` with the guard register at offset 0.
    pub fn new(inner: D) -> Self {
        Self::with_guard_offset(inner, 0)
    }

    /// Wraps `inner` with the guard register at a custom offset.
    pub fn with_guard_offset(inner: D, guard_offset: u64) -> Self {
        Self {
            inner,
            owner: None,
            guard_offset,
        }
    }

    /// The current owner's transaction ID, if claimed.
    pub fn owner(&self) -> Option<TxnId> {
        self.owner.map(TxnId::new)
    }

    /// The guarded device.
    pub fn inner(&self) -> &D {
        &self.inner
    }

    /// Mutable access to the guarded device (testbench backdoor).
    pub fn inner_mut(&mut self) -> &mut D {
        &mut self.inner
    }

    /// Consumes the guard, returning the device.
    pub fn into_inner(self) -> D {
        self.inner
    }

    fn owned_by(&self, id: TxnId) -> bool {
        self.owner == Some(id.raw())
    }
}

impl<D: MmioDevice> MmioDevice for BusGuard<D> {
    fn read(&mut self, offset: u64, id: TxnId) -> (u64, Resp) {
        if offset == self.guard_offset {
            let value = self.owner.map_or(GUARD_UNCLAIMED, u64::from);
            return (value, Resp::Okay);
        }
        if self.owned_by(id) {
            self.inner.read(offset, id)
        } else {
            (0, Resp::SlvErr)
        }
    }

    fn write(&mut self, offset: u64, data: u64, strb: u8, id: TxnId) -> Resp {
        if offset == self.guard_offset {
            return match self.owner {
                // Claim: first writer wins, whatever it writes.
                None => {
                    self.owner = Some(id.raw());
                    Resp::Okay
                }
                // Handover (or release with GUARD_UNCLAIMED) by the owner.
                Some(owner) if owner == id.raw() => {
                    self.owner = (data != GUARD_UNCLAIMED).then_some(data as u32);
                    Resp::Okay
                }
                Some(_) => Resp::SlvErr,
            };
        }
        if self.owned_by(id) {
            self.inner.write(offset, data, strb, id)
        } else {
            Resp::SlvErr
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct Scratch(u64);

    impl MmioDevice for Scratch {
        fn read(&mut self, _offset: u64, _id: TxnId) -> (u64, Resp) {
            (self.0, Resp::Okay)
        }
        fn write(&mut self, _offset: u64, data: u64, _strb: u8, _id: TxnId) -> Resp {
            self.0 = data;
            Resp::Okay
        }
    }

    const A: TxnId = TxnId::new(1);
    const B: TxnId = TxnId::new(2);

    #[test]
    fn unclaimed_space_errors_except_guard() {
        let mut g = BusGuard::new(Scratch::default());
        assert_eq!(g.read(0x0, A), (GUARD_UNCLAIMED, Resp::Okay));
        assert_eq!(g.read(0x8, A).1, Resp::SlvErr);
        assert_eq!(g.write(0x8, 5, 0xff, A), Resp::SlvErr);
        assert_eq!(g.owner(), None);
    }

    #[test]
    fn first_claim_wins() {
        let mut g = BusGuard::new(Scratch::default());
        assert_eq!(g.write(0x0, 0xdead, 0xff, A), Resp::Okay);
        assert_eq!(g.owner(), Some(A));
        // B cannot steal.
        assert_eq!(g.write(0x0, u64::from(B.raw()), 0xff, B), Resp::SlvErr);
        assert_eq!(g.owner(), Some(A));
        // Guard register reads back the owner for everyone.
        assert_eq!(g.read(0x0, B), (u64::from(A.raw()), Resp::Okay));
    }

    #[test]
    fn owner_accesses_inner_others_fail() {
        let mut g = BusGuard::new(Scratch::default());
        g.write(0x0, 0, 0xff, A);
        assert_eq!(g.write(0x8, 77, 0xff, A), Resp::Okay);
        assert_eq!(g.read(0x8, A), (77, Resp::Okay));
        assert_eq!(g.read(0x8, B).1, Resp::SlvErr);
        assert_eq!(g.inner().0, 77);
    }

    #[test]
    fn handover_transfers_ownership() {
        let mut g = BusGuard::new(Scratch::default());
        g.write(0x0, 0, 0xff, A);
        assert_eq!(g.write(0x0, u64::from(B.raw()), 0xff, A), Resp::Okay);
        assert_eq!(g.owner(), Some(B));
        assert_eq!(g.write(0x8, 1, 0xff, A), Resp::SlvErr);
        assert_eq!(g.write(0x8, 1, 0xff, B), Resp::Okay);
    }

    #[test]
    fn release_returns_to_unclaimed() {
        let mut g = BusGuard::new(Scratch::default());
        g.write(0x0, 0, 0xff, A);
        assert_eq!(g.write(0x0, GUARD_UNCLAIMED, 0xff, A), Resp::Okay);
        assert_eq!(g.owner(), None);
        // Now B can claim.
        assert_eq!(g.write(0x0, 0, 0xff, B), Resp::Okay);
        assert_eq!(g.owner(), Some(B));
    }

    #[test]
    fn custom_guard_offset() {
        let mut g = BusGuard::with_guard_offset(Scratch::default(), 0x100);
        assert_eq!(g.read(0x100, A), (GUARD_UNCLAIMED, Resp::Okay));
        assert_eq!(g.write(0x100, 0, 0xff, A), Resp::Okay);
        assert_eq!(g.write(0x0, 9, 0xff, A), Resp::Okay);
        assert_eq!(g.into_inner().0, 9);
    }
}

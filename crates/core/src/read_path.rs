//! The read side of the REALM unit: fragment emission and response
//! reassembly.

use std::collections::{BTreeMap, VecDeque};

use axi4::{ArBeat, FragPlan, RBeat, Resp};

/// What happened when a downstream read beat was processed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RoutedRead {
    /// The beat to forward upstream, with `last` gated to the *original*
    /// burst boundary.
    pub beat: RBeat,
    /// Bytes transferred by this beat (budget charge).
    pub bytes: u64,
    /// Region the transaction was attributed to.
    pub region: Option<usize>,
    /// Set when this beat completed the original transaction: the latency
    /// from acceptance.
    pub completed_latency: Option<u64>,
}

#[derive(Debug)]
struct ReadTxnState {
    total_beats: u32,
    beats_done: u32,
    frags_total: usize,
    frags_emitted: usize,
    region: Option<usize>,
    accepted_at: u64,
    beat_bytes: u64,
    resp: Resp,
}

/// Splitter + bookkeeping for the read direction.
///
/// Incoming `AR` bursts are decomposed per a [`FragPlan`]; fragments are
/// emitted downstream one per cycle, bounded by the pending/throttle limit;
/// returning `R` beats are passed through with `r.last` gated to the length
/// of the original transaction (paper §III-A).
#[derive(Debug)]
pub struct ReadPath {
    num_pending: usize,
    frag_queue: VecDeque<ArBeat>,
    txns: BTreeMap<u32, VecDeque<ReadTxnState>>,
    pending_txns: usize,
    outstanding_frags: usize,
}

impl ReadPath {
    /// Creates the read path with its design-time pending limit.
    pub fn new(num_pending: usize) -> Self {
        Self {
            num_pending,
            frag_queue: VecDeque::new(),
            txns: BTreeMap::new(),
            pending_txns: 0,
            outstanding_frags: 0,
        }
    }

    /// `true` if a new transaction may be accepted (pending limit).
    pub fn can_accept(&self) -> bool {
        self.pending_txns < self.num_pending
    }

    /// Original transactions in flight.
    pub fn pending(&self) -> usize {
        self.pending_txns
    }

    /// Fragments emitted downstream and not yet fully answered.
    pub fn outstanding_fragments(&self) -> usize {
        self.outstanding_frags
    }

    /// `true` when nothing is in flight and nothing waits for emission.
    pub fn is_drained(&self) -> bool {
        self.pending_txns == 0 && self.frag_queue.is_empty()
    }

    /// Accepts a transaction with its fragmentation plan.
    ///
    /// # Panics
    ///
    /// Panics if called when [`ReadPath::can_accept`] is `false`.
    pub fn accept(&mut self, ar: ArBeat, plan: &FragPlan, region: Option<usize>, cycle: u64) {
        assert!(self.can_accept(), "accept() without can_accept()");
        for frag in plan {
            let mut f = ar;
            f.addr = frag.addr;
            f.len = frag.len;
            f.burst = frag.kind;
            self.frag_queue.push_back(f);
        }
        self.txns
            .entry(ar.id.raw())
            .or_default()
            .push_back(ReadTxnState {
                total_beats: u32::from(ar.len.beats()),
                beats_done: 0,
                frags_total: plan.len(),
                frags_emitted: 0,
                region,
                accepted_at: cycle,
                beat_bytes: ar.size.bytes(),
                resp: Resp::Okay,
            });
        self.pending_txns += 1;
    }

    /// The next fragment to emit downstream, if one exists and the
    /// outstanding-fragment limit allows it.
    pub fn peek_fragment(&self, limit: usize) -> Option<&ArBeat> {
        if self.outstanding_frags >= limit {
            return None;
        }
        self.frag_queue.front()
    }

    /// Removes and returns the fragment previously seen by
    /// [`ReadPath::peek_fragment`], with its budget charge: the M&R unit
    /// sits downstream of the splitter, so budgets are spent per *fragment*
    /// as it enters the memory system. Call only after the downstream push
    /// is known to succeed.
    ///
    /// # Panics
    ///
    /// Panics if no fragment is queued.
    pub fn emit_fragment(&mut self) -> (ArBeat, u64, Option<usize>) {
        let frag = self
            .frag_queue
            .pop_front()
            .expect("emit_fragment() without peek_fragment()");
        let states = self
            .txns
            .get_mut(&frag.id.raw())
            .expect("fragment belongs to a tracked transaction");
        let state = states
            .iter_mut()
            .find(|s| s.frags_emitted < s.frags_total)
            .expect("some transaction still has fragments to emit");
        state.frags_emitted += 1;
        self.outstanding_frags += 1;
        let bytes = u64::from(frag.len.beats()) * state.beat_bytes;
        (frag, bytes, state.region)
    }

    /// Processes one downstream `R` beat: attributes it to the oldest
    /// incomplete transaction of its ID, gates `last`, and reports the
    /// charge and (on the final beat) the completion latency.
    ///
    /// # Panics
    ///
    /// Panics if the beat's ID has no transaction in flight — a protocol
    /// violation by the downstream system.
    pub fn on_response(&mut self, r: RBeat, cycle: u64) -> RoutedRead {
        let states = self
            .txns
            .get_mut(&r.id.raw())
            .expect("response for an unknown read ID");
        let state = states.front_mut().expect("response with no read in flight");
        state.beats_done += 1;
        state.resp = state.resp.merge(r.resp);
        if r.last {
            // A downstream `last` closes one *fragment*.
            self.outstanding_frags -= 1;
        }
        let txn_done = state.beats_done == state.total_beats;
        let mut out = r;
        out.last = txn_done;
        let routed = RoutedRead {
            beat: out,
            bytes: state.beat_bytes,
            region: state.region,
            completed_latency: txn_done.then(|| cycle - state.accepted_at),
        };
        if txn_done {
            debug_assert_eq!(state.frags_emitted, state.frags_total);
            states.pop_front();
            if states.is_empty() {
                self.txns.remove(&r.id.raw());
            }
            self.pending_txns -= 1;
        }
        routed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use axi4::{fragment_read, Addr, BurstKind, BurstLen, BurstSize, TxnId};

    fn ar(id: u32, addr: u64, beats: u16) -> ArBeat {
        ArBeat::new(
            TxnId::new(id),
            Addr::new(addr),
            BurstLen::new(beats).unwrap(),
            BurstSize::bus64(),
            BurstKind::Incr,
        )
    }

    fn respond_all(
        path: &mut ReadPath,
        id: u32,
        frag_len: u16,
        total: u16,
        cycle: u64,
    ) -> Vec<RoutedRead> {
        // Downstream answers each fragment with `last` on its final beat.
        let mut out = Vec::new();
        let mut into_frag = 0;
        for i in 0..total {
            into_frag += 1;
            let frag_last = into_frag == frag_len || i == total - 1;
            if frag_last {
                into_frag = 0;
            }
            let beat = RBeat::okay(TxnId::new(id), u64::from(i), frag_last);
            out.push(path.on_response(beat, cycle + u64::from(i)));
        }
        out
    }

    #[test]
    fn passthrough_single_fragment() {
        let mut p = ReadPath::new(8);
        let beat = ar(1, 0x1000, 4);
        let plan = fragment_read(&beat, 256).unwrap();
        p.accept(beat, &plan, Some(0), 10);
        assert_eq!(p.pending(), 1);
        assert!(p.peek_fragment(8).is_some());
        let (f, bytes, region) = p.emit_fragment();
        assert_eq!(bytes, 32);
        assert_eq!(region, Some(0));
        assert_eq!(f.len.beats(), 4);
        assert_eq!(p.outstanding_fragments(), 1);

        let routed = respond_all(&mut p, 1, 4, 4, 20);
        assert!(!routed[2].beat.last);
        assert!(routed[3].beat.last);
        assert_eq!(routed[3].completed_latency, Some(13));
        assert!(p.is_drained());
    }

    #[test]
    fn fragments_gate_last_to_original_boundary() {
        let mut p = ReadPath::new(8);
        let beat = ar(1, 0x1000, 8);
        let plan = fragment_read(&beat, 2).unwrap();
        p.accept(beat, &plan, None, 0);
        // Emit all four fragments.
        for _ in 0..4 {
            assert!(p.peek_fragment(8).is_some());
            p.emit_fragment();
        }
        assert_eq!(p.outstanding_fragments(), 4);
        let routed = respond_all(&mut p, 1, 2, 8, 100);
        // Downstream sent last on beats 1,3,5,7; upstream only beat 7.
        let upstream_lasts: Vec<bool> = routed.iter().map(|r| r.beat.last).collect();
        assert_eq!(
            upstream_lasts,
            [false, false, false, false, false, false, false, true]
        );
        assert_eq!(p.outstanding_fragments(), 0);
        assert!(p.is_drained());
    }

    #[test]
    fn pending_limit_blocks_accept() {
        let mut p = ReadPath::new(2);
        for i in 0..2 {
            let beat = ar(i, 0x1000 + u64::from(i) * 64, 1);
            let plan = fragment_read(&beat, 1).unwrap();
            assert!(p.can_accept());
            p.accept(beat, &plan, None, 0);
        }
        assert!(!p.can_accept());
    }

    #[test]
    fn throttle_limit_blocks_emission() {
        let mut p = ReadPath::new(8);
        let beat = ar(1, 0x1000, 8);
        let plan = fragment_read(&beat, 1).unwrap();
        p.accept(beat, &plan, None, 0);
        // Limit 2: only two fragments may be outstanding.
        p.emit_fragment();
        p.emit_fragment();
        assert!(p.peek_fragment(2).is_none());
        assert!(p.peek_fragment(3).is_some());
        // A fragment completing frees a slot.
        let r = RBeat::okay(TxnId::new(1), 0, true);
        p.on_response(r, 1);
        assert!(p.peek_fragment(2).is_some());
    }

    #[test]
    fn interleaved_ids_tracked_independently() {
        let mut p = ReadPath::new(8);
        for id in [1u32, 2] {
            let beat = ar(id, 0x1000 + u64::from(id) * 0x100, 2);
            let plan = fragment_read(&beat, 1).unwrap();
            p.accept(beat, &plan, None, 0);
        }
        for _ in 0..4 {
            p.emit_fragment();
        }
        // Interleave responses: id1 beat, id2 beat, id1 last, id2 last.
        let r1 = p.on_response(RBeat::okay(TxnId::new(1), 0, true), 10);
        assert!(!r1.beat.last);
        let r2 = p.on_response(RBeat::okay(TxnId::new(2), 0, true), 11);
        assert!(!r2.beat.last);
        let r3 = p.on_response(RBeat::okay(TxnId::new(1), 0, true), 12);
        assert!(r3.beat.last);
        let r4 = p.on_response(RBeat::okay(TxnId::new(2), 0, true), 13);
        assert!(r4.beat.last);
        assert!(p.is_drained());
    }

    #[test]
    fn same_id_back_to_back_transactions() {
        let mut p = ReadPath::new(8);
        for _ in 0..2 {
            let beat = ar(5, 0x1000, 2);
            let plan = fragment_read(&beat, 1).unwrap();
            p.accept(beat, &plan, None, 0);
        }
        for _ in 0..4 {
            p.emit_fragment();
        }
        let lasts: Vec<bool> = (0..4)
            .map(|i| {
                p.on_response(RBeat::okay(TxnId::new(5), 0, true), i)
                    .beat
                    .last
            })
            .collect();
        assert_eq!(lasts, [false, true, false, true]);
    }

    #[test]
    fn bytes_charged_per_beat() {
        let mut p = ReadPath::new(8);
        let beat = ar(1, 0x1000, 2);
        let plan = fragment_read(&beat, 256).unwrap();
        p.accept(beat, &plan, Some(1), 0);
        p.emit_fragment();
        let r = p.on_response(RBeat::okay(TxnId::new(1), 0, false), 5);
        assert_eq!(r.bytes, 8);
        assert_eq!(r.region, Some(1));
    }

    #[test]
    #[should_panic(expected = "unknown read ID")]
    fn unknown_id_panics() {
        let mut p = ReadPath::new(8);
        let _ = p.on_response(RBeat::okay(TxnId::new(9), 0, true), 0);
    }
}

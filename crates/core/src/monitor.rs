//! The monitoring & regulation core: budgets, periods, isolation, and
//! throttling decisions.

use axi4::Addr;

use crate::config::{RegionConfig, RuntimeConfig};
use crate::counters::RegionStats;

/// Live state of one subordinate region: its configuration mirror, the
/// remaining budget, and its statistics.
#[derive(Clone, Debug, Default)]
pub struct RegionState {
    /// The region's configured address range and reservation parameters.
    pub config: RegionConfig,
    /// Bytes left in the current period (meaningless when unregulated).
    pub budget_left: u64,
    /// Cycle the current period started.
    pub period_start: u64,
    /// Statistics mirrored into the register file.
    pub stats: RegionStats,
}

impl RegionState {
    /// `true` when the region enforces a budget at all.
    pub fn is_regulated(&self) -> bool {
        self.config.budget_max > 0
    }

    /// `true` when a regulated region has exhausted its budget.
    pub fn is_depleted(&self) -> bool {
        self.is_regulated() && self.budget_left == 0
    }
}

/// The budget/period engine of the M&R unit.
///
/// Every period, each region's byte budget is replenished; data transfers
/// charge the region containing the transaction's start address; when any
/// regulated region runs dry the manager is isolated until the next
/// replenishment (see the paper's Fig. 4).
#[derive(Clone, Debug)]
pub struct BudgetMonitor {
    regions: Vec<RegionState>,
}

impl BudgetMonitor {
    /// Builds the monitor from the runtime region configuration.
    pub fn new(config: &RuntimeConfig) -> Self {
        let regions = config
            .regions
            .iter()
            .map(|&config| RegionState {
                config,
                budget_left: config.budget_max,
                period_start: 0,
                stats: RegionStats::default(),
            })
            .collect();
        Self { regions }
    }

    /// Region states, indexed as configured.
    pub fn regions(&self) -> &[RegionState] {
        &self.regions
    }

    /// Reprograms one region's configuration; the new budget takes effect
    /// immediately (replenish-on-write, as a hypervisor reprogram would).
    pub fn set_region(&mut self, index: usize, config: RegionConfig, cycle: u64) {
        let r = &mut self.regions[index];
        r.config = config;
        r.budget_left = config.budget_max;
        r.period_start = cycle;
    }

    /// Returns the index of the region containing `addr`, if any.
    pub fn region_of(&self, addr: Addr) -> Option<usize> {
        self.regions.iter().position(|r| r.config.contains(addr))
    }

    /// Advances period counters: replenishes budgets whose period elapsed.
    ///
    /// Replenishment stays on the period grid: `period_start` advances by
    /// whole multiples of the period, never to the observing cycle itself.
    /// A late or gapped tick (the kernel fast-forwards over idle stretches)
    /// therefore lands on the same grid a tick-per-cycle run would, instead
    /// of silently stretching every subsequent period.
    pub fn tick(&mut self, cycle: u64) {
        for r in &mut self.regions {
            if r.config.period > 0 && cycle >= r.period_start + r.config.period {
                let elapsed = (cycle - r.period_start) / r.config.period;
                r.period_start += elapsed * r.config.period;
                r.budget_left = r.config.budget_max;
                r.stats.bytes_this_period = 0;
            }
        }
    }

    /// Charges `bytes` of transferred data to a region; saturates at zero.
    pub fn charge(&mut self, region: usize, bytes: u64) {
        let r = &mut self.regions[region];
        r.stats.bytes_this_period += bytes;
        r.stats.bytes_total += bytes;
        if r.is_regulated() {
            r.budget_left = r.budget_left.saturating_sub(bytes);
        }
    }

    /// Records a completed transaction's latency against its region.
    pub fn record_completion(&mut self, region: usize, latency: u64) {
        let r = &mut self.regions[region];
        r.stats.txn_count += 1;
        r.stats.latency.record(latency);
    }

    /// Clears every region's statistics counters (budgets and periods are
    /// untouched) — the software-visible counter reset.
    pub fn clear_stats(&mut self) {
        for r in &mut self.regions {
            r.stats = RegionStats::default();
        }
    }

    /// `true` when any regulated region has no budget left: the manager
    /// interface must be isolated until replenishment.
    pub fn any_depleted(&self) -> bool {
        self.regions.iter().any(RegionState::is_depleted)
    }

    /// The throttling unit's outstanding-transaction limit: scales
    /// `num_pending` by the lowest remaining budget fraction across
    /// regulated regions, never below one (backpressure is modulated
    /// *before* the budget fully expires).
    ///
    /// Pure integer arithmetic — `ceil(num_pending * budget_left /
    /// budget_max)` in `u128` — because an `f64` division loses precision
    /// once budgets exceed 2^53 bytes, where a one-byte budget drain could
    /// round the fraction back up to 1.0.
    pub fn throttle_limit(&self, num_pending: usize) -> usize {
        let scaled = |r: &RegionState| -> usize {
            let num = num_pending as u128 * u128::from(r.budget_left);
            let den = u128::from(r.config.budget_max);
            (num.div_ceil(den)).min(num_pending as u128) as usize
        };
        self.regions
            .iter()
            .filter(|r| r.is_regulated())
            .map(scaled)
            .min()
            .unwrap_or(num_pending)
            .max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RuntimeConfig;

    fn monitor(budget: u64, period: u64) -> BudgetMonitor {
        let mut cfg = RuntimeConfig::open(2);
        cfg.regions[0] = RegionConfig {
            base: Addr::new(0x1000),
            size: 0x1000,
            budget_max: budget,
            period,
        };
        BudgetMonitor::new(&cfg)
    }

    #[test]
    fn charge_depletes_and_period_replenishes() {
        let mut m = monitor(100, 50);
        assert!(!m.any_depleted());
        m.charge(0, 60);
        assert_eq!(m.regions()[0].budget_left, 40);
        m.charge(0, 60); // saturates
        assert_eq!(m.regions()[0].budget_left, 0);
        assert!(m.any_depleted());

        // Period rollover replenishes.
        m.tick(49);
        assert!(m.any_depleted());
        m.tick(50);
        assert!(!m.any_depleted());
        assert_eq!(m.regions()[0].budget_left, 100);
        assert_eq!(m.regions()[0].stats.bytes_this_period, 0);
        assert_eq!(m.regions()[0].stats.bytes_total, 120);
    }

    #[test]
    fn unregulated_region_never_depletes() {
        let mut m = monitor(0, 0);
        m.charge(0, 1 << 40);
        assert!(!m.any_depleted());
        assert!(!m.regions()[0].is_regulated());
        assert_eq!(m.regions()[0].stats.bytes_total, 1 << 40);
    }

    #[test]
    fn region_decode() {
        let m = monitor(100, 50);
        assert_eq!(m.region_of(Addr::new(0x1800)), Some(0));
        assert_eq!(m.region_of(Addr::new(0x9999)), None);
    }

    #[test]
    fn throttle_scales_with_remaining_budget() {
        let mut m = monitor(100, 1000);
        assert_eq!(m.throttle_limit(8), 8);
        m.charge(0, 50);
        assert_eq!(m.throttle_limit(8), 4);
        m.charge(0, 40);
        assert_eq!(m.throttle_limit(8), 1);
        m.charge(0, 10);
        assert_eq!(m.throttle_limit(8), 1, "never below one");
    }

    #[test]
    fn throttle_without_regulated_regions_is_full() {
        let m = monitor(0, 0);
        assert_eq!(m.throttle_limit(8), 8);
    }

    #[test]
    fn completion_recording() {
        let mut m = monitor(100, 0);
        m.record_completion(0, 12);
        m.record_completion(0, 8);
        let s = m.regions()[0].stats;
        assert_eq!(s.txn_count, 2);
        assert_eq!(s.latency.max(), 12);
    }

    #[test]
    fn set_region_replenishes() {
        let mut m = monitor(100, 1000);
        m.charge(0, 100);
        assert!(m.any_depleted());
        let mut cfg = m.regions()[0].config;
        cfg.budget_max = 500;
        m.set_region(0, cfg, 42);
        assert_eq!(m.regions()[0].budget_left, 500);
        assert_eq!(m.regions()[0].period_start, 42);
        assert!(!m.any_depleted());
    }

    #[test]
    fn tick_past_several_periods_stays_on_grid() {
        // Regression: a tick observing several elapsed periods at once (or
        // one cycle late) must advance `period_start` by whole multiples of
        // the period, not to the observing cycle — otherwise every late
        // tick would stretch all later periods.
        let mut m = monitor(100, 50);
        m.charge(0, 100);
        // One tick lands 3 periods + 7 cycles after the epoch.
        m.tick(157);
        assert_eq!(m.regions()[0].period_start, 150, "grid point, not 157");
        assert_eq!(m.regions()[0].budget_left, 100);
        // The next boundary is 200, exactly as a tick-per-cycle run sees.
        m.charge(0, 100);
        m.tick(199);
        assert!(m.any_depleted());
        m.tick(200);
        assert!(!m.any_depleted());
        assert_eq!(m.regions()[0].period_start, 200);
    }

    #[test]
    fn throttle_limit_is_exact_at_u64_extremes() {
        // Regression: with budgets near u64::MAX the old f64 formulation
        // rounded `budget_left / budget_max` back to 1.0 after small
        // charges, so throttling never engaged.
        let mut m = monitor(u64::MAX, 1_000_000);
        m.charge(0, 1);
        assert_eq!(
            m.throttle_limit(8),
            8,
            "one byte off a 2^64 budget still ceils to the full limit"
        );
        m.charge(0, u64::MAX / 2);
        assert_eq!(m.throttle_limit(8), 4, "half budget halves the limit");
        // Fully drained: clamps to one, never zero.
        let left = m.regions()[0].budget_left;
        m.charge(0, left);
        assert_eq!(m.throttle_limit(8), 1);
        // A tiny sliver of budget must not round down to zero either.
        let mut m = monitor(u64::MAX, 0);
        m.charge(0, u64::MAX - 1);
        assert_eq!(m.throttle_limit(8), 1, "ceil keeps the last fraction");
        // One byte above an exact eighth of a 2^60 budget: the remainder is
        // below f64's 53-bit mantissa, so the old float formulation rounded
        // the fraction to exactly 1/8 and lost the ceil to 2.
        let mut m = monitor(1 << 60, 0);
        m.charge(0, (1 << 60) - ((1 << 57) + 1));
        assert_eq!(m.regions()[0].budget_left, (1 << 57) + 1);
        assert_eq!(
            m.throttle_limit(8),
            2,
            "sub-f64-precision remainder still ceils up"
        );
    }

    #[test]
    fn period_zero_never_replenishes() {
        let mut m = monitor(10, 0);
        m.charge(0, 10);
        m.tick(1_000_000);
        assert!(m.any_depleted(), "period 0 means no replenishment");
    }
}

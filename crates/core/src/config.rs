//! Design-time and runtime configuration of a REALM unit.

use std::error::Error;
use std::fmt;

use axi4::Addr;

/// Parameters fixed when the unit is instantiated ("before FPGA or ASIC
/// mapping" in the paper): they size hardware structures and enter the
/// area model.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DesignConfig {
    /// Number of subordinate address regions with independent budgets.
    pub num_regions: usize,
    /// Maximum downstream fragments in flight per direction.
    pub num_pending: usize,
    /// Write-buffer capacity in beats; fragments larger than this are
    /// forwarded cut-through (unprotected), as in the paper's sizing rule.
    pub write_buffer_depth: usize,
    /// Whether the granular burst splitter is instantiated. Managers that
    /// only ever emit single-word transactions can omit it to save area.
    pub splitter_present: bool,
}

impl DesignConfig {
    /// The Cheshire evaluation configuration: eight pending transactions,
    /// a sixteen-element write buffer, two address regions.
    pub fn cheshire() -> Self {
        Self {
            num_regions: 2,
            num_pending: 8,
            write_buffer_depth: 16,
            splitter_present: true,
        }
    }

    /// Validates structural parameters.
    ///
    /// # Errors
    ///
    /// [`ConfigError`] variants describing the violated constraint.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.num_regions == 0 {
            return Err(ConfigError::NoRegions);
        }
        if self.num_pending == 0 {
            return Err(ConfigError::NoPending);
        }
        if self.write_buffer_depth == 0 {
            return Err(ConfigError::NoWriteBuffer);
        }
        Ok(())
    }
}

impl Default for DesignConfig {
    fn default() -> Self {
        Self::cheshire()
    }
}

/// One subordinate address region with its reservation parameters.
///
/// A `budget_max` of zero means the region is *unregulated*: matching
/// traffic is monitored but never isolated — the "very large period and
/// budget" setting of the fragmentation experiment.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct RegionConfig {
    /// First address of the region.
    pub base: Addr,
    /// Region size in bytes (0 disables the region).
    pub size: u64,
    /// Transfer budget in bytes per period (0 = unregulated).
    pub budget_max: u64,
    /// Reservation period in cycles (0 = never replenish after depletion).
    pub period: u64,
}

impl RegionConfig {
    /// Returns `true` if `addr` falls inside the region.
    pub fn contains(&self, addr: Addr) -> bool {
        self.size > 0 && addr >= self.base && addr.raw() - self.base.raw() < self.size
    }
}

/// Registers an OS or hypervisor programs at runtime.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RuntimeConfig {
    /// Master enable: when `false` the unit is a transparent wire.
    pub enabled: bool,
    /// Splitting granularity in beats (1–256; 256 passes bursts whole).
    pub frag_len: u16,
    /// Enables the optional throttling unit: outstanding transactions are
    /// scaled down as the budget drains.
    pub throttle: bool,
    /// User-commanded isolation: block new transactions, let outstanding
    /// ones finish.
    pub isolate_request: bool,
    /// Per-region address ranges and budgets.
    pub regions: Vec<RegionConfig>,
}

impl RuntimeConfig {
    /// A fully open configuration: regulation enabled, no fragmentation
    /// (256-beat granularity), no budgets.
    pub fn open(num_regions: usize) -> Self {
        Self {
            enabled: true,
            frag_len: 256,
            throttle: false,
            isolate_request: false,
            regions: vec![RegionConfig::default(); num_regions],
        }
    }

    /// Validates runtime values against the design parameters.
    ///
    /// # Errors
    ///
    /// [`ConfigError::BadFragLen`] for a granularity outside 1–256,
    /// [`ConfigError::TooManyRegions`] if more regions are configured than
    /// the design instantiates, [`ConfigError::OverlappingRegions`] if two
    /// enabled regions share addresses — [`RuntimeConfig::region_of`]
    /// routes by first match, so an overlap would silently charge all
    /// traffic in the shared range to the lower-indexed region's budget.
    pub fn validate(&self, design: &DesignConfig) -> Result<(), ConfigError> {
        if self.frag_len == 0 || self.frag_len > 256 {
            return Err(ConfigError::BadFragLen {
                frag_len: self.frag_len,
            });
        }
        if self.regions.len() > design.num_regions {
            return Err(ConfigError::TooManyRegions {
                configured: self.regions.len(),
                available: design.num_regions,
            });
        }
        for (i, a) in self.regions.iter().enumerate() {
            for (j, b) in self.regions.iter().enumerate().skip(i + 1) {
                let disjoint = a.size == 0
                    || b.size == 0
                    || a.base.raw().saturating_add(a.size) <= b.base.raw()
                    || b.base.raw().saturating_add(b.size) <= a.base.raw();
                if !disjoint {
                    return Err(ConfigError::OverlappingRegions {
                        first: i,
                        second: j,
                    });
                }
            }
        }
        Ok(())
    }

    /// Returns the index of the first region containing `addr`, if any.
    pub fn region_of(&self, addr: Addr) -> Option<usize> {
        self.regions.iter().position(|r| r.contains(addr))
    }
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        Self::open(DesignConfig::default().num_regions)
    }
}

/// Configuration validation error.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum ConfigError {
    /// At least one region must be instantiated.
    NoRegions,
    /// At least one pending transaction must be allowed.
    NoPending,
    /// The write buffer needs at least one beat of storage.
    NoWriteBuffer,
    /// Fragmentation length outside 1–256 beats.
    BadFragLen {
        /// The rejected value.
        frag_len: u16,
    },
    /// More runtime regions than the design instantiates.
    TooManyRegions {
        /// Regions configured at runtime.
        configured: usize,
        /// Regions available in hardware.
        available: usize,
    },
    /// Two enabled regions share addresses; matching is first-wins, so
    /// the overlap would be charged to the wrong budget silently.
    OverlappingRegions {
        /// Lower region index.
        first: usize,
        /// Higher region index.
        second: usize,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::NoRegions => f.write_str("a REALM unit needs at least one region"),
            ConfigError::NoPending => {
                f.write_str("a REALM unit needs at least one pending transaction")
            }
            ConfigError::NoWriteBuffer => {
                f.write_str("the write buffer needs at least one beat of storage")
            }
            ConfigError::BadFragLen { frag_len } => {
                write!(f, "fragmentation length {frag_len} is outside 1..=256")
            }
            ConfigError::TooManyRegions {
                configured,
                available,
            } => write!(
                f,
                "{configured} regions configured but only {available} instantiated"
            ),
            ConfigError::OverlappingRegions { first, second } => write!(
                f,
                "regions {first} and {second} overlap; first-match routing would \
                 charge the shared range to region {first} only"
            ),
        }
    }
}

impl Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cheshire_defaults() {
        let d = DesignConfig::cheshire();
        assert_eq!(d.num_regions, 2);
        assert_eq!(d.num_pending, 8);
        assert_eq!(d.write_buffer_depth, 16);
        assert!(d.splitter_present);
        assert!(d.validate().is_ok());
        assert_eq!(DesignConfig::default(), d);
    }

    #[test]
    fn design_validation_catches_zeros() {
        let mut d = DesignConfig::cheshire();
        d.num_regions = 0;
        assert_eq!(d.validate(), Err(ConfigError::NoRegions));
        let mut d = DesignConfig::cheshire();
        d.num_pending = 0;
        assert_eq!(d.validate(), Err(ConfigError::NoPending));
        let mut d = DesignConfig::cheshire();
        d.write_buffer_depth = 0;
        assert_eq!(d.validate(), Err(ConfigError::NoWriteBuffer));
    }

    #[test]
    fn runtime_validation() {
        let d = DesignConfig::cheshire();
        let mut r = RuntimeConfig::open(2);
        assert!(r.validate(&d).is_ok());
        r.frag_len = 0;
        assert!(matches!(
            r.validate(&d),
            Err(ConfigError::BadFragLen { .. })
        ));
        r.frag_len = 257;
        assert!(r.validate(&d).is_err());
        r.frag_len = 1;
        r.regions.push(RegionConfig::default());
        assert!(matches!(
            r.validate(&d),
            Err(ConfigError::TooManyRegions { .. })
        ));
    }

    #[test]
    fn overlapping_regions_rejected() {
        let d = DesignConfig::cheshire();
        let mut r = RuntimeConfig::open(2);
        r.regions[0] = RegionConfig {
            base: Addr::new(0x1000),
            size: 0x2000,
            budget_max: 0,
            period: 0,
        };
        r.regions[1] = RegionConfig {
            base: Addr::new(0x2000),
            size: 0x1000,
            budget_max: 0,
            period: 0,
        };
        assert_eq!(
            r.validate(&d),
            Err(ConfigError::OverlappingRegions {
                first: 0,
                second: 1
            })
        );
        // Adjacent (touching) regions are fine.
        r.regions[1].base = Addr::new(0x3000);
        assert!(r.validate(&d).is_ok());
        // A disabled region overlaps nothing.
        r.regions[1].base = Addr::new(0x2000);
        r.regions[1].size = 0;
        assert!(r.validate(&d).is_ok());
    }

    #[test]
    fn region_matching() {
        let mut cfg = RuntimeConfig::open(2);
        cfg.regions[0] = RegionConfig {
            base: Addr::new(0x1000),
            size: 0x1000,
            budget_max: 4096,
            period: 1000,
        };
        cfg.regions[1] = RegionConfig {
            base: Addr::new(0x8000),
            size: 0x100,
            budget_max: 0,
            period: 0,
        };
        assert_eq!(cfg.region_of(Addr::new(0x1800)), Some(0));
        assert_eq!(cfg.region_of(Addr::new(0x8050)), Some(1));
        assert_eq!(cfg.region_of(Addr::new(0x0)), None);
        // Disabled region (size 0) matches nothing.
        cfg.regions[0].size = 0;
        assert_eq!(cfg.region_of(Addr::new(0x1800)), None);
    }

    #[test]
    fn error_messages() {
        assert!(ConfigError::BadFragLen { frag_len: 300 }
            .to_string()
            .contains("300"));
        assert!(ConfigError::TooManyRegions {
            configured: 3,
            available: 2
        }
        .to_string()
        .contains("3 regions"));
    }
}

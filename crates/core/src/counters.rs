//! Hardware-style statistics counters of the monitoring unit.

use std::fmt;

/// Latency bookkeeping as three hardware counters: count, sum, maximum —
/// exactly what the M&R unit's bookkeeping exposes through its registers.
///
/// ```
/// use axi_realm::LatencyCounters;
///
/// let mut l = LatencyCounters::new();
/// l.record(8);
/// l.record(12);
/// assert_eq!(l.count(), 2);
/// assert_eq!(l.max(), 12);
/// assert_eq!(l.mean(), Some(10.0));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct LatencyCounters {
    count: u64,
    sum: u64,
    max: u64,
}

impl LatencyCounters {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one transaction latency.
    pub fn record(&mut self, latency: u64) {
        self.count += 1;
        self.sum += latency;
        self.max = self.max.max(latency);
    }

    /// Completed transactions.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of latencies (the `LAT_SUM` register).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Worst-case latency observed (the `LAT_MAX` register).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Average latency, `None` before the first completion.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Clears all three counters (software-triggered reset).
    pub fn clear(&mut self) {
        *self = Self::default();
    }
}

impl fmt::Display for LatencyCounters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.mean() {
            Some(mean) => write!(f, "n={} mean={:.1} max={}", self.count, mean, self.max),
            None => f.write_str("n=0"),
        }
    }
}

/// Per-region statistics, mirrored into the configuration register file.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct RegionStats {
    /// Bytes transferred since the current period started.
    pub bytes_this_period: u64,
    /// Bytes transferred since reset.
    pub bytes_total: u64,
    /// Transactions completed since reset.
    pub txn_count: u64,
    /// Latency counters over completed transactions.
    pub latency: LatencyCounters,
}

impl RegionStats {
    /// Average bandwidth over the elapsed portion of the current period, in
    /// bytes per cycle — the trivially retrievable figure the paper
    /// mentions.
    pub fn bandwidth(&self, cycles_into_period: u64) -> Option<f64> {
        (cycles_into_period > 0).then(|| self.bytes_this_period as f64 / cycles_into_period as f64)
    }
}

/// Per-unit statistics not tied to a region.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct UnitStats {
    /// Transactions accepted at the ingress.
    pub txns_accepted: u64,
    /// Fragments emitted downstream (reads + writes).
    pub fragments_emitted: u64,
    /// Cycles spent isolated (budget depletion or user command).
    pub isolated_cycles: u64,
    /// Cycles a ready downstream request was stalled by backpressure —
    /// rising values indicate congestion behind this manager.
    pub downstream_stall_cycles: u64,
    /// Rising edges of the isolation signal: how many times the ingress
    /// closed (budget depletion, user command, or an intrusive drain),
    /// regardless of how long each isolation window lasted.
    pub isolation_trips: u64,
    /// Rising edges of budget depletion: how many periods saw a regulated
    /// region run dry. A subset of [`UnitStats::isolation_trips`] causes.
    pub budget_exhaustions: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_counters_track() {
        let mut l = LatencyCounters::new();
        assert_eq!(l.mean(), None);
        assert_eq!(format!("{l}"), "n=0");
        l.record(10);
        l.record(20);
        l.record(5);
        assert_eq!(l.count(), 3);
        assert_eq!(l.sum(), 35);
        assert_eq!(l.max(), 20);
        assert!(format!("{l}").contains("max=20"));
        l.clear();
        assert_eq!(l.count(), 0);
        assert_eq!(l.max(), 0);
    }

    #[test]
    fn region_bandwidth() {
        let s = RegionStats {
            bytes_this_period: 800,
            ..Default::default()
        };
        assert_eq!(s.bandwidth(100), Some(8.0));
        assert_eq!(s.bandwidth(0), None);
    }

    #[test]
    fn defaults_are_zero() {
        let u = UnitStats::default();
        assert_eq!(u.txns_accepted, 0);
        assert_eq!(u.isolated_cycles, 0);
    }
}

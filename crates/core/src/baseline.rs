//! A related-work baseline: an ABE-style burst equalizer.
//!
//! Restuccia et al.'s AXI burst equalizer (ABE, paper §II) restores
//! arbitration fairness by enforcing a nominal burst size and a maximum
//! number of outstanding transactions per manager — and nothing else: no
//! byte budgets, no periods, no monitoring, and crucially **no write
//! buffer**, so a fragment's `AW` goes downstream before its data exists
//! and the stalling-writer DoS remains possible.
//!
//! Implementing the baseline makes the paper's qualitative comparison
//! (Table-less, §II) a runnable experiment: see
//! `realm-bench --bin related_work`.

use std::collections::{BTreeMap, VecDeque};

use axi4::{fragment_read, fragment_write_header, BBeat, Resp, WBeat};
use axi_sim::{AxiBundle, Component, TickCtx};

use crate::read_path::ReadPath;

/// Configuration of a [`BurstEqualizer`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct EqualizerConfig {
    /// The nominal burst size every transaction is fragmented to.
    pub nominal_beats: u16,
    /// Maximum outstanding fragments per direction.
    pub max_outstanding: usize,
}

impl EqualizerConfig {
    /// A fair-but-unprotected setting comparable to REALM at the same
    /// granularity.
    pub fn nominal(nominal_beats: u16) -> Self {
        Self {
            nominal_beats,
            max_outstanding: 8,
        }
    }
}

#[derive(Debug)]
struct WriteTxnState {
    frags_total: usize,
    frags_acked: usize,
    resp: Resp,
}

/// The ABE-style baseline regulator: splits bursts to a nominal size and
/// caps outstanding transactions, forwarding write headers *immediately*
/// (no buffering — the DoS window stays open).
#[derive(Debug)]
pub struct BurstEqualizer {
    cfg: EqualizerConfig,
    upstream: AxiBundle,
    downstream: AxiBundle,
    read: ReadPath,
    /// Fragment headers awaiting downstream emission.
    aw_queue: VecDeque<axi4::AwBeat>,
    /// Remaining beats per unfilled fragment, in order, for `last`
    /// rewriting of the pass-through W stream.
    w_templates: VecDeque<u16>,
    beats_into_fragment: u16,
    /// Per-ID write coalescing (AWs forwarded eagerly, Bs merged).
    wtxns: BTreeMap<u32, VecDeque<WriteTxnState>>,
    aw_outstanding: usize,
    fragments_emitted: u64,
    name: String,
}

impl BurstEqualizer {
    /// Creates the equalizer between `upstream` and `downstream`.
    ///
    /// # Panics
    ///
    /// Panics on a zero nominal size or zero outstanding limit.
    pub fn new(cfg: EqualizerConfig, upstream: AxiBundle, downstream: AxiBundle) -> Self {
        assert!(
            (1..=256).contains(&cfg.nominal_beats),
            "nominal burst size must be 1..=256 beats"
        );
        assert!(
            cfg.max_outstanding > 0,
            "need at least one outstanding slot"
        );
        Self {
            cfg,
            upstream,
            downstream,
            read: ReadPath::new(cfg.max_outstanding),
            aw_queue: VecDeque::new(),
            w_templates: VecDeque::new(),
            beats_into_fragment: 0,
            wtxns: BTreeMap::new(),
            aw_outstanding: 0,
            fragments_emitted: 0,
            name: "abe".to_owned(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &EqualizerConfig {
        &self.cfg
    }

    /// Fragments emitted downstream (reads + writes).
    pub fn fragments_emitted(&self) -> u64 {
        self.fragments_emitted
    }
}

impl Component for BurstEqualizer {
    fn tick(&mut self, ctx: &mut TickCtx<'_>) {
        // Read responses: pass through with last-gating.
        if ctx.pool.peek(self.downstream.r, ctx.cycle).is_some()
            && ctx.pool.can_push(self.upstream.r, ctx.cycle)
        {
            let r = ctx
                .pool
                .pop(self.downstream.r, ctx.cycle)
                .expect("peeked beat");
            let routed = self.read.on_response(r, ctx.cycle);
            ctx.pool.push(self.upstream.r, ctx.cycle, routed.beat);
        }
        // Write responses: coalesce per ID.
        if ctx.pool.peek(self.downstream.b, ctx.cycle).is_some()
            && ctx.pool.can_push(self.upstream.b, ctx.cycle)
        {
            let b = ctx
                .pool
                .pop(self.downstream.b, ctx.cycle)
                .expect("peeked beat");
            self.aw_outstanding -= 1;
            let states = self
                .wtxns
                .get_mut(&b.id.raw())
                .expect("response for a tracked write");
            let state = states.front_mut().expect("write in flight");
            state.frags_acked += 1;
            state.resp = state.resp.merge(b.resp);
            if state.frags_acked == state.frags_total {
                let resp = state.resp;
                states.pop_front();
                if states.is_empty() {
                    self.wtxns.remove(&b.id.raw());
                }
                ctx.pool
                    .push(self.upstream.b, ctx.cycle, BBeat::new(b.id, resp));
            }
        }

        // Read intake + fragment emission (reuse the REALM read path).
        if self.read.can_accept() {
            if let Some(&ar) = ctx.pool.peek(self.upstream.ar, ctx.cycle) {
                let plan = fragment_read(&ar, self.cfg.nominal_beats)
                    .expect("nominal size validated in new");
                ctx.pool.pop(self.upstream.ar, ctx.cycle);
                self.read.accept(ar, &plan, None, ctx.cycle);
            }
        }
        if self.read.peek_fragment(self.cfg.max_outstanding).is_some()
            && ctx.pool.can_push(self.downstream.ar, ctx.cycle)
        {
            let (frag, _, _) = self.read.emit_fragment();
            ctx.pool.push(self.downstream.ar, ctx.cycle, frag);
            self.fragments_emitted += 1;
        }

        // Write intake: split and queue headers immediately (no buffering).
        if let Some(&aw) = ctx.pool.peek(self.upstream.aw, ctx.cycle) {
            let plan = fragment_write_header(&aw, self.cfg.nominal_beats)
                .expect("nominal size validated in new");
            if self.aw_queue.len() + plan.len() <= 64 {
                ctx.pool.pop(self.upstream.aw, ctx.cycle);
                for frag in &plan {
                    let mut header = aw;
                    header.addr = frag.addr;
                    header.len = frag.len;
                    header.burst = frag.kind;
                    self.aw_queue.push_back(header);
                    self.w_templates.push_back(frag.len.beats());
                }
                self.wtxns
                    .entry(aw.id.raw())
                    .or_default()
                    .push_back(WriteTxnState {
                        frags_total: plan.len(),
                        frags_acked: 0,
                        resp: Resp::Okay,
                    });
            }
        }
        // Emit write fragment headers eagerly — the ABE behaviour that
        // leaves the W channel reservable without data.
        if self.aw_outstanding < self.cfg.max_outstanding {
            if let Some(&header) = self.aw_queue.front() {
                if ctx.pool.can_push(self.downstream.aw, ctx.cycle) {
                    self.aw_queue.pop_front();
                    ctx.pool.push(self.downstream.aw, ctx.cycle, header);
                    self.aw_outstanding += 1;
                    self.fragments_emitted += 1;
                }
            }
        }
        // W data passes straight through with `last` rewritten to the
        // fragment boundary.
        if let Some(&w) = ctx.pool.peek(self.upstream.w, ctx.cycle) {
            if !self.w_templates.is_empty() && ctx.pool.can_push(self.downstream.w, ctx.cycle) {
                ctx.pool.pop(self.upstream.w, ctx.cycle);
                let expected = *self.w_templates.front().expect("checked non-empty");
                self.beats_into_fragment += 1;
                let mut out = WBeat::with_strb(w.data, w.strb, false);
                if self.beats_into_fragment == expected {
                    out.last = true;
                    self.w_templates.pop_front();
                    self.beats_into_fragment = 0;
                }
                ctx.pool.push(self.downstream.w, ctx.cycle, out);
            }
        }
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn ports(&self) -> Vec<axi_sim::PortDecl> {
        [
            self.upstream.subordinate_ports(),
            self.downstream.manager_ports(),
        ]
        .concat()
    }

    fn next_event(&self, cycle: axi_sim::Cycle) -> Option<axi_sim::Cycle> {
        // Queued fragments want to emit every cycle; everything else is a
        // reaction to beats arriving on the wires. A full outstanding window
        // reopens only when a response arrives, which is likewise reactive.
        let emit_read = self.read.peek_fragment(self.cfg.max_outstanding).is_some();
        let emit_aw = self.aw_outstanding < self.cfg.max_outstanding && !self.aw_queue.is_empty();
        (emit_read || emit_aw).then_some(cycle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use axi4::{Addr, ArBeat, AwBeat, BurstKind, BurstLen, BurstSize, TxnId, WriteTxn};
    use axi_mem::{MemoryConfig, MemoryModel};
    use axi_sim::{BundleCapacity, Sim};
    use axi_traffic::{Op, ScriptedManager};

    const MEM: Addr = Addr::new(0x8000_0000);

    fn rig(
        nominal: u16,
        script: Vec<Op>,
    ) -> (
        Sim,
        axi_sim::ComponentId,
        axi_sim::ComponentId,
        axi_sim::ComponentId,
    ) {
        let mut sim = Sim::new();
        let cap = BundleCapacity::uniform(4);
        let up = AxiBundle::new(sim.pool_mut(), cap);
        let down = AxiBundle::new(sim.pool_mut(), cap);
        let mgr = sim.add(ScriptedManager::new(up, script));
        let abe = sim.add(BurstEqualizer::new(
            EqualizerConfig::nominal(nominal),
            up,
            down,
        ));
        let mem = sim.add(MemoryModel::new(MemoryConfig::spm(MEM, 1 << 20), down));
        (sim, mgr, abe, mem)
    }

    fn read_op(id: u32, addr: u64, beats: u16) -> Op {
        Op::Read(ArBeat::new(
            TxnId::new(id),
            Addr::new(addr),
            BurstLen::new(beats).unwrap(),
            BurstSize::bus64(),
            BurstKind::Incr,
        ))
    }

    fn write_op(id: u32, addr: u64, words: &[u64]) -> Op {
        let aw = AwBeat::new(
            TxnId::new(id),
            Addr::new(addr),
            BurstLen::new(words.len() as u16).unwrap(),
            BurstSize::bus64(),
            BurstKind::Incr,
        );
        Op::Write(WriteTxn::from_words(aw, words.iter().copied()).unwrap())
    }

    #[test]
    fn functional_transparency() {
        let words: Vec<u64> = (0..32).map(|i| 0xE000 + i).collect();
        let (mut sim, mgr, abe, _mem) = rig(
            4,
            vec![write_op(1, MEM.raw(), &words), read_op(2, MEM.raw(), 32)],
        );
        assert!(sim.run_until(20_000, |s| s
            .component::<ScriptedManager>(mgr)
            .unwrap()
            .is_done()));
        let m = sim.component::<ScriptedManager>(mgr).unwrap();
        assert!(m.completions().iter().all(|c| c.resp == Resp::Okay));
        assert_eq!(m.completions()[1].data, words);
        // 32 beats at nominal 4 = 8 write + 8 read fragments.
        assert_eq!(
            sim.component::<BurstEqualizer>(abe)
                .unwrap()
                .fragments_emitted(),
            16
        );
    }

    #[test]
    fn equalizes_to_nominal_size() {
        let (mut sim, mgr, _, mem) = rig(1, vec![read_op(1, MEM.raw(), 16)]);
        assert!(sim.run_until(20_000, |s| s
            .component::<ScriptedManager>(mgr)
            .unwrap()
            .is_done()));
        // The memory saw 16 one-beat bursts.
        assert_eq!(
            sim.component::<MemoryModel>(mem).unwrap().reads_served(),
            16
        );
    }

    #[test]
    fn error_coalescing() {
        // Write beyond the memory window: every fragment answers SLVERR,
        // the manager sees exactly one SLVERR response.
        let words: Vec<u64> = (0..8).collect();
        let (mut sim, mgr, _, _) = rig(2, vec![write_op(1, 0x100, &words)]);
        assert!(sim.run_until(20_000, |s| s
            .component::<ScriptedManager>(mgr)
            .unwrap()
            .is_done()));
        let m = sim.component::<ScriptedManager>(mgr).unwrap();
        assert_eq!(m.completions().len(), 1);
        assert_eq!(m.completions()[0].resp, Resp::SlvErr);
    }

    #[test]
    #[should_panic(expected = "nominal burst size")]
    fn zero_nominal_panics() {
        let mut sim = Sim::new();
        let up = AxiBundle::with_defaults(sim.pool_mut());
        let down = AxiBundle::with_defaults(sim.pool_mut());
        let _ = BurstEqualizer::new(
            EqualizerConfig {
                nominal_beats: 0,
                max_outstanding: 8,
            },
            up,
            down,
        );
    }
}

//! The REALM unit: isolation, splitting, buffering, and regulation in one
//! component between a manager and the interconnect.

use axi4::{fragment_read, fragment_write_header};
use axi_sim::{AxiBundle, ChannelPool, Component, CoverageMap, TickCtx};
use realm_telemetry::{trace_from_env, Histogram, TelemetrySink};

use crate::config::{DesignConfig, RuntimeConfig};
use crate::counters::UnitStats;
use crate::monitor::BudgetMonitor;
use crate::read_path::ReadPath;
use crate::regs::{shared_regs, SharedRegs};
use crate::write_path::WritePath;

/// Retained trace events per unit (spans and instants each): a trace needs
/// the interesting prefix, not an unbounded log of a long soak run.
const MAX_UNIT_EVENTS: usize = 8192;

/// Telemetry-side state of one unit: latency histograms and the optional
/// trace-event log. Strictly write-only from the unit's perspective —
/// nothing in here ever feeds back into a regulation decision, which is
/// what keeps telemetry on vs. off bit-identical.
#[derive(Debug, Default)]
struct UnitTelemetry {
    /// AR-accept → last-R latency over all completed reads.
    read_latency: Histogram,
    /// AW-accept → coalesced-B latency over all completed writes.
    write_latency: Histogram,
    /// Same, split per address region (index = region index).
    region_read: Vec<Histogram>,
    region_write: Vec<Histogram>,
    /// Trace-event log, armed by `REALM_TRACE` (or
    /// [`RealmUnit::record_events`]); `None` costs nothing per completion.
    events: Option<UnitEventLog>,
}

/// Bounded span/instant log for the Perfetto exporter.
#[derive(Debug, Default)]
struct UnitEventLog {
    /// Completed transaction intervals `(name, start, end)`.
    spans: Vec<(&'static str, u64, u64)>,
    /// Point events `(name, cycle)`.
    instants: Vec<(&'static str, u64)>,
}

impl UnitTelemetry {
    fn new(num_regions: usize, record_events: bool) -> Self {
        Self {
            region_read: (0..num_regions).map(|_| Histogram::new()).collect(),
            region_write: (0..num_regions).map(|_| Histogram::new()).collect(),
            events: record_events.then(UnitEventLog::default),
            ..Self::default()
        }
    }

    fn note_read(&mut self, region: Option<usize>, latency: u64, cycle: u64) {
        self.read_latency.record(latency);
        if let Some(r) = region {
            self.region_read[r].record(latency);
        }
        self.push_span("read", latency, cycle);
    }

    fn note_write(&mut self, region: Option<usize>, latency: u64, cycle: u64) {
        self.write_latency.record(latency);
        if let Some(r) = region {
            self.region_write[r].record(latency);
        }
        self.push_span("write", latency, cycle);
    }

    fn push_span(&mut self, name: &'static str, latency: u64, cycle: u64) {
        if let Some(log) = &mut self.events {
            if log.spans.len() < MAX_UNIT_EVENTS {
                log.spans.push((name, cycle.saturating_sub(latency), cycle));
            }
        }
    }

    fn push_instant(&mut self, name: &'static str, cycle: u64) {
        if let Some(log) = &mut self.events {
            if log.instants.len() < MAX_UNIT_EVENTS {
                log.instants.push((name, cycle));
            }
        }
    }
}

/// The real-time regulation and traffic monitoring unit (paper Fig. 2).
///
/// Sits between a manager's port (`upstream`) and an interconnect port
/// (`downstream`) and applies, per cycle:
///
/// 1. **Isolation** — new transactions are refused while a regulated
///    region's budget is depleted, a user isolation request is pending, or
///    an intrusive reconfiguration is draining; outstanding transactions
///    always complete.
/// 2. **Granular burst splitting** — bursts are fragmented to the
///    configured granularity (respecting AXI4 modifiability rules), and
///    responses are re-merged: `r.last` gated, `B` coalesced.
/// 3. **Write buffering** — a write fragment and its data are forwarded
///    only once fully buffered, removing the W-channel DoS vector.
/// 4. **Monitoring & regulation** — per-region byte budgets on periodic
///    windows, bandwidth/latency/interference counters, optional
///    outstanding-transaction throttling.
///
/// In-flight beats are delayed by one cycle, matching the single cycle of
/// latency the paper reports for the RTL unit.
#[derive(Debug)]
pub struct RealmUnit {
    design: DesignConfig,
    regs: SharedRegs,
    upstream: AxiBundle,
    downstream: AxiBundle,
    active: RuntimeConfig,
    monitor: BudgetMonitor,
    read: ReadPath,
    write: WritePath,
    stats: UnitStats,
    reconfiguring: bool,
    /// Isolation/depletion levels at the end of the previous executed tick,
    /// for rising-edge detection. Both signals only transition at ticks
    /// every kernel executes (charges happen at emission ticks; period
    /// boundaries of mid-period regions are scheduled wakes), so the edge
    /// counters are kernel-invariant.
    was_isolated: bool,
    was_depleted: bool,
    telem: UnitTelemetry,
    name: String,
}

impl RealmUnit {
    /// Creates a unit with the given design parameters and initial runtime
    /// configuration.
    ///
    /// # Panics
    ///
    /// Panics if either configuration is invalid (see
    /// [`DesignConfig::validate`] and [`RuntimeConfig::validate`]); unit
    /// instantiation is testbench construction, where failing fast is the
    /// useful behaviour.
    pub fn new(
        design: DesignConfig,
        mut runtime: RuntimeConfig,
        upstream: AxiBundle,
        downstream: AxiBundle,
    ) -> Self {
        design.validate().expect("valid design configuration");
        runtime
            .regions
            .resize_with(design.num_regions, Default::default);
        runtime
            .validate(&design)
            .expect("valid runtime configuration");
        let monitor = BudgetMonitor::new(&runtime);
        let regs = shared_regs(design, runtime.clone());
        let telem = UnitTelemetry::new(design.num_regions, trace_from_env());
        Self {
            design,
            regs,
            upstream,
            downstream,
            active: runtime,
            monitor,
            read: ReadPath::new(design.num_pending),
            write: WritePath::new(design.num_pending, design.write_buffer_depth),
            stats: UnitStats::default(),
            reconfiguring: false,
            was_isolated: false,
            was_depleted: false,
            telem,
            name: "realm".to_owned(),
        }
    }

    /// Arms (or disarms) the bounded trace-event log behind the
    /// [`Component::telemetry`] hook's spans and instants, overriding the
    /// `REALM_TRACE` default. Disarming discards any recorded events.
    /// Event capture never changes regulation behaviour.
    pub fn record_events(&mut self, on: bool) {
        self.telem.events = on.then(UnitEventLog::default);
    }

    /// Replaces the default instance name (`"realm"`) — distinguishes
    /// units in topology snapshots and lint diagnostics.
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// The design parameters the unit was instantiated with.
    pub fn design(&self) -> DesignConfig {
        self.design
    }

    /// The shared register cell, to be served by a
    /// [`RealmRegFile`](crate::RealmRegFile).
    pub fn regs(&self) -> SharedRegs {
        self.regs.clone()
    }

    /// The manager-facing port.
    pub fn upstream(&self) -> AxiBundle {
        self.upstream
    }

    /// The interconnect-facing port.
    pub fn downstream(&self) -> AxiBundle {
        self.downstream
    }

    /// Unit-level counters.
    pub fn stats(&self) -> UnitStats {
        self.stats
    }

    /// Live view of the budget monitor (regions, budgets, statistics).
    pub fn monitor(&self) -> &BudgetMonitor {
        &self.monitor
    }

    /// The currently applied runtime configuration (intrusive fields may
    /// lag the registers while the unit drains).
    pub fn active_config(&self) -> &RuntimeConfig {
        &self.active
    }

    /// `true` while the ingress refuses new transactions.
    pub fn is_isolated(&self) -> bool {
        self.monitor.any_depleted() || self.active.isolate_request || self.reconfiguring
    }

    /// `true` when no transactions are in flight.
    pub fn is_drained(&self) -> bool {
        self.read.is_drained() && self.write.is_drained()
    }

    /// Pulls configuration written through the register file: non-intrusive
    /// fields apply immediately, intrusive ones (enable, fragmentation
    /// length) trigger an isolate-and-drain before being adopted.
    fn sync_config(&mut self, cycle: u64) {
        // Fast path: no pending command, no drain in progress, and the
        // programmed configuration is already the active one. Everything
        // below is then a no-op, and the clone it starts with is the
        // single biggest per-tick cost of an idle unit.
        {
            let shared = self.regs.borrow();
            if !shared.clear_stats && !self.reconfiguring && shared.runtime == self.active {
                return;
            }
        }
        let mut shared = self.regs.borrow_mut();
        let target = shared.runtime.clone();
        let clear = std::mem::take(&mut shared.clear_stats);
        drop(shared);
        if clear {
            self.monitor.clear_stats();
            self.stats = crate::counters::UnitStats::default();
        }

        self.active.throttle = target.throttle;
        self.active.isolate_request = target.isolate_request;
        for (i, &cfg) in target.regions.iter().enumerate() {
            if self.monitor.regions()[i].config != cfg {
                self.monitor.set_region(i, cfg, cycle);
                self.active.regions[i] = cfg;
                // A live budget reprogram is the mechanism behind MPAM-style
                // criticality switches — worth a mark on the trace.
                self.telem.push_instant("region-reprogrammed", cycle);
            }
        }

        let intrusive_change =
            target.frag_len != self.active.frag_len || target.enabled != self.active.enabled;
        if intrusive_change {
            self.reconfiguring = true;
            if self.is_drained() {
                self.active.frag_len = target.frag_len;
                self.active.enabled = target.enabled;
                self.reconfiguring = false;
                self.telem.push_instant("reconfigured", cycle);
            }
        }
    }

    /// Transparent-wire behaviour while regulation is disabled.
    fn tick_bypass(&mut self, ctx: &mut TickCtx<'_>) {
        let up = self.upstream;
        let down = self.downstream;
        // `can_push` before `pop`: popping only when the forward can land
        // keeps the beat in place under backpressure, and skipping the
        // separate peek avoids checking front visibility twice per channel.
        if ctx.pool.can_push(down.aw, ctx.cycle) {
            if let Some(beat) = ctx.pool.pop(up.aw, ctx.cycle) {
                ctx.pool.push(down.aw, ctx.cycle, beat);
            }
        }
        if ctx.pool.can_push(down.w, ctx.cycle) {
            if let Some(beat) = ctx.pool.pop(up.w, ctx.cycle) {
                ctx.pool.push(down.w, ctx.cycle, beat);
            }
        }
        if ctx.pool.can_push(down.ar, ctx.cycle) {
            if let Some(beat) = ctx.pool.pop(up.ar, ctx.cycle) {
                ctx.pool.push(down.ar, ctx.cycle, beat);
            }
        }
        if ctx.pool.can_push(up.b, ctx.cycle) {
            if let Some(beat) = ctx.pool.pop(down.b, ctx.cycle) {
                ctx.pool.push(up.b, ctx.cycle, beat);
            }
        }
        if ctx.pool.can_push(up.r, ctx.cycle) {
            if let Some(beat) = ctx.pool.pop(down.r, ctx.cycle) {
                ctx.pool.push(up.r, ctx.cycle, beat);
            }
        }
    }

    fn throttle_limit(&self) -> usize {
        if self.active.throttle {
            self.monitor.throttle_limit(self.design.num_pending)
        } else {
            self.design.num_pending
        }
    }

    fn frag_granularity(&self) -> u16 {
        if self.design.splitter_present {
            self.active.frag_len
        } else {
            256
        }
    }

    fn tick_responses(&mut self, ctx: &mut TickCtx<'_>) {
        // Read data downstream → upstream, with last-gating and charging.
        // `can_push` gates the pop so the beat stays put under upstream
        // backpressure (no separate peek: visibility is checked once).
        if ctx.pool.can_push(self.upstream.r, ctx.cycle) {
            if let Some(r) = ctx.pool.pop(self.downstream.r, ctx.cycle) {
                let routed = self.read.on_response(r, ctx.cycle);
                if let Some(latency) = routed.completed_latency {
                    if let Some(region) = routed.region {
                        self.monitor.record_completion(region, latency);
                    }
                    self.telem.note_read(routed.region, latency, ctx.cycle);
                }
                ctx.pool.push(self.upstream.r, ctx.cycle, routed.beat);
            }
        }
        // Write responses: coalesce, forward on completion.
        if ctx.pool.can_push(self.upstream.b, ctx.cycle) {
            if let Some(b) = ctx.pool.pop(self.downstream.b, ctx.cycle) {
                let routed = self.write.on_response(b, ctx.cycle);
                if let Some(latency) = routed.completed_latency {
                    if let Some(region) = routed.region {
                        self.monitor.record_completion(region, latency);
                    }
                    self.telem.note_write(routed.region, latency, ctx.cycle);
                }
                if let Some(beat) = routed.beat {
                    ctx.pool.push(self.upstream.b, ctx.cycle, beat);
                }
            }
        }
    }

    fn tick_intake(&mut self, ctx: &mut TickCtx<'_>) {
        let isolated = self.is_isolated();
        if !isolated {
            if self.read.can_accept() {
                if let Some(&ar) = ctx.pool.peek(self.upstream.ar, ctx.cycle) {
                    let plan = fragment_read(&ar, self.frag_granularity())
                        .expect("granularity validated by config");
                    let region = self.monitor.region_of(ar.addr);
                    ctx.pool.pop(self.upstream.ar, ctx.cycle);
                    self.read.accept(ar, &plan, region, ctx.cycle);
                    self.stats.txns_accepted += 1;
                }
            }
            if self.write.can_accept() {
                if let Some(&aw) = ctx.pool.peek(self.upstream.aw, ctx.cycle) {
                    let plan = fragment_write_header(&aw, self.frag_granularity())
                        .expect("granularity validated by config");
                    let region = self.monitor.region_of(aw.addr);
                    ctx.pool.pop(self.upstream.aw, ctx.cycle);
                    self.write.accept(aw, &plan, region, ctx.cycle);
                    self.stats.txns_accepted += 1;
                }
            }
        }
        // Write data is consumed even while isolated: it belongs to already
        // accepted transactions, which must be allowed to complete.
        if self.write.can_take_beat() {
            if let Some(w) = ctx.pool.pop(self.upstream.w, ctx.cycle) {
                self.write.take_beat(w);
            }
        }
    }

    fn tick_emission(&mut self, ctx: &mut TickCtx<'_>) {
        let limit = self.throttle_limit();
        // Budgets are spent per fragment as it enters the memory system
        // (the M&R unit sits downstream of the splitter, Fig. 2); once a
        // regulated region is dry, no further fragments leave the unit
        // until the period replenishes — even mid-transaction.
        let depleted = self.monitor.any_depleted();
        // Read fragments.
        if !depleted && self.read.peek_fragment(limit).is_some() {
            if ctx.pool.can_push(self.downstream.ar, ctx.cycle) {
                let (frag, bytes, region) = self.read.emit_fragment();
                if let Some(region) = region {
                    self.monitor.charge(region, bytes);
                }
                ctx.pool.push(self.downstream.ar, ctx.cycle, frag);
                self.stats.fragments_emitted += 1;
            } else {
                self.stats.downstream_stall_cycles += 1;
            }
        }
        // Write fragment headers.
        if !depleted && self.write.peek_forward_aw(limit).is_some() {
            if ctx.pool.can_push(self.downstream.aw, ctx.cycle) {
                let (aw, charge) = self.write.forward_aw();
                if let Some(region) = charge.region {
                    self.monitor.charge(region, charge.bytes);
                }
                ctx.pool.push(self.downstream.aw, ctx.cycle, aw);
                self.stats.fragments_emitted += 1;
            } else {
                self.stats.downstream_stall_cycles += 1;
            }
        }
        // Write data beats of already-charged fragments always flow.
        if self.write.peek_forward_beat().is_some()
            && ctx.pool.can_push(self.downstream.w, ctx.cycle)
        {
            let (beat, _charge) = self.write.forward_beat();
            ctx.pool.push(self.downstream.w, ctx.cycle, beat);
        }
    }

    /// Rising-edge detection on the isolation and depletion signals, run
    /// at the end of every executed tick (both the enabled and bypass
    /// paths). Sleeping kernels never miss an edge: isolation is constant
    /// across a sleep stretch (see `on_fast_forward`), and both signals
    /// change only at ticks every kernel executes.
    fn note_status_edges(&mut self, cycle: u64) {
        let depleted = self.monitor.any_depleted();
        if depleted && !self.was_depleted {
            self.stats.budget_exhaustions += 1;
            self.telem.push_instant("budget-exhausted", cycle);
        }
        self.was_depleted = depleted;
        let isolated = self.is_isolated();
        if isolated && !self.was_isolated {
            self.stats.isolation_trips += 1;
            self.telem.push_instant("isolation-trip", cycle);
        }
        self.was_isolated = isolated;
    }

    fn mirror_status(&mut self) {
        let mut shared = self.regs.borrow_mut();
        shared.status.isolated = self.is_isolated();
        shared.status.drained = self.is_drained();
        shared.status.stats = self.stats;
        // Rewrite in place: this runs once per tick (and per reconciled
        // sleep stretch), so it must not allocate.
        shared.status.regions.clear();
        shared.status.regions.extend(
            self.monitor
                .regions()
                .iter()
                .map(|r| (r.stats, r.budget_left)),
        );
    }
}

impl Component for RealmUnit {
    fn tick(&mut self, ctx: &mut TickCtx<'_>) {
        self.sync_config(ctx.cycle);
        self.monitor.tick(ctx.cycle);

        if !self.active.enabled {
            self.tick_bypass(ctx);
            self.note_status_edges(ctx.cycle);
            self.mirror_status();
            return;
        }

        self.tick_responses(ctx);
        self.tick_intake(ctx);
        self.tick_emission(ctx);

        if self.is_isolated() {
            self.stats.isolated_cycles += 1;
        }
        self.note_status_edges(ctx.cycle);
        self.mirror_status();
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn ports(&self) -> Vec<axi_sim::PortDecl> {
        [
            self.upstream.subordinate_ports(),
            self.downstream.manager_ports(),
        ]
        .concat()
    }

    fn next_event(&self, cycle: u64) -> Option<u64> {
        // Register writes not yet applied (or a pending intrusive drain)
        // need a tick to take effect.
        {
            let shared = self.regs.borrow();
            if shared.clear_stats || shared.runtime != self.active {
                return Some(cycle);
            }
        }
        if self.reconfiguring {
            return Some(cycle);
        }
        if self.active.enabled {
            // Queued fragments and buffered write beats want to move now —
            // unless depletion pins them until the next replenishment,
            // which the period wake below covers.
            let limit = self.throttle_limit();
            let depleted = self.monitor.any_depleted();
            if !depleted
                && (self.read.peek_fragment(limit).is_some()
                    || self.write.peek_forward_aw(limit).is_some())
            {
                return Some(cycle);
            }
            if self.write.peek_forward_beat().is_some() {
                return Some(cycle);
            }
        }
        // A region mid-period (spent budget or recorded bytes) changes
        // state when its period replenishes; fresh regions only advance
        // their period grid, reconciled in `on_fast_forward`.
        let mut wake: Option<u64> = None;
        for r in self.monitor.regions() {
            if r.config.period > 0
                && (r.budget_left != r.config.budget_max || r.stats.bytes_this_period != 0)
            {
                let boundary = (r.period_start + r.config.period).max(cycle);
                wake = Some(wake.map_or(boundary, |w| w.min(boundary)));
            }
        }
        wake
    }

    fn backlog_event(&self, cycle: u64) -> Option<u64> {
        // Pending register writes or an intrusive drain: tick every cycle.
        {
            let shared = self.regs.borrow();
            if shared.clear_stats || shared.runtime != self.active {
                return Some(cycle);
            }
        }
        if self.reconfiguring || !self.active.enabled {
            return Some(cycle);
        }
        // Responses may be parked on the downstream B/R wires whenever
        // emitted fragments are unanswered; `tick_responses` pops one per
        // cycle, so backlog there needs a tick right away.
        if self.read.outstanding_fragments() > 0 || self.write.outstanding_fragments() > 0 {
            return Some(cycle);
        }
        // An open intake gate can pop a parked AR/AW/W beat right away.
        // While depleted (or isolated) with a full write buffer, none of
        // these hold — that is the isolation window this hint exists for.
        if self.write.can_take_beat() {
            return Some(cycle);
        }
        if !self.is_isolated() && (self.read.can_accept() || self.write.can_accept()) {
            return Some(cycle);
        }
        // Intake is closed and nothing is coming back: the gates reopen at
        // a period boundary (or via queued-fragment motion), which
        // `next_event` computes, or on fresh wire activity, which the
        // kernel's wire wakes deliver regardless of this hint.
        self.next_event(cycle)
    }

    fn on_fast_forward(&mut self, from: u64, to: u64) {
        // Re-run the elided period bookkeeping: the last elided tick was at
        // `to - 1`, and the grid arithmetic in `BudgetMonitor::tick` lands
        // on the same period start a tick-per-cycle run would.
        self.monitor.tick(to - 1);
        // Isolation is constant across a skip (depletion can only end at a
        // period boundary, which bounds the jump), so each elided tick
        // would have counted one isolated cycle.
        if self.active.enabled && self.is_isolated() {
            self.stats.isolated_cycles += to - from;
            self.mirror_status();
        }
        // No `mirror_status` otherwise: everything it mirrors is provably
        // unchanged across a non-isolated sleep stretch. Stats only move in
        // `tick` (and in the isolated branch above); isolation and drain
        // are constant while asleep; and a region whose budget or byte
        // counter differs from its reset value has a period-boundary wake
        // scheduled, so no stretch crosses a replenishment.
    }

    fn batch_horizon(&self, cycle: u64, pool: &ChannelPool) -> u64 {
        // Only the transparent-wire bypass is batchable: an enabled unit
        // makes per-cycle decisions (budgets, fragmentation, isolation)
        // that are exactly the discrete transitions a window must exclude.
        if self.active.enabled || self.reconfiguring {
            return 0;
        }
        {
            // A pending register command needs `sync_config` every cycle
            // until applied.
            let shared = self.regs.borrow();
            if shared.clear_stats || shared.runtime != self.active {
                return 0;
            }
        }
        // The period grid advances per cycle once any region has a period;
        // with all periods zero `BudgetMonitor::tick` is a no-op.
        if self.monitor.regions().iter().any(|r| r.config.period > 0) {
            return 0;
        }
        // Capacity bound per relay chain: the beats already queued and
        // visible on the consumed wire, and the free slots on the driven
        // wire. Every channel constrains — an empty channel yields zero,
        // because a peer's in-window push would reach the per-cycle relay
        // one cycle later but not a ring sweep sized at window start.
        let up = self.upstream;
        let down = self.downstream;
        pool.relayable(up.aw, cycle)
            .min(pool.headroom(down.aw, cycle))
            .min(pool.relayable(up.w, cycle))
            .min(pool.headroom(down.w, cycle))
            .min(pool.relayable(up.ar, cycle))
            .min(pool.headroom(down.ar, cycle))
            .min(pool.relayable(down.b, cycle))
            .min(pool.headroom(up.b, cycle))
            .min(pool.relayable(down.r, cycle))
            .min(pool.headroom(up.r, cycle))
    }

    fn batch_tick(&mut self, ctx: &mut TickCtx<'_>, window: u64) {
        // Reached only through `batch_horizon`, i.e. in steady bypass:
        // `sync_config` and `BudgetMonitor::tick` are no-ops, so `window`
        // transparent-relay ticks collapse to five ring sweeps. Each sweep
        // moves exactly `window` beats (the horizon bounded the window by
        // every chain's `relayable`/`headroom`), with stamps, taps, and
        // stats landing where the per-cycle ticks would have put them.
        debug_assert!(!self.active.enabled && !self.reconfiguring);
        let up = self.upstream;
        let down = self.downstream;
        ctx.pool.batch_relay(up.aw, down.aw, ctx.cycle, window);
        ctx.pool.batch_relay(up.w, down.w, ctx.cycle, window);
        ctx.pool.batch_relay(up.ar, down.ar, ctx.cycle, window);
        ctx.pool.batch_relay(down.b, up.b, ctx.cycle, window);
        ctx.pool.batch_relay(down.r, up.r, ctx.cycle, window);
        // Everything `mirror_status` writes is unchanged by pure relaying;
        // one trailing call matches the last per-cycle tick's mirror.
        self.mirror_status();
    }

    fn coverage(&self, map: &mut CoverageMap) {
        // Regulation-event coverage for the fuzz campaign: a seed that
        // first trips isolation, first drains a budget, or first pushes
        // the write buffer to a new high lights up a signature bit.
        map.add(
            format!("{}.isolation_trips", self.name),
            self.stats.isolation_trips,
        );
        map.add(
            format!("{}.budget_exhaust", self.name),
            self.stats.budget_exhaustions,
        );
        map.add(
            format!("{}.wbuf.watermark", self.name),
            self.write.buffer_watermark() as u64,
        );
    }

    fn telemetry(&self, sink: &mut TelemetrySink) {
        let n = &self.name;
        sink.counter(&format!("{n}.txns_accepted"), self.stats.txns_accepted);
        sink.counter(
            &format!("{n}.fragments_emitted"),
            self.stats.fragments_emitted,
        );
        sink.counter(&format!("{n}.isolated_cycles"), self.stats.isolated_cycles);
        sink.counter(
            &format!("{n}.downstream_stall_cycles"),
            self.stats.downstream_stall_cycles,
        );
        sink.counter(&format!("{n}.isolation_trips"), self.stats.isolation_trips);
        sink.counter(
            &format!("{n}.budget_exhaustions"),
            self.stats.budget_exhaustions,
        );
        sink.gauge(
            &format!("{n}.wbuf.occupancy"),
            self.write.buffered_beats() as u64,
        );
        sink.gauge(
            &format!("{n}.wbuf.watermark"),
            self.write.buffer_watermark() as u64,
        );
        for (i, r) in self.monitor.regions().iter().enumerate() {
            if r.is_regulated() {
                sink.gauge(&format!("{n}.region{i}.budget_left"), r.budget_left);
            }
        }
        sink.histogram(&format!("{n}.read_latency"), &self.telem.read_latency);
        sink.histogram(&format!("{n}.write_latency"), &self.telem.write_latency);
        for (i, h) in self.telem.region_read.iter().enumerate() {
            if h.count() > 0 {
                sink.histogram(&format!("{n}.region{i}.read_latency"), h);
            }
        }
        for (i, h) in self.telem.region_write.iter().enumerate() {
            if h.count() > 0 {
                sink.histogram(&format!("{n}.region{i}.write_latency"), h);
            }
        }
        if let Some(log) = &self.telem.events {
            for &(name, start, end) in &log.spans {
                sink.span(n, name, start, end);
            }
            for &(name, cycle) in &log.instants {
                sink.instant(n, name, cycle);
            }
        }
    }
}

//! The write side of the REALM unit: fragmentation, the write buffer, and
//! response coalescing.
//!
//! The write buffer is the anti-DoS mechanism (paper §III-A): a fragment is
//! forwarded — `AW` first, then its `W` burst — only once the data is fully
//! contained in the buffer, so a manager that withholds data can no longer
//! reserve the downstream W channel. Fragments larger than the buffer are
//! forwarded *cut-through* (unprotected), which is why the paper sizes the
//! buffer to the largest supported fragmentation.

use std::collections::{BTreeMap, VecDeque};

use axi4::{AwBeat, BBeat, FragPlan, Resp, WBeat};

/// Charge information for one write beat forwarded downstream.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct WriteCharge {
    /// Bytes transferred by the beat.
    pub bytes: u64,
    /// Region the transaction was attributed to.
    pub region: Option<usize>,
}

/// Result of processing a downstream write response.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RoutedWrite {
    /// The coalesced response to forward upstream, if the original
    /// transaction just completed.
    pub beat: Option<BBeat>,
    /// Completion latency when `beat` is `Some`.
    pub completed_latency: Option<u64>,
    /// Region the transaction was attributed to.
    pub region: Option<usize>,
}

#[derive(Debug)]
struct FillTemplate {
    aw: AwBeat,
    expected: u16,
    buffered: bool,
    region: Option<usize>,
}

#[derive(Debug)]
struct PendingFrag {
    aw: AwBeat,
    beats: VecDeque<WBeat>,
    expected: u16,
    filled: u16,
    buffered: bool,
    aw_sent: bool,
    sent: u16,
    region: Option<usize>,
}

#[derive(Debug)]
struct WriteTxnState {
    frags_total: usize,
    frags_acked: usize,
    resp: Resp,
    region: Option<usize>,
    accepted_at: u64,
}

/// Splitter + write buffer + B-coalescing for the write direction.
#[derive(Debug)]
pub struct WritePath {
    num_pending: usize,
    buffer_capacity: usize,
    to_fill: VecDeque<FillTemplate>,
    filling: Option<PendingFrag>,
    /// `true` while the fragment currently receiving beats lives at the
    /// back of `ready` (cut-through mode).
    fill_in_ready: bool,
    ready: VecDeque<PendingFrag>,
    buffered_beats: usize,
    buffer_watermark: usize,
    txns: BTreeMap<u32, VecDeque<WriteTxnState>>,
    pending_txns: usize,
    outstanding_frags: usize,
}

impl WritePath {
    /// Creates the write path with its design-time limits.
    pub fn new(num_pending: usize, buffer_capacity: usize) -> Self {
        Self {
            num_pending,
            buffer_capacity,
            to_fill: VecDeque::new(),
            filling: None,
            fill_in_ready: false,
            ready: VecDeque::new(),
            buffered_beats: 0,
            buffer_watermark: 0,
            txns: BTreeMap::new(),
            pending_txns: 0,
            outstanding_frags: 0,
        }
    }

    /// `true` if a new transaction may be accepted (pending limit).
    pub fn can_accept(&self) -> bool {
        self.pending_txns < self.num_pending
    }

    /// Original transactions in flight.
    pub fn pending(&self) -> usize {
        self.pending_txns
    }

    /// Fragments whose `AW` went downstream and whose `B` is outstanding.
    pub fn outstanding_fragments(&self) -> usize {
        self.outstanding_frags
    }

    /// Write-data beats currently held in the buffer.
    pub fn buffered_beats(&self) -> usize {
        self.buffered_beats
    }

    /// Highest buffer occupancy ever reached — how close the anti-DoS
    /// buffer came to its capacity (and thus to cut-through exposure).
    pub fn buffer_watermark(&self) -> usize {
        self.buffer_watermark
    }

    /// `true` when nothing is buffered, filling, or awaiting responses.
    pub fn is_drained(&self) -> bool {
        self.pending_txns == 0
            && self.to_fill.is_empty()
            && self.filling.is_none()
            && self.ready.is_empty()
    }

    /// Accepts a write transaction with its fragmentation plan.
    ///
    /// # Panics
    ///
    /// Panics if called when [`WritePath::can_accept`] is `false`.
    pub fn accept(&mut self, aw: AwBeat, plan: &FragPlan, region: Option<usize>, cycle: u64) {
        assert!(self.can_accept(), "accept() without can_accept()");
        for frag in plan {
            let mut header = aw;
            header.addr = frag.addr;
            header.len = frag.len;
            header.burst = frag.kind;
            let expected = frag.len.beats();
            self.to_fill.push_back(FillTemplate {
                aw: header,
                expected,
                buffered: (expected as usize) <= self.buffer_capacity,
                region,
            });
        }
        self.txns
            .entry(aw.id.raw())
            .or_default()
            .push_back(WriteTxnState {
                frags_total: plan.len(),
                frags_acked: 0,
                resp: Resp::Okay,
                region,
                accepted_at: cycle,
            });
        self.pending_txns += 1;
    }

    /// `true` if the path can absorb one upstream `W` beat this cycle.
    pub fn can_take_beat(&self) -> bool {
        if self.filling.is_some() || self.fill_in_ready {
            // A buffered fragment mid-fill still needs capacity per beat.
            if self.filling.is_some() && self.buffered_beats >= self.buffer_capacity {
                return false;
            }
            return true;
        }
        match self.to_fill.front() {
            Some(t) if t.buffered => self.buffered_beats < self.buffer_capacity,
            Some(_) => true,
            None => false,
        }
    }

    /// Absorbs one upstream `W` beat, rewriting `last` to the fragment
    /// boundary.
    ///
    /// # Panics
    ///
    /// Panics if called when [`WritePath::can_take_beat`] is `false`.
    pub fn take_beat(&mut self, mut beat: WBeat) {
        assert!(self.can_take_beat(), "take_beat() without can_take_beat()");
        // Start the next fragment if none is mid-fill.
        if self.filling.is_none() && !self.fill_in_ready {
            let t = self.to_fill.pop_front().expect("checked by can_take_beat");
            let frag = PendingFrag {
                aw: t.aw,
                beats: VecDeque::new(),
                expected: t.expected,
                filled: 0,
                buffered: t.buffered,
                aw_sent: false,
                sent: 0,
                region: t.region,
            };
            if t.buffered {
                self.filling = Some(frag);
            } else {
                self.ready.push_back(frag);
                self.fill_in_ready = true;
            }
        }

        let frag = if self.fill_in_ready {
            self.ready.back_mut().expect("cut-through fragment at back")
        } else {
            self.filling.as_mut().expect("buffered fragment mid-fill")
        };
        frag.filled += 1;
        beat.last = frag.filled == frag.expected;
        frag.beats.push_back(beat);
        if frag.buffered {
            self.buffered_beats += 1;
            self.buffer_watermark = self.buffer_watermark.max(self.buffered_beats);
        }
        if frag.filled == frag.expected {
            if self.fill_in_ready {
                self.fill_in_ready = false;
            } else {
                let done = self.filling.take().expect("buffered fragment completed");
                self.ready.push_back(done);
            }
        }
    }

    /// The `AW` of the next fragment to forward, if its turn has come: the
    /// front of the ready queue, not yet sent, within the throttle limit,
    /// and (for buffered fragments) fully contained in the buffer.
    pub fn peek_forward_aw(&self, limit: usize) -> Option<&AwBeat> {
        if self.outstanding_frags >= limit {
            return None;
        }
        let front = self.ready.front()?;
        if front.aw_sent {
            return None;
        }
        if front.buffered && front.filled < front.expected {
            return None;
        }
        Some(&front.aw)
    }

    /// Marks the front fragment's `AW` as sent downstream and reports the
    /// fragment's budget charge (the M&R unit spends budgets per fragment
    /// as it enters the memory system).
    ///
    /// # Panics
    ///
    /// Panics if [`WritePath::peek_forward_aw`] did not return a beat.
    pub fn forward_aw(&mut self) -> (AwBeat, WriteCharge) {
        let front = self.ready.front_mut().expect("forward_aw() after peek");
        assert!(!front.aw_sent, "forward_aw() twice on one fragment");
        front.aw_sent = true;
        self.outstanding_frags += 1;
        let charge = WriteCharge {
            bytes: u64::from(front.expected) * front.aw.size.bytes(),
            region: front.region,
        };
        (front.aw, charge)
    }

    /// The next data beat to forward for the front fragment, if available.
    pub fn peek_forward_beat(&self) -> Option<&WBeat> {
        let front = self.ready.front()?;
        if !front.aw_sent {
            return None;
        }
        front.beats.front()
    }

    /// Pops the next data beat for downstream; reports the budget charge.
    ///
    /// # Panics
    ///
    /// Panics if [`WritePath::peek_forward_beat`] did not return a beat.
    pub fn forward_beat(&mut self) -> (WBeat, WriteCharge) {
        let front = self.ready.front_mut().expect("forward_beat() after peek");
        let beat = front.beats.pop_front().expect("peeked beat present");
        front.sent += 1;
        if front.buffered {
            self.buffered_beats -= 1;
        }
        let charge = WriteCharge {
            bytes: front.aw.size.bytes(),
            region: front.region,
        };
        if front.sent == front.expected {
            self.ready.pop_front();
        }
        (beat, charge)
    }

    /// Processes one downstream `B`: coalesces it into the oldest
    /// incomplete transaction of its ID (worst response wins) and reports
    /// the upstream response when the transaction completes.
    ///
    /// # Panics
    ///
    /// Panics if the response's ID has no write in flight.
    pub fn on_response(&mut self, b: BBeat, cycle: u64) -> RoutedWrite {
        self.outstanding_frags -= 1;
        let states = self
            .txns
            .get_mut(&b.id.raw())
            .expect("response for an unknown write ID");
        let state = states
            .front_mut()
            .expect("response with no write in flight");
        state.frags_acked += 1;
        state.resp = state.resp.merge(b.resp);
        let region = state.region;
        if state.frags_acked == state.frags_total {
            let latency = cycle - state.accepted_at;
            let resp = state.resp;
            states.pop_front();
            if states.is_empty() {
                self.txns.remove(&b.id.raw());
            }
            self.pending_txns -= 1;
            RoutedWrite {
                beat: Some(BBeat::new(b.id, resp)),
                completed_latency: Some(latency),
                region,
            }
        } else {
            RoutedWrite {
                beat: None,
                completed_latency: None,
                region,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use axi4::{fragment_write_header, Addr, BurstKind, BurstLen, BurstSize, TxnId};

    fn aw(id: u32, addr: u64, beats: u16) -> AwBeat {
        AwBeat::new(
            TxnId::new(id),
            Addr::new(addr),
            BurstLen::new(beats).unwrap(),
            BurstSize::bus64(),
            BurstKind::Incr,
        )
    }

    fn accept(path: &mut WritePath, header: AwBeat, frag: u16) {
        let plan = fragment_write_header(&header, frag).unwrap();
        path.accept(header, &plan, Some(0), 0);
    }

    /// Buffered mode: the AW is withheld until the fragment's data is fully
    /// in the buffer — the DoS countermeasure.
    #[test]
    fn buffered_fragment_holds_aw_until_full() {
        let mut p = WritePath::new(8, 16);
        accept(&mut p, aw(1, 0x1000, 4), 4);
        assert!(p.peek_forward_aw(8).is_none(), "no data yet, no AW");
        for i in 0..3 {
            p.take_beat(WBeat::full(i, false));
            assert!(p.peek_forward_aw(8).is_none(), "partial data, no AW");
        }
        p.take_beat(WBeat::full(3, true));
        assert!(p.peek_forward_aw(8).is_some(), "fully buffered → forward");
        let (hdr, charge) = p.forward_aw();
        assert_eq!(hdr.len.beats(), 4);
        assert_eq!(charge.bytes, 32);
        assert_eq!(charge.region, Some(0));
        // Stream the four beats.
        for i in 0..4u64 {
            let (beat, charge) = p.forward_beat();
            assert_eq!(beat.data, i);
            assert_eq!(charge.bytes, 8);
            assert_eq!(beat.last, i == 3);
        }
        assert!(p.peek_forward_beat().is_none());
    }

    #[test]
    fn fragments_rewrite_last_at_boundaries() {
        let mut p = WritePath::new(8, 16);
        accept(&mut p, aw(1, 0x1000, 4), 2);
        // Upstream sends last only on the final beat; fragments get their
        // own last.
        for i in 0..4u64 {
            p.take_beat(WBeat::full(i, i == 3));
        }
        let mut lasts = Vec::new();
        for _ in 0..2 {
            p.forward_aw();
            while p.peek_forward_beat().is_some() {
                let (b, _) = p.forward_beat();
                lasts.push(b.last);
            }
        }
        assert_eq!(lasts, [false, true, false, true]);
    }

    #[test]
    fn b_coalescing_merges_worst_response() {
        let mut p = WritePath::new(8, 16);
        accept(&mut p, aw(1, 0x1000, 4), 2);
        for i in 0..4u64 {
            p.take_beat(WBeat::full(i, i == 3));
        }
        p.forward_aw();
        while p.peek_forward_beat().is_some() {
            p.forward_beat();
        }
        p.forward_aw();
        while p.peek_forward_beat().is_some() {
            p.forward_beat();
        }
        assert_eq!(p.outstanding_fragments(), 2);
        let first = p.on_response(BBeat::new(TxnId::new(1), Resp::SlvErr), 50);
        assert!(first.beat.is_none(), "only one of two fragments acked");
        let second = p.on_response(BBeat::okay(TxnId::new(1)), 60);
        let b = second.beat.expect("transaction complete");
        assert_eq!(b.resp, Resp::SlvErr, "worst response wins");
        assert_eq!(second.completed_latency, Some(60));
        assert!(p.is_drained());
    }

    /// Cut-through mode: fragments larger than the buffer forward the AW
    /// immediately — the (documented) unprotected path.
    #[test]
    fn oversized_fragment_is_cut_through() {
        let mut p = WritePath::new(8, 4);
        accept(&mut p, aw(1, 0x1000, 8), 256); // fragment = 8 beats > 4 capacity
        assert!(p.peek_forward_aw(8).is_none(), "nothing started yet");
        p.take_beat(WBeat::full(0, false));
        assert!(
            p.peek_forward_aw(8).is_some(),
            "cut-through forwards AW as data starts"
        );
        p.forward_aw();
        let (b0, _) = p.forward_beat();
        assert_eq!(b0.data, 0);
        assert!(p.peek_forward_beat().is_none(), "waiting for more data");
        p.take_beat(WBeat::full(1, false));
        assert!(p.peek_forward_beat().is_some());
    }

    #[test]
    fn capacity_backpressures_intake() {
        let mut p = WritePath::new(8, 2);
        accept(&mut p, aw(1, 0x1000, 2), 2); // one 2-beat buffered fragment
        accept(&mut p, aw(1, 0x1040, 2), 2); // a second one
        p.take_beat(WBeat::full(0, false));
        p.take_beat(WBeat::full(1, true));
        // Buffer full: the next fragment cannot start filling.
        assert!(!p.can_take_beat());
        // Draining the first fragment frees space.
        p.forward_aw();
        p.forward_beat();
        assert!(p.can_take_beat());
    }

    #[test]
    fn throttle_limit_blocks_aw() {
        let mut p = WritePath::new(8, 16);
        accept(&mut p, aw(1, 0x1000, 2), 1); // two 1-beat fragments
        p.take_beat(WBeat::full(0, false));
        p.take_beat(WBeat::full(1, true));
        assert!(p.peek_forward_aw(1).is_some());
        p.forward_aw();
        p.forward_beat();
        // One fragment outstanding; limit 1 blocks the second AW.
        assert!(p.peek_forward_aw(1).is_none());
        assert!(p.peek_forward_aw(2).is_some());
        p.on_response(BBeat::okay(TxnId::new(1)), 10);
        assert!(p.peek_forward_aw(1).is_some());
    }

    #[test]
    fn pending_limit_blocks_accept() {
        let mut p = WritePath::new(1, 16);
        accept(&mut p, aw(1, 0x1000, 1), 1);
        assert!(!p.can_accept());
    }

    #[test]
    fn drained_accounting() {
        let mut p = WritePath::new(8, 16);
        assert!(p.is_drained());
        accept(&mut p, aw(1, 0x1000, 1), 1);
        assert!(!p.is_drained());
        p.take_beat(WBeat::full(7, true));
        p.forward_aw();
        p.forward_beat();
        assert!(!p.is_drained(), "awaiting B");
        let done = p.on_response(BBeat::okay(TxnId::new(1)), 9);
        assert!(done.beat.is_some());
        assert!(p.is_drained());
    }
}

//! The shared register state between a REALM unit and the configuration
//! register file, plus the memory-mapped register layout.

use std::cell::RefCell;
use std::rc::Rc;

use axi4::{Resp, TxnId};
use axi_mem::MmioDevice;

use crate::config::{DesignConfig, RegionConfig, RuntimeConfig};
use crate::counters::{RegionStats, UnitStats};

/// Status and statistics a unit mirrors into its registers every cycle.
#[derive(Clone, Debug, Default)]
pub struct UnitStatus {
    /// The unit is currently refusing new transactions.
    pub isolated: bool,
    /// No transactions are in flight.
    pub drained: bool,
    /// Unit-level counters.
    pub stats: UnitStats,
    /// Per-region statistics and remaining budget.
    pub regions: Vec<(RegionStats, u64)>,
}

/// Register state shared between one [`RealmUnit`](crate::RealmUnit) and
/// the [`RealmRegFile`]: the register file writes the runtime
/// configuration, the unit writes back status.
#[derive(Clone, Debug)]
pub struct RegState {
    /// Design-time parameters (read-only at runtime).
    pub design: DesignConfig,
    /// Runtime configuration as programmed through the register file.
    pub runtime: RuntimeConfig,
    /// Status mirror maintained by the unit.
    pub status: UnitStatus,
    /// One-shot command: clear all statistics counters (set by writing
    /// CTRL bit 3, consumed by the unit on its next cycle).
    pub clear_stats: bool,
}

/// Shared handle to a unit's register state.
///
/// `Rc<RefCell<…>>` couples the register-file subordinate to its unit the
/// way dedicated configuration wires do in the RTL; the simulation kernel is
/// single-threaded, so this stays panic-free as long as borrows do not
/// outlive a tick phase.
pub type SharedRegs = Rc<RefCell<RegState>>;

/// Creates a shared register cell for one unit.
pub fn shared_regs(design: DesignConfig, runtime: RuntimeConfig) -> SharedRegs {
    let regions = vec![(RegionStats::default(), 0); runtime.regions.len()];
    Rc::new(RefCell::new(RegState {
        design,
        runtime,
        status: UnitStatus {
            regions,
            ..UnitStatus::default()
        },
        clear_stats: false,
    }))
}

/// Byte offsets of the register map (64-bit registers).
pub mod offsets {
    /// First unit's base offset within the register file.
    pub const UNIT_BASE: u64 = 0x40;
    /// Stride between units.
    pub const UNIT_STRIDE: u64 = 0x400;
    /// First region's offset within a unit.
    pub const REGION_BASE: u64 = 0x40;
    /// Stride between regions within a unit.
    pub const REGION_STRIDE: u64 = 0x60;

    /// Control register: bit 0 enable, bit 1 throttle, bit 2 isolate,
    /// bit 3 write-1-to-clear all statistics counters.
    pub const CTRL: u64 = 0x00;
    /// Fragmentation length in beats (intrusive: unit drains first).
    pub const FRAG_LEN: u64 = 0x08;
    /// Status (read-only): bit 0 isolated, bit 1 drained.
    pub const STATUS: u64 = 0x10;
    /// Transactions accepted (read-only).
    pub const TXNS_ACCEPTED: u64 = 0x18;
    /// Fragments emitted (read-only).
    pub const FRAGS_EMITTED: u64 = 0x20;
    /// Cycles spent isolated (read-only).
    pub const ISOLATED_CYCLES: u64 = 0x28;
    /// Downstream stall cycles (read-only).
    pub const DOWNSTREAM_STALLS: u64 = 0x30;
    /// Hardware discovery (read-only): bits [7:0] region count, [15:8]
    /// pending transactions, [31:16] write-buffer depth, bit 32 splitter
    /// present — what an MPAM-style hypervisor probes before programming.
    pub const DESIGN_INFO: u64 = 0x38;

    /// Region: base address.
    pub const R_BASE: u64 = 0x00;
    /// Region: size in bytes.
    pub const R_SIZE: u64 = 0x08;
    /// Region: budget in bytes per period.
    pub const R_BUDGET: u64 = 0x10;
    /// Region: period in cycles.
    pub const R_PERIOD: u64 = 0x18;
    /// Region: remaining budget (read-only).
    pub const R_BUDGET_LEFT: u64 = 0x20;
    /// Region: bytes this period (read-only).
    pub const R_BYTES_PERIOD: u64 = 0x28;
    /// Region: bytes since reset (read-only).
    pub const R_BYTES_TOTAL: u64 = 0x30;
    /// Region: completed transactions (read-only).
    pub const R_TXN_COUNT: u64 = 0x38;
    /// Region: latency sum (read-only).
    pub const R_LAT_SUM: u64 = 0x40;
    /// Region: worst-case latency (read-only).
    pub const R_LAT_MAX: u64 = 0x48;
    /// Region: latency sample count (read-only).
    pub const R_LAT_CNT: u64 = 0x50;

    /// Offset of unit `u`'s register block.
    pub const fn unit(u: usize) -> u64 {
        UNIT_BASE + u as u64 * UNIT_STRIDE
    }

    /// Offset of region `r` within unit `u`.
    pub const fn region(u: usize, r: usize) -> u64 {
        unit(u) + REGION_BASE + r as u64 * REGION_STRIDE
    }
}

/// The AXI-REALM configuration register file: one register block per unit,
/// exposed as an [`MmioDevice`] (wrap it in a
/// [`BusGuard`](crate::BusGuard) and serve it through an
/// `MmioSubordinate`).
#[derive(Debug, Default)]
pub struct RealmRegFile {
    units: Vec<SharedRegs>,
}

impl RealmRegFile {
    /// Creates a register file over the given units' shared registers.
    pub fn new(units: Vec<SharedRegs>) -> Self {
        Self { units }
    }

    /// Number of units served.
    pub fn unit_count(&self) -> usize {
        self.units.len()
    }

    fn locate(&self, offset: u64) -> Option<(usize, u64)> {
        if offset < offsets::UNIT_BASE {
            return None;
        }
        let rel = offset - offsets::UNIT_BASE;
        let unit = (rel / offsets::UNIT_STRIDE) as usize;
        if unit >= self.units.len() {
            return None;
        }
        Some((unit, rel % offsets::UNIT_STRIDE))
    }
}

impl MmioDevice for RealmRegFile {
    fn read(&mut self, offset: u64, _id: TxnId) -> (u64, Resp) {
        let Some((unit, rel)) = self.locate(offset) else {
            return (0, Resp::SlvErr);
        };
        let state = self.units[unit].borrow();
        if rel < offsets::REGION_BASE {
            let value = match rel {
                offsets::CTRL => {
                    u64::from(state.runtime.enabled)
                        | u64::from(state.runtime.throttle) << 1
                        | u64::from(state.runtime.isolate_request) << 2
                }
                offsets::FRAG_LEN => u64::from(state.runtime.frag_len),
                offsets::STATUS => {
                    u64::from(state.status.isolated) | u64::from(state.status.drained) << 1
                }
                offsets::TXNS_ACCEPTED => state.status.stats.txns_accepted,
                offsets::FRAGS_EMITTED => state.status.stats.fragments_emitted,
                offsets::ISOLATED_CYCLES => state.status.stats.isolated_cycles,
                offsets::DOWNSTREAM_STALLS => state.status.stats.downstream_stall_cycles,
                offsets::DESIGN_INFO => {
                    (state.design.num_regions as u64 & 0xff)
                        | (state.design.num_pending as u64 & 0xff) << 8
                        | (state.design.write_buffer_depth as u64 & 0xffff) << 16
                        | u64::from(state.design.splitter_present) << 32
                }
                _ => return (0, Resp::SlvErr),
            };
            return (value, Resp::Okay);
        }
        let region = ((rel - offsets::REGION_BASE) / offsets::REGION_STRIDE) as usize;
        let reg = (rel - offsets::REGION_BASE) % offsets::REGION_STRIDE;
        if region >= state.runtime.regions.len() {
            return (0, Resp::SlvErr);
        }
        let cfg = state.runtime.regions[region];
        let (stats, budget_left) = state
            .status
            .regions
            .get(region)
            .copied()
            .unwrap_or_default();
        let value = match reg {
            offsets::R_BASE => cfg.base.raw(),
            offsets::R_SIZE => cfg.size,
            offsets::R_BUDGET => cfg.budget_max,
            offsets::R_PERIOD => cfg.period,
            offsets::R_BUDGET_LEFT => budget_left,
            offsets::R_BYTES_PERIOD => stats.bytes_this_period,
            offsets::R_BYTES_TOTAL => stats.bytes_total,
            offsets::R_TXN_COUNT => stats.txn_count,
            offsets::R_LAT_SUM => stats.latency.sum(),
            offsets::R_LAT_MAX => stats.latency.max(),
            offsets::R_LAT_CNT => stats.latency.count(),
            _ => return (0, Resp::SlvErr),
        };
        (value, Resp::Okay)
    }

    fn write(&mut self, offset: u64, data: u64, strb: u8, _id: TxnId) -> Resp {
        if strb != 0xff {
            return Resp::SlvErr;
        }
        let Some((unit, rel)) = self.locate(offset) else {
            return Resp::SlvErr;
        };
        let mut state = self.units[unit].borrow_mut();
        if rel < offsets::REGION_BASE {
            match rel {
                offsets::CTRL => {
                    state.runtime.enabled = data & 1 != 0;
                    state.runtime.throttle = data & 2 != 0;
                    state.runtime.isolate_request = data & 4 != 0;
                    if data & 8 != 0 {
                        state.clear_stats = true;
                    }
                    Resp::Okay
                }
                offsets::FRAG_LEN => {
                    if data == 0 || data > 256 {
                        return Resp::SlvErr;
                    }
                    state.runtime.frag_len = data as u16;
                    Resp::Okay
                }
                _ => Resp::SlvErr, // read-only or unmapped
            }
        } else {
            let region = ((rel - offsets::REGION_BASE) / offsets::REGION_STRIDE) as usize;
            let reg = (rel - offsets::REGION_BASE) % offsets::REGION_STRIDE;
            if region >= state.runtime.regions.len() {
                return Resp::SlvErr;
            }
            let cfg: &mut RegionConfig = &mut state.runtime.regions[region];
            match reg {
                offsets::R_BASE => cfg.base = axi4::Addr::new(data),
                offsets::R_SIZE => cfg.size = data,
                offsets::R_BUDGET => cfg.budget_max = data,
                offsets::R_PERIOD => cfg.period = data,
                _ => return Resp::SlvErr, // read-only or unmapped
            }
            Resp::Okay
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn regfile() -> (RealmRegFile, SharedRegs) {
        let design = DesignConfig::cheshire();
        let runtime = RuntimeConfig::open(design.num_regions);
        let regs = shared_regs(design, runtime);
        (RealmRegFile::new(vec![regs.clone()]), regs)
    }

    const ID: TxnId = TxnId::new(3);

    #[test]
    fn ctrl_roundtrip() {
        let (mut rf, regs) = regfile();
        let off = offsets::unit(0) + offsets::CTRL;
        assert_eq!(rf.write(off, 0b101, 0xff, ID), Resp::Okay);
        assert_eq!(rf.read(off, ID), (0b101, Resp::Okay));
        let state = regs.borrow();
        assert!(state.runtime.enabled);
        assert!(!state.runtime.throttle);
        assert!(state.runtime.isolate_request);
    }

    #[test]
    fn frag_len_validation() {
        let (mut rf, regs) = regfile();
        let off = offsets::unit(0) + offsets::FRAG_LEN;
        assert_eq!(rf.write(off, 16, 0xff, ID), Resp::Okay);
        assert_eq!(regs.borrow().runtime.frag_len, 16);
        assert_eq!(rf.write(off, 0, 0xff, ID), Resp::SlvErr);
        assert_eq!(rf.write(off, 300, 0xff, ID), Resp::SlvErr);
        assert_eq!(regs.borrow().runtime.frag_len, 16, "bad writes ignored");
    }

    #[test]
    fn region_config_roundtrip() {
        let (mut rf, regs) = regfile();
        let base = offsets::region(0, 1);
        rf.write(base + offsets::R_BASE, 0x8000_0000, 0xff, ID);
        rf.write(base + offsets::R_SIZE, 0x1000, 0xff, ID);
        rf.write(base + offsets::R_BUDGET, 8192, 0xff, ID);
        rf.write(base + offsets::R_PERIOD, 1000, 0xff, ID);
        let cfg = regs.borrow().runtime.regions[1];
        assert_eq!(cfg.base.raw(), 0x8000_0000);
        assert_eq!(cfg.size, 0x1000);
        assert_eq!(cfg.budget_max, 8192);
        assert_eq!(cfg.period, 1000);
        assert_eq!(rf.read(base + offsets::R_BUDGET, ID), (8192, Resp::Okay));
    }

    #[test]
    fn status_registers_reflect_mirror() {
        let (mut rf, regs) = regfile();
        {
            let mut s = regs.borrow_mut();
            s.status.isolated = true;
            s.status.stats.txns_accepted = 42;
            s.status.regions[0].1 = 512;
            s.status.regions[0].0.bytes_total = 4096;
        }
        let u = offsets::unit(0);
        assert_eq!(rf.read(u + offsets::STATUS, ID).0 & 1, 1);
        assert_eq!(rf.read(u + offsets::TXNS_ACCEPTED, ID).0, 42);
        let r = offsets::region(0, 0);
        assert_eq!(rf.read(r + offsets::R_BUDGET_LEFT, ID).0, 512);
        assert_eq!(rf.read(r + offsets::R_BYTES_TOTAL, ID).0, 4096);
    }

    #[test]
    fn read_only_registers_reject_writes() {
        let (mut rf, _regs) = regfile();
        let u = offsets::unit(0);
        assert_eq!(rf.write(u + offsets::STATUS, 1, 0xff, ID), Resp::SlvErr);
        assert_eq!(
            rf.write(offsets::region(0, 0) + offsets::R_BUDGET_LEFT, 1, 0xff, ID),
            Resp::SlvErr
        );
    }

    #[test]
    fn unmapped_offsets_error() {
        let (mut rf, _regs) = regfile();
        assert_eq!(rf.read(0x0, ID).1, Resp::SlvErr);
        assert_eq!(rf.read(offsets::unit(5), ID).1, Resp::SlvErr);
        assert_eq!(
            rf.read(offsets::region(0, 7) + offsets::R_BASE, ID).1,
            Resp::SlvErr
        );
        assert_eq!(rf.unit_count(), 1);
    }

    #[test]
    fn three_units_address_independently() {
        let design = DesignConfig::cheshire();
        let units: Vec<SharedRegs> = (0..3)
            .map(|_| shared_regs(design, RuntimeConfig::open(design.num_regions)))
            .collect();
        let mut rf = RealmRegFile::new(units.clone());
        assert_eq!(rf.unit_count(), 3);
        for (u, regs) in units.iter().enumerate() {
            let off = offsets::unit(u) + offsets::FRAG_LEN;
            assert_eq!(rf.write(off, 10 + u as u64, 0xff, ID), Resp::Okay);
            assert_eq!(regs.borrow().runtime.frag_len, 10 + u as u16);
        }
        // Unit 1's region 1 does not alias unit 2's region 0.
        let r11 = offsets::region(1, 1) + offsets::R_BUDGET;
        let r20 = offsets::region(2, 0) + offsets::R_BUDGET;
        rf.write(r11, 111, 0xff, ID);
        rf.write(r20, 222, 0xff, ID);
        assert_eq!(units[1].borrow().runtime.regions[1].budget_max, 111);
        assert_eq!(units[2].borrow().runtime.regions[0].budget_max, 222);
        assert_eq!(units[1].borrow().runtime.regions[0].budget_max, 0);
        // Beyond the last unit: error.
        assert_eq!(rf.read(offsets::unit(3), ID).1, Resp::SlvErr);
    }

    #[test]
    fn design_info_discovery() {
        let (mut rf, _regs) = regfile();
        let off = offsets::unit(0) + offsets::DESIGN_INFO;
        let (info, resp) = rf.read(off, ID);
        assert_eq!(resp, Resp::Okay);
        assert_eq!(info & 0xff, 2, "regions");
        assert_eq!((info >> 8) & 0xff, 8, "pending");
        assert_eq!((info >> 16) & 0xffff, 16, "buffer depth");
        assert_eq!((info >> 32) & 1, 1, "splitter present");
        // Read-only.
        assert_eq!(rf.write(off, 0, 0xff, ID), Resp::SlvErr);
    }

    #[test]
    fn ctrl_clear_bit_latches_command() {
        let (mut rf, regs) = regfile();
        let off = offsets::unit(0) + offsets::CTRL;
        assert!(!regs.borrow().clear_stats);
        // Write enable + clear together: clear latches, enable persists.
        assert_eq!(rf.write(off, 0b1001, 0xff, ID), Resp::Okay);
        assert!(regs.borrow().clear_stats);
        assert!(regs.borrow().runtime.enabled);
        // The clear bit reads back as zero (it is a command, not state).
        assert_eq!(rf.read(off, ID).0 & 8, 0);
        // A write without bit 3 does not cancel a pending clear.
        regs.borrow_mut().clear_stats = true;
        assert_eq!(rf.write(off, 0b0001, 0xff, ID), Resp::Okay);
        assert!(regs.borrow().clear_stats);
    }

    #[test]
    fn partial_strobe_rejected() {
        let (mut rf, _regs) = regfile();
        assert_eq!(
            rf.write(offsets::unit(0) + offsets::CTRL, 1, 0x0f, ID),
            Resp::SlvErr
        );
    }
}

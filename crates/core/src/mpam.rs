//! An MPAM-style partitioning front-end for the configuration interface.
//!
//! Arm's *Memory System Resource Partitioning and Monitoring* (MPAM)
//! expresses bandwidth control as partitions (`PARTID`s) with maximum
//! bandwidth allocations, discovered and programmed by a hypervisor. The
//! paper notes that *"MPAM priority partitioning could be applied to
//! AXI-REALM's flexible configuration interface"* — this module is that
//! bridge: it translates MPAM-like bandwidth partitions into REALM region
//! budgets and applies them through the units' shared registers, exactly
//! as a hypervisor would through the register file.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

use crate::config::RegionConfig;
use crate::regs::SharedRegs;

/// An MPAM partition identifier.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct PartId(pub u16);

impl fmt::Display for PartId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PARTID{}", self.0)
    }
}

/// A bandwidth partition: the MPAM `MBW_MAX`-style allocation expressed in
/// REALM terms (bytes per accounting period).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BandwidthPartition {
    /// Maximum bytes the partition may transfer per period (0 = unlimited).
    pub max_bytes: u64,
    /// Accounting period in cycles.
    pub period: u64,
    /// Fragmentation granularity enforced for the partition's managers.
    pub frag_len: u16,
}

impl BandwidthPartition {
    /// An unlimited, unfragmented partition (monitoring only).
    pub fn unlimited() -> Self {
        Self {
            max_bytes: 0,
            period: 0,
            frag_len: 256,
        }
    }
}

/// Partition-table errors.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PartitionError {
    /// A manager was bound to a partition that does not exist.
    UnknownPartition {
        /// The missing ID.
        part: PartId,
    },
    /// A unit index beyond the managed set was addressed.
    UnknownUnit {
        /// The unit index.
        unit: usize,
        /// Number of managed units.
        managed: usize,
    },
}

impl fmt::Display for PartitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionError::UnknownPartition { part } => {
                write!(f, "{part} is not defined in the partition table")
            }
            PartitionError::UnknownUnit { unit, managed } => {
                write!(f, "unit {unit} is outside the {managed} managed units")
            }
        }
    }
}

impl Error for PartitionError {}

/// Maps MPAM-style partitions onto a set of REALM units.
///
/// The table owns the policy (partition definitions, unit→partition
/// bindings); [`PartitionTable::apply`] pushes the policy into the units'
/// shared registers. Units pick the change up exactly as they would a
/// register-file write — intrusive fields drain first.
///
/// ```
/// use axi_realm::mpam::{BandwidthPartition, PartId, PartitionTable};
/// use axi_realm::{shared_regs, DesignConfig, RuntimeConfig};
/// use axi4::Addr;
///
/// # fn main() -> Result<(), axi_realm::mpam::PartitionError> {
/// let regs = shared_regs(DesignConfig::cheshire(), RuntimeConfig::open(2));
/// let mut table = PartitionTable::new(vec![regs.clone()], Addr::new(0x8000_0000), 1 << 20);
/// table.define(PartId(3), BandwidthPartition { max_bytes: 4096, period: 1000, frag_len: 1 });
/// table.bind(0, PartId(3))?;
/// table.apply()?;
/// assert_eq!(regs.borrow().runtime.regions[0].budget_max, 4096);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct PartitionTable {
    units: Vec<SharedRegs>,
    partitions: BTreeMap<PartId, BandwidthPartition>,
    bindings: BTreeMap<usize, PartId>,
    region_base: axi4::Addr,
    region_size: u64,
}

impl PartitionTable {
    /// Creates a table managing `units`, regulating the given address
    /// window (region 0 of each unit).
    pub fn new(units: Vec<SharedRegs>, region_base: axi4::Addr, region_size: u64) -> Self {
        Self {
            units,
            partitions: BTreeMap::new(),
            bindings: BTreeMap::new(),
            region_base,
            region_size,
        }
    }

    /// Defines (or redefines) a partition.
    pub fn define(&mut self, part: PartId, allocation: BandwidthPartition) {
        self.partitions.insert(part, allocation);
    }

    /// Binds a unit (by index in the managed set) to a partition.
    ///
    /// # Errors
    ///
    /// [`PartitionError::UnknownUnit`] or
    /// [`PartitionError::UnknownPartition`].
    pub fn bind(&mut self, unit: usize, part: PartId) -> Result<(), PartitionError> {
        if unit >= self.units.len() {
            return Err(PartitionError::UnknownUnit {
                unit,
                managed: self.units.len(),
            });
        }
        if !self.partitions.contains_key(&part) {
            return Err(PartitionError::UnknownPartition { part });
        }
        self.bindings.insert(unit, part);
        Ok(())
    }

    /// The partition a unit is bound to, if any.
    pub fn binding(&self, unit: usize) -> Option<PartId> {
        self.bindings.get(&unit).copied()
    }

    /// Number of managed units.
    pub fn unit_count(&self) -> usize {
        self.units.len()
    }

    /// Pushes every binding into the units' registers. Unbound units are
    /// left untouched.
    ///
    /// # Errors
    ///
    /// [`PartitionError::UnknownPartition`] if a binding references a
    /// partition that was removed after binding.
    pub fn apply(&self) -> Result<(), PartitionError> {
        for (&unit, &part) in &self.bindings {
            let allocation = self
                .partitions
                .get(&part)
                .ok_or(PartitionError::UnknownPartition { part })?;
            let mut state = self.units[unit].borrow_mut();
            state.runtime.frag_len = allocation.frag_len;
            state.runtime.regions[0] = RegionConfig {
                base: self.region_base,
                size: self.region_size,
                budget_max: allocation.max_bytes,
                period: allocation.period,
            };
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DesignConfig, RuntimeConfig};
    use crate::regs::shared_regs;
    use axi4::Addr;

    fn table(n: usize) -> (PartitionTable, Vec<SharedRegs>) {
        let regs: Vec<SharedRegs> = (0..n)
            .map(|_| shared_regs(DesignConfig::cheshire(), RuntimeConfig::open(2)))
            .collect();
        (
            PartitionTable::new(regs.clone(), Addr::new(0x8000_0000), 1 << 20),
            regs,
        )
    }

    #[test]
    fn define_bind_apply() {
        let (mut t, regs) = table(2);
        t.define(
            PartId(1),
            BandwidthPartition {
                max_bytes: 8192,
                period: 1000,
                frag_len: 1,
            },
        );
        t.define(PartId(2), BandwidthPartition::unlimited());
        t.bind(0, PartId(1)).unwrap();
        t.bind(1, PartId(2)).unwrap();
        t.apply().unwrap();

        let r0 = regs[0].borrow();
        assert_eq!(r0.runtime.regions[0].budget_max, 8192);
        assert_eq!(r0.runtime.regions[0].period, 1000);
        assert_eq!(r0.runtime.frag_len, 1);
        let r1 = regs[1].borrow();
        assert_eq!(r1.runtime.regions[0].budget_max, 0);
        assert_eq!(r1.runtime.frag_len, 256);
        assert_eq!(t.binding(0), Some(PartId(1)));
        assert_eq!(t.unit_count(), 2);
    }

    #[test]
    fn rebinding_switches_allocation() {
        let (mut t, regs) = table(1);
        t.define(
            PartId(1),
            BandwidthPartition {
                max_bytes: 100,
                period: 10,
                frag_len: 4,
            },
        );
        t.define(
            PartId(2),
            BandwidthPartition {
                max_bytes: 999,
                period: 99,
                frag_len: 8,
            },
        );
        t.bind(0, PartId(1)).unwrap();
        t.apply().unwrap();
        assert_eq!(regs[0].borrow().runtime.regions[0].budget_max, 100);
        t.bind(0, PartId(2)).unwrap();
        t.apply().unwrap();
        assert_eq!(regs[0].borrow().runtime.regions[0].budget_max, 999);
        assert_eq!(regs[0].borrow().runtime.frag_len, 8);
    }

    #[test]
    fn binding_errors() {
        let (mut t, _regs) = table(1);
        assert!(matches!(
            t.bind(0, PartId(9)),
            Err(PartitionError::UnknownPartition { .. })
        ));
        t.define(PartId(9), BandwidthPartition::unlimited());
        assert!(matches!(
            t.bind(5, PartId(9)),
            Err(PartitionError::UnknownUnit { .. })
        ));
        assert!(t.bind(0, PartId(9)).is_ok());
    }

    #[test]
    fn unbound_units_untouched() {
        let (mut t, regs) = table(2);
        t.define(
            PartId(1),
            BandwidthPartition {
                max_bytes: 50,
                period: 5,
                frag_len: 2,
            },
        );
        t.bind(0, PartId(1)).unwrap();
        t.apply().unwrap();
        assert_eq!(regs[1].borrow().runtime.frag_len, 256, "default retained");
    }

    #[test]
    fn error_display() {
        assert!(PartitionError::UnknownPartition { part: PartId(3) }
            .to_string()
            .contains("PARTID3"));
        assert!(PartitionError::UnknownUnit {
            unit: 7,
            managed: 2
        }
        .to_string()
        .contains("7"));
    }
}

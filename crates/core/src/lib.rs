//! AXI-REALM: a lightweight, modular real-time extension for AXI4
//! interconnects — behavioural reproduction of the DATE 2024 paper.
//!
//! The crate implements the paper's contribution in full:
//!
//! - [`RealmUnit`]: the per-manager regulation unit (Fig. 2) — isolation
//!   block, granular burst splitter, write buffer, and the monitoring &
//!   regulation (M&R) unit with per-region budgets and periods (Fig. 4).
//! - [`RealmRegFile`] + [`BusGuard`]: the memory-mapped configuration
//!   interface with TID-based ownership, claim, and handover (§III-B).
//! - [`area`]: the 12 nm area model of Table II, for cost estimation
//!   without a synthesis flow.
//!
//! # Quickstart
//!
//! ```
//! use axi_realm::{DesignConfig, RealmUnit, RegionConfig, RuntimeConfig};
//! use axi_sim::{AxiBundle, ChannelPool};
//! use axi4::Addr;
//!
//! let mut pool = ChannelPool::new();
//! let upstream = AxiBundle::with_defaults(&mut pool);   // from the manager
//! let downstream = AxiBundle::with_defaults(&mut pool); // to the crossbar
//!
//! let mut runtime = RuntimeConfig::open(2);
//! runtime.frag_len = 1; // maximum fairness: single-beat fragments
//! runtime.regions[0] = RegionConfig {
//!     base: Addr::new(0x8000_0000),
//!     size: 1 << 20,
//!     budget_max: 8192, // bytes per period
//!     period: 1000,     // cycles
//! };
//! let unit = RealmUnit::new(DesignConfig::cheshire(), runtime, upstream, downstream);
//! assert!(!unit.is_isolated());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod area;
pub mod baseline;
mod config;
mod counters;
mod guard;
mod monitor;
pub mod mpam;
pub mod planner;
mod read_path;
mod regs;
mod unit;
mod write_path;

pub use config::{ConfigError, DesignConfig, RegionConfig, RuntimeConfig};
pub use counters::{LatencyCounters, RegionStats, UnitStats};
pub use guard::{BusGuard, GUARD_UNCLAIMED};
pub use monitor::{BudgetMonitor, RegionState};
pub use read_path::{ReadPath, RoutedRead};
pub use regs::{offsets, shared_regs, RealmRegFile, RegState, SharedRegs, UnitStatus};
pub use unit::RealmUnit;
pub use write_path::{RoutedWrite, WriteCharge, WritePath};

//! The paper's analytical area model (Table II).
//!
//! Table II of the paper reports, for each sub-block of AXI-REALM, the area
//! contribution in gate equivalents (GE) per unit of each design parameter,
//! fitted from GlobalFoundries 12 nm synthesis at 1 GHz. The model is
//! evaluated as the paper instructs: *"the individual unit's area
//! contributions are multiplied by the parameter value and summed up."*
//!
//! Parameter units used by this implementation: address and data width in
//! bits, pending transactions and buffer depth in elements, and storage
//! size in **kibibits** (the product of buffer depth and data width; the
//! paper's footnote gives its evaluated range as 256–8192 b). The kibibit
//! interpretation is the only one consistent with the magnitudes of
//! Tables I and II; see `EXPERIMENTS.md` for the calibration note.

use std::fmt;

/// Which structural scope a sub-block's area multiplies with.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Scope {
    /// Instantiated once per system (e.g. the bus guard).
    PerSystem,
    /// Instantiated once per REALM unit.
    PerUnit,
    /// Instantiated once per unit *and* region.
    PerUnitRegion,
}

impl fmt::Display for Scope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Scope::PerSystem => "per-system",
            Scope::PerUnit => "per-unit",
            Scope::PerUnitRegion => "per-unit&region",
        };
        f.write_str(s)
    }
}

/// Whether a sub-block belongs to the configuration register file or the
/// REALM unit proper (the two groups of Table II).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Group {
    /// Configuration register file.
    ConfigRegFile,
    /// The REALM unit datapath.
    RealmUnit,
}

/// Area coefficients of one sub-block, in GE per parameter unit.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Coefficients {
    /// GE per address bit.
    pub addr_width: f64,
    /// GE per data bit.
    pub data_width: f64,
    /// GE per pending transaction.
    pub num_pending: f64,
    /// GE per buffer element.
    pub buffer_depth: f64,
    /// GE per kibibit of write-buffer storage.
    pub storage_kibit: f64,
    /// Parameter-independent base area in GE.
    pub constant: f64,
}

/// One row of the area model: a named sub-block with its scope and
/// coefficients.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct SubBlock {
    /// Sub-block name as printed in Table II.
    pub name: &'static str,
    /// Register file or datapath.
    pub group: Group,
    /// Structural multiplicity.
    pub scope: Scope,
    /// Fitted coefficients.
    pub coefficients: Coefficients,
}

const fn c(
    addr_width: f64,
    data_width: f64,
    num_pending: f64,
    buffer_depth: f64,
    storage_kibit: f64,
    constant: f64,
) -> Coefficients {
    Coefficients {
        addr_width,
        data_width,
        num_pending,
        buffer_depth,
        storage_kibit,
        constant,
    }
}

/// The eleven sub-blocks of Table II with their published coefficients.
pub const SUB_BLOCKS: [SubBlock; 11] = [
    SubBlock {
        name: "Bus Guard",
        group: Group::ConfigRegFile,
        scope: Scope::PerSystem,
        coefficients: c(0.0, 0.0, 0.0, 0.0, 0.0, 260.6),
    },
    SubBlock {
        name: "Burst config Register",
        group: Group::ConfigRegFile,
        scope: Scope::PerUnit,
        coefficients: c(0.0, 0.0, 0.0, 0.0, 0.0, 83.5),
    },
    SubBlock {
        name: "C&S Register",
        group: Group::ConfigRegFile,
        scope: Scope::PerUnit,
        coefficients: c(0.0, 0.0, 0.0, 0.0, 0.0, 24.6),
    },
    SubBlock {
        name: "Budget & Period Register",
        group: Group::ConfigRegFile,
        scope: Scope::PerUnitRegion,
        coefficients: c(0.0, 0.0, 0.0, 0.0, 0.0, 1319.6),
    },
    SubBlock {
        name: "Region Boundary Register",
        group: Group::ConfigRegFile,
        scope: Scope::PerUnitRegion,
        coefficients: c(20.6, 0.0, 0.0, 0.0, 0.0, 0.0),
    },
    SubBlock {
        name: "Isolate & Throttle",
        group: Group::RealmUnit,
        scope: Scope::PerUnit,
        coefficients: c(3.5, 2.7, 9.0, 0.0, 0.0, 267.1),
    },
    SubBlock {
        name: "Burst Splitter",
        group: Group::RealmUnit,
        scope: Scope::PerUnit,
        coefficients: c(49.3, 1.5, 729.4, 0.0, 0.0, 4835.0),
    },
    SubBlock {
        name: "Meta Buffer",
        group: Group::RealmUnit,
        scope: Scope::PerUnit,
        coefficients: c(38.1, 0.0, 0.0, 0.0, 0.0, 1309.7),
    },
    SubBlock {
        name: "Write Buffer",
        group: Group::RealmUnit,
        scope: Scope::PerUnit,
        coefficients: c(0.0, 0.0, 0.0, 0.0, 264.4, 11.4),
    },
    SubBlock {
        name: "Tracking counters",
        group: Group::RealmUnit,
        scope: Scope::PerUnitRegion,
        coefficients: c(0.0, 0.0, 0.0, 0.0, 0.0, 1928.5),
    },
    SubBlock {
        name: "Region Decoders",
        group: Group::RealmUnit,
        scope: Scope::PerUnitRegion,
        coefficients: c(20.8, 0.0, 0.0, 0.0, 0.0, 0.0),
    },
];

/// Parameterisation of a REALM system for area estimation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct AreaParams {
    /// Address width in bits (paper range: 32–64).
    pub addr_width: u32,
    /// Data width in bits (paper range: 32–64).
    pub data_width: u32,
    /// Pending transactions (paper range: 2–16).
    pub num_pending: u32,
    /// Write-buffer depth in elements (paper range: 2–16).
    pub buffer_depth: u32,
    /// Address regions per unit.
    pub num_regions: u32,
    /// REALM units in the system.
    pub num_units: u32,
    /// Whether the burst splitter (and its meta buffer) is instantiated.
    pub splitter_present: bool,
}

impl AreaParams {
    /// The Cheshire evaluation point: 64-bit address and data, depth 16,
    /// eight outstanding, two regions, three units.
    pub fn cheshire() -> Self {
        Self {
            addr_width: 64,
            data_width: 64,
            num_pending: 8,
            buffer_depth: 16,
            num_regions: 2,
            num_units: 3,
            splitter_present: true,
        }
    }

    /// Write-buffer storage in kibibits: buffer depth × data width / 1024.
    pub fn storage_kibit(&self) -> f64 {
        f64::from(self.buffer_depth) * f64::from(self.data_width) / 1024.0
    }
}

impl Default for AreaParams {
    fn default() -> Self {
        Self::cheshire()
    }
}

/// Area of one sub-block instance in GE at the given parameters.
pub fn block_area_ge(block: &SubBlock, params: &AreaParams) -> f64 {
    if !params.splitter_present && matches!(block.name, "Burst Splitter" | "Meta Buffer") {
        return 0.0;
    }
    let co = &block.coefficients;
    co.addr_width * f64::from(params.addr_width)
        + co.data_width * f64::from(params.data_width)
        + co.num_pending * f64::from(params.num_pending)
        + co.buffer_depth * f64::from(params.buffer_depth)
        + co.storage_kibit * params.storage_kibit()
        + co.constant
}

fn multiplicity(scope: Scope, params: &AreaParams) -> f64 {
    match scope {
        Scope::PerSystem => 1.0,
        Scope::PerUnit => f64::from(params.num_units),
        Scope::PerUnitRegion => f64::from(params.num_units) * f64::from(params.num_regions),
    }
}

/// One line of an [`AreaBreakdown`].
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct AreaLine {
    /// The sub-block.
    pub block: SubBlock,
    /// Area of one instance in GE.
    pub per_instance_ge: f64,
    /// Number of instances in the system.
    pub instances: f64,
    /// Total contribution in GE.
    pub total_ge: f64,
}

/// Full per-sub-block area decomposition of a REALM system.
#[derive(Clone, Debug)]
pub struct AreaBreakdown {
    /// One line per sub-block, in Table II order.
    pub lines: Vec<AreaLine>,
    /// The parameters evaluated.
    pub params: AreaParams,
}

impl AreaBreakdown {
    /// Evaluates the model at `params`.
    pub fn evaluate(params: AreaParams) -> Self {
        let lines = SUB_BLOCKS
            .iter()
            .map(|block| {
                let per_instance_ge = block_area_ge(block, &params);
                let instances = multiplicity(block.scope, &params);
                AreaLine {
                    block: *block,
                    per_instance_ge,
                    instances,
                    total_ge: per_instance_ge * instances,
                }
            })
            .collect();
        Self { lines, params }
    }

    /// Total area of the configuration register file in GE.
    pub fn config_ge(&self) -> f64 {
        self.lines
            .iter()
            .filter(|l| l.block.group == Group::ConfigRegFile)
            .map(|l| l.total_ge)
            .sum()
    }

    /// Total area of all REALM unit datapaths in GE.
    pub fn units_ge(&self) -> f64 {
        self.lines
            .iter()
            .filter(|l| l.block.group == Group::RealmUnit)
            .map(|l| l.total_ge)
            .sum()
    }

    /// Total system area in GE.
    pub fn total_ge(&self) -> f64 {
        self.config_ge() + self.units_ge()
    }

    /// Area of a single unit's datapath in GE.
    pub fn per_unit_ge(&self) -> f64 {
        self.units_ge() / f64::from(self.params.num_units)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_coefficients_as_published() {
        let find = |name: &str| {
            SUB_BLOCKS
                .iter()
                .find(|b| b.name == name)
                .unwrap_or_else(|| panic!("missing block {name}"))
        };
        assert_eq!(find("Bus Guard").coefficients.constant, 260.6);
        assert_eq!(find("Burst Splitter").coefficients.num_pending, 729.4);
        assert_eq!(find("Burst Splitter").coefficients.addr_width, 49.3);
        assert_eq!(find("Write Buffer").coefficients.storage_kibit, 264.4);
        assert_eq!(find("Tracking counters").coefficients.constant, 1928.5);
        assert_eq!(
            find("Region Boundary Register").coefficients.addr_width,
            20.6
        );
        assert_eq!(SUB_BLOCKS.len(), 11);
    }

    #[test]
    fn cheshire_point_magnitudes() {
        let b = AreaBreakdown::evaluate(AreaParams::cheshire());
        // The model must land in the same ballpark as Table I's synthesis
        // results: three units ≈ 83.6 kGE, config file ≈ 9.8 kGE.
        let units = b.units_ge();
        assert!(
            (40_000.0..120_000.0).contains(&units),
            "3 units = {units:.0} GE, expected tens of kGE"
        );
        let cfg = b.config_ge();
        assert!(
            (5_000.0..25_000.0).contains(&cfg),
            "config = {cfg:.0} GE, expected ~10 kGE"
        );
        assert!((b.total_ge() - units - cfg).abs() < 1e-6);
    }

    #[test]
    fn area_scales_with_parameters() {
        let small = AreaBreakdown::evaluate(AreaParams {
            addr_width: 32,
            data_width: 32,
            num_pending: 2,
            buffer_depth: 2,
            num_regions: 1,
            num_units: 1,
            splitter_present: true,
        });
        let large = AreaBreakdown::evaluate(AreaParams::cheshire());
        assert!(small.total_ge() < large.total_ge());
        assert!(small.per_unit_ge() < large.per_unit_ge());
    }

    #[test]
    fn splitter_can_be_omitted() {
        let mut params = AreaParams::cheshire();
        let with = AreaBreakdown::evaluate(params);
        params.splitter_present = false;
        let without = AreaBreakdown::evaluate(params);
        let splitter_and_meta: f64 = with
            .lines
            .iter()
            .filter(|l| matches!(l.block.name, "Burst Splitter" | "Meta Buffer"))
            .map(|l| l.total_ge)
            .sum();
        assert!((with.units_ge() - without.units_ge() - splitter_and_meta).abs() < 1e-6);
    }

    #[test]
    fn per_region_blocks_scale_with_regions() {
        let mut params = AreaParams::cheshire();
        let two = AreaBreakdown::evaluate(params);
        params.num_regions = 4;
        let four = AreaBreakdown::evaluate(params);
        let tracking_two = two
            .lines
            .iter()
            .find(|l| l.block.name == "Tracking counters")
            .unwrap()
            .total_ge;
        let tracking_four = four
            .lines
            .iter()
            .find(|l| l.block.name == "Tracking counters")
            .unwrap()
            .total_ge;
        assert!((tracking_four - 2.0 * tracking_two).abs() < 1e-6);
    }

    #[test]
    fn storage_conversion() {
        let p = AreaParams::cheshire();
        assert!((p.storage_kibit() - 1.0).abs() < 1e-9, "16×64 = 1 kibit");
        assert_eq!(format!("{}", Scope::PerUnitRegion), "per-unit&region");
    }
}

//! System tests of the REALM unit: functional transparency, regulation,
//! reconfiguration, and DoS mitigation.

use axi4::{
    Addr, ArBeat, AwBeat, BurstKind, BurstLen, BurstSize, Resp, SubordinateId, TxnId, WriteTxn,
};
use axi_mem::{MemoryConfig, MemoryModel, MmioSubordinate};
use axi_realm::{
    offsets, BusGuard, DesignConfig, RealmRegFile, RealmUnit, RegionConfig, RuntimeConfig,
};
use axi_sim::{AxiBundle, BundleCapacity, ComponentId, Sim};
use axi_traffic::{Op, ScriptedManager, StallPlan, StallingManager};
use axi_xbar::{AddressMap, Crossbar};

const MEM_BASE: Addr = Addr::new(0x8000_0000);
const MEM_SIZE: u64 = 1 << 20;

fn read_op(id: u32, addr: u64, beats: u16) -> Op {
    Op::Read(ArBeat::new(
        TxnId::new(id),
        Addr::new(addr),
        BurstLen::new(beats).unwrap(),
        BurstSize::bus64(),
        BurstKind::Incr,
    ))
}

fn write_op(id: u32, addr: u64, words: &[u64]) -> Op {
    let aw = AwBeat::new(
        TxnId::new(id),
        Addr::new(addr),
        BurstLen::new(words.len() as u16).unwrap(),
        BurstSize::bus64(),
        BurstKind::Incr,
    );
    Op::Write(WriteTxn::from_words(aw, words.iter().copied()).unwrap())
}

/// manager → REALM → memory, no crossbar.
struct DirectRig {
    sim: Sim,
    mgr: ComponentId,
    realm: ComponentId,
    mem: ComponentId,
}

fn direct_rig(runtime: RuntimeConfig, script: Vec<Op>) -> DirectRig {
    let mut sim = Sim::new();
    let upstream = AxiBundle::new(sim.pool_mut(), BundleCapacity::uniform(4));
    let downstream = AxiBundle::new(sim.pool_mut(), BundleCapacity::uniform(4));
    let mgr = sim.add(ScriptedManager::new(upstream, script));
    let realm = sim.add(RealmUnit::new(
        DesignConfig::cheshire(),
        runtime,
        upstream,
        downstream,
    ));
    let mem = sim.add(MemoryModel::new(
        MemoryConfig::spm(MEM_BASE, MEM_SIZE),
        downstream,
    ));
    DirectRig {
        sim,
        mgr,
        realm,
        mem,
    }
}

fn run_to_done(rig: &mut DirectRig, max: u64) {
    let mgr = rig.mgr;
    assert!(
        rig.sim.run_until(max, |s| s
            .component::<ScriptedManager>(mgr)
            .unwrap()
            .is_done()),
        "script did not finish in {max} cycles"
    );
}

fn regulated(frag_len: u16, budget: u64, period: u64) -> RuntimeConfig {
    let mut rt = RuntimeConfig::open(2);
    rt.frag_len = frag_len;
    rt.regions[0] = RegionConfig {
        base: MEM_BASE,
        size: MEM_SIZE,
        budget_max: budget,
        period,
    };
    rt
}

#[test]
fn functional_transparency_across_fragmentations() {
    for frag in [1u16, 2, 7, 16, 64, 256] {
        let words: Vec<u64> = (0..64).map(|i| 0xA000 + i).collect();
        let script = vec![
            write_op(1, MEM_BASE.raw(), &words),
            read_op(2, MEM_BASE.raw(), 64),
        ];
        let mut rig = direct_rig(regulated(frag, 0, 0), script);
        run_to_done(&mut rig, 20_000);
        let mgr = rig.sim.component::<ScriptedManager>(rig.mgr).unwrap();
        assert_eq!(mgr.completions().len(), 2, "frag={frag}");
        assert_eq!(mgr.completions()[0].resp, Resp::Okay, "frag={frag}");
        assert_eq!(mgr.completions()[1].data, words, "frag={frag}");
    }
}

#[test]
fn fragments_visible_downstream() {
    // A 64-beat read at granularity 8 must reach the memory as 8 bursts.
    let script = vec![read_op(1, MEM_BASE.raw(), 64)];
    let mut rig = direct_rig(regulated(8, 0, 0), script);
    run_to_done(&mut rig, 10_000);
    let mem = rig.sim.component::<MemoryModel>(rig.mem).unwrap();
    assert_eq!(mem.reads_served(), 8);
    let realm = rig.sim.component::<RealmUnit>(rig.realm).unwrap();
    assert_eq!(realm.stats().fragments_emitted, 8);
    assert_eq!(realm.stats().txns_accepted, 1);
}

#[test]
fn budget_depletion_isolates_until_period() {
    // Budget: 64 bytes (8 beats) per 400-cycle period. Three 8-beat reads:
    // the first spends the whole budget; the rest wait for replenishment.
    let script = vec![
        read_op(1, MEM_BASE.raw(), 8),
        read_op(2, MEM_BASE.raw() + 0x40, 8),
        read_op(3, MEM_BASE.raw() + 0x80, 8),
    ];
    let mut rig = direct_rig(regulated(256, 64, 400), script);
    run_to_done(&mut rig, 10_000);
    let mgr = rig.sim.component::<ScriptedManager>(rig.mgr).unwrap();
    let finish: Vec<u64> = mgr.completions().iter().map(|c| c.finished).collect();
    assert!(
        finish[0] < 400,
        "first read inside first period: {finish:?}"
    );
    assert!(
        finish[1] >= 400 && finish[1] < 800,
        "second read must wait for period 2: {finish:?}"
    );
    assert!(finish[2] >= 800, "third read in period 3: {finish:?}");
    let realm = rig.sim.component::<RealmUnit>(rig.realm).unwrap();
    assert!(realm.stats().isolated_cycles > 500);
}

#[test]
fn unregulated_region_never_blocks() {
    let script = (0..10)
        .map(|i| read_op(i, MEM_BASE.raw() + u64::from(i) * 0x100, 16))
        .collect();
    let mut rig = direct_rig(regulated(256, 0, 0), script);
    run_to_done(&mut rig, 10_000);
    let realm = rig.sim.component::<RealmUnit>(rig.realm).unwrap();
    assert_eq!(realm.stats().isolated_cycles, 0);
    assert_eq!(realm.monitor().regions()[0].stats.bytes_total, 10 * 16 * 8);
}

#[test]
fn bandwidth_bounded_by_budget_over_periods() {
    // 80 bytes per 100-cycle period = at most 0.8 bytes/cycle sustained.
    // Budgets are spent per fragment, so at frag_len 1 the overshoot is at
    // most one 8-byte beat per period.
    let script = (0..40)
        .map(|i| read_op(i, MEM_BASE.raw() + u64::from(i) * 0x100, 8))
        .collect();
    let mut rig = direct_rig(regulated(1, 80, 100), script);
    run_to_done(&mut rig, 100_000);
    let cycles = rig.sim.cycle();
    let bytes = 40 * 8 * 8;
    let bw = bytes as f64 / cycles as f64;
    assert!(
        bw <= 0.85,
        "sustained bandwidth {bw:.2} B/cycle exceeds the 0.8 budget rate"
    );
    assert!(
        bw > 0.6,
        "regulation should not collapse throughput: {bw:.2}"
    );
}

#[test]
fn latency_and_byte_counters_track() {
    let script = vec![
        write_op(1, MEM_BASE.raw(), &[1, 2, 3, 4]),
        read_op(2, MEM_BASE.raw(), 4),
    ];
    let mut rig = direct_rig(regulated(256, 0, 0), script);
    run_to_done(&mut rig, 10_000);
    let realm = rig.sim.component::<RealmUnit>(rig.realm).unwrap();
    let stats = realm.monitor().regions()[0].stats;
    assert_eq!(stats.bytes_total, 64, "32 written + 32 read");
    assert_eq!(stats.txn_count, 2);
    assert!(stats.latency.max() > 0);
    assert_eq!(stats.latency.count(), 2);
}

#[test]
fn bypass_mode_is_transparent() {
    let mut rt = regulated(1, 0, 0);
    rt.enabled = false;
    let words: Vec<u64> = (0..16).collect();
    let script = vec![
        write_op(1, MEM_BASE.raw(), &words),
        read_op(2, MEM_BASE.raw(), 16),
    ];
    let mut rig = direct_rig(rt, script);
    run_to_done(&mut rig, 5_000);
    let mgr = rig.sim.component::<ScriptedManager>(rig.mgr).unwrap();
    assert_eq!(mgr.completions()[1].data, words);
    let realm = rig.sim.component::<RealmUnit>(rig.realm).unwrap();
    assert_eq!(realm.stats().txns_accepted, 0, "bypass does no bookkeeping");
    // Memory saw unfragmented bursts.
    let mem = rig.sim.component::<MemoryModel>(rig.mem).unwrap();
    assert_eq!(mem.reads_served(), 1);
}

#[test]
fn intrusive_reconfig_waits_for_drain() {
    let script = vec![
        read_op(1, MEM_BASE.raw(), 32),
        read_op(2, MEM_BASE.raw(), 32),
    ];
    let mut rig = direct_rig(regulated(256, 0, 0), script);
    // Change frag_len through the shared registers mid-flight.
    rig.sim.run(3);
    let regs = rig.sim.component::<RealmUnit>(rig.realm).unwrap().regs();
    regs.borrow_mut().runtime.frag_len = 4;
    run_to_done(&mut rig, 10_000);
    let realm = rig.sim.component::<RealmUnit>(rig.realm).unwrap();
    assert_eq!(realm.active_config().frag_len, 4, "applied after drain");
    let mem = rig.sim.component::<MemoryModel>(rig.mem).unwrap();
    // First read unfragmented (1 burst), second fragmented (8 bursts) —
    // unless the first had already drained before the write landed.
    assert!(
        mem.reads_served() == 9 || mem.reads_served() == 16,
        "reads_served = {}",
        mem.reads_served()
    );
}

#[test]
fn user_isolation_blocks_and_releases() {
    let script = vec![read_op(1, MEM_BASE.raw(), 4)];
    let mut rig = direct_rig(regulated(256, 0, 0), script);
    // Request isolation before any traffic.
    let regs = rig.sim.component::<RealmUnit>(rig.realm).unwrap().regs();
    regs.borrow_mut().runtime.isolate_request = true;
    rig.sim.run(200);
    let mgr = rig.sim.component::<ScriptedManager>(rig.mgr).unwrap();
    assert!(
        mgr.completions().is_empty(),
        "isolated unit accepts nothing"
    );
    let realm = rig.sim.component::<RealmUnit>(rig.realm).unwrap();
    assert!(realm.is_isolated());
    assert!(realm.is_drained());
    // Release.
    regs.borrow_mut().runtime.isolate_request = false;
    run_to_done(&mut rig, 1000);
}

/// The headline DoS ablation: behind a crossbar, a stalling writer blocks a
/// victim (proved in the xbar tests) — but with a REALM unit in front of
/// the staller, the write buffer withholds the AW until data exists, so the
/// victim proceeds unharmed.
#[test]
fn write_buffer_defuses_stalling_dos() {
    let mut sim = Sim::new();
    // Staller behind a REALM unit; victim direct.
    let staller_up = AxiBundle::new(sim.pool_mut(), BundleCapacity::uniform(4));
    let staller_down = AxiBundle::new(sim.pool_mut(), BundleCapacity::uniform(4));
    let victim_port = AxiBundle::new(sim.pool_mut(), BundleCapacity::uniform(4));
    let mem_port = AxiBundle::new(sim.pool_mut(), BundleCapacity::uniform(4));

    sim.add(StallingManager::new(
        StallPlan::forever(MEM_BASE),
        staller_up,
    ));
    sim.add(RealmUnit::new(
        DesignConfig::cheshire(),
        regulated(16, 0, 0),
        staller_up,
        staller_down,
    ));
    let victim = sim.add(ScriptedManager::new(
        victim_port,
        vec![Op::Wait(20), write_op(1, MEM_BASE.raw() + 0x100, &[42])],
    ));
    let mut map = AddressMap::new();
    map.add(MEM_BASE, MEM_SIZE, SubordinateId::new(0)).unwrap();
    let xbar =
        sim.add(Crossbar::new(map, vec![staller_down, victim_port], vec![mem_port]).unwrap());
    sim.add(MemoryModel::new(
        MemoryConfig::spm(MEM_BASE, MEM_SIZE),
        mem_port,
    ));

    assert!(
        sim.run_until(5_000, |s| s
            .component::<ScriptedManager>(victim)
            .unwrap()
            .is_done()),
        "victim must complete despite the stalling writer"
    );
    let v = sim.component::<ScriptedManager>(victim).unwrap();
    assert_eq!(v.completions()[0].resp, Resp::Okay);
    // And the crossbar's W channel never sat reserved-idle for long.
    let stalls = sim.component::<Crossbar>(xbar).unwrap().w_stall_cycles(0);
    assert!(stalls < 50, "w_stall_cycles = {stalls}");
}

/// Registers are reachable end-to-end: a manager programs the unit through
/// the bus-guarded register file over AXI.
#[test]
fn mmio_configuration_path_end_to_end() {
    let mut sim = Sim::new();
    let traffic_up = AxiBundle::new(sim.pool_mut(), BundleCapacity::uniform(4));
    let traffic_down = AxiBundle::new(sim.pool_mut(), BundleCapacity::uniform(4));
    let cfg_port = AxiBundle::new(sim.pool_mut(), BundleCapacity::uniform(4));

    let realm = RealmUnit::new(
        DesignConfig::cheshire(),
        regulated(256, 0, 0),
        traffic_up,
        traffic_down,
    );
    let regs = realm.regs();
    let realm_id = sim.add(realm);
    sim.add(MemoryModel::new(
        MemoryConfig::spm(MEM_BASE, MEM_SIZE),
        traffic_down,
    ));
    let guard = BusGuard::new(RealmRegFile::new(vec![regs]));
    const CFG_BASE: u64 = 0x0200_0000;
    let mmio = sim.add(MmioSubordinate::new(
        guard,
        Addr::new(CFG_BASE),
        0x1_0000,
        cfg_port,
    ));
    // Register file and unit share state outside the wire graph.
    sim.couple(mmio, realm_id);

    // The configuring manager claims the guard, sets frag_len=2, reads the
    // status register back.
    let frag_off = CFG_BASE + offsets::unit(0) + offsets::FRAG_LEN;
    let script = vec![
        write_op(5, CFG_BASE, &[0]), // claim guard (offset 0)
        write_op(5, frag_off, &[2]), // frag_len = 2
        read_op(5, frag_off, 1),     // read back
    ];
    let cfg_mgr = sim.add(ScriptedManager::new(cfg_port, script));
    assert!(sim.run_until(5_000, |s| s
        .component::<ScriptedManager>(cfg_mgr)
        .unwrap()
        .is_done()));
    let m = sim.component::<ScriptedManager>(cfg_mgr).unwrap();
    assert!(m.completions().iter().all(|c| c.resp == Resp::Okay));
    assert_eq!(m.completions()[2].data, [2]);

    // The unit adopted the new fragmentation after drain.
    sim.run(5);
    assert_eq!(
        sim.component::<RealmUnit>(realm_id)
            .unwrap()
            .active_config()
            .frag_len,
        2
    );
}

/// Without claiming the guard, configuration writes fail with SLVERR.
#[test]
fn unclaimed_guard_rejects_configuration() {
    let mut sim = Sim::new();
    let cfg_port = AxiBundle::new(sim.pool_mut(), BundleCapacity::uniform(4));
    let up = AxiBundle::with_defaults(sim.pool_mut());
    let down = AxiBundle::with_defaults(sim.pool_mut());
    let realm = RealmUnit::new(DesignConfig::cheshire(), regulated(256, 0, 0), up, down);
    let guard = BusGuard::new(RealmRegFile::new(vec![realm.regs()]));
    let realm_id = sim.add(realm);
    const CFG_BASE: u64 = 0x0200_0000;
    let mmio = sim.add(MmioSubordinate::new(
        guard,
        Addr::new(CFG_BASE),
        0x1_0000,
        cfg_port,
    ));
    sim.couple(mmio, realm_id);
    let frag_off = CFG_BASE + offsets::unit(0) + offsets::FRAG_LEN;
    let mgr = sim.add(ScriptedManager::new(
        cfg_port,
        vec![write_op(5, frag_off, &[2])],
    ));
    assert!(sim.run_until(2_000, |s| s
        .component::<ScriptedManager>(mgr)
        .unwrap()
        .is_done()));
    assert_eq!(
        sim.component::<ScriptedManager>(mgr).unwrap().completions()[0].resp,
        Resp::SlvErr
    );
}

/// The statistics-clear command zeroes every counter while budgets, periods,
/// and in-flight traffic are untouched.
#[test]
fn clear_stats_command() {
    let script = vec![
        read_op(1, MEM_BASE.raw(), 4),
        Op::Wait(300),
        read_op(2, MEM_BASE.raw() + 0x40, 4),
    ];
    let mut rig = direct_rig(regulated(256, 0, 0), script);
    // Let the first read complete (the second is still waiting), then clear.
    rig.sim.run(100);
    let regs = rig.sim.component::<RealmUnit>(rig.realm).unwrap().regs();
    assert!(
        rig.sim
            .component::<RealmUnit>(rig.realm)
            .unwrap()
            .monitor()
            .regions()[0]
            .stats
            .bytes_total
            > 0
    );
    regs.borrow_mut().clear_stats = true;
    rig.sim.run(2);
    let unit = rig.sim.component::<RealmUnit>(rig.realm).unwrap();
    assert_eq!(unit.monitor().regions()[0].stats.bytes_total, 0);
    assert_eq!(unit.stats().txns_accepted, 0);
    // Traffic continues and counts from zero.
    run_to_done(&mut rig, 10_000);
    let unit = rig.sim.component::<RealmUnit>(rig.realm).unwrap();
    assert_eq!(unit.monitor().regions()[0].stats.bytes_total, 32);
    assert_eq!(unit.monitor().regions()[0].stats.txn_count, 1);
}

/// Regression guard for the documented kernel overhead (EXPERIMENTS.md D1):
/// the REALM unit adds exactly one wire hop per direction — two cycles
/// round trip — relative to a direct connection. The paper's RTL adds one.
#[test]
fn unit_adds_exactly_two_cycles_round_trip() {
    let read_latency = |through_realm: bool| -> u64 {
        let mut sim = Sim::new();
        let cap = BundleCapacity::uniform(4);
        let up = AxiBundle::new(sim.pool_mut(), cap);
        let mem_port = if through_realm {
            let down = AxiBundle::new(sim.pool_mut(), cap);
            sim.add(RealmUnit::new(
                DesignConfig::cheshire(),
                RuntimeConfig::open(2),
                up,
                down,
            ));
            down
        } else {
            up
        };
        let mgr = sim.add(ScriptedManager::new(
            up,
            vec![read_op(1, MEM_BASE.raw(), 1)],
        ));
        sim.add(MemoryModel::new(
            MemoryConfig::spm(MEM_BASE, MEM_SIZE),
            mem_port,
        ));
        assert!(sim.run_until(1_000, |s| s
            .component::<ScriptedManager>(mgr)
            .unwrap()
            .is_done()));
        sim.component::<ScriptedManager>(mgr).unwrap().completions()[0].latency()
    };
    let direct = read_latency(false);
    let regulated = read_latency(true);
    assert_eq!(
        regulated,
        direct + 2,
        "one extra registered hop per direction"
    );
}

#[test]
fn throttling_reduces_outstanding_before_depletion() {
    // Large burst, throttle on, budget half-spent: emission slows down but
    // the run completes.
    let mut rt = regulated(1, 2048, 10_000);
    rt.throttle = true;
    let script = vec![read_op(1, MEM_BASE.raw(), 128)];
    let mut rig = direct_rig(rt, script);
    run_to_done(&mut rig, 50_000);
    let realm = rig.sim.component::<RealmUnit>(rig.realm).unwrap();
    assert_eq!(realm.monitor().regions()[0].stats.bytes_total, 1024);
}

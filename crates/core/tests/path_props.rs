//! Property-based tests of the REALM unit's read and write paths: beat
//! conservation, ordering, fragment-boundary `last` flags, response
//! coalescing, and budget-charge conservation under random parameters.

use axi4::{
    fragment_read, fragment_write_header, Addr, ArBeat, AwBeat, BBeat, BurstKind, BurstLen,
    BurstSize, RBeat, Resp, TxnId, WBeat,
};
use axi_realm::{ReadPath, WritePath};
use proptest::prelude::*;

fn aw(id: u32, addr: u64, beats: u16) -> AwBeat {
    AwBeat::new(
        TxnId::new(id),
        Addr::new(addr),
        BurstLen::new(beats).expect("beats in range"),
        BurstSize::bus64(),
        BurstKind::Incr,
    )
}

fn ar(id: u32, addr: u64, beats: u16) -> ArBeat {
    ArBeat::new(
        TxnId::new(id),
        Addr::new(addr),
        BurstLen::new(beats).expect("beats in range"),
        BurstSize::bus64(),
        BurstKind::Incr,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Feeding a random burst through the write path and draining it
    /// forwards every beat exactly once, in order, with `last` exactly at
    /// fragment boundaries, and coalesces to one upstream B.
    #[test]
    fn write_path_conserves_beats(
        beats in 1u16..=128,
        granularity in 1u16..=256,
        buffer_depth in 1usize..=32,
    ) {
        let header = aw(1, 0x1000, beats);
        let plan = fragment_write_header(&header, granularity).expect("valid granularity");
        let mut path = WritePath::new(8, buffer_depth);
        path.accept(header, &plan, Some(0), 0);

        let mut fed = 0u16;
        let mut forwarded: Vec<WBeat> = Vec::new();
        let mut aw_count = 0usize;
        let mut charged = 0u64;
        let mut guard = 0u32;
        // Interleave feeding and draining so bounded buffers never stick.
        while forwarded.len() < beats as usize {
            guard += 1;
            prop_assert!(guard < 10_000, "deadlock: {} of {} forwarded", forwarded.len(), beats);
            if fed < beats && path.can_take_beat() {
                path.take_beat(WBeat::full(u64::from(fed), fed + 1 == beats));
                fed += 1;
            }
            if path.peek_forward_aw(usize::MAX >> 1).is_some() {
                let (_, charge) = path.forward_aw();
                charged += charge.bytes;
                aw_count += 1;
            }
            if path.peek_forward_beat().is_some() {
                forwarded.push(path.forward_beat().0);
            }
        }

        prop_assert_eq!(aw_count, plan.len(), "one AW per fragment");
        prop_assert_eq!(charged, u64::from(beats) * 8, "charges cover the burst");
        // Data in order.
        for (i, b) in forwarded.iter().enumerate() {
            prop_assert_eq!(b.data, i as u64);
        }
        // `last` exactly at fragment ends.
        let mut expected_last = vec![false; beats as usize];
        for frag in &plan {
            let end = frag.first_beat + frag.len.beats() - 1;
            expected_last[end as usize] = true;
        }
        let got_last: Vec<bool> = forwarded.iter().map(|b| b.last).collect();
        prop_assert_eq!(got_last, expected_last);

        // All fragment Bs coalesce into exactly one upstream response.
        let mut upstream_bs = 0;
        for _ in 0..plan.len() {
            if path.on_response(BBeat::okay(TxnId::new(1)), 100).beat.is_some() {
                upstream_bs += 1;
            }
        }
        prop_assert_eq!(upstream_bs, 1);
        prop_assert!(path.is_drained());
    }

    /// A single SLVERR among the fragment responses surfaces in the
    /// coalesced upstream response regardless of its position.
    #[test]
    fn write_path_coalesces_worst_response(
        beats in 2u16..=64,
        granularity in 1u16..=8,
        err_at in 0usize..64,
    ) {
        let header = aw(1, 0x1000, beats);
        let plan = fragment_write_header(&header, granularity).expect("valid granularity");
        let mut path = WritePath::new(8, 256);
        path.accept(header, &plan, None, 0);
        for i in 0..beats {
            path.take_beat(WBeat::full(0, i + 1 == beats));
        }
        for _ in 0..plan.len() {
            path.forward_aw();
            while path.peek_forward_beat().is_some() {
                path.forward_beat();
            }
        }
        let err_at = err_at % plan.len();
        let mut final_resp = None;
        for i in 0..plan.len() {
            let resp = if i == err_at { Resp::SlvErr } else { Resp::Okay };
            if let Some(b) = path.on_response(BBeat::new(TxnId::new(1), resp), 10).beat {
                final_resp = Some(b.resp);
            }
        }
        prop_assert_eq!(final_resp, Some(Resp::SlvErr));
    }

    /// The read path emits one fragment per plan entry and gates upstream
    /// `last` to the original boundary no matter the granularity.
    #[test]
    fn read_path_gates_last(
        beats in 1u16..=128,
        granularity in 1u16..=256,
    ) {
        let beat = ar(1, 0x2000, beats);
        let plan = fragment_read(&beat, granularity).expect("valid granularity");
        let mut path = ReadPath::new(usize::MAX >> 1);
        path.accept(beat, &plan, Some(0), 0);

        let mut frag_lens = Vec::new();
        while path.peek_fragment(usize::MAX >> 1).is_some() {
            let (frag, bytes, region) = path.emit_fragment();
            prop_assert_eq!(bytes, u64::from(frag.len.beats()) * 8);
            prop_assert_eq!(region, Some(0));
            frag_lens.push(frag.len.beats());
        }
        prop_assert_eq!(frag_lens.len(), plan.len());
        prop_assert_eq!(frag_lens.iter().sum::<u16>(), beats);

        // Downstream answers fragment by fragment; upstream last only once.
        let mut upstream_lasts = 0;
        let mut served = 0u16;
        for len in frag_lens {
            for i in 0..len {
                let routed = path.on_response(
                    RBeat::okay(TxnId::new(1), u64::from(served), i + 1 == len),
                    u64::from(served),
                );
                served += 1;
                if routed.beat.last {
                    upstream_lasts += 1;
                    prop_assert_eq!(served, beats, "last only on the final beat");
                }
            }
        }
        prop_assert_eq!(upstream_lasts, 1);
        prop_assert!(path.is_drained());
    }

    /// Two interleaved transactions on different IDs never cross-talk: each
    /// sees its own completion at its own boundary.
    #[test]
    fn read_path_isolates_ids(
        beats_a in 1u16..=32,
        beats_b in 1u16..=32,
        interleave in prop::collection::vec(any::<bool>(), 64..=96),
    ) {
        let mut path = ReadPath::new(16);
        let a = ar(1, 0x1000, beats_a);
        let b = ar(2, 0x3000, beats_b);
        let plan_a = fragment_read(&a, 1).expect("valid granularity");
        let plan_b = fragment_read(&b, 1).expect("valid granularity");
        path.accept(a, &plan_a, None, 0);
        path.accept(b, &plan_b, None, 0);
        while path.peek_fragment(usize::MAX >> 1).is_some() {
            path.emit_fragment();
        }

        let (mut done_a, mut done_b) = (0u16, 0u16);
        let mut pick = interleave.into_iter();
        while done_a < beats_a || done_b < beats_b {
            let choose_a = match (done_a < beats_a, done_b < beats_b) {
                (true, true) => pick.next().unwrap_or(true),
                (true, false) => true,
                (false, true) => false,
                (false, false) => unreachable!("loop condition"),
            };
            let (id, done, total) = if choose_a {
                done_a += 1;
                (1, done_a, beats_a)
            } else {
                done_b += 1;
                (2, done_b, beats_b)
            };
            let routed = path.on_response(RBeat::okay(TxnId::new(id), 0, true), 0);
            prop_assert_eq!(routed.beat.last, done == total, "id {} beat {}", id, done);
        }
        prop_assert!(path.is_drained());
    }
}

/// Pinned regression seed for `write_path_conserves_beats`: 9 beats at
/// granularity 1 through a depth-1 buffer — the tightest interleave, where
/// every beat must round-trip through a full buffer before the next fits.
#[test]
fn write_path_conserves_beats_pinned_case() {
    let (beats, granularity, buffer_depth) = (9u16, 1u16, 1usize);
    let header = aw(1, 0x1000, beats);
    let plan = fragment_write_header(&header, granularity).expect("valid granularity");
    let mut path = WritePath::new(8, buffer_depth);
    path.accept(header, &plan, Some(0), 0);

    let mut fed = 0u16;
    let mut forwarded: Vec<WBeat> = Vec::new();
    let mut aw_count = 0usize;
    let mut charged = 0u64;
    let mut guard = 0u32;
    while forwarded.len() < beats as usize {
        guard += 1;
        assert!(
            guard < 10_000,
            "deadlock: {} of {} forwarded",
            forwarded.len(),
            beats
        );
        if fed < beats && path.can_take_beat() {
            path.take_beat(WBeat::full(u64::from(fed), fed + 1 == beats));
            fed += 1;
        }
        if path.peek_forward_aw(usize::MAX >> 1).is_some() {
            let (_, charge) = path.forward_aw();
            charged += charge.bytes;
            aw_count += 1;
        }
        if path.peek_forward_beat().is_some() {
            forwarded.push(path.forward_beat().0);
        }
    }

    assert_eq!(aw_count, plan.len(), "one AW per fragment");
    assert_eq!(charged, u64::from(beats) * 8, "charges cover the burst");
    for (i, b) in forwarded.iter().enumerate() {
        assert_eq!(b.data, i as u64);
        assert!(b.last, "granularity 1 makes every beat a fragment end");
    }
    let mut upstream_bs = 0;
    for _ in 0..plan.len() {
        if path
            .on_response(BBeat::okay(TxnId::new(1)), 100)
            .beat
            .is_some()
        {
            upstream_bs += 1;
        }
    }
    assert_eq!(upstream_bs, 1);
    assert!(path.is_drained());
}

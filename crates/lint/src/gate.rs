//! The startup gate: how testbenches and experiment binaries consume a
//! [`Report`] at elaboration time.

use crate::diag::Report;

/// Reads the `REALM_LINT` environment variable: the analyzer defaults on
/// unless it is set to `0`, `off`, or `false` (mirrors `REALM_MONITORS`).
pub fn enabled_by_env() -> bool {
    !matches!(
        std::env::var("REALM_LINT").as_deref(),
        Ok("0") | Ok("off") | Ok("false")
    )
}

/// `true` when `REALM_LINT=verbose`: warnings and infos are printed to
/// stderr instead of staying silent.
pub fn verbose_by_env() -> bool {
    matches!(std::env::var("REALM_LINT").as_deref(), Ok("verbose"))
}

/// Applies a report at system startup: prints every finding when
/// `REALM_LINT=verbose` (quiet otherwise — parallel sweeps construct
/// hundreds of testbenches), then panics with the full report if any
/// error-severity finding exists.
///
/// Call only when [`enabled_by_env`] returned `true`.
pub fn apply(system: &str, report: &Report) {
    if verbose_by_env() && !report.diagnostics().is_empty() {
        eprintln!("realm-lint [{system}]:\n{report}");
    }
    assert!(
        report.is_clean(),
        "realm-lint rejected system `{system}` \
         (set REALM_LINT=0 to skip analysis):\n{report}"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::{Diagnostic, Severity};

    #[test]
    fn apply_accepts_warnings() {
        let mut r = Report::new();
        r.push(Diagnostic::new("x-rule", Severity::Warning, "p", "m"));
        apply("test-system", &r); // must not panic
    }

    #[test]
    #[should_panic(expected = "realm-lint rejected system `bad-system`")]
    fn apply_panics_on_error() {
        let mut r = Report::new();
        r.push(Diagnostic::new("x-rule", Severity::Error, "p", "m"));
        apply("bad-system", &r);
    }
}

//! Static analysis for the AXI-REALM reproduction, in two passes.
//!
//! **Pass A — elaboration-time system analysis.** Given a constructed
//! simulation ([`Topology`](axi_sim::Topology) from
//! [`Sim::topology`](axi_sim::Sim::topology)) plus semantic declarations
//! (a [`SystemModel`]), [`analyze`] checks the system *before the first
//! cycle runs* and returns a [`Report`] of [`Diagnostic`]s. The rule
//! catalogue:
//!
//! | rule | severity | finding |
//! |------|----------|---------|
//! | `wire-dangling` | error¹ | a wire driven but never consumed, or vice versa |
//! | `wire-doubly-driven` | error | two components push onto the same wire |
//! | `component-unreachable` | warning | no wire path from any traffic source |
//! | `addrmap-overlap` | error | two address windows overlap |
//! | `addrmap-alignment` | warning | window not 4 KiB aligned |
//! | `addrmap-gap` | info | unmapped hole between windows |
//! | `id-width-overflow` | error | extended crossbar ID exceeds 32 bits |
//! | `config-invalid` | error | REALM design/runtime config rejected |
//! | `frag-4k-crossing` | error/warning | fragment can cross a 4 KiB boundary |
//! | `region-unmapped` | warning | regulated region outside every window |
//! | `budget-infeasible` | warning | one reservation exceeds `P · W` |
//! | `budget-oversubscribed` | warning | `Σ eᵢ/Pᵢ` exceeds the service rate `W` |
//! | `zero-latency-cycle` | error | declared combinational couplings form a loop |
//! | `couple-redundant` | warning | couple duplicates an existing wire edge |
//! | `couple-merges-islands` | info | couple alone bridges two otherwise-independent islands |
//! | `dependence-unreachable` | warning | no dependence edge reaches the component |
//!
//! ¹ demoted to warning when opaque (port-less) components are present.
//!
//! **Pass C — static dependence analysis.** The last three rules come from
//! [`analyze_deps`] (run automatically by [`analyze`]), which builds the
//! full intra-cycle dependence graph — wire edges from port declarations,
//! couple edges from [`Sim::couple`](axi_sim::Sim::couple), comb edges
//! from the system model — and computes a [`Partition`]: the island
//! decomposition (independently steppable connected components, executed
//! by the `REALM_KERNEL=islands` kernel and enforced at runtime by the
//! `REALM_SANITIZE=1` access sanitizer) and a deterministic static
//! evaluation schedule with its zero-latency depth.
//!
//! Feasibility findings are warnings by design: the paper's own Fig. 6b
//! configuration over-subscribes the LLC deliberately (reservations of
//! 8 KiB + up to 8 KiB per 1000 cycles against an 8 B/cycle port).
//! "Analyzer-clean" therefore means **zero error-severity findings**.
//!
//! Testbenches run the pass automatically at construction; set
//! `REALM_LINT=0` to opt out and `REALM_LINT=verbose` to print warnings.
//!
//! **Runtime-checked kernel contract (`kernel-stale-hint`).** One rule in
//! the catalogue is enforced by the event kernel itself rather than by
//! either static pass, because it depends on dynamic state no
//! elaboration-time or source-level check can see: a component's
//! [`next_event`](axi_sim::Component::next_event) /
//! [`backlog_event`](axi_sim::Component::backlog_event) wake hint must
//! name a cycle `>=` the one being asked about. A stale hint (at or
//! before an already-ticked cycle) cannot be honored — the kernel falls
//! back to re-ticking the component next cycle, so results stay exact,
//! and records the violation (component name, cycle, offending hint) in
//! [`Sim::contract_violations`](axi_sim::Sim::contract_violations).
//! Testbenches and the `kernel_equivalence` property tests assert the
//! list is empty; treat any entry like an error-severity diagnostic from
//! Pass A. When writing a `next_event` override, clamp derived wakes with
//! `.max(cycle)` — stored cycles (a period start, a last-activity stamp)
//! go stale the moment the kernel fast-forwards past them.
//!
//! **Pass B — workspace determinism lint.** [`scan_workspace`] is a
//! `std`-only source scanner (driven by the `detlint` binary) that denies
//! nondeterminism in sim-visible code: hash-container iteration, wall
//! clocks outside the bench crate, float accumulation over unordered
//! containers. Suppress with `// lint:allow(<rule>)`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diag;
mod gate;
mod rules;
mod scan;
mod sched;
mod system;

pub use diag::{Diagnostic, Report, Severity};
pub use gate::{apply, enabled_by_env, verbose_by_env};
pub use rules::{analyze, analyze_budgets, drain_bound_cycles};
pub use scan::{scan_source, scan_workspace, violations_to_json, Violation};
pub use sched::{analyze_deps, DepEdge, DepEdgeKind, Partition};
pub use system::{AddrWindow, RealmSpec, SystemModel};

//! Pass B: the workspace determinism lint.
//!
//! A cycle-accurate model must produce bit-identical results for
//! identical inputs; the fast-forward kernel and the parallel sweep
//! harness both rely on it. This scanner walks the workspace sources and
//! flags constructs whose behaviour can vary between runs:
//!
//! - `hashmap-iter` — `std` hash containers: their iteration order is
//!   randomized per process, so any fold or report built from one drifts
//!   between runs. Use `BTreeMap`/`BTreeSet` in sim-visible code.
//! - `wall-clock` — reading host time inside simulation code couples
//!   results to the machine. Exempt under `crates/bench/`, where
//!   wall-clock baselines are the point.
//! - `float-accum` — summing floats out of an unordered container; the
//!   result depends on accumulation order.
//!
//! Suppress a finding with a marker comment on the same or the preceding
//! line: `// lint:allow(<rule>) -- reason`. The scanner is `std`-only and
//! never executes the code it reads.
//!
//! These static rules have one runtime companion the scanner cannot
//! express: the kernel wake-hint contract (`kernel-stale-hint`, see the
//! crate docs), checked by the event kernel on every `next_event` /
//! `backlog_event` call and reported through `Sim::contract_violations`.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One source-level violation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Violation {
    /// Path relative to the scanned root.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule identifier.
    pub rule: &'static str,
    /// The offending source line, trimmed.
    pub text: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.text
        )
    }
}

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["vendor", "target", ".git", "related"];

// The needles are assembled from halves so the scanner does not flag its
// own source when run over the workspace.
const HASH_NEEDLES: &[&str] = &[concat!("Hash", "Map"), concat!("Hash", "Set")];
const CLOCK_NEEDLES: &[&str] = &[concat!("Instant", "::now"), concat!("System", "Time")];
const UNORDERED_NEEDLES: &[&str] = &[".values()", ".keys()"];
const FLOAT_SUM_NEEDLES: &[&str] = &[concat!("sum::<", "f64>"), concat!("sum::<", "f32>")];

/// `true` if `line` (or the preceding line) carries an allow marker for
/// `rule`.
fn allowed(line: &str, prev: Option<&str>, rule: &str) -> bool {
    let marker = format!("lint:allow({rule})");
    line.contains(&marker) || prev.is_some_and(|p| p.contains(&marker))
}

/// Scans one file's text; `rel` is the path recorded in violations.
pub fn scan_source(rel: &str, text: &str, out: &mut Vec<Violation>) {
    let wall_clock_exempt = rel.starts_with("crates/bench/");
    let mut prev: Option<&str> = None;
    for (i, line) in text.lines().enumerate() {
        let mut push = |rule: &'static str| {
            if !allowed(line, prev, rule) {
                out.push(Violation {
                    file: rel.to_owned(),
                    line: i + 1,
                    rule,
                    text: line.trim().to_owned(),
                });
            }
        };
        if HASH_NEEDLES.iter().any(|n| line.contains(n)) {
            push("hashmap-iter");
        }
        if !wall_clock_exempt && CLOCK_NEEDLES.iter().any(|n| line.contains(n)) {
            push("wall-clock");
        }
        if UNORDERED_NEEDLES.iter().any(|n| line.contains(n))
            && FLOAT_SUM_NEEDLES.iter().any(|n| line.contains(n))
        {
            push("float-accum");
        }
        prev = Some(line);
    }
}

/// Recursively collects `.rs` files under `root`, skipping [`SKIP_DIRS`],
/// in sorted order (deterministic across filesystems).
fn collect_sources(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<PathBuf> = fs::read_dir(&dir)?
            .map(|e| e.map(|e| e.path()))
            .collect::<io::Result<_>>()?;
        entries.sort();
        for path in entries {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name) {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Scans every Rust source under `root` and returns the violations in
/// path order.
pub fn scan_workspace(root: &Path) -> io::Result<Vec<Violation>> {
    let mut out = Vec::new();
    for path in collect_sources(root)? {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let text = fs::read_to_string(&path)?;
        scan_source(&rel, &text, &mut out);
    }
    Ok(out)
}

/// Renders violations as a JSON array (same escaping rules as Pass A).
pub fn violations_to_json(violations: &[Violation]) -> String {
    let mut out = String::from("{\"violations\":[");
    for (i, v) in violations.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"file\":\"{}\",\"line\":{},\"rule\":\"{}\",\"text\":\"{}\"}}",
            crate::diag::escape(&v.file),
            v.line,
            crate::diag::escape(v.rule),
            crate::diag::escape(&v.text)
        ));
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(rel: &str, text: &str) -> Vec<Violation> {
        let mut out = Vec::new();
        scan_source(rel, text, &mut out);
        out
    }

    #[test]
    fn hash_containers_flagged() {
        let src = format!("use std::collections::{}{};\n", "Hash", "Map");
        let v = scan("crates/core/src/x.rs", &src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "hashmap-iter");
        assert_eq!(v[0].line, 1);
    }

    #[test]
    fn allow_marker_suppresses_same_and_previous_line() {
        let needle = concat!("Hash", "Set");
        let same = format!("let s = {needle}::new(); // lint:allow(hashmap-iter)\n");
        assert!(scan("a.rs", &same).is_empty());
        let prev =
            format!("// lint:allow(hashmap-iter) -- test helper\nlet s = {needle}::new();\n");
        assert!(scan("a.rs", &prev).is_empty());
        // A marker for a different rule does not suppress.
        let wrong = format!("let s = {needle}::new(); // lint:allow(wall-clock)\n");
        assert_eq!(scan("a.rs", &wrong).len(), 1);
    }

    #[test]
    fn wall_clock_exempt_in_bench() {
        let src = format!("let t = {}();\n", concat!("Instant", "::now"));
        assert_eq!(scan("crates/core/src/x.rs", &src).len(), 1);
        assert!(scan("crates/bench/src/x.rs", &src).is_empty());
    }

    #[test]
    fn float_accum_needs_both_halves() {
        let bad = format!("let s: f64 = m.values().{};\n", concat!("sum::<", "f64>()"));
        assert_eq!(scan("a.rs", &bad)[0].rule, "float-accum");
        // Ordered iteration summed: fine.
        let ok = format!("let s: f64 = v.iter().{};\n", concat!("sum::<", "f64>()"));
        assert!(scan("a.rs", &ok).is_empty());
        // Unordered iteration without float sum: fine.
        assert!(scan("a.rs", "for k in m.keys() {}\n").is_empty());
    }

    #[test]
    fn json_rendering() {
        let v = vec![Violation {
            file: "a.rs".into(),
            line: 3,
            rule: "wall-clock",
            text: "bad \"line\"".into(),
        }];
        let j = violations_to_json(&v);
        assert!(j.contains("\"line\":3"));
        assert!(j.contains("\\\"line\\\""));
        assert_eq!(violations_to_json(&[]), "{\"violations\":[]}");
    }

    #[test]
    fn workspace_walk_skips_vendor() {
        let dir = std::env::temp_dir().join("realm_lint_scan_test");
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(dir.join("vendor/x")).unwrap();
        fs::create_dir_all(dir.join("src")).unwrap();
        let needle = concat!("Hash", "Map");
        fs::write(dir.join("vendor/x/lib.rs"), format!("{needle}\n")).unwrap();
        fs::write(dir.join("src/lib.rs"), format!("{needle}\n")).unwrap();
        let v = scan_workspace(&dir).unwrap();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].file, "src/lib.rs");
        let _ = fs::remove_dir_all(&dir);
    }
}

//! Pass C: static dependence analysis — evaluation schedule and island
//! partition.
//!
//! Consumes the same inputs as Pass A — a [`Topology`] (component ports,
//! wires, and [`Sim::couple`](axi_sim::Sim::couple) declarations) plus the
//! [`SystemModel`]'s combinational couplings — and builds the full
//! intra-cycle dependence graph:
//!
//! - **wire edges** from `PortDecl`/`PortDir` (driver → consumer/observer,
//!   one per shared wire),
//! - **couple edges** from out-of-band `Sim::couple` declarations
//!   (source → dependent),
//! - **comb edges** from the system model's declared zero-latency
//!   couplings (the input of the `zero-latency-cycle` rule).
//!
//! From the graph, [`analyze_deps`] computes a [`Partition`]:
//!
//! - a deterministic **static evaluation schedule** — a topological order
//!   over the *zero-latency* edges (couples and comb couplings; wire hops
//!   are registered and thus never constrain intra-cycle order), with
//!   smallest-registration-index tie-breaking, island-major;
//! - the **island partition**: connected components of the undirected
//!   dependence graph. No edge of any kind crosses an island, so each
//!   island can be stepped independently of the others — the
//!   `REALM_KERNEL=islands` kernel executes exactly this partition, and
//!   the `REALM_SANITIZE=1` access sanitizer checks at runtime that no
//!   undeclared access escapes it.
//!
//! Three diagnostics police the couple declarations themselves: a couple
//! duplicating an existing wire edge (`couple-redundant`), a couple whose
//! removal would split an island (`couple-merges-islands`, with the exact
//! edge to blame), and components that no dependence edge reaches at all
//! (`dependence-unreachable`).

use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap};

use axi_sim::{PortDir, Topology};

use crate::diag::{escape, Diagnostic, Report, Severity};
use crate::system::SystemModel;

/// What kind of dependence an edge represents.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DepEdgeKind {
    /// A shared pool wire (registered: adds a cycle of latency, so it
    /// groups components into islands but never constrains intra-cycle
    /// evaluation order).
    Wire,
    /// An out-of-band [`Sim::couple`](axi_sim::Sim::couple) declaration
    /// (zero-latency: the dependent may observe the source same-cycle).
    Couple,
    /// A declared combinational coupling from the [`SystemModel`]
    /// (zero-latency).
    Comb,
}

impl DepEdgeKind {
    /// Lower-case label used in JSON output.
    pub fn label(self) -> &'static str {
        match self {
            DepEdgeKind::Wire => "wire",
            DepEdgeKind::Couple => "couple",
            DepEdgeKind::Comb => "comb",
        }
    }
}

/// One directed edge of the intra-cycle dependence graph.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DepEdge {
    /// Registration index of the component evaluated first.
    pub from: usize,
    /// Registration index of the component that observes `from`.
    pub to: usize,
    /// What carries the dependence.
    pub kind: DepEdgeKind,
    /// The carrier: `AW[3]` for a wire edge, `couple`/`comb` otherwise.
    pub via: String,
}

/// The static dependence artifact for one system: every edge, the island
/// partition, and the deterministic evaluation schedule.
#[derive(Clone, Debug, Default)]
pub struct Partition {
    /// Component instance names, in registration order.
    pub names: Vec<String>,
    /// Every dependence edge (wire, couple, comb), deterministic order.
    pub edges: Vec<DepEdge>,
    /// Connected components of the undirected dependence graph, ordered by
    /// smallest member; members in registration order. Opaque (port-less)
    /// components conservatively collapse everything into one island.
    pub islands: Vec<Vec<usize>>,
    /// Island-major topological order over the zero-latency edges with
    /// smallest-index tie-breaking — the static evaluation schedule.
    /// Components on a zero-latency cycle (a `zero-latency-cycle` error)
    /// fall back to registration order at the end of their island.
    pub schedule: Vec<usize>,
    /// Longest zero-latency chain, in components (1 = no zero-latency
    /// edges at all; 0 = empty system).
    pub depth: usize,
    /// Number of opaque (port-less) components.
    pub opaque: usize,
    /// Per-component beat-batching approval, in registration order — the
    /// plan fed to [`Sim::set_batch_plan`](axi_sim::Sim::set_batch_plan).
    /// A component is approved when its whole wire footprint is an
    /// uncontended point-to-point path (see `batch_plan` in
    /// `build_partition` for the exact rule); approval is structural
    /// permission only — the arena kernel still requires a per-cycle
    /// `batch_horizon` promise before opening a window.
    pub batch_allowed: Vec<bool>,
}

impl Partition {
    /// Number of independently steppable islands.
    pub fn island_count(&self) -> usize {
        self.islands.len()
    }

    /// Size of the largest island — the serial fraction an island-parallel
    /// kernel cannot break up without the finer arena-level analysis.
    pub fn largest_island(&self) -> usize {
        self.islands.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Number of edges of the given kind.
    pub fn edge_count(&self, kind: DepEdgeKind) -> usize {
        self.edges.iter().filter(|e| e.kind == kind).count()
    }

    /// Number of components the beat-batching plan approves.
    pub fn batch_approved(&self) -> usize {
        self.batch_allowed.iter().filter(|&&b| b).count()
    }

    /// Renders the partition as a single JSON object:
    ///
    /// ```json
    /// {"components":N,"opaque":N,"island_count":N,"largest_island":N,
    ///  "schedule_depth":N,"edges":{"wire":N,"couple":N,"comb":N},
    ///  "islands":[["name",...],...],"schedule":["name",...]}
    /// ```
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"components\":{},\"opaque\":{},\"batch_approved\":{},\
             \"island_count\":{},\
             \"largest_island\":{},\"schedule_depth\":{},\
             \"edges\":{{\"wire\":{},\"couple\":{},\"comb\":{}}},\"islands\":[",
            self.names.len(),
            self.opaque,
            self.batch_approved(),
            self.island_count(),
            self.largest_island(),
            self.depth,
            self.edge_count(DepEdgeKind::Wire),
            self.edge_count(DepEdgeKind::Couple),
            self.edge_count(DepEdgeKind::Comb),
        ));
        for (k, island) in self.islands.iter().enumerate() {
            if k > 0 {
                out.push(',');
            }
            out.push('[');
            for (j, &i) in island.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{}\"", escape(&self.names[i])));
            }
            out.push(']');
        }
        out.push_str("],\"schedule\":[");
        for (j, &i) in self.schedule.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\"", escape(&self.names[i])));
        }
        out.push_str("]}");
        out
    }
}

/// Runs Pass C: builds the dependence graph, partitions it into islands,
/// computes the static evaluation schedule, and reports the couple
/// diagnostics (`couple-redundant`, `couple-merges-islands`,
/// `dependence-unreachable`). Also run as part of [`analyze`]
/// (see [`crate::analyze`]); call directly to get the [`Partition`]
/// artifact.
pub fn analyze_deps(topo: &Topology, model: &SystemModel) -> (Partition, Report) {
    let partition = build_partition(topo, model);
    let mut report = Report::new();
    check_couple_redundant(topo, &mut report);
    check_couple_merges_islands(topo, &mut report);
    check_dependence_unreachable(topo, &partition, &mut report);
    (partition, report)
}

/// Resolves a system-model node name to a component registration index
/// (first match; comb couplings name component instances).
fn resolve(topo: &Topology, name: &str) -> Option<usize> {
    topo.components.iter().position(|c| c.name == name)
}

/// Per-wire endpoint split: `(drivers, sinks)` by component index.
type WireEndpoints<'a> = BTreeMap<(&'a str, usize), (Vec<usize>, Vec<usize>)>;

fn build_partition(topo: &Topology, model: &SystemModel) -> Partition {
    let n = topo.components.len();
    let names: Vec<String> = topo.components.iter().map(|c| c.name.clone()).collect();

    // Wire edges: driver → consumer/observer per shared wire. BTreeMap
    // keying makes the emission order deterministic (channel, then index).
    let mut edges: Vec<DepEdge> = Vec::new();
    let mut by_wire: WireEndpoints<'_> = BTreeMap::new();
    for c in &topo.components {
        for p in &c.ports {
            let (drivers, sinks) = by_wire.entry((p.channel, p.wire)).or_default();
            let side = match p.dir {
                PortDir::Drive => drivers,
                PortDir::Consume | PortDir::Observe => sinks,
            };
            if !side.contains(&c.index) {
                side.push(c.index);
            }
        }
    }
    for (&(channel, index), (drivers, sinks)) in &by_wire {
        for &d in drivers.iter() {
            for &s in sinks.iter() {
                if d != s {
                    edges.push(DepEdge {
                        from: d,
                        to: s,
                        kind: DepEdgeKind::Wire,
                        via: format!("{channel}[{index}]"),
                    });
                }
            }
        }
    }

    // Couple edges: source → dependent, declaration order.
    for &(source, dependent) in &topo.couples {
        if source < n && dependent < n {
            edges.push(DepEdge {
                from: source,
                to: dependent,
                kind: DepEdgeKind::Couple,
                via: "couple".to_owned(),
            });
        }
    }

    // Comb edges from the system model, resolved by instance name;
    // unresolvable names are skipped (the model may describe nodes the
    // topology does not register as components).
    let mut comb_pairs: Vec<(usize, usize)> = Vec::new();
    for (a, b) in &model.comb_edges {
        if let (Some(i), Some(j)) = (resolve(topo, a), resolve(topo, b)) {
            if i != j {
                comb_pairs.push((i, j));
                edges.push(DepEdge {
                    from: i,
                    to: j,
                    kind: DepEdgeKind::Comb,
                    via: "comb".to_owned(),
                });
            }
        }
    }

    let islands = topo.islands_with(&comb_pairs);

    // Evaluation schedule: Kahn's algorithm over the zero-latency edges
    // only (couples + comb couplings). Wire hops are registered — a beat
    // pushed at cycle t is visible at t+1 — so they never constrain the
    // order within a cycle; the request/response wire loops (manager →
    // memory → manager) would otherwise make every system cyclic.
    let mut zadj: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut indeg = vec![0usize; n];
    for e in &edges {
        if matches!(e.kind, DepEdgeKind::Couple | DepEdgeKind::Comb) {
            zadj[e.from].push(e.to);
            indeg[e.to] += 1;
        }
    }
    let mut schedule = Vec::with_capacity(n);
    let mut placed = vec![false; n];
    // Zero-latency edges never cross islands (islands were computed with
    // both couple and comb edges merged in), so per-island Kahn over the
    // shared in-degree array is sound.
    for island in &islands {
        let mut heap: BinaryHeap<Reverse<usize>> = island
            .iter()
            .copied()
            .filter(|&i| indeg[i] == 0)
            .map(Reverse)
            .collect();
        while let Some(Reverse(i)) = heap.pop() {
            schedule.push(i);
            placed[i] = true;
            for &j in &zadj[i] {
                indeg[j] -= 1;
                if indeg[j] == 0 {
                    heap.push(Reverse(j));
                }
            }
        }
        // Members on a zero-latency cycle (an error Pass A already
        // reports) keep registration order at the end of their island.
        for &i in island {
            if !placed[i] {
                schedule.push(i);
                placed[i] = true;
            }
        }
    }

    // Schedule depth: longest zero-latency chain, in components. The
    // schedule emits sources before sinks for the acyclic part, so one
    // forward sweep suffices.
    let mut node_depth = vec![1usize; n];
    for &i in &schedule {
        for &j in &zadj[i] {
            node_depth[j] = node_depth[j].max(node_depth[i] + 1);
        }
    }
    let depth = node_depth.into_iter().max().unwrap_or(0);

    let batch_allowed = batch_plan(topo, &edges, &by_wire);

    Partition {
        names,
        edges,
        islands,
        schedule,
        depth,
        opaque: topo.opaque_components(),
        batch_allowed,
    }
}

/// Derives the beat-batching plan from the dependence graph: which
/// components the arena kernel may even *ask* for a batch horizon.
///
/// A component is approved when one of:
///
/// - it is a **passive observer** — every port is `Observe`. Taps record
///   `(cycle, beat)` pairs, so an observer's state is a pure fold over
///   stamped records and survives any exact reordering of its ticks;
/// - it is a **point-to-point relay or endpoint**: it has ports, it is not
///   the source of a couple/comb edge (a flush source must tick per cycle
///   so its dependents observe reconciled state), it never **multiplexes**
///   a channel (at most one `Drive` and one `Consume` port per channel
///   label — an arbiter like the crossbar fans several managers into one
///   subordinate and its grant decisions are inherently cycle-by-cycle),
///   and every wire it drives or consumes is **uncontended**: exactly one
///   driving and one consuming component system-wide (observers tap
///   passively and do not count).
///
/// Opaque (port-less) components are never approved — the kernel cannot
/// bound what it cannot see.
fn batch_plan(topo: &Topology, edges: &[DepEdge], by_wire: &WireEndpoints<'_>) -> Vec<bool> {
    let n = topo.components.len();

    // Wires with exactly one driver and one consumer. `by_wire` merges
    // consumers and observers into one sink list, so recount consumers
    // from the raw ports.
    let mut consumers: BTreeMap<(&str, usize), usize> = BTreeMap::new();
    for c in &topo.components {
        for p in &c.ports {
            if p.dir == PortDir::Consume {
                *consumers.entry((p.channel, p.wire)).or_default() += 1;
            }
        }
    }
    let point_to_point = |channel: &str, wire: usize| -> bool {
        by_wire
            .get(&(channel, wire))
            .is_some_and(|(drivers, _)| drivers.len() == 1)
            && consumers.get(&(channel, wire)) == Some(&1)
    };

    // Couple/comb sources flush their dependents before every tick; a
    // batched source would skip those reconciliation points.
    let mut flush_source = vec![false; n];
    for e in edges {
        if matches!(e.kind, DepEdgeKind::Couple | DepEdgeKind::Comb) && e.from < n {
            flush_source[e.from] = true;
        }
    }

    topo.components
        .iter()
        .map(|c| {
            if c.ports.is_empty() {
                return false;
            }
            if c.ports.iter().all(|p| p.dir == PortDir::Observe) {
                return true;
            }
            if flush_source[c.index] {
                return false;
            }
            // No channel multiplexing: at most one driven and one consumed
            // wire per channel label.
            let mut per_channel: BTreeMap<&str, (usize, usize)> = BTreeMap::new();
            for p in &c.ports {
                let (drives, consumes) = per_channel.entry(p.channel).or_default();
                match p.dir {
                    PortDir::Drive => *drives += 1,
                    PortDir::Consume => *consumes += 1,
                    PortDir::Observe => {}
                }
            }
            if per_channel.values().any(|&(d, s)| d > 1 || s > 1) {
                return false;
            }
            c.ports.iter().all(|p| match p.dir {
                PortDir::Observe => true,
                PortDir::Drive | PortDir::Consume => point_to_point(p.channel, p.wire),
            })
        })
        .collect()
}

/// `couple-redundant`: a couple between two components that already share
/// a declared wire. The wire already puts the pair in one island, so as a
/// *dependence* edge the couple adds nothing — either the shared state
/// mirrors what the wire carries (drop the couple) or the ports
/// over-declare. Warning, not error: the couple still changes event-kernel
/// wake behaviour for writes without wire activity.
fn check_couple_redundant(topo: &Topology, report: &mut Report) {
    if topo.couples.is_empty() {
        return;
    }
    let n = topo.components.len();
    let wires: Vec<BTreeSet<(&str, usize)>> = topo
        .components
        .iter()
        .map(|c| c.ports.iter().map(|p| (p.channel, p.wire)).collect())
        .collect();
    for &(s, d) in &topo.couples {
        if s >= n || d >= n {
            continue;
        }
        if let Some(&(channel, index)) = wires[s].intersection(&wires[d]).next() {
            report.push(Diagnostic::new(
                "couple-redundant",
                Severity::Warning,
                format!("{}->{}", topo.components[s].name, topo.components[d].name),
                format!(
                    "couple duplicates an existing wire edge: both components already \
                     touch {channel}[{index}], which keeps the pair in one island"
                ),
            ));
        }
    }
}

/// `couple-merges-islands`: a couple whose endpoints sit in different
/// islands of the wire-only dependence graph. The couple alone welds the
/// two islands together — removing (or re-architecting) exactly this edge
/// would let them step independently. Info: merging islands is often the
/// declared intent (an out-of-band config channel), but it is the one
/// edge to blame when a partition is coarser than expected.
fn check_couple_merges_islands(topo: &Topology, report: &mut Report) {
    if topo.couples.is_empty() {
        return;
    }
    let n = topo.components.len();
    let mut wire_only = topo.clone();
    wire_only.couples.clear();
    let islands = wire_only.islands();
    let mut island_of = vec![0usize; n];
    for (k, island) in islands.iter().enumerate() {
        for &i in island {
            island_of[i] = k;
        }
    }
    for &(s, d) in &topo.couples {
        if s >= n || d >= n || island_of[s] == island_of[d] {
            continue;
        }
        report.push(Diagnostic::new(
            "couple-merges-islands",
            Severity::Info,
            format!("{}->{}", topo.components[s].name, topo.components[d].name),
            format!(
                "couple edge ({} -> {}) merges two otherwise-independent islands \
                 ({} and {} components): without it they could step in parallel",
                topo.components[s].name,
                topo.components[d].name,
                islands[island_of[s]].len(),
                islands[island_of[d]].len()
            ),
        ));
    }
}

/// `dependence-unreachable`: a non-opaque component that no dependence
/// edge of any kind touches. It can never exchange data with the rest of
/// the system and the evaluation schedule has nothing to order it
/// against — almost always a component wired to the wrong bundle.
/// Suppressed when fewer than two non-opaque components exist (a
/// single-component system is trivially edge-free).
fn check_dependence_unreachable(topo: &Topology, partition: &Partition, report: &mut Report) {
    let non_opaque = topo.components.iter().filter(|c| !c.is_opaque()).count();
    if non_opaque < 2 {
        return;
    }
    let n = topo.components.len();
    let mut connected = vec![false; n];
    for e in &partition.edges {
        connected[e.from] = true;
        connected[e.to] = true;
    }
    for c in &topo.components {
        if !c.is_opaque() && !connected[c.index] {
            report.push(Diagnostic::new(
                "dependence-unreachable",
                Severity::Warning,
                c.name.clone(),
                "no dependence edge (shared wire, couple, or comb coupling) connects \
                 this component to any other: it is unreachable in dependence order"
                    .to_owned(),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use axi_sim::{AxiBundle, Component, PortDecl, Sim, TickCtx};

    struct Mgr {
        bundle: AxiBundle,
        name: &'static str,
    }
    impl Component for Mgr {
        fn tick(&mut self, _ctx: &mut TickCtx<'_>) {}
        fn name(&self) -> &str {
            self.name
        }
        fn ports(&self) -> Vec<PortDecl> {
            self.bundle.manager_ports()
        }
    }

    struct Sub {
        bundle: AxiBundle,
        name: &'static str,
    }
    impl Component for Sub {
        fn tick(&mut self, _ctx: &mut TickCtx<'_>) {}
        fn name(&self) -> &str {
            self.name
        }
        fn ports(&self) -> Vec<PortDecl> {
            self.bundle.subordinate_ports()
        }
    }

    fn pair(
        names: (&'static str, &'static str),
    ) -> (Sim, axi_sim::ComponentId, axi_sim::ComponentId) {
        let mut sim = Sim::new();
        let bundle = AxiBundle::with_defaults(sim.pool_mut());
        let a = sim.add(Mgr {
            bundle,
            name: names.0,
        });
        let b = sim.add(Sub {
            bundle,
            name: names.1,
        });
        (sim, a, b)
    }

    #[test]
    fn wire_edges_and_single_island() {
        let (sim, _, _) = pair(("mgr", "sub"));
        let (p, report) = analyze_deps(&sim.topology(), &SystemModel::new());
        assert!(report.diagnostics().is_empty());
        assert_eq!(p.island_count(), 1);
        assert_eq!(p.largest_island(), 2);
        // 5 channels: AW/W/AR mgr→sub, B/R sub→mgr.
        assert_eq!(p.edge_count(DepEdgeKind::Wire), 5);
        assert_eq!(p.edge_count(DepEdgeKind::Couple), 0);
        // No zero-latency edges: schedule falls back to registration order
        // and the depth is one.
        assert_eq!(p.schedule, vec![0, 1]);
        assert_eq!(p.depth, 1);
    }

    #[test]
    fn comb_edges_order_the_schedule() {
        let (sim, _, _) = pair(("a", "b"));
        let model = SystemModel::new().comb_edge("b", "a");
        let (p, _) = analyze_deps(&sim.topology(), &model);
        assert_eq!(p.edge_count(DepEdgeKind::Comb), 1);
        assert_eq!(p.schedule, vec![1, 0], "comb source evaluates first");
        assert_eq!(p.depth, 2);
        // Unresolvable comb names are skipped silently.
        let model = SystemModel::new().comb_edge("nope", "a");
        let (p, _) = analyze_deps(&sim.topology(), &model);
        assert_eq!(p.edge_count(DepEdgeKind::Comb), 0);
    }

    #[test]
    fn redundant_couple_flagged() {
        let (mut sim, mgr, sub) = pair(("mgr", "sub"));
        sim.couple(mgr, sub);
        let (p, report) = analyze_deps(&sim.topology(), &SystemModel::new());
        assert_eq!(p.edge_count(DepEdgeKind::Couple), 1);
        let diags = report.by_rule("couple-redundant");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].severity, Severity::Warning);
        assert_eq!(diags[0].path, "mgr->sub");
        // The couple edge orders the schedule even when redundant.
        assert_eq!(p.schedule, vec![0, 1]);
        assert_eq!(p.depth, 2);
        // Redundant: it did not change the island partition.
        assert!(report.by_rule("couple-merges-islands").is_empty());
    }

    #[test]
    fn island_merging_couple_flagged_with_exact_edge() {
        let mut sim = Sim::new();
        let b1 = AxiBundle::with_defaults(sim.pool_mut());
        let b2 = AxiBundle::with_defaults(sim.pool_mut());
        let a = sim.add(Mgr {
            bundle: b1,
            name: "left",
        });
        let b = sim.add(Mgr {
            bundle: b2,
            name: "right",
        });
        sim.couple(b, a);
        let (p, report) = analyze_deps(&sim.topology(), &SystemModel::new());
        assert_eq!(p.island_count(), 1, "couple merges the two wire islands");
        let diags = report.by_rule("couple-merges-islands");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].severity, Severity::Info);
        assert_eq!(diags[0].path, "right->left");
        assert!(diags[0].message.contains("(right -> left)"));
        assert!(report.by_rule("couple-redundant").is_empty());
        // Couple source steps before its dependent within the island.
        assert_eq!(p.schedule, vec![1, 0]);
    }

    #[test]
    fn unreachable_component_flagged() {
        let mut sim = Sim::new();
        let shared = AxiBundle::with_defaults(sim.pool_mut());
        let lonely = AxiBundle::with_defaults(sim.pool_mut());
        sim.add(Mgr {
            bundle: shared,
            name: "mgr",
        });
        sim.add(Sub {
            bundle: shared,
            name: "sub",
        });
        sim.add(Mgr {
            bundle: lonely,
            name: "stray",
        });
        let (p, report) = analyze_deps(&sim.topology(), &SystemModel::new());
        assert_eq!(p.island_count(), 2);
        let diags = report.by_rule("dependence-unreachable");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].severity, Severity::Warning);
        assert_eq!(diags[0].path, "stray");
    }

    #[test]
    fn unreachable_suppressed_for_single_component_systems() {
        let mut sim = Sim::new();
        let bundle = AxiBundle::with_defaults(sim.pool_mut());
        sim.add(Mgr {
            bundle,
            name: "solo",
        });
        let (_, report) = analyze_deps(&sim.topology(), &SystemModel::new());
        assert!(report.by_rule("dependence-unreachable").is_empty());
    }

    #[test]
    fn empty_topology_is_empty_artifact() {
        let topo = Topology::default();
        let (p, report) = analyze_deps(&topo, &SystemModel::new());
        assert!(report.diagnostics().is_empty());
        assert_eq!(p.island_count(), 0);
        assert_eq!(p.largest_island(), 0);
        assert_eq!(p.depth, 0);
        assert!(p.schedule.is_empty());
    }

    #[test]
    fn partition_json_shape() {
        let (sim, _, _) = pair(("mgr", "sub"));
        let (p, _) = analyze_deps(&sim.topology(), &SystemModel::new());
        let j = p.to_json();
        assert!(j.starts_with("{\"components\":2,"));
        assert!(j.contains("\"island_count\":1"));
        assert!(j.contains("\"batch_approved\":2"));
        assert!(j.contains("\"schedule\":[\"mgr\",\"sub\"]"));
        assert!(j.ends_with("]}"));
    }

    #[test]
    fn batch_plan_approves_point_to_point_pair() {
        // mgr → sub over one bundle: every wire has exactly one driver and
        // one consumer, neither side multiplexes.
        let (sim, _, _) = pair(("mgr", "sub"));
        let (p, _) = analyze_deps(&sim.topology(), &SystemModel::new());
        assert_eq!(p.batch_allowed, vec![true, true]);
        assert_eq!(p.batch_approved(), 2);
    }

    #[test]
    fn batch_plan_rejects_multiplexers_and_contended_wires() {
        // Two managers share one subordinate bundle: the wires have two
        // drivers (AW/W/AR) or two consumers (B/R), and the "arbiter"
        // stand-in consumes two AW wires. Nobody batches.
        let mut sim = Sim::new();
        let bundle = AxiBundle::with_defaults(sim.pool_mut());
        sim.add(Mgr {
            bundle,
            name: "mgr_a",
        });
        sim.add(Mgr {
            bundle,
            name: "mgr_b",
        });
        sim.add(Sub {
            bundle,
            name: "sub",
        });
        let (p, _) = analyze_deps(&sim.topology(), &SystemModel::new());
        assert_eq!(p.batch_allowed, vec![false, false, false]);
    }

    #[test]
    fn batch_plan_rejects_couple_sources_keeps_dependents() {
        // mmio-style flush source: the couple source must tick per cycle
        // (it flushes its dependent first); the dependent itself stays
        // approved — its wires are untouched by the coupling.
        let (mut sim, mgr, sub) = pair(("mmio", "unit"));
        sim.couple(mgr, sub);
        let (p, _) = analyze_deps(&sim.topology(), &SystemModel::new());
        assert_eq!(p.batch_allowed, vec![false, true]);
    }

    #[test]
    fn batch_plan_approves_passive_observers() {
        struct Watcher {
            bundle: AxiBundle,
        }
        impl Component for Watcher {
            fn tick(&mut self, _ctx: &mut TickCtx<'_>) {}
            fn name(&self) -> &str {
                "watcher"
            }
            fn ports(&self) -> Vec<PortDecl> {
                self.bundle.observer_ports()
            }
        }
        let mut sim = Sim::new();
        let bundle = AxiBundle::with_defaults(sim.pool_mut());
        sim.add(Mgr {
            bundle,
            name: "mgr",
        });
        sim.add(Sub {
            bundle,
            name: "sub",
        });
        sim.add(Watcher { bundle });
        let (p, _) = analyze_deps(&sim.topology(), &SystemModel::new());
        // The observer does not count against the wires' endpoint budget.
        assert_eq!(p.batch_allowed, vec![true, true, true]);
    }

    #[test]
    fn batch_plan_rejects_opaque_components() {
        struct Opaque;
        impl Component for Opaque {
            fn tick(&mut self, _ctx: &mut TickCtx<'_>) {}
            fn name(&self) -> &str {
                "opaque"
            }
        }
        let mut sim = Sim::new();
        sim.add(Opaque);
        let (p, _) = analyze_deps(&sim.topology(), &SystemModel::new());
        assert_eq!(p.batch_allowed, vec![false]);
    }
}

//! Diagnostics: severity, machine-readable rendering, and the report that
//! collects them.

use std::fmt;

/// How serious a finding is.
///
/// Severity calibration matters: the paper's own Fig. 6b configuration
/// *deliberately* reserves more bandwidth than the LLC can serve (8 KiB per
/// 1000 cycles against an 8 B/cycle port), so feasibility findings are
/// [`Severity::Warning`]s — real systems over-subscribe on purpose.
/// "Analyzer-clean" means **zero error-severity diagnostics**.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Severity {
    /// Informational: worth knowing, never actionable on its own.
    Info,
    /// Suspicious but potentially intentional (over-subscription,
    /// unaligned windows).
    Warning,
    /// A structural defect: the system cannot behave as designed.
    Error,
}

impl Severity {
    /// Lower-case label used in JSON and human output.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One finding of the elaboration-time analyzer.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Diagnostic {
    /// Stable rule identifier (kebab-case, e.g. `addrmap-overlap`).
    pub rule: &'static str,
    /// How serious the finding is.
    pub severity: Severity,
    /// Component path the finding anchors to (instance name, window name,
    /// or `chan[index]` for a wire).
    pub path: String,
    /// Human-readable explanation with the offending values.
    pub message: String,
}

impl Diagnostic {
    /// Creates a diagnostic.
    pub fn new(
        rule: &'static str,
        severity: Severity,
        path: impl Into<String>,
        message: impl Into<String>,
    ) -> Self {
        Self {
            rule,
            severity,
            path: path.into(),
            message: message.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {}: {}",
            self.severity, self.rule, self.path, self.message
        )
    }
}

/// The analyzer's verdict on one system: every diagnostic, in rule order.
#[derive(Clone, Debug, Default)]
pub struct Report {
    diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// An empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a finding.
    pub fn push(&mut self, d: Diagnostic) {
        self.diagnostics.push(d);
    }

    /// All findings in emission order (rules run in a fixed order, so this
    /// is deterministic).
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// Findings with [`Severity::Error`].
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
    }

    /// Number of error-severity findings.
    pub fn error_count(&self) -> usize {
        self.errors().count()
    }

    /// Number of warning-severity findings.
    pub fn warning_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count()
    }

    /// `true` if no error-severity findings were made (warnings and infos
    /// do not spoil cleanliness — see [`Severity`]).
    pub fn is_clean(&self) -> bool {
        self.error_count() == 0
    }

    /// Findings for one rule (golden tests key off this).
    pub fn by_rule(&self, rule: &str) -> Vec<&Diagnostic> {
        self.diagnostics.iter().filter(|d| d.rule == rule).collect()
    }

    /// Panics with the full report if any error-severity finding exists.
    pub fn assert_clean(&self) {
        assert!(
            self.is_clean(),
            "elaboration-time analysis found {} error(s):\n{}",
            self.error_count(),
            self
        );
    }

    /// Renders the report as a single JSON object:
    ///
    /// ```json
    /// {"errors":N,"warnings":N,
    ///  "diagnostics":[{"rule":"...","severity":"...","path":"...","message":"..."}]}
    /// ```
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"errors\":{},\"warnings\":{},\"diagnostics\":[",
            self.error_count(),
            self.warning_count()
        ));
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"rule\":\"{}\",\"severity\":\"{}\",\"path\":\"{}\",\"message\":\"{}\"}}",
                escape(d.rule),
                d.severity.label(),
                escape(&d.path),
                escape(&d.message)
            ));
        }
        out.push_str("]}");
        out
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.diagnostics.is_empty() {
            return writeln!(f, "clean: no findings");
        }
        for d in &self.diagnostics {
            writeln!(f, "{d}")?;
        }
        writeln!(
            f,
            "{} error(s), {} warning(s)",
            self.error_count(),
            self.warning_count()
        )
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control characters).
pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_ordering_and_labels() {
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Info);
        assert_eq!(Severity::Error.label(), "error");
    }

    #[test]
    fn report_counts_and_cleanliness() {
        let mut r = Report::new();
        assert!(r.is_clean());
        r.push(Diagnostic::new("a-rule", Severity::Warning, "x", "w"));
        assert!(r.is_clean());
        r.push(Diagnostic::new("b-rule", Severity::Error, "y", "e"));
        assert!(!r.is_clean());
        assert_eq!(r.error_count(), 1);
        assert_eq!(r.warning_count(), 1);
        assert_eq!(r.by_rule("a-rule").len(), 1);
    }

    #[test]
    #[should_panic(expected = "elaboration-time analysis found 1 error")]
    fn assert_clean_panics_on_error() {
        let mut r = Report::new();
        r.push(Diagnostic::new("b-rule", Severity::Error, "y", "boom"));
        r.assert_clean();
    }

    #[test]
    fn json_shape_and_escaping() {
        let mut r = Report::new();
        r.push(Diagnostic::new(
            "a-rule",
            Severity::Error,
            "comp\"x\"",
            "line1\nline2",
        ));
        let j = r.to_json();
        assert!(j.starts_with("{\"errors\":1,\"warnings\":0,"));
        assert!(j.contains("\\\"x\\\""));
        assert!(j.contains("line1\\nline2"));
        assert!(j.ends_with("]}"));
    }

    #[test]
    fn display_renders_every_finding() {
        let mut r = Report::new();
        r.push(Diagnostic::new("a-rule", Severity::Info, "x", "hello"));
        let s = r.to_string();
        assert!(s.contains("info[a-rule] x: hello"));
        assert!(Report::new().to_string().contains("clean"));
    }
}

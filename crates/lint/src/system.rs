//! The semantic side of the system under analysis.
//!
//! A [`Topology`](axi_sim::Topology) says which component touches which
//! wire, but not what the addresses mean or what the budgets promise. The
//! builder assembles those declarations — address windows, service rates,
//! REALM unit configurations, the ID space, declared combinational
//! couplings — into a [`SystemModel`] the rules can check arithmetic
//! against.

use axi4::Addr;
use axi_realm::{DesignConfig, RuntimeConfig};

/// One window of the crossbar's address map.
#[derive(Clone, Debug)]
pub struct AddrWindow {
    /// Subordinate name the window routes to.
    pub name: String,
    /// First address of the window.
    pub base: Addr,
    /// Window size in bytes.
    pub size: u64,
}

impl AddrWindow {
    /// One-past-the-end address, saturating.
    pub fn end(&self) -> u64 {
        self.base.raw().saturating_add(self.size)
    }

    /// `true` if `[base, base+size)` lies fully inside this window.
    pub fn covers(&self, base: Addr, size: u64) -> bool {
        base.raw() >= self.base.raw() && base.raw().saturating_add(size) <= self.end()
    }
}

/// One REALM unit and the configuration it was instantiated with.
#[derive(Clone, Debug)]
pub struct RealmSpec {
    /// Component path for diagnostics (e.g. `realm.dma`).
    pub path: String,
    /// Design-time structural parameters.
    pub design: DesignConfig,
    /// Runtime regulation parameters.
    pub config: RuntimeConfig,
}

/// Semantic declarations about a system, assembled with the builder
/// methods; [`crate::analyze`] checks a topology against it.
///
/// Every list is checked in insertion order, so diagnostics are
/// deterministic.
#[derive(Clone, Debug)]
pub struct SystemModel {
    /// Crossbar address-map windows.
    pub windows: Vec<AddrWindow>,
    /// Peak service rate per subordinate, in bytes per cycle, keyed by
    /// window name. The paper's bandwidth-reservation bound (§II: the sum
    /// of granted budgets `e_i` over a period `P` must not exceed the
    /// subordinate's capacity `P · W`) is checked against these.
    pub bandwidths: Vec<(String, u64)>,
    /// Instantiated REALM units.
    pub realms: Vec<RealmSpec>,
    /// Largest manager-side transaction ID in use (the crossbar extends
    /// IDs multiplicatively, so `(max_id + 1) · n_managers - 1` must fit).
    pub max_txn_id: u32,
    /// Number of manager ports on the crossbar.
    pub n_managers: usize,
    /// Declared zero-latency (combinational) couplings between named
    /// components. Wires are registered, so these are the *only* edges
    /// that can form a zero-latency cycle.
    pub comb_edges: Vec<(String, String)>,
    /// Bytes per data beat (bus width / 8). Defaults to 8 (64-bit bus).
    pub beat_bytes: u64,
}

impl Default for SystemModel {
    fn default() -> Self {
        Self::new()
    }
}

impl SystemModel {
    /// An empty model: no windows, no realms, 64-bit data bus.
    pub fn new() -> Self {
        Self {
            windows: Vec::new(),
            bandwidths: Vec::new(),
            realms: Vec::new(),
            max_txn_id: 0,
            n_managers: 0,
            comb_edges: Vec::new(),
            beat_bytes: 8,
        }
    }

    /// Declares an address-map window routed to subordinate `name`.
    pub fn window(mut self, name: impl Into<String>, base: Addr, size: u64) -> Self {
        self.windows.push(AddrWindow {
            name: name.into(),
            base,
            size,
        });
        self
    }

    /// Declares the peak service rate of the subordinate behind window
    /// `name`, in bytes per cycle.
    pub fn bandwidth(mut self, name: impl Into<String>, bytes_per_cycle: u64) -> Self {
        self.bandwidths.push((name.into(), bytes_per_cycle));
        self
    }

    /// Declares an instantiated REALM unit.
    pub fn realm(
        mut self,
        path: impl Into<String>,
        design: DesignConfig,
        config: RuntimeConfig,
    ) -> Self {
        self.realms.push(RealmSpec {
            path: path.into(),
            design,
            config,
        });
        self
    }

    /// Declares the transaction-ID space: the largest upstream ID and the
    /// number of crossbar manager ports.
    pub fn id_space(mut self, max_txn_id: u32, n_managers: usize) -> Self {
        self.max_txn_id = max_txn_id;
        self.n_managers = n_managers;
        self
    }

    /// Declares a zero-latency coupling from component `from` to
    /// component `to` (by instance name).
    pub fn comb_edge(mut self, from: impl Into<String>, to: impl Into<String>) -> Self {
        self.comb_edges.push((from.into(), to.into()));
        self
    }

    /// Overrides the data-bus beat width in bytes.
    pub fn beats_of(mut self, beat_bytes: u64) -> Self {
        self.beat_bytes = beat_bytes;
        self
    }

    /// The declared service rate behind the window containing `addr`, if
    /// both the window and its bandwidth were declared.
    pub fn service_rate_at(&self, addr: Addr) -> Option<(&AddrWindow, u64)> {
        let w = self
            .windows
            .iter()
            .find(|w| w.size > 0 && w.covers(addr, 1))?;
        let (_, rate) = self.bandwidths.iter().find(|(n, _)| *n == w.name)?;
        Some((w, *rate))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_coverage() {
        let w = AddrWindow {
            name: "llc".into(),
            base: Addr::new(0x1000),
            size: 0x1000,
        };
        assert!(w.covers(Addr::new(0x1000), 0x1000));
        assert!(w.covers(Addr::new(0x1800), 0x100));
        assert!(!w.covers(Addr::new(0x1800), 0x1000));
        assert!(!w.covers(Addr::new(0x800), 0x100));
        assert_eq!(w.end(), 0x2000);
    }

    #[test]
    fn builder_accumulates() {
        let m = SystemModel::new()
            .window("llc", Addr::new(0x8000_0000), 1 << 20)
            .bandwidth("llc", 8)
            .id_space(15, 4)
            .comb_edge("mmio", "realm.core");
        assert_eq!(m.windows.len(), 1);
        assert_eq!(m.max_txn_id, 15);
        assert_eq!(m.n_managers, 4);
        assert_eq!(m.comb_edges.len(), 1);
        let (w, rate) = m.service_rate_at(Addr::new(0x8000_1000)).unwrap();
        assert_eq!(w.name, "llc");
        assert_eq!(rate, 8);
        assert!(m.service_rate_at(Addr::new(0x0)).is_none());
    }
}

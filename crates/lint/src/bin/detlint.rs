//! Pass B driver: scans the workspace for nondeterminism hazards.
//!
//! ```text
//! detlint [ROOT] [--json PATH]
//! ```
//!
//! `ROOT` defaults to the current directory. Exits 1 if any violation is
//! found; `--json` additionally writes the machine-readable report.

use std::path::PathBuf;
use std::process::ExitCode;

use realm_lint::{scan_workspace, violations_to_json};

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut json_path: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => match args.next() {
                Some(p) => json_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("detlint: --json needs a path");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                eprintln!("usage: detlint [ROOT] [--json PATH]");
                return ExitCode::SUCCESS;
            }
            other => root = PathBuf::from(other),
        }
    }

    let violations = match scan_workspace(&root) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("detlint: cannot scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if let Some(path) = &json_path {
        if let Some(dir) = path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        if let Err(e) = std::fs::write(path, violations_to_json(&violations)) {
            eprintln!("detlint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    if violations.is_empty() {
        println!("detlint: workspace clean");
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            println!("{v}");
        }
        println!(
            "detlint: {} violation(s); suppress intentional uses with \
             `// lint:allow(<rule>)`",
            violations.len()
        );
        ExitCode::FAILURE
    }
}

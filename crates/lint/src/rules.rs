//! Pass A: the elaboration-time rules.
//!
//! [`analyze`] runs every rule in a fixed order against a
//! [`Topology`] + [`SystemModel`] pair and returns the [`Report`].
//! Rules are pure functions of their inputs; the order of findings is
//! deterministic.

use std::collections::BTreeMap;

use axi_sim::{PortDir, Topology};

use crate::diag::{Diagnostic, Report, Severity};
use crate::system::SystemModel;

/// A fragment must stay within one DRAM/LLC page: AXI4 forbids bursts
/// crossing a 4 KiB boundary, and the REALM splitter inherits the rule.
const PAGE: u64 = 4096;

/// Runs every rule. See the crate docs for the rule catalogue.
pub fn analyze(topo: &Topology, model: &SystemModel) -> Report {
    let mut report = Report::new();
    check_wires(topo, &mut report);
    check_reachability(topo, &mut report);
    check_address_map(model, &mut report);
    check_id_width(model, &mut report);
    check_configs(model, &mut report);
    check_fragmentation(model, &mut report);
    check_regions(model, &mut report);
    check_budgets(model, &mut report);
    check_comb_cycles(model, &mut report);
    // Pass C rides along: the couple/dependence diagnostics join the
    // report; callers wanting the Partition artifact itself use
    // `analyze_deps` directly.
    let (_, deps) = crate::sched::analyze_deps(topo, model);
    for d in deps.diagnostics() {
        report.push(d.clone());
    }
    report
}

/// Display key for a wire: `AW[3]`.
fn wire_path(channel: &str, index: usize) -> String {
    format!("{channel}[{index}]")
}

/// `wire-dangling` / `wire-doubly-driven`: every allocated wire must have
/// exactly one driver and exactly one consumer among the declared,
/// non-observing endpoints. Opaque components (no [`ports`]
/// declaration) may legitimately own undeclared endpoints, so their
/// presence demotes dangling findings to warnings.
///
/// [`ports`]: axi_sim::Component::ports
fn check_wires(topo: &Topology, report: &mut Report) {
    let opaque = topo.opaque_components() > 0;
    let dangling_severity = if opaque {
        Severity::Warning
    } else {
        Severity::Error
    };
    for wire in &topo.wires {
        let mut drivers: Vec<&str> = Vec::new();
        let mut consumers: Vec<&str> = Vec::new();
        for c in &topo.components {
            for p in &c.ports {
                if p.channel == wire.channel && p.wire == wire.index {
                    match p.dir {
                        PortDir::Drive => drivers.push(&c.name),
                        PortDir::Consume => consumers.push(&c.name),
                        PortDir::Observe => {}
                    }
                }
            }
        }
        let path = wire_path(wire.channel, wire.index);
        if drivers.len() > 1 {
            report.push(Diagnostic::new(
                "wire-doubly-driven",
                Severity::Error,
                path.clone(),
                format!("wire has {} drivers: {}", drivers.len(), drivers.join(", ")),
            ));
        }
        match (drivers.is_empty(), consumers.is_empty()) {
            (true, true) => report.push(Diagnostic::new(
                "wire-dangling",
                Severity::Warning,
                path,
                "wire has no declared endpoints".to_owned(),
            )),
            (false, true) => report.push(Diagnostic::new(
                "wire-dangling",
                dangling_severity,
                path,
                format!(
                    "wire driven by {} but never consumed{}",
                    drivers.join(", "),
                    if opaque {
                        " (opaque components present; they may consume it)"
                    } else {
                        ""
                    }
                ),
            )),
            (true, false) => report.push(Diagnostic::new(
                "wire-dangling",
                dangling_severity,
                path,
                format!(
                    "wire consumed by {} but never driven{}",
                    consumers.join(", "),
                    if opaque {
                        " (opaque components present; they may drive it)"
                    } else {
                        ""
                    }
                ),
            )),
            (false, false) => {}
        }
    }
}

/// `component-unreachable`: a component whose declared wires share no
/// connected path with any traffic source can never see a beat. Sources
/// are pure managers — components that drive a request channel (AW/AR)
/// without consuming one. Observers and opaque components are skipped.
fn check_reachability(topo: &Topology, report: &mut Report) {
    let is_req = |ch: &str| ch == "AW" || ch == "W" || ch == "AR";
    let participants: Vec<&axi_sim::TopoComponent> = topo
        .components
        .iter()
        .filter(|c| !c.is_opaque() && !c.is_observer())
        .collect();
    if participants.is_empty() {
        return;
    }
    // Wire key -> participant positions touching it (non-observing).
    let mut by_wire: BTreeMap<(&str, usize), Vec<usize>> = BTreeMap::new();
    for (i, c) in participants.iter().enumerate() {
        for p in &c.ports {
            if p.dir != PortDir::Observe {
                by_wire.entry((p.channel, p.wire)).or_default().push(i);
            }
        }
    }
    let sources: Vec<usize> = participants
        .iter()
        .enumerate()
        .filter(|(_, c)| {
            let drives_req = c
                .ports
                .iter()
                .any(|p| p.dir == PortDir::Drive && is_req(p.channel));
            let consumes_req = c
                .ports
                .iter()
                .any(|p| p.dir == PortDir::Consume && is_req(p.channel));
            drives_req && !consumes_req
        })
        .map(|(i, _)| i)
        .collect();
    if sources.is_empty() {
        // No manager at all: the system is inert, which the wire rules
        // already surface; reachability has nothing to anchor to.
        return;
    }
    // Flood-fill over shared wires, undirected.
    let mut reached = vec![false; participants.len()];
    let mut queue = sources;
    while let Some(i) = queue.pop() {
        if std::mem::replace(&mut reached[i], true) {
            continue;
        }
        for p in &participants[i].ports {
            if p.dir == PortDir::Observe {
                continue;
            }
            if let Some(peers) = by_wire.get(&(p.channel, p.wire)) {
                for &j in peers {
                    if !reached[j] {
                        queue.push(j);
                    }
                }
            }
        }
    }
    for (i, c) in participants.iter().enumerate() {
        if !reached[i] {
            report.push(Diagnostic::new(
                "component-unreachable",
                Severity::Warning,
                c.name.clone(),
                "no wire path connects this component to any traffic source".to_owned(),
            ));
        }
    }
}

/// `addrmap-overlap` / `addrmap-alignment` / `addrmap-gap`: windows must
/// not overlap (routing would depend on match order), should sit on 4 KiB
/// boundaries (decoders compare page-granular prefixes), and gaps are
/// worth knowing about (accesses there draw DECERR).
fn check_address_map(model: &SystemModel, report: &mut Report) {
    let mut sorted: Vec<&crate::system::AddrWindow> = model.windows.iter().collect();
    sorted.sort_by_key(|w| w.base.raw());
    for w in &sorted {
        if w.base.raw() % PAGE != 0 || w.size % PAGE != 0 {
            report.push(Diagnostic::new(
                "addrmap-alignment",
                Severity::Warning,
                w.name.clone(),
                format!(
                    "window [{:#x}, {:#x}) is not 4 KiB aligned",
                    w.base.raw(),
                    w.end()
                ),
            ));
        }
    }
    for pair in sorted.windows(2) {
        let (a, b) = (pair[0], pair[1]);
        if a.end() > b.base.raw() {
            report.push(Diagnostic::new(
                "addrmap-overlap",
                Severity::Error,
                format!("{}+{}", a.name, b.name),
                format!(
                    "windows [{:#x}, {:#x}) and [{:#x}, {:#x}) overlap",
                    a.base.raw(),
                    a.end(),
                    b.base.raw(),
                    b.end()
                ),
            ));
        } else if a.end() < b.base.raw() {
            report.push(Diagnostic::new(
                "addrmap-gap",
                Severity::Info,
                format!("{}..{}", a.name, b.name),
                format!(
                    "unmapped gap [{:#x}, {:#x}) between windows (accesses draw DECERR)",
                    a.end(),
                    b.base.raw()
                ),
            ));
        }
    }
}

/// `id-width-overflow`: the crossbar extends upstream IDs multiplicatively
/// (`id · n_managers + manager`), so the largest downstream ID is
/// `(max_id + 1) · n_managers − 1`; it must fit the 32-bit ID field or the
/// crossbar's runtime assertion fires mid-simulation.
fn check_id_width(model: &SystemModel, report: &mut Report) {
    if model.n_managers == 0 {
        return;
    }
    let widest = (model.max_txn_id as u64 + 1) * model.n_managers as u64 - 1;
    if widest > u32::MAX as u64 {
        report.push(Diagnostic::new(
            "id-width-overflow",
            Severity::Error,
            "xbar".to_owned(),
            format!(
                "extended ID {widest:#x} for max upstream ID {} across {} managers \
                 exceeds the 32-bit ID field",
                model.max_txn_id, model.n_managers
            ),
        ));
    }
}

/// `config-invalid`: wraps [`DesignConfig::validate`] and
/// [`RuntimeConfig::validate`] so configuration defects surface with the
/// other findings instead of as a panic deep in unit construction.
///
/// [`DesignConfig::validate`]: axi_realm::DesignConfig::validate
/// [`RuntimeConfig::validate`]: axi_realm::RuntimeConfig::validate
fn check_configs(model: &SystemModel, report: &mut Report) {
    for realm in &model.realms {
        if let Err(e) = realm.design.validate() {
            report.push(Diagnostic::new(
                "config-invalid",
                Severity::Error,
                realm.path.clone(),
                e.to_string(),
            ));
        }
        if let Err(e) = realm.config.validate(&realm.design) {
            report.push(Diagnostic::new(
                "config-invalid",
                Severity::Error,
                realm.path.clone(),
                e.to_string(),
            ));
        }
    }
}

/// `frag-4k-crossing`: a fragment larger than a 4 KiB page re-introduces
/// the boundary-crossing bursts the splitter exists to prevent (error);
/// a fragment size that does not divide the page can still straddle a
/// boundary depending on the start address (warning).
fn check_fragmentation(model: &SystemModel, report: &mut Report) {
    for realm in &model.realms {
        let frag_len = realm.config.frag_len as u64;
        if frag_len == 0 {
            continue; // config-invalid already fired
        }
        let frag_bytes = frag_len * model.beat_bytes;
        if frag_bytes > PAGE {
            report.push(Diagnostic::new(
                "frag-4k-crossing",
                Severity::Error,
                realm.path.clone(),
                format!(
                    "fragment of {frag_len} beats × {} B = {frag_bytes} B exceeds the \
                     4 KiB AXI boundary",
                    model.beat_bytes
                ),
            ));
        } else if !PAGE.is_multiple_of(frag_bytes) {
            report.push(Diagnostic::new(
                "frag-4k-crossing",
                Severity::Warning,
                realm.path.clone(),
                format!(
                    "fragment size {frag_bytes} B does not divide 4096; fragments can \
                     straddle a 4 KiB boundary depending on alignment"
                ),
            ));
        }
    }
}

/// `region-unmapped`: a regulated region that no address-map window fully
/// covers monitors traffic that can never reach a subordinate (or only
/// partially) — almost always a mistyped base or size.
fn check_regions(model: &SystemModel, report: &mut Report) {
    if model.windows.is_empty() {
        return;
    }
    for realm in &model.realms {
        for (i, region) in realm.config.regions.iter().enumerate() {
            if region.size == 0 {
                continue;
            }
            let covered = model
                .windows
                .iter()
                .any(|w| w.covers(region.base, region.size));
            if !covered {
                report.push(Diagnostic::new(
                    "region-unmapped",
                    Severity::Warning,
                    format!("{}.region[{i}]", realm.path),
                    format!(
                        "regulated region [{:#x}, {:#x}) is not fully covered by any \
                         address-map window",
                        region.base.raw(),
                        region.base.raw().saturating_add(region.size)
                    ),
                ));
            }
        }
    }
}

/// Runs only the budget-arithmetic rules (`budget-infeasible`,
/// `budget-oversubscribed`) over `model` — the feasibility half of the
/// differential bandwidth-bound oracle.
///
/// A configuration is *feasible* exactly when this report is empty: every
/// reservation fits its window's service capacity (`e ≤ P · W`) and the
/// reservations jointly fit the service rate (`Σ e_i / P_i ≤ W`, checked
/// in exact rational arithmetic). When feasible, the paper's guarantee
/// applies — each regulated manager must be *granted* at least its budget
/// per period once backlogged — and a simulated run that undershoots the
/// resulting completion-time bound is a real bug in either the simulator
/// or the bound (see `realm-fuzz`).
pub fn analyze_budgets(model: &SystemModel) -> Report {
    let mut report = Report::new();
    check_budgets(model, &mut report);
    report
}

/// The analytical worst-case cycle count for a *backlogged* regulated
/// manager to be granted `demand` bytes under a feasible reservation of
/// `budget` bytes per `period` cycles, counted from the period in which
/// the backlog forms.
///
/// Derivation: the budget replenishes to its full value on the period
/// grid and a fragment may start whenever any budget remains, so every
/// *complete* period that begins with backlog drains at least
/// `min(budget, remaining)` bytes. The backlog may form mid-period
/// (worth at most one extra period) and the final grant completes within
/// the period it starts in — hence `(ceil(demand / budget) + 1) · period`
/// periods-worth of cycles suffice for the grants alone. Transport
/// latency downstream of the regulator is *not* included; callers add
/// their own path-latency terms.
///
/// Returns `None` for unregulated configurations (`budget == 0` or
/// `period == 0`), where no reservation — and thus no bound — exists.
pub fn drain_bound_cycles(demand: u64, budget: u64, period: u64) -> Option<u64> {
    if budget == 0 || period == 0 {
        return None;
    }
    Some((demand.div_ceil(budget) + 1).saturating_mul(period))
}

/// `budget-infeasible` / `budget-oversubscribed`: the paper's bandwidth
/// reservation gives each manager `e_i` bytes per period `P_i`; a single
/// reservation exceeding what the subordinate can serve in one period
/// (`e > P · W`) can never be fully granted, and reservations jointly
/// exceeding the service rate (`Σ e_i / P_i > W`) over-subscribe the
/// subordinate. Both are warnings: the paper's own Fig. 6b evaluation
/// over-subscribes the LLC deliberately.
fn check_budgets(model: &SystemModel, report: &mut Report) {
    // Per-window oversubscription accumulator as an exact rational
    // (num/den in u128): window name -> (num, den).
    let mut demand: BTreeMap<&str, (u128, u128)> = BTreeMap::new();
    for realm in &model.realms {
        for (i, region) in realm.config.regions.iter().enumerate() {
            if region.size == 0 || region.budget_max == 0 || region.period == 0 {
                continue; // unregulated or disabled
            }
            let Some((window, rate)) = model.service_rate_at(region.base) else {
                continue; // region-unmapped covers the window miss
            };
            let capacity = region.period.saturating_mul(rate);
            if region.budget_max > capacity {
                report.push(Diagnostic::new(
                    "budget-infeasible",
                    Severity::Warning,
                    format!("{}.region[{i}]", realm.path),
                    format!(
                        "budget {} B per {} cycles exceeds what `{}` can serve in one \
                         period ({} cycles × {} B/cycle = {} B): the reservation can \
                         never be fully granted",
                        region.budget_max,
                        region.period,
                        window.name,
                        region.period,
                        rate,
                        capacity
                    ),
                ));
            }
            // demand += budget / period
            let (num, den) = demand.entry(&window.name).or_insert((0, 1));
            *num = *num * region.period as u128 + region.budget_max as u128 * *den;
            *den *= region.period as u128;
        }
    }
    for (name, rate) in &model.bandwidths {
        let Some(&(num, den)) = demand.get(name.as_str()) else {
            continue;
        };
        if num > *rate as u128 * den {
            // Render the aggregate demand with two decimals for the
            // message; the comparison itself is exact.
            let demand_bpc = num as f64 / den as f64;
            report.push(Diagnostic::new(
                "budget-oversubscribed",
                Severity::Warning,
                name.clone(),
                format!(
                    "aggregate reservations demand {demand_bpc:.2} B/cycle from `{name}` \
                     but it serves at most {rate} B/cycle (paper bound: sum of budgets \
                     e_i over a period P must not exceed P x W)"
                ),
            ));
        }
    }
}

/// `zero-latency-cycle`: every pool wire is registered, so latency-free
/// loops can only arise through declared combinational couplings; a cycle
/// among them would make component evaluation order observable.
fn check_comb_cycles(model: &SystemModel, report: &mut Report) {
    if model.comb_edges.is_empty() {
        return;
    }
    // Adjacency over node names, insertion-ordered.
    let mut names: Vec<&str> = Vec::new();
    for (a, b) in &model.comb_edges {
        for n in [a.as_str(), b.as_str()] {
            if !names.contains(&n) {
                names.push(n);
            }
        }
    }
    let idx = |n: &str| names.iter().position(|x| *x == n).expect("inserted");
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); names.len()];
    for (a, b) in &model.comb_edges {
        adj[idx(a)].push(idx(b));
    }
    // Iterative DFS with colouring; report the first cycle found.
    #[derive(Clone, Copy, PartialEq)]
    enum Colour {
        White,
        Grey,
        Black,
    }
    let mut colour = vec![Colour::White; names.len()];
    let mut parent: Vec<Option<usize>> = vec![None; names.len()];
    for start in 0..names.len() {
        if colour[start] != Colour::White {
            continue;
        }
        let mut stack = vec![(start, 0usize)];
        colour[start] = Colour::Grey;
        while let Some(&(node, edge)) = stack.last() {
            if edge < adj[node].len() {
                stack.last_mut().expect("nonempty").1 += 1;
                let next = adj[node][edge];
                match colour[next] {
                    Colour::White => {
                        colour[next] = Colour::Grey;
                        parent[next] = Some(node);
                        stack.push((next, 0));
                    }
                    Colour::Grey => {
                        // Reconstruct the cycle next -> ... -> node -> next.
                        let mut cycle = vec![names[node]];
                        let mut cur = node;
                        while cur != next {
                            cur = parent[cur].expect("grey nodes have parents on this path");
                            cycle.push(names[cur]);
                        }
                        cycle.reverse();
                        cycle.push(names[next]);
                        report.push(Diagnostic::new(
                            "zero-latency-cycle",
                            Severity::Error,
                            names[next].to_owned(),
                            format!(
                                "combinational couplings form a zero-latency cycle: {}",
                                cycle.join(" -> ")
                            ),
                        ));
                        return;
                    }
                    Colour::Black => {}
                }
            } else {
                colour[node] = Colour::Black;
                stack.pop();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use axi4::Addr;
    use axi_realm::{DesignConfig, RegionConfig, RuntimeConfig};

    fn empty_topo() -> Topology {
        Topology::default()
    }

    fn open_realm(path: &str) -> (String, DesignConfig, RuntimeConfig) {
        (
            path.to_owned(),
            DesignConfig::cheshire(),
            RuntimeConfig::open(2),
        )
    }

    #[test]
    fn clean_on_empty() {
        let report = analyze(&empty_topo(), &SystemModel::new());
        assert!(report.is_clean());
        assert!(report.diagnostics().is_empty());
    }

    #[test]
    fn overlap_is_error_gap_is_info() {
        let model = SystemModel::new()
            .window("a", Addr::new(0x0), 0x2000)
            .window("b", Addr::new(0x1000), 0x1000)
            .window("c", Addr::new(0x10000), 0x1000);
        let report = analyze(&empty_topo(), &model);
        let overlap = report.by_rule("addrmap-overlap");
        assert_eq!(overlap.len(), 1);
        assert_eq!(overlap[0].severity, Severity::Error);
        assert_eq!(overlap[0].path, "a+b");
        assert_eq!(report.by_rule("addrmap-gap").len(), 1);
    }

    #[test]
    fn alignment_warns() {
        let model = SystemModel::new().window("odd", Addr::new(0x100), 0x1000);
        let report = analyze(&empty_topo(), &model);
        let diags = report.by_rule("addrmap-alignment");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].severity, Severity::Warning);
        assert!(report.is_clean());
    }

    #[test]
    fn id_overflow_detected() {
        let model = SystemModel::new().id_space(u32::MAX, 2);
        let report = analyze(&empty_topo(), &model);
        assert_eq!(report.by_rule("id-width-overflow").len(), 1);
        assert!(!report.is_clean());
        // Exactly at the limit: fine.
        let model = SystemModel::new().id_space(u32::MAX, 1);
        assert!(analyze(&empty_topo(), &model).is_clean());
    }

    #[test]
    fn oversubscription_is_warning_not_error() {
        let (p, d, mut cfg) = open_realm("realm.core");
        cfg.regions[0] = RegionConfig {
            base: Addr::new(0x8000_0000),
            size: 0x1000,
            budget_max: 8192,
            period: 1000,
        };
        let model = SystemModel::new()
            .window("llc", Addr::new(0x8000_0000), 1 << 20)
            .bandwidth("llc", 8)
            .realm(p, d, cfg);
        let report = analyze(&empty_topo(), &model);
        // 8192 B / 1000 cycles > 8 B/cycle * ... no: 8192 > 8000 capacity
        assert_eq!(report.by_rule("budget-infeasible").len(), 1);
        assert_eq!(report.by_rule("budget-oversubscribed").len(), 1);
        assert!(report.is_clean(), "feasibility findings must be warnings");
    }

    #[test]
    fn comb_cycle_reconstructed() {
        let model = SystemModel::new()
            .comb_edge("a", "b")
            .comb_edge("b", "c")
            .comb_edge("c", "a");
        let report = analyze(&empty_topo(), &model);
        let diags = report.by_rule("zero-latency-cycle");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].severity, Severity::Error);
        assert!(diags[0].message.contains("->"));
        // Acyclic chain: clean.
        let model = SystemModel::new().comb_edge("a", "b").comb_edge("b", "c");
        assert!(analyze(&empty_topo(), &model).is_clean());
    }

    #[test]
    fn frag_rules() {
        // 256 beats x 64 B = 16 KiB > 4 KiB: error.
        let (p, d, mut cfg) = open_realm("realm.dma");
        cfg.frag_len = 256;
        let model = SystemModel::new().beats_of(64).realm(p, d, cfg);
        let report = analyze(&empty_topo(), &model);
        assert_eq!(report.by_rule("frag-4k-crossing").len(), 1);
        assert!(!report.is_clean());
        // 3 beats x 8 B = 24 B does not divide 4096: warning.
        let (p, d, mut cfg) = open_realm("realm.dma");
        cfg.frag_len = 3;
        let model = SystemModel::new().realm(p, d, cfg);
        let report = analyze(&empty_topo(), &model);
        let diags = report.by_rule("frag-4k-crossing");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].severity, Severity::Warning);
    }

    #[test]
    fn region_unmapped_warns() {
        let (p, d, mut cfg) = open_realm("realm.core");
        cfg.regions[0] = RegionConfig {
            base: Addr::new(0x5000_0000),
            size: 0x1000,
            budget_max: 0,
            period: 0,
        };
        let model = SystemModel::new()
            .window("llc", Addr::new(0x8000_0000), 1 << 20)
            .realm(p, d, cfg);
        let report = analyze(&empty_topo(), &model);
        let diags = report.by_rule("region-unmapped");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].path, "realm.core.region[0]");
    }

    #[test]
    fn invalid_config_wrapped() {
        let (p, mut d, cfg) = open_realm("realm.core");
        d.num_pending = 0;
        let model = SystemModel::new().realm(p, d, cfg);
        let report = analyze(&empty_topo(), &model);
        let diags = report.by_rule("config-invalid");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].severity, Severity::Error);
        assert_eq!(diags[0].path, "realm.core");
    }
}

//! The fuzz rig: builds and runs the monitored system a [`SystemSpec`]
//! describes — N scripted managers, each behind a named REALM unit, an
//! N×1 crossbar, one memory — and harvests coverage, conformance, and
//! per-manager outcomes.

use axi4::SubordinateId;
use axi_conformance::{ConformanceReport, ProtocolMonitor, Scoreboard};
use axi_mem::{MemoryConfig, MemoryModel};
use axi_realm::{DesignConfig, RealmUnit};
use axi_sim::{AxiBundle, BundleCapacity, ComponentId, CoverageMap, KernelStats, Sim};
use axi_traffic::ScriptedManager;
use axi_xbar::{AddressMap, Crossbar};

use crate::spec::{SystemSpec, WINDOW_BASE, WINDOW_SIZE};

/// Simulation-cycle cap for any valid spec. The spec invariants (at
/// least one beat of budget per at most 1024-cycle period, bounded
/// script sizes) keep the analytical worst case under ~2M cycles; runs
/// hitting this cap are reported unfinished, which every consumer
/// treats as a failure.
pub const MAX_RUN_CYCLES: u64 = 6_000_000;

/// Post-run facts about one manager.
#[derive(Clone, Debug)]
pub struct ManagerOutcome {
    /// Cycle the manager's last completion arrived (`None` when the
    /// script has no transfers).
    pub finish: Option<u64>,
    /// Completed transactions.
    pub completions: usize,
    /// Completions carrying `SLVERR`/`DECERR`.
    pub err_resps: usize,
}

/// Everything one rig run produces.
#[derive(Debug)]
pub struct RunOutcome {
    /// `true` when every manager drained before [`MAX_RUN_CYCLES`].
    pub finished: bool,
    /// Final simulation cycle.
    pub cycle: u64,
    /// Aggregated monitor + scoreboard verdict.
    pub conformance: ConformanceReport,
    /// Per-manager completion facts, in spec order.
    pub managers: Vec<ManagerOutcome>,
    /// The run's coverage harvest (see
    /// [`Sim::coverage`](axi_sim::Sim::coverage)), extended with the
    /// telemetry-delta layer: histogram-bucket occupancy from the
    /// telemetry registry, so latency-distribution shifts guide the
    /// campaign even when no new wire or rule fired.
    pub coverage: CoverageMap,
    /// The run's full telemetry registry (see
    /// [`Sim::telemetry`](axi_sim::Sim::telemetry)). Component-side
    /// counters/histograms in here are kernel-invariant; `kernel.*`
    /// counters are not.
    pub telemetry: axi_sim::TelemetrySink,
    /// Kernel throughput counters.
    pub kernel: KernelStats,
    /// Access-sanitizer violations recorded during the run (including any
    /// dropped beyond the in-sim cap). Always zero unless the process runs
    /// with `REALM_SANITIZE=1`.
    pub sanitizer: usize,
}

impl RunOutcome {
    /// `true` when the run drained, no monitor or scoreboard rule fired,
    /// and the access sanitizer (when armed) saw only declared accesses —
    /// the baseline pass criterion before the bandwidth oracle.
    pub fn clean(&self) -> bool {
        self.finished && self.conformance.is_clean() && self.sanitizer == 0
    }
}

/// One constructed rig, ready to run or analyze.
struct Rig {
    sim: Sim,
    mgrs: Vec<ComponentId>,
    monitors: Vec<ComponentId>,
    scoreboard: Scoreboard,
}

/// Builds the rig for `spec` without running it and returns the full
/// lint report (topology rules + system-model rules) — construction-time
/// validation for mutation tests and corpus gating.
pub fn lint_spec(spec: &SystemSpec) -> realm_lint::Report {
    let rig = build(spec);
    realm_lint::analyze(&rig.sim.topology(), &spec.model())
}

/// Runs `spec` to completion (or the cycle cap) and harvests everything.
pub fn run_spec(spec: &SystemSpec) -> RunOutcome {
    debug_assert!(spec.validate().is_ok(), "run_spec wants validated specs");
    let Rig {
        mut sim,
        mgrs,
        monitors,
        scoreboard,
    } = build(spec);

    let finished = sim.run_until(MAX_RUN_CYCLES, |s| {
        mgrs.iter()
            .all(|&id| s.component::<ScriptedManager>(id).expect("mgr").is_done())
    });
    let conformance = ConformanceReport::collect(&sim, &monitors, &scoreboard);

    let managers = mgrs
        .iter()
        .map(|&id| {
            let m = sim.component::<ScriptedManager>(id).expect("mgr");
            let completions = m.completions();
            ManagerOutcome {
                finish: completions.iter().map(|c| c.finished).max(),
                completions: completions.len(),
                err_resps: completions.iter().filter(|c| c.resp.is_err()).count(),
            }
        })
        .collect();

    // Fourth coverage layer: telemetry deltas. Folding histogram-bucket
    // occupancy into the map turns the latency *distribution* into
    // coverage keys — a mutant that pushes a completion into a new
    // power-of-two latency bucket counts as novel behaviour. Only
    // component-side histograms exist in the registry, so the layer is
    // kernel-invariant like the rest of the signature.
    let telemetry = sim.telemetry();
    let mut coverage = sim.coverage();
    for (key, hist) in telemetry.histograms() {
        for (bucket, count) in hist.buckets() {
            coverage.add(format!("telemetry.{key}.b{bucket}"), count);
        }
    }

    RunOutcome {
        finished,
        cycle: sim.cycle(),
        conformance,
        managers,
        coverage,
        telemetry,
        kernel: sim.kernel_stats(),
        sanitizer: sim.sanitizer_violations().len()
            + usize::try_from(sim.sanitizer_violations_dropped()).unwrap_or(usize::MAX),
    }
}

/// Constructs the full monitored system: managers, REALM units, crossbar,
/// memory, protocol monitors, scoreboard.
fn build(spec: &SystemSpec) -> Rig {
    let mut sim = Sim::new();
    let cap = BundleCapacity::uniform(4);
    let design = DesignConfig::cheshire();

    let mut mgrs = Vec::new();
    let mut upstreams = Vec::new();
    let mut downstreams = Vec::new();
    for (i, mspec) in spec.managers.iter().enumerate() {
        let upstream = AxiBundle::new(sim.pool_mut(), cap);
        let downstream = AxiBundle::new(sim.pool_mut(), cap);
        mgrs.push(sim.add(ScriptedManager::new(upstream, mspec.script())));
        sim.add(
            RealmUnit::new(design, mspec.runtime(&design), upstream, downstream)
                .named(format!("m{i}.realm")),
        );
        upstreams.push(upstream);
        downstreams.push(downstream);
    }

    let mem_port = AxiBundle::new(sim.pool_mut(), cap);
    let mut map = AddressMap::new();
    map.add(WINDOW_BASE, WINDOW_SIZE, SubordinateId::new(0))
        .expect("static map");
    sim.add(Crossbar::new(map, downstreams.clone(), vec![mem_port]).expect("static ports"));
    sim.add(MemoryModel::new(
        MemoryConfig::llc(WINDOW_BASE, WINDOW_SIZE),
        mem_port,
    ));

    let mut monitors = Vec::new();
    let mut scoreboard = Scoreboard::new();
    let mut xbar_sides = Vec::new();
    for (i, (&up, &down)) in upstreams.iter().zip(&downstreams).enumerate() {
        monitors.push(ProtocolMonitor::attach(&mut sim, format!("m{i}"), up));
        monitors.push(ProtocolMonitor::attach(
            &mut sim,
            format!("m{i}.xbar"),
            down,
        ));
        scoreboard = scoreboard.link(format!("m{i}"), format!("m{i}.xbar"));
        xbar_sides.push(format!("m{i}.xbar"));
    }
    monitors.push(ProtocolMonitor::attach(&mut sim, "mem", mem_port));
    let xbar_refs: Vec<&str> = xbar_sides.iter().map(String::as_str).collect();
    scoreboard = scoreboard.boundary(&xbar_refs, &["mem"]);

    // Production parity with the SoC testbench: feed Pass C's beat-batching
    // plan to the sim. Non-arena kernels ignore it; under REALM_KERNEL=arena
    // the enabled units pin their horizons at zero, so fuzz runs exercise
    // the window-gate machinery without a single observable changing.
    let (partition, _) = realm_lint::analyze_deps(&sim.topology(), &spec.model());
    sim.set_batch_plan(partition.batch_allowed);

    Rig {
        sim,
        mgrs,
        monitors,
        scoreboard,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ManagerSpec;

    #[test]
    fn baseline_run_is_clean_and_covered() {
        let out = run_spec(&SystemSpec::baseline(0xA11CE));
        assert!(
            out.clean(),
            "baseline must drain clean:\n{}",
            out.conformance
        );
        assert_eq!(out.managers.len(), 1);
        assert!(out.managers[0].finish.is_some());
        assert_eq!(out.managers[0].err_resps, 0);
        // Coverage harvest sees all three layers: topology edges, grant
        // decisions, and per-port channel activity.
        let keys = out.coverage.signature();
        assert!(keys.iter().any(|k| k.starts_with("edge.")), "{keys:?}");
        assert!(keys.iter().any(|k| k.contains(".m0.")), "{keys:?}");
        assert!(keys.iter().any(|k| k.starts_with("conf.mem.")), "{keys:?}");
    }

    #[test]
    fn more_managers_light_up_more_coverage() {
        let one = run_spec(&SystemSpec::baseline(7));
        let two = run_spec(&SystemSpec {
            managers: vec![ManagerSpec::baseline(7), ManagerSpec::baseline(8)],
        });
        assert!(one.clean() && two.clean());
        assert!(
            two.coverage.len() > one.coverage.len(),
            "a second manager must add coverage keys ({} vs {})",
            two.coverage.len(),
            one.coverage.len()
        );
    }

    #[test]
    fn lint_spec_reports_construction_findings() {
        let report = lint_spec(&SystemSpec::baseline(3));
        assert_eq!(report.error_count(), 0, "baseline rig must lint clean");
        // An infeasible reservation surfaces as the budget warning.
        let mut spec = SystemSpec::baseline(3);
        spec.managers[0].budget = 9000;
        spec.managers[0].period = 1000;
        let report = lint_spec(&spec);
        assert!(report
            .diagnostics()
            .iter()
            .any(|d| d.rule == "budget-infeasible"));
    }
}

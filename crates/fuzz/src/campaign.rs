//! The coverage-guided campaign driver.
//!
//! A [`Campaign`] is a deterministic state machine over batches: it hands
//! out a batch of specs to run ([`Campaign::next_batch`]), the caller
//! executes them — serially via [`run_batch_serial`] or in parallel
//! (the `fuzz_campaign` bench binary reuses `run_sweep`'s work-stealing
//! workers; results come back in input order either way) — and feeds the
//! outcomes back ([`Campaign::absorb`]). Everything that influences the
//! *next* batch (parent selection, mutation draws) happens inside the
//! driver from one seeded RNG, so the campaign's trajectory is a pure
//! function of `(config, seeds)` regardless of worker count.
//!
//! Guidance: a corpus entry's weight grows with the number of coverage
//! keys it *discovered*, so seeds that found new behaviour breed more.
//! With `guided = false` the driver ignores all feedback and mutates the
//! initial seeds uniformly — the control arm the guided-beats-random
//! acceptance test compares against.

use std::collections::BTreeSet;

use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::mutate::{mutate, Mutation};
use crate::oracle::{self, ManagerCheck};
use crate::rig::{run_spec, RunOutcome};
use crate::spec::SystemSpec;

/// Campaign parameters.
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    /// Master seed; the whole trajectory is a pure function of it.
    pub seed: u64,
    /// Specs per batch.
    pub batch: usize,
    /// Coverage feedback on (`false` = the pure-random control arm).
    pub guided: bool,
}

impl CampaignConfig {
    /// A small deterministic configuration for tests.
    pub fn quick(seed: u64) -> Self {
        Self {
            seed,
            batch: 8,
            guided: true,
        }
    }
}

/// One corpus entry: a spec that discovered coverage, with its lineage.
#[derive(Clone, Debug)]
pub struct CorpusEntry {
    /// The spec itself.
    pub spec: SystemSpec,
    /// Corpus index of the parent it was mutated from (`None` for
    /// initial seeds).
    pub parent: Option<usize>,
    /// The operator that produced it (`None` for initial seeds).
    pub op: Option<Mutation>,
    /// Coverage keys first seen by this entry's run.
    pub new_keys: u64,
    /// Signature hash of its run's coverage.
    pub signature: u64,
}

/// An oracle violation with its minimized reproducer.
#[derive(Clone, Debug)]
pub struct OracleViolation {
    /// The offending spec as fuzzed.
    pub spec: SystemSpec,
    /// The failing check (bound vs simulated finish).
    pub check: ManagerCheck,
    /// The spec after [`minimize_spec`] under the same oracle.
    pub minimized: SystemSpec,
}

/// A point on the coverage curve.
#[derive(Clone, Copy, Debug)]
pub struct CoveragePoint {
    /// Runs completed so far.
    pub runs: u64,
    /// Distinct coverage keys seen so far.
    pub keys: u64,
}

/// A spec scheduled but not yet absorbed.
struct Pending {
    spec: SystemSpec,
    parent: Option<usize>,
    op: Option<Mutation>,
}

/// The campaign state machine. See the module docs for the protocol.
pub struct Campaign {
    cfg: CampaignConfig,
    rng: StdRng,
    seeds: Vec<SystemSpec>,
    corpus: Vec<CorpusEntry>,
    seen: BTreeSet<String>,
    pending: Vec<Pending>,
    curve: Vec<CoveragePoint>,
    round: u64,
    runs: u64,
    oracle_checked: u64,
    feasible_runs: u64,
    unfinished_runs: u64,
    conformance_violations: u64,
    violations: Vec<OracleViolation>,
}

impl Campaign {
    /// Creates a campaign whose round 0 runs `seeds` verbatim.
    ///
    /// # Panics
    ///
    /// Panics if `seeds` is empty or any seed fails validation.
    pub fn new(cfg: CampaignConfig, seeds: Vec<SystemSpec>) -> Self {
        assert!(!seeds.is_empty(), "a campaign needs at least one seed");
        for (i, seed) in seeds.iter().enumerate() {
            if let Err(e) = seed.validate() {
                panic!("campaign seed {i} is invalid: {e}");
            }
        }
        let rng = StdRng::seed_from_u64(cfg.seed);
        Self {
            cfg,
            rng,
            seeds,
            corpus: Vec::new(),
            seen: BTreeSet::new(),
            pending: Vec::new(),
            curve: Vec::new(),
            round: 0,
            runs: 0,
            oracle_checked: 0,
            feasible_runs: 0,
            unfinished_runs: 0,
            conformance_violations: 0,
            violations: Vec::new(),
        }
    }

    /// Produces the next batch of specs to execute. Labels are
    /// `r{round}.{index}` for progress displays. Call [`Campaign::absorb`]
    /// with the outcomes (in the same order) before the next batch.
    pub fn next_batch(&mut self) -> Vec<(String, SystemSpec)> {
        assert!(self.pending.is_empty(), "absorb the previous batch first");
        if self.round == 0 {
            self.pending = self
                .seeds
                .clone()
                .into_iter()
                .map(|spec| Pending {
                    spec,
                    parent: None,
                    op: None,
                })
                .collect();
        } else {
            for _ in 0..self.cfg.batch {
                let (spec, parent, op) = if self.cfg.guided && !self.corpus.is_empty() {
                    let parent = self.pick_weighted_parent();
                    let (spec, op) = mutate(&self.corpus[parent].spec, &mut self.rng);
                    (spec, Some(parent), Some(op))
                } else {
                    // Control arm: uniform mutation of the initial seeds,
                    // no feedback of any kind.
                    let i = self.rng.gen_range(0..self.seeds.len());
                    let (spec, op) = mutate(&self.seeds[i], &mut self.rng);
                    (spec, None, Some(op))
                };
                self.pending.push(Pending { spec, parent, op });
            }
        }
        self.pending
            .iter()
            .enumerate()
            .map(|(i, p)| (format!("r{}.{i}", self.round), p.spec.clone()))
            .collect()
    }

    /// Weighted parent pick: `1 + 2 * min(new_keys, 32)` per entry, so
    /// discoverers breed without starving the rest of the corpus.
    fn pick_weighted_parent(&mut self) -> usize {
        let weights: Vec<u64> = self
            .corpus
            .iter()
            .map(|e| 1 + 2 * e.new_keys.min(32))
            .collect();
        let total: u64 = weights.iter().sum();
        let mut ticket = self.rng.gen_range(0..total);
        for (i, w) in weights.iter().enumerate() {
            if ticket < *w {
                return i;
            }
            ticket -= w;
        }
        self.corpus.len() - 1
    }

    /// Feeds back one batch of outcomes, in `next_batch` order: updates
    /// the corpus with coverage discoverers, tallies oracle and
    /// conformance verdicts, minimizes any oracle violation.
    pub fn absorb(&mut self, outcomes: Vec<RunOutcome>) {
        assert_eq!(
            outcomes.len(),
            self.pending.len(),
            "one outcome per scheduled spec"
        );
        for (pending, outcome) in std::mem::take(&mut self.pending).into_iter().zip(outcomes) {
            self.runs += 1;
            if !outcome.finished {
                self.unfinished_runs += 1;
            }
            self.conformance_violations += outcome.conformance.total_violations();

            let new_keys = outcome
                .coverage
                .signature()
                .iter()
                .filter(|k| !self.seen.contains(**k))
                .count() as u64;
            for key in outcome.coverage.signature() {
                self.seen.insert(key.to_string());
            }
            // Corpus admission: discoverers only (guided mode reads it;
            // the control arm never will, but keeping the bookkeeping
            // identical makes the two arms differ *only* in selection).
            if new_keys > 0 {
                self.corpus.push(CorpusEntry {
                    spec: pending.spec.clone(),
                    parent: pending.parent,
                    op: pending.op,
                    new_keys,
                    signature: outcome.coverage.signature_hash(),
                });
            }

            let verdict = oracle::check(&pending.spec, &outcome);
            if verdict.feasible {
                self.feasible_runs += 1;
            }
            self.oracle_checked += verdict.checked.len() as u64;
            for check in verdict.violations() {
                let minimized = minimize_spec(&pending.spec, |candidate| {
                    let out = run_spec(candidate);
                    oracle::check(candidate, &out)
                        .violations()
                        .iter()
                        .any(|c| !c.ok)
                });
                self.violations.push(OracleViolation {
                    spec: pending.spec.clone(),
                    check,
                    minimized,
                });
            }
        }
        self.round += 1;
        self.curve.push(CoveragePoint {
            runs: self.runs,
            keys: self.seen.len() as u64,
        });
    }

    /// Runs `rounds` batches serially (round 0 = the seeds).
    pub fn run_serial(&mut self, rounds: u64) {
        for _ in 0..rounds {
            let batch = self.next_batch();
            self.absorb(run_batch_serial(&batch));
        }
    }

    /// Distinct coverage keys seen so far.
    pub fn coverage_keys(&self) -> u64 {
        self.seen.len() as u64
    }

    /// The sorted coverage-key set itself (for baseline files).
    pub fn seen_keys(&self) -> &BTreeSet<String> {
        &self.seen
    }

    /// The coverage curve, one point per absorbed batch.
    pub fn curve(&self) -> &[CoveragePoint] {
        &self.curve
    }

    /// The corpus of coverage discoverers, in admission order.
    pub fn corpus(&self) -> &[CorpusEntry] {
        &self.corpus
    }

    /// Total runs absorbed.
    pub fn runs(&self) -> u64 {
        self.runs
    }

    /// Managers checked against the bandwidth bound.
    pub fn oracle_checked(&self) -> u64 {
        self.oracle_checked
    }

    /// Runs whose spec lint declared feasible.
    pub fn feasible_runs(&self) -> u64 {
        self.feasible_runs
    }

    /// Runs that hit the cycle cap.
    pub fn unfinished_runs(&self) -> u64 {
        self.unfinished_runs
    }

    /// Protocol-monitor violations across all runs (expected zero).
    pub fn conformance_violations(&self) -> u64 {
        self.conformance_violations
    }

    /// Oracle violations with minimized reproducers (expected empty;
    /// every entry is a real bug).
    pub fn violations(&self) -> &[OracleViolation] {
        &self.violations
    }
}

/// Executes one batch serially — the reference executor; parallel
/// executors must return the same outcomes in the same order.
pub fn run_batch_serial(batch: &[(String, SystemSpec)]) -> Vec<RunOutcome> {
    batch.iter().map(|(_, spec)| run_spec(spec)).collect()
}

/// Spec-level ddmin: greedily drops managers, then walks each manager's
/// magnitudes (ops, burst length, waits) toward minimal values, keeping
/// every step on which `still_fails` holds. The oracle runs a full
/// simulation per probe, so minimization cost scales with spec size —
/// which the structural phase shrinks first, exactly like the
/// script-level `axi_traffic::shrink`.
pub fn minimize_spec<F: FnMut(&SystemSpec) -> bool>(
    spec: &SystemSpec,
    mut still_fails: F,
) -> SystemSpec {
    let mut current = spec.clone();
    // Structural phase: drop managers while the failure persists.
    let mut i = 0;
    while current.managers.len() > 1 && i < current.managers.len() {
        let mut candidate = current.clone();
        candidate.managers.remove(i);
        if still_fails(&candidate) {
            current = candidate;
        } else {
            i += 1;
        }
    }
    // Parameter phase: shrink magnitudes per manager to a fixpoint.
    let mut progress = true;
    while progress {
        progress = false;
        for m in 0..current.managers.len() {
            let original = current.managers[m];
            for candidate_mgr in smaller_variants(&original) {
                let mut candidate = current.clone();
                candidate.managers[m] = candidate_mgr;
                if still_fails(&candidate) {
                    current = candidate;
                    progress = true;
                    break;
                }
            }
        }
    }
    current
}

/// Smaller-magnitude variants of one manager, most aggressive first.
fn smaller_variants(m: &crate::spec::ManagerSpec) -> Vec<crate::spec::ManagerSpec> {
    let mut out = Vec::new();
    for ops in [1, m.ops / 2, m.ops.saturating_sub(1)] {
        if (1..m.ops).contains(&ops) {
            let mut v = *m;
            v.ops = ops;
            out.push(v);
        }
    }
    for beats in [1, m.max_beats / 2, m.max_beats.saturating_sub(1)] {
        if (1..m.max_beats).contains(&beats) {
            let mut v = *m;
            v.max_beats = beats;
            out.push(v);
        }
    }
    if m.max_wait > 0 {
        let mut v = *m;
        v.max_wait = 0;
        out.push(v);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seeds() -> Vec<SystemSpec> {
        vec![
            SystemSpec::baseline(0xA11CE),
            SystemSpec::baseline(0xB0B),
            SystemSpec::baseline(0xC0FFEE),
        ]
    }

    #[test]
    fn campaign_is_deterministic() {
        let mut a = Campaign::new(CampaignConfig::quick(42), seeds());
        let mut b = Campaign::new(CampaignConfig::quick(42), seeds());
        a.run_serial(3);
        b.run_serial(3);
        assert_eq!(a.coverage_keys(), b.coverage_keys());
        assert_eq!(a.runs(), b.runs());
        assert_eq!(a.corpus().len(), b.corpus().len());
        assert_eq!(
            a.seen_keys().iter().collect::<Vec<_>>(),
            b.seen_keys().iter().collect::<Vec<_>>()
        );
    }

    #[test]
    fn corpus_tracks_lineage_and_novelty() {
        let mut c = Campaign::new(CampaignConfig::quick(7), seeds());
        c.run_serial(3);
        assert!(c.runs() >= 3 + 2 * 8, "3 seeds + 2 mutation rounds");
        let corpus = c.corpus();
        assert!(!corpus.is_empty());
        // Round-0 seeds have no lineage; every later discoverer does.
        assert!(corpus[0].parent.is_none() && corpus[0].op.is_none());
        for entry in corpus {
            assert!(entry.new_keys > 0, "corpus admits only discoverers");
            if let Some(parent) = entry.parent {
                assert!(parent < corpus.len());
                assert!(entry.op.is_some());
            }
        }
        // The curve is monotone in both axes.
        for pair in c.curve().windows(2) {
            assert!(pair[1].runs > pair[0].runs);
            assert!(pair[1].keys >= pair[0].keys);
        }
    }

    #[test]
    fn minimize_spec_shrinks_structure_and_parameters() {
        // Failure = "has a regulated manager" — minimization must strip
        // the unregulated one and shrink the survivor's magnitudes.
        let mut spec = SystemSpec {
            managers: vec![
                crate::spec::ManagerSpec::baseline(1),
                crate::spec::ManagerSpec::baseline(2),
            ],
        };
        spec.managers[1].budget = 512;
        spec.managers[1].period = 256;
        let minimal = minimize_spec(&spec, |s| s.managers.iter().any(|m| m.regulated()));
        assert_eq!(minimal.managers.len(), 1, "structural phase drops one");
        let survivor = minimal.managers[0];
        assert!(survivor.regulated());
        assert_eq!(survivor.ops, 1, "ops minimized");
        assert_eq!(survivor.max_beats, 1, "burst length minimized");
        assert_eq!(survivor.max_wait, 0, "waits removed");
    }
}

//! Mutation operators over [`SystemSpec`]s.
//!
//! Every operator is *closed over valid specs*: applied to a spec that
//! passes [`SystemSpec::validate`], the result passes too (clamped into
//! range, never structurally broken) — so the campaign never wastes a
//! simulation on a spec the rig would reject. Operators that need a
//! precondition (dropping a manager needs two) report inapplicable via
//! `None` and the dispatcher redraws.

use rand::{rngs::StdRng, Rng};

use crate::spec::{
    SystemSpec, MAX_BEATS, MAX_MANAGERS, MAX_OPS, MAX_PERIOD, MAX_WAIT, MIN_BUDGET, WINDOW_SIZE,
};

/// The operator alphabet.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Mutation {
    /// Scale one manager's maximum burst length (and op count).
    BurstLen,
    /// Move one manager's traffic window inside the shared window.
    AddrShift,
    /// Scale, introduce, or remove one manager's budget.
    BudgetScale,
    /// Scale one manager's replenish period (introducing regulation if
    /// absent).
    PeriodScale,
    /// Clone a manager with a nudged seed (grows the topology).
    ManagerAdd,
    /// Remove a manager (shrinks the topology).
    ManagerDrop,
    /// Replace one manager's script seed wholesale.
    SeedNudge,
    /// Scale one manager's fragmentation granularity.
    FragScale,
}

impl Mutation {
    /// Every operator, in a fixed order.
    pub const ALL: [Mutation; 8] = [
        Mutation::BurstLen,
        Mutation::AddrShift,
        Mutation::BudgetScale,
        Mutation::PeriodScale,
        Mutation::ManagerAdd,
        Mutation::ManagerDrop,
        Mutation::SeedNudge,
        Mutation::FragScale,
    ];

    /// Stable display name for reports.
    pub const fn label(self) -> &'static str {
        match self {
            Mutation::BurstLen => "burst-len",
            Mutation::AddrShift => "addr-shift",
            Mutation::BudgetScale => "budget-scale",
            Mutation::PeriodScale => "period-scale",
            Mutation::ManagerAdd => "manager-add",
            Mutation::ManagerDrop => "manager-drop",
            Mutation::SeedNudge => "seed-nudge",
            Mutation::FragScale => "frag-scale",
        }
    }
}

/// Applies `op` to `spec`, drawing parameters from `rng`. Returns `None`
/// when the operator is inapplicable (e.g. dropping the only manager);
/// otherwise the result is always a valid spec.
pub fn apply_op(spec: &SystemSpec, op: Mutation, rng: &mut StdRng) -> Option<SystemSpec> {
    let mut next = spec.clone();
    let idx = rng.gen_range(0..next.managers.len());
    match op {
        Mutation::BurstLen => {
            let m = &mut next.managers[idx];
            m.max_beats = scale_u16(m.max_beats, rng, 1, MAX_BEATS);
            // Longer bursts with the same op count also mean more bytes;
            // occasionally rescale ops so the two axes decouple.
            if rng.gen_bool(0.5) {
                m.ops = scale_usize(m.ops, rng, 1, MAX_OPS);
            }
        }
        Mutation::AddrShift => {
            let m = &mut next.managers[idx];
            // Shrink or keep the window, then place it at a random
            // 8-aligned offset that still fits.
            let sizes = [4096, 8 * 1024, 16 * 1024, 32 * 1024, WINDOW_SIZE];
            m.win_size = sizes[rng.gen_range(0..sizes.len())];
            let slots = (WINDOW_SIZE - m.win_size) / 8;
            m.base_off = rng.gen_range(0..=slots) * 8;
        }
        Mutation::BudgetScale => {
            let m = &mut next.managers[idx];
            if m.regulated() {
                if rng.gen_bool(0.2) {
                    // Drop the reservation entirely.
                    m.budget = 0;
                    m.period = 0;
                } else {
                    m.budget = scale_u64(m.budget, rng, MIN_BUDGET, 64 * 1024);
                }
            } else {
                m.budget = MIN_BUDGET << rng.gen_range(0..8u32); // 8 B .. 1 KiB
                m.period = 1 << rng.gen_range(4..=10u32); // 16 .. 1024 cycles
            }
        }
        Mutation::PeriodScale => {
            let m = &mut next.managers[idx];
            if m.regulated() {
                m.period = scale_u64(m.period, rng, 1, MAX_PERIOD);
            } else {
                m.budget = MIN_BUDGET << rng.gen_range(0..8u32);
                m.period = 1 << rng.gen_range(4..=10u32);
            }
        }
        Mutation::ManagerAdd => {
            if next.managers.len() >= MAX_MANAGERS {
                return None;
            }
            let mut clone = next.managers[idx];
            clone.seed = rng.gen();
            next.managers.push(clone);
        }
        Mutation::ManagerDrop => {
            if next.managers.len() <= 1 {
                return None;
            }
            next.managers.remove(idx);
        }
        Mutation::SeedNudge => {
            let m = &mut next.managers[idx];
            m.seed = rng.gen();
            if rng.gen_bool(0.5) {
                m.max_wait = rng.gen_range(0..=MAX_WAIT);
            }
        }
        Mutation::FragScale => {
            let m = &mut next.managers[idx];
            let choices = [1u16, 2, 4, 16, 64, 256];
            m.frag_len = choices[rng.gen_range(0..choices.len())];
        }
    }
    debug_assert_eq!(next.validate(), Ok(()), "operators preserve validity");
    Some(next)
}

/// Applies a randomly drawn applicable operator and reports which one.
pub fn mutate(spec: &SystemSpec, rng: &mut StdRng) -> (SystemSpec, Mutation) {
    loop {
        let op = Mutation::ALL[rng.gen_range(0..Mutation::ALL.len())];
        if let Some(next) = apply_op(spec, op, rng) {
            return (next, op);
        }
    }
}

fn scale_u64(value: u64, rng: &mut StdRng, lo: u64, hi: u64) -> u64 {
    let scaled = match rng.gen_range(0..4u32) {
        0 => value.saturating_mul(2),
        1 => value / 2,
        2 => value.saturating_add(lo),
        _ => value.saturating_sub(lo),
    };
    scaled.clamp(lo, hi)
}

fn scale_u16(value: u16, rng: &mut StdRng, lo: u16, hi: u16) -> u16 {
    scale_u64(u64::from(value), rng, u64::from(lo), u64::from(hi)) as u16
}

fn scale_usize(value: usize, rng: &mut StdRng, lo: usize, hi: usize) -> usize {
    scale_u64(value as u64, rng, lo as u64, hi as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rig::lint_spec;
    use rand::SeedableRng;

    /// Satellite: every operator, property-tested over 64 seeds, yields a
    /// spec that still passes `FuzzSpec` validation (via
    /// `SystemSpec::validate`, whose invariants imply `FuzzSpec::new`'s
    /// asserts) and realm-lint rig construction with zero errors.
    #[test]
    fn operators_preserve_validity_over_64_seeds() {
        for op in Mutation::ALL {
            for seed in 0..64u64 {
                let mut rng = StdRng::seed_from_u64(seed * 31 + op as u64);
                // Start from a spec already a few random steps from
                // baseline so operators see varied preconditions.
                let mut spec = SystemSpec::baseline(seed);
                for _ in 0..(seed % 4) {
                    spec = mutate(&spec, &mut rng).0;
                }
                let Some(next) = apply_op(&spec, op, &mut rng) else {
                    continue; // inapplicable under this precondition
                };
                next.validate()
                    .unwrap_or_else(|e| panic!("{op:?} seed {seed}: invalid spec: {e}"));
                // FuzzSpec construction asserts alignment and window
                // size; building one per manager exercises them.
                for m in &next.managers {
                    let _ = m.fuzz_spec();
                }
                let report = lint_spec(&next);
                assert_eq!(
                    report.error_count(),
                    0,
                    "{op:?} seed {seed}: lint errors:\n{:?}",
                    report.diagnostics()
                );
            }
        }
    }

    #[test]
    fn mutate_is_deterministic_per_seed() {
        let spec = SystemSpec::baseline(9);
        let mut a = StdRng::seed_from_u64(123);
        let mut b = StdRng::seed_from_u64(123);
        let (sa, oa) = mutate(&spec, &mut a);
        let (sb, ob) = mutate(&spec, &mut b);
        assert_eq!(sa, sb);
        assert_eq!(oa, ob);
    }

    #[test]
    fn add_and_drop_move_the_topology_axis() {
        let spec = SystemSpec::baseline(5);
        let mut rng = StdRng::seed_from_u64(1);
        let grown = apply_op(&spec, Mutation::ManagerAdd, &mut rng).expect("room to grow");
        assert_eq!(grown.managers.len(), 2);
        let shrunk = apply_op(&grown, Mutation::ManagerDrop, &mut rng).expect("room to drop");
        assert_eq!(shrunk.managers.len(), 1);
        assert!(
            apply_op(&spec, Mutation::ManagerDrop, &mut rng).is_none(),
            "cannot drop the only manager"
        );
    }
}

//! The differential bandwidth-bound oracle.
//!
//! The paper's reservation guarantee: a feasible configuration grants
//! every regulated manager at least its budget `e` per period `P` once
//! backlogged. For the rig's strictly single-outstanding scripted
//! managers that guarantee converts into an *additive completion-time
//! bound*: every cycle of a manager's run falls into one of a handful of
//! buckets, each individually bounded —
//!
//! - **scripted idle**: `Wait` ops, exactly `waits` cycles;
//! - **budget-gated**: cycles spent isolated with the budget depleted.
//!   The budget replenishes in full on the period grid and a fragment
//!   may start whenever budget remains, so each depletion stretch lasts
//!   under one period and consumed a full budget — at most
//!   `ceil(D / e) + 1` stretches for `D` demanded bytes
//!   ([`realm_lint::drain_bound_cycles`]);
//! - **own transport**: per-op round-trip latency through REALM →
//!   crossbar → memory (the direct path measures 4–8 cycles; the
//!   constant below is a generous multiple), plus per-beat streaming
//!   and per-fragment re-arbitration overhead;
//! - **interference**: cycles another manager holds a shared resource.
//!   Round-robin arbitration at fragment granularity means each foreign
//!   beat/fragment/op blocks this manager O(1) cycles at each of the
//!   finitely many shared channels.
//!
//! Sum the buckets, add fixed slack, and any feasible simulated run that
//! finishes *later* than the sum exposes a real bug — in the simulator,
//! the regulator, or the bound itself. Infeasible configurations
//! (lint's `budget-infeasible` / `budget-oversubscribed`) carry no
//! guarantee and are not checked.

use crate::rig::RunOutcome;
use crate::spec::SystemSpec;

/// Per-op round-trip allowance in cycles (direct path is 4–8; doubled
/// hops plus queueing stay well under this).
const PER_OP: u64 = 48;
/// Per-own-beat streaming allowance.
const PER_BEAT: u64 = 4;
/// Per-own-fragment re-arbitration allowance.
const PER_FRAG: u64 = 8;
/// Interference allowance per foreign beat / fragment / op.
const FOREIGN_BEAT: u64 = 8;
const FOREIGN_FRAG: u64 = 16;
const FOREIGN_OP: u64 = 32;
/// Fixed slack: pipeline fill, period-grid misalignment, rounding.
const SLACK: u64 = 1024;

/// The oracle's verdict on one manager.
#[derive(Clone, Copy, Debug)]
pub struct ManagerCheck {
    /// Manager index in the spec.
    pub manager: usize,
    /// Analytical completion-cycle bound.
    pub bound: u64,
    /// Simulated completion cycle.
    pub finish: u64,
    /// `finish <= bound` — the guarantee held.
    pub ok: bool,
}

/// The oracle's verdict on one run.
#[derive(Clone, Debug, Default)]
pub struct OracleVerdict {
    /// `true` when lint's budget rules declared the spec feasible (the
    /// precondition for any check below).
    pub feasible: bool,
    /// One entry per *checked* manager: regulated managers with at least
    /// one transfer, in a feasible system.
    pub checked: Vec<ManagerCheck>,
}

impl OracleVerdict {
    /// Checks that held.
    pub fn passed(&self) -> usize {
        self.checked.iter().filter(|c| c.ok).count()
    }

    /// Checks that failed — real bugs, every one.
    pub fn violations(&self) -> Vec<ManagerCheck> {
        self.checked.iter().filter(|c| !c.ok).copied().collect()
    }
}

/// The analytical completion-cycle bound for manager `index` of `spec`,
/// or `None` when no bound applies (unregulated, or no transfers).
pub fn completion_bound(spec: &SystemSpec, index: usize) -> Option<u64> {
    let mgr = &spec.managers[index];
    let own = mgr.profile();
    if own.transfers == 0 {
        return None;
    }
    let budget_term = realm_lint::drain_bound_cycles(own.bytes, mgr.budget, mgr.period)?;
    let mut bound = own
        .wait_cycles
        .checked_add(budget_term)?
        .checked_add(own.transfers.checked_mul(PER_OP)?)?
        .checked_add(own.beats.checked_mul(PER_BEAT)?)?
        .checked_add(own.fragments.checked_mul(PER_FRAG)?)?
        .checked_add(SLACK)?;
    for (j, other) in spec.managers.iter().enumerate() {
        if j == index {
            continue;
        }
        let theirs = other.profile();
        bound = bound
            .checked_add(theirs.beats.checked_mul(FOREIGN_BEAT)?)?
            .checked_add(theirs.fragments.checked_mul(FOREIGN_FRAG)?)?
            .checked_add(theirs.transfers.checked_mul(FOREIGN_OP)?)?
            .checked_add(theirs.wait_cycles)?;
    }
    Some(bound)
}

/// Runs the differential check: for every regulated manager of a
/// feasible spec, the simulated completion cycle must not exceed the
/// analytical bound.
pub fn check(spec: &SystemSpec, outcome: &RunOutcome) -> OracleVerdict {
    let feasible = spec.feasible();
    let mut verdict = OracleVerdict {
        feasible,
        checked: Vec::new(),
    };
    if !feasible {
        return verdict;
    }
    for (i, result) in outcome.managers.iter().enumerate() {
        let Some(bound) = completion_bound(spec, i) else {
            continue;
        };
        // A manager that never completed its script charges the run's
        // full final cycle, so a hang surfaces as a visible violation.
        let expected = spec.managers[i].profile().transfers as usize;
        let finish = if result.completions < expected {
            outcome.cycle
        } else {
            result
                .finish
                .expect("transfers > 0 means completions exist")
        };
        verdict.checked.push(ManagerCheck {
            manager: i,
            bound,
            finish,
            ok: finish <= bound,
        });
    }
    verdict
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rig::run_spec;
    use crate::spec::{ManagerSpec, SystemSpec};

    fn regulated(seed: u64, budget: u64, period: u64) -> ManagerSpec {
        let mut m = ManagerSpec::baseline(seed);
        m.budget = budget;
        m.period = period;
        m
    }

    #[test]
    fn bound_holds_on_a_feasible_single_manager() {
        let spec = SystemSpec {
            managers: vec![regulated(0xFEED, 512, 256)],
        };
        assert!(spec.feasible());
        let out = run_spec(&spec);
        assert!(out.clean(), "{}", out.conformance);
        let verdict = check(&spec, &out);
        assert_eq!(verdict.checked.len(), 1);
        assert!(
            verdict.violations().is_empty(),
            "bound must hold: {:?}",
            verdict.checked
        );
    }

    #[test]
    fn infeasible_specs_are_gated_off() {
        let spec = SystemSpec {
            managers: vec![regulated(1, 9000, 1000)],
        };
        assert!(!spec.feasible());
        let out = run_spec(&spec);
        let verdict = check(&spec, &out);
        assert!(!verdict.feasible);
        assert!(verdict.checked.is_empty());
    }

    #[test]
    fn unregulated_managers_carry_no_bound() {
        let spec = SystemSpec::baseline(2);
        assert!(spec.feasible(), "no reservations, trivially feasible");
        let out = run_spec(&spec);
        let verdict = check(&spec, &out);
        assert!(verdict.feasible);
        assert!(verdict.checked.is_empty(), "nothing regulated to check");
    }

    #[test]
    fn bound_holds_under_interference() {
        let spec = SystemSpec {
            managers: vec![regulated(3, 1024, 512), ManagerSpec::baseline(4)],
        };
        assert!(spec.feasible());
        let out = run_spec(&spec);
        assert!(out.clean(), "{}", out.conformance);
        let verdict = check(&spec, &out);
        assert_eq!(verdict.checked.len(), 1, "only the regulated manager");
        assert!(
            verdict.violations().is_empty(),
            "bound must absorb interference: {:?}",
            verdict.checked
        );
    }
}

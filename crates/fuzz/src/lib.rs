//! realm-fuzz: a coverage-guided fuzzing campaign with a differential
//! bandwidth-bound oracle for the AXI-REALM reproduction.
//!
//! The pieces, bottom-up:
//!
//! - [`SystemSpec`] ([`spec`]): the campaign's genome — N scripted
//!   managers with traffic shape, address windows, fragmentation, and
//!   bandwidth reservations; validated, and serializable as plain text
//!   for the `tests/corpus/` reproducer files.
//! - [`rig`]: builds the monitored system a spec describes (manager →
//!   REALM unit → crossbar → memory, protocol monitors on every port, a
//!   conservation scoreboard across the interconnect) and harvests a
//!   [`CoverageMap`](axi_sim::CoverageMap) spanning three layers:
//!   conformance-rule observations, crossbar grant decisions, and
//!   topology edges exercised.
//! - [`oracle`]: the differential check. realm-lint's budget arithmetic
//!   decides *feasibility*; for feasible specs the paper's
//!   min-granted-bandwidth guarantee converts into an additive
//!   completion-time bound per regulated manager, and a simulated run
//!   finishing later than the bound is a real bug.
//! - [`mutate`]: validity-preserving mutation operators over specs
//!   (burst lengths, address windows, budgets, periods, fragmentation,
//!   manager add/drop, seed nudges).
//! - [`Campaign`] ([`campaign`]): the deterministic driver — corpus with
//!   mutation lineage and coverage signatures, novelty-weighted parent
//!   selection, batch protocol for parallel execution, and spec-level
//!   ddmin for violation reproducers.
//!
//! The `fuzz_campaign` bench binary wraps a [`Campaign`] in `run_sweep`
//! workers and writes `results/fuzz_campaign.json`; see EXPERIMENTS.md
//! for running campaigns and reading the coverage curve.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod mutate;
pub mod oracle;
pub mod rig;
pub mod spec;

pub use campaign::{
    minimize_spec, run_batch_serial, Campaign, CampaignConfig, CorpusEntry, CoveragePoint,
    OracleViolation,
};
pub use mutate::{apply_op, mutate, Mutation};
pub use oracle::{check, completion_bound, ManagerCheck, OracleVerdict};
pub use rig::{lint_spec, run_spec, ManagerOutcome, RunOutcome, MAX_RUN_CYCLES};
pub use spec::{ManagerSpec, SystemSpec, TrafficProfile, MAX_MANAGERS, WINDOW_BASE, WINDOW_SIZE};

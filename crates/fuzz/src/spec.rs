//! Fuzzable system specifications: N scripted managers, each behind its
//! own REALM unit, sharing one memory through a crossbar.
//!
//! A [`SystemSpec`] is the campaign's genome — small, validated, and
//! deterministically serializable, so corpus entries check into
//! `tests/corpus/` as plain text and replay bit-identically.

use axi4::Addr;
use axi_realm::{DesignConfig, RegionConfig, RuntimeConfig};
use axi_traffic::{FuzzSpec, Op};

/// Base address of the single shared memory window every rig maps.
pub const WINDOW_BASE: Addr = Addr::new(0x8000_0000);
/// Size of the shared memory window in bytes.
pub const WINDOW_SIZE: u64 = 64 * 1024;
/// Upper bound on managers per system (the campaign's topology axis).
pub const MAX_MANAGERS: usize = 4;
/// Upper bound on generated ops per manager — keeps every run short.
pub const MAX_OPS: usize = 48;
/// Upper bound on burst length in beats.
pub const MAX_BEATS: u16 = 32;
/// Upper bound on a `Wait` op's idle gap in cycles.
pub const MAX_WAIT: u64 = 16;
/// Upper bound on a regulation period in cycles. Together with the
/// minimum budget (one bus beat) this caps a run's drain time, so a
/// fixed simulation-cycle cap suffices for every valid spec.
pub const MAX_PERIOD: u64 = 1024;
/// Minimum budget when regulated: one 64-bit bus beat.
pub const MIN_BUDGET: u64 = 8;

/// Traffic and regulation parameters for one manager.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ManagerSpec {
    /// RNG seed for the generated script.
    pub seed: u64,
    /// Ops in the script (1..=[`MAX_OPS`]).
    pub ops: usize,
    /// Maximum burst length in beats (1..=[`MAX_BEATS`]).
    pub max_beats: u16,
    /// Maximum idle gap in cycles (0 disables waits).
    pub max_wait: u64,
    /// 8-aligned offset of the manager's traffic window within the
    /// shared memory window.
    pub base_off: u64,
    /// Traffic-window size in bytes (>= 4096, fits inside the window).
    pub win_size: u64,
    /// REALM fragmentation granularity in beats (1..=256).
    pub frag_len: u16,
    /// Budget in bytes per period; 0 = unregulated.
    pub budget: u64,
    /// Replenish period in cycles; 0 = unregulated.
    pub period: u64,
}

impl ManagerSpec {
    /// A small unregulated baseline manager.
    pub fn baseline(seed: u64) -> Self {
        Self {
            seed,
            ops: 8,
            max_beats: 8,
            max_wait: 4,
            base_off: 0,
            win_size: WINDOW_SIZE,
            frag_len: 256,
            budget: 0,
            period: 0,
        }
    }

    /// `true` if this manager carries a bandwidth reservation.
    pub fn regulated(&self) -> bool {
        self.budget > 0 && self.period > 0
    }

    /// Checks every invariant the rig and generators rely on.
    pub fn validate(&self) -> Result<(), String> {
        if !(1..=MAX_OPS).contains(&self.ops) {
            return Err(format!("ops {} outside 1..={MAX_OPS}", self.ops));
        }
        if !(1..=MAX_BEATS).contains(&self.max_beats) {
            return Err(format!(
                "max_beats {} outside 1..={MAX_BEATS}",
                self.max_beats
            ));
        }
        if self.max_wait > MAX_WAIT {
            return Err(format!("max_wait {} above {MAX_WAIT}", self.max_wait));
        }
        if !self.base_off.is_multiple_of(8) {
            return Err(format!("base_off {} not 8-aligned", self.base_off));
        }
        if self.win_size < 4096 {
            return Err(format!("win_size {} below one 4 KiB page", self.win_size));
        }
        if self.base_off + self.win_size > WINDOW_SIZE {
            return Err(format!(
                "window [{}, {}) leaves the {WINDOW_SIZE} B shared window",
                self.base_off,
                self.base_off + self.win_size
            ));
        }
        if !(1..=256).contains(&self.frag_len) {
            return Err(format!("frag_len {} outside 1..=256", self.frag_len));
        }
        match (self.budget, self.period) {
            (0, 0) => {}
            (b, p) if b >= MIN_BUDGET && (1..=MAX_PERIOD).contains(&p) => {}
            (b, p) => {
                return Err(format!(
                    "regulation ({b} B / {p} cyc) must be (0, 0) or \
                     (>={MIN_BUDGET}, 1..={MAX_PERIOD})"
                ))
            }
        }
        Ok(())
    }

    /// The script generator this manager drives.
    pub fn fuzz_spec(&self) -> FuzzSpec {
        let mut spec = FuzzSpec::new(Addr::new(WINDOW_BASE.raw() + self.base_off), self.win_size)
            .with_ops(self.ops)
            .with_max_beats(self.max_beats);
        spec.max_wait = self.max_wait;
        spec
    }

    /// The generated script (pure in the spec).
    pub fn script(&self) -> Vec<Op> {
        self.fuzz_spec().generate(self.seed)
    }

    /// The REALM runtime configuration for this manager's unit: region 0
    /// regulates the whole shared window with this spec's reservation.
    pub fn runtime(&self, design: &DesignConfig) -> RuntimeConfig {
        let mut runtime = RuntimeConfig::open(design.num_regions);
        runtime.frag_len = self.frag_len;
        runtime.regions[0] = RegionConfig {
            base: WINDOW_BASE,
            size: WINDOW_SIZE,
            budget_max: self.budget,
            period: self.period,
        };
        runtime
    }

    /// Aggregate shape of the generated traffic, for the analytical bound.
    pub fn profile(&self) -> TrafficProfile {
        let mut profile = TrafficProfile::default();
        for op in self.script() {
            match op {
                Op::Wait(cycles) => profile.wait_cycles += cycles,
                Op::Read(ar) => profile.count_burst(u64::from(ar.len.beats()), self.frag_len),
                Op::Write(txn) => {
                    profile.count_burst(txn.data().len() as u64, self.frag_len);
                }
            }
        }
        profile
    }
}

/// Aggregate shape of one manager's traffic.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TrafficProfile {
    /// Transfer ops (reads + writes).
    pub transfers: u64,
    /// Total data beats across all bursts.
    pub beats: u64,
    /// Total payload bytes (beats x 8 on the 64-bit bus).
    pub bytes: u64,
    /// Total scripted idle cycles.
    pub wait_cycles: u64,
    /// Upper bound on REALM fragments: `ceil(beats / frag_len)` per burst.
    pub fragments: u64,
}

impl TrafficProfile {
    fn count_burst(&mut self, beats: u64, frag_len: u16) {
        self.transfers += 1;
        self.beats += beats;
        self.bytes += beats * 8;
        self.fragments += beats.div_ceil(u64::from(frag_len));
    }
}

/// A complete fuzzable system: 1..=[`MAX_MANAGERS`] managers sharing one
/// memory window through a crossbar, each behind its own REALM unit.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SystemSpec {
    /// Per-manager traffic and regulation parameters.
    pub managers: Vec<ManagerSpec>,
}

impl SystemSpec {
    /// A single-manager baseline system.
    pub fn baseline(seed: u64) -> Self {
        Self {
            managers: vec![ManagerSpec::baseline(seed)],
        }
    }

    /// Checks system-level and per-manager invariants.
    pub fn validate(&self) -> Result<(), String> {
        if !(1..=MAX_MANAGERS).contains(&self.managers.len()) {
            return Err(format!(
                "{} managers outside 1..={MAX_MANAGERS}",
                self.managers.len()
            ));
        }
        for (i, mgr) in self.managers.iter().enumerate() {
            mgr.validate().map_err(|e| format!("manager {i}: {e}"))?;
        }
        Ok(())
    }

    /// The lint system model of the rig this spec builds: one shared
    /// window served at the 64-bit bus rate, one REALM realm per manager,
    /// crossbar ID space sized like the rig's.
    pub fn model(&self) -> realm_lint::SystemModel {
        let design = DesignConfig::cheshire();
        let mut model = realm_lint::SystemModel::new()
            .window("mem", WINDOW_BASE, WINDOW_SIZE)
            .bandwidth("mem", 8)
            .id_space(15, self.managers.len());
        for (i, mgr) in self.managers.iter().enumerate() {
            model = model.realm(format!("m{i}.realm"), design, mgr.runtime(&design));
        }
        model
    }

    /// The feasibility half of the differential oracle: `true` when the
    /// budget-arithmetic rules find nothing — every reservation fits its
    /// window (`e <= P * W`) and the reservations jointly fit the service
    /// rate (`sum e_i / P_i <= W`). Only then does the paper's
    /// min-granted-bandwidth guarantee apply.
    pub fn feasible(&self) -> bool {
        realm_lint::analyze_budgets(&self.model())
            .diagnostics()
            .is_empty()
    }

    /// Deterministic text form, one `manager` line per manager — the
    /// `tests/corpus/` on-disk format.
    pub fn to_text(&self) -> String {
        let mut out = String::from("# realm-fuzz system spec v1\n");
        for m in &self.managers {
            out.push_str(&format!(
                "manager seed={:#x} ops={} max_beats={} max_wait={} base_off={} \
                 win={} frag={} budget={} period={}\n",
                m.seed,
                m.ops,
                m.max_beats,
                m.max_wait,
                m.base_off,
                m.win_size,
                m.frag_len,
                m.budget,
                m.period
            ));
        }
        out
    }

    /// Parses the [`SystemSpec::to_text`] format (and validates).
    pub fn parse(text: &str) -> Result<Self, String> {
        fn field(map: &[(&str, &str)], key: &str) -> Result<u64, String> {
            let raw = map
                .iter()
                .find(|(k, _)| *k == key)
                .map(|(_, v)| *v)
                .ok_or_else(|| format!("missing field `{key}`"))?;
            let parsed = match raw.strip_prefix("0x") {
                Some(hex) => u64::from_str_radix(hex, 16),
                None => raw.parse(),
            };
            parsed.map_err(|e| format!("field `{key}`: {e}"))
        }
        let mut managers = Vec::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut tokens = line.split_whitespace();
            match tokens.next() {
                Some("manager") => {}
                other => return Err(format!("expected `manager`, got {other:?}")),
            }
            let pairs: Vec<(&str, &str)> = tokens
                .map(|t| t.split_once('=').ok_or_else(|| format!("bad token `{t}`")))
                .collect::<Result<_, _>>()?;
            managers.push(ManagerSpec {
                seed: field(&pairs, "seed")?,
                ops: field(&pairs, "ops")? as usize,
                max_beats: field(&pairs, "max_beats")? as u16,
                max_wait: field(&pairs, "max_wait")?,
                base_off: field(&pairs, "base_off")?,
                win_size: field(&pairs, "win")?,
                frag_len: field(&pairs, "frag")? as u16,
                budget: field(&pairs, "budget")?,
                period: field(&pairs, "period")?,
            });
        }
        let spec = Self { managers };
        spec.validate()?;
        Ok(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_validates_and_roundtrips() {
        let spec = SystemSpec::baseline(0xA11CE);
        spec.validate().expect("baseline is valid");
        let text = spec.to_text();
        let back = SystemSpec::parse(&text).expect("roundtrip parses");
        assert_eq!(spec, back);
    }

    #[test]
    fn validate_rejects_bad_specs() {
        let mut bad = SystemSpec::baseline(1);
        bad.managers[0].base_off = 3;
        assert!(bad.validate().is_err(), "unaligned base_off");

        let mut bad = SystemSpec::baseline(1);
        bad.managers[0].budget = 4;
        bad.managers[0].period = 100;
        assert!(bad.validate().is_err(), "budget below one beat");

        let mut bad = SystemSpec::baseline(1);
        bad.managers[0].win_size = WINDOW_SIZE + 4096;
        assert!(bad.validate().is_err(), "window overflows shared window");

        let mut bad = SystemSpec::baseline(1);
        bad.managers = vec![];
        assert!(bad.validate().is_err(), "no managers");
    }

    #[test]
    fn feasibility_matches_the_paper_arithmetic() {
        // 8 B/cycle window: e = P * W exactly is feasible...
        let mut spec = SystemSpec::baseline(2);
        spec.managers[0].budget = 8 * 1000;
        spec.managers[0].period = 1000;
        assert!(spec.feasible(), "budget exactly at capacity is feasible");
        // ...one byte beyond is not (checked in exact arithmetic).
        spec.managers[0].budget = 8 * 1000 + 8;
        assert!(!spec.feasible(), "budget above capacity is infeasible");
        // Two managers jointly oversubscribing trip the aggregate rule
        // even though each reservation fits on its own.
        let mut spec = SystemSpec {
            managers: vec![ManagerSpec::baseline(3), ManagerSpec::baseline(4)],
        };
        for m in &mut spec.managers {
            m.budget = 5 * 1000;
            m.period = 1000;
        }
        assert!(!spec.feasible(), "5+5 B/cycle oversubscribes 8 B/cycle");
    }

    #[test]
    fn profile_counts_script_shape() {
        let spec = ManagerSpec::baseline(0xBEEF);
        let profile = spec.profile();
        let script = spec.script();
        assert_eq!(
            profile.transfers as usize,
            script
                .iter()
                .filter(|op| !matches!(op, Op::Wait(_)))
                .count()
        );
        assert_eq!(profile.bytes, profile.beats * 8);
        assert!(profile.fragments >= profile.transfers);
    }
}

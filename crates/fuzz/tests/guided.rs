//! Acceptance: on a fixed seed and run budget, coverage-guided mutation
//! reaches strictly more coverage signatures than the pure-random control
//! arm, and neither arm trips the differential oracle or the monitors.

use realm_fuzz::{Campaign, CampaignConfig, SystemSpec};

const SEED: u64 = 0x5EED;
const ROUNDS: u64 = 5;
const BATCH: usize = 8;

fn seeds() -> Vec<SystemSpec> {
    vec![
        SystemSpec::baseline(0xA11CE),
        SystemSpec::baseline(0xB0B),
        SystemSpec::baseline(0xC0FFEE),
    ]
}

fn run(guided: bool) -> Campaign {
    let cfg = CampaignConfig {
        seed: SEED,
        batch: BATCH,
        guided,
    };
    let mut campaign = Campaign::new(cfg, seeds());
    campaign.run_serial(ROUNDS);
    campaign
}

#[test]
fn guided_beats_pure_random_on_equal_budget() {
    let guided = run(true);
    let random = run(false);
    assert_eq!(guided.runs(), random.runs(), "equal run budgets");
    assert!(
        guided.coverage_keys() > random.coverage_keys(),
        "guided mutation must discover strictly more coverage signatures: \
         guided {} vs random {} over {} runs",
        guided.coverage_keys(),
        random.coverage_keys(),
        guided.runs(),
    );
    // Both arms must stay violation-free: the campaign is a guarantee
    // checker, and a fuzzed violation is a real bug wherever it appears.
    for (name, campaign) in [("guided", &guided), ("random", &random)] {
        assert_eq!(
            campaign.conformance_violations(),
            0,
            "{name}: monitors fired"
        );
        assert_eq!(campaign.unfinished_runs(), 0, "{name}: a run hit the cap");
        assert!(
            campaign.violations().is_empty(),
            "{name}: oracle violations: {:#?}",
            campaign.violations()
        );
        assert!(
            campaign.feasible_runs() > 0,
            "{name}: baselines are feasible"
        );
    }
}

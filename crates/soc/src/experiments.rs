//! Preset experiment configurations reproducing the paper's evaluation
//! scenarios (§IV-A).

use axi4::Addr;
use axi_realm::{RegionConfig, RuntimeConfig};

use crate::testbench::{
    Regulation, RunResult, Testbench, TestbenchConfig, DMA_LLC_BUFFER, DMA_LLC_BUFFER_SIZE,
    LLC_BASE, LLC_SIZE, SPM_BASE, SPM_SIZE,
};

/// Default number of core accesses per experiment run: large enough for
/// stable averages, small enough for quick iteration.
pub const DEFAULT_ACCESSES: u64 = 2_000;

/// Safety bound on simulated cycles per run.
pub const MAX_CYCLES: u64 = 50_000_000;

fn run(config: TestbenchConfig) -> RunResult {
    let mut tb = Testbench::new(config);
    assert!(
        tb.run_until_core_done(MAX_CYCLES),
        "experiment exceeded {MAX_CYCLES} cycles"
    );
    // Every published number must come from protocol-legal traffic.
    tb.assert_conformance();
    tb.result()
}

/// A runtime configuration regulating the LLC window with the given budget
/// and period (budget 0 = monitor only).
pub fn llc_regulation(frag_len: u16, budget: u64, period: u64) -> RuntimeConfig {
    let mut rt = RuntimeConfig::open(2);
    rt.frag_len = frag_len;
    rt.regions[0] = RegionConfig {
        base: LLC_BASE,
        size: LLC_SIZE,
        budget_max: budget,
        period,
    };
    // Second region: the scratchpad, monitored but unregulated (the paper
    // uses only the LLC region in its evaluation).
    rt.regions[1] = RegionConfig {
        base: SPM_BASE,
        size: SPM_SIZE,
        budget_max: 0,
        period: 0,
    };
    rt
}

/// *Single-source* baseline (grey dashed line of Fig. 6): the core alone.
///
/// As in the paper's SoC, the REALM unit is *present* in the baseline —
/// it is synthesized into Cheshire and CVA6's accesses traverse it — but
/// exercises no regulation (no budgets, pass-through granularity). The
/// paper's eight-cycle single-source bound includes the unit's latency.
pub fn single_source(accesses: u64) -> RunResult {
    let mut cfg = TestbenchConfig::single_source(accesses);
    cfg.core_regulation = Regulation::Realm(llc_regulation(256, 0, 0));
    run(cfg)
}

/// *Without reservation*: worst-case DMA contention with the REALM units
/// present but not regulating (equivalent to fragmentation 256, the
/// leftmost point of Fig. 6a).
pub fn without_reservation(accesses: u64) -> RunResult {
    let mut cfg = TestbenchConfig::single_source(accesses);
    cfg.dma = Some(TestbenchConfig::worst_case_dma());
    cfg.core_regulation = Regulation::Realm(llc_regulation(256, 0, 0));
    cfg.dma_regulation = Regulation::Realm(llc_regulation(256, 0, 0));
    run(cfg)
}

/// Fig. 6a point: REALM units on both managers at the given fragmentation
/// length, equal (unbounded) budgets and a very large period, isolating the
/// effect of fragmentation on fairness.
pub fn with_fragmentation(frag_len: u16, accesses: u64) -> RunResult {
    let mut cfg = TestbenchConfig::single_source(accesses);
    cfg.dma = Some(TestbenchConfig::worst_case_dma());
    cfg.core_regulation = Regulation::Realm(llc_regulation(frag_len, 0, 0));
    cfg.dma_regulation = Regulation::Realm(llc_regulation(frag_len, 0, 0));
    run(cfg)
}

/// Fig. 6b point: fragmentation fixed at one beat, period 1000 cycles, core
/// budget 8 KiB, DMA budget as given (the paper sweeps 8.0 → 1.6 KiB).
pub fn with_budget(dma_budget: u64, accesses: u64) -> RunResult {
    const PERIOD: u64 = 1000;
    const CORE_BUDGET: u64 = 8 * 1024;
    let mut cfg = TestbenchConfig::single_source(accesses);
    cfg.dma = Some(TestbenchConfig::worst_case_dma());
    cfg.core_regulation = Regulation::Realm(llc_regulation(1, CORE_BUDGET, PERIOD));
    cfg.dma_regulation = Regulation::Realm(llc_regulation(1, dma_budget, PERIOD));
    run(cfg)
}

/// The Fig. 6b x-axis: DMA budgets from 8 KiB (1/1) down to 1.6 KiB (1/5)
/// in equal steps.
pub fn budget_sweep_points() -> Vec<(String, u64)> {
    (1..=5).map(|d| (format!("1/{d}"), 8 * 1024 / d)).collect()
}

/// The Fig. 6a x-axis: fragmentation lengths from full bursts down to a
/// single beat.
pub fn fragmentation_sweep_points() -> Vec<u16> {
    vec![256, 128, 64, 32, 16, 8, 4, 2, 1]
}

/// Returns the LLC-side double-buffer region (useful for custom DMA
/// configurations in examples).
pub fn dma_llc_region() -> (Addr, u64) {
    (DMA_LLC_BUFFER, DMA_LLC_BUFFER_SIZE)
}

#[cfg(test)]
mod tests {
    use super::*;

    const N: u64 = 300;

    #[test]
    fn single_source_latency_envelope() {
        let r = single_source(N);
        assert!(r.core_latency.max().unwrap() <= 10, "{:?}", r.core_latency);
    }

    /// The paper's qualitative chain: uncontrolled contention collapses
    /// performance; fragmentation at one beat restores most of it.
    #[test]
    fn contention_collapse_and_recovery() {
        let base = single_source(N);
        let worst = without_reservation(N);
        let frag1 = with_fragmentation(1, N);

        let worst_pct = worst.performance_pct(&base);
        let frag1_pct = frag1.performance_pct(&base);
        assert!(worst_pct < 5.0, "uncontrolled perf {worst_pct:.1}%");
        assert!(
            frag1_pct > 40.0,
            "frag=1 must recover most performance, got {frag1_pct:.1}%"
        );
        assert!(worst.core_latency.max().unwrap() >= 256);
        assert!(
            frag1.core_latency.max().unwrap() < 40,
            "frag=1 worst-case latency {:?}",
            frag1.core_latency.max()
        );
    }

    #[test]
    fn fragmentation_is_monotone_in_the_large() {
        let base = single_source(N);
        let coarse = with_fragmentation(256, N).performance_pct(&base);
        let mid = with_fragmentation(16, N).performance_pct(&base);
        let fine = with_fragmentation(1, N).performance_pct(&base);
        assert!(fine > mid, "fine {fine:.1}% vs mid {mid:.1}%");
        assert!(mid > coarse, "mid {mid:.1}% vs coarse {coarse:.1}%");
    }

    #[test]
    fn budget_skew_approaches_ideal() {
        let base = single_source(N);
        let equal = with_budget(8 * 1024, N).performance_pct(&base);
        let skewed = with_budget(8 * 1024 / 5, N).performance_pct(&base);
        assert!(
            skewed > equal,
            "reducing the DMA budget must help the core: {skewed:.1}% vs {equal:.1}%"
        );
        assert!(
            skewed > 80.0,
            "1/5 budget should be near-ideal: {skewed:.1}%"
        );
    }

    #[test]
    fn sweep_point_lists() {
        assert_eq!(fragmentation_sweep_points().len(), 9);
        let budgets = budget_sweep_points();
        assert_eq!(budgets.len(), 5);
        assert_eq!(budgets[0].1, 8192);
        assert_eq!(budgets[4].1, 8192 / 5);
    }

    /// Fig. 6b shape, read off the telemetry latency histograms: the
    /// core's AR→R-last median sits inside the paper's single-source
    /// envelope, blows up under uncontrolled contention, and returns
    /// near the ideal once the DMA budget is skewed to 1/5.
    #[test]
    fn latency_histogram_medians_match_fig6b_shape() {
        let median = |r: &RunResult| {
            r.telemetry
                .get_histogram("realm.core.read_latency")
                .expect("core unit records a read-latency histogram")
                .median_bound()
                .expect("core reads completed")
        };
        let base = median(&single_source(N));
        let worst = median(&without_reservation(N));
        let skewed = median(&with_budget(8 * 1024 / 5, N));
        assert!(
            base <= 8,
            "single-source median {base} beyond hot-LLC bound"
        );
        assert!(
            worst >= 4 * base,
            "contention must blow up the median: {worst} vs base {base}"
        );
        assert!(
            skewed <= 2 * base,
            "skewed-budget median {skewed} should be near the ideal {base}"
        );
    }

    /// Arming trace export must not perturb the simulation: `REALM_TRACE`
    /// only turns on event recording, so every published number and every
    /// component-side telemetry counter/gauge/histogram stays
    /// bit-identical — only the event lists grow. (The CI transparency
    /// job checks the same property end-to-end across all binaries.)
    #[test]
    fn trace_arming_is_bit_identical() {
        std::env::set_var("REALM_TRACE", "1");
        let traced = with_budget(8 * 1024 / 5, N);
        std::env::remove_var("REALM_TRACE");
        let plain = with_budget(8 * 1024 / 5, N);
        assert_eq!(traced.cycles, plain.cycles);
        assert_eq!(traced.core_accesses, plain.core_accesses);
        assert_eq!(traced.dma_bytes, plain.dma_bytes);
        assert_eq!(traced.llc_beats, plain.llc_beats);
        assert_eq!(traced.telemetry.counters(), plain.telemetry.counters());
        assert_eq!(traced.telemetry.gauges(), plain.telemetry.gauges());
        assert_eq!(traced.telemetry.histograms(), plain.telemetry.histograms());
        // Only the armed run records transaction spans.
        assert!(
            traced.telemetry.spans().len() > plain.telemetry.spans().len(),
            "traced {} vs plain {}",
            traced.telemetry.spans().len(),
            plain.telemetry.spans().len()
        );
    }
}

//! The Cheshire-like testbench: Fig. 5 of the paper as a simulated system.

use axi4::{Addr, SubordinateId, TxnId};
use axi_conformance::{ConformanceReport, ProtocolMonitor, Scoreboard};
use axi_mem::{MemoryConfig, MemoryModel, MmioSubordinate};
use axi_realm::{BusGuard, DesignConfig, RealmRegFile, RealmUnit, RuntimeConfig};
use axi_sim::{AxiBundle, BundleCapacity, ComponentId, KernelStats, Sim, TelemetrySink};
use axi_traffic::{
    CoreModel, CoreWorkload, DmaConfig, DmaModel, LatencyHistogram, LatencyStats, Op,
    ScriptedManager, StallPlan, StallingManager,
};
use axi_xbar::{AddressMap, Crossbar};

/// Base address of the LLC window (DRAM through the last-level cache).
pub const LLC_BASE: Addr = Addr::new(0x8000_0000);
/// Size of the LLC window.
pub const LLC_SIZE: u64 = 16 << 20;
/// Base address of the DSA scratchpad.
pub const SPM_BASE: Addr = Addr::new(0x1000_0000);
/// Size of the scratchpad.
pub const SPM_SIZE: u64 = 1 << 20;
/// Base address of the AXI-REALM configuration register file.
pub const CFG_BASE: Addr = Addr::new(0x0200_0000);
/// Size of the configuration window.
pub const CFG_SIZE: u64 = 1 << 16;

/// Offset inside the LLC window where the core's working set lives.
pub const CORE_BUFFER: Addr = Addr::new(0x8000_0000);
/// Offset inside the LLC window the DMA double-buffers against.
pub const DMA_LLC_BUFFER: Addr = Addr::new(0x8080_0000);
/// Size of the DMA's LLC-side buffer.
pub const DMA_LLC_BUFFER_SIZE: u64 = 256 << 10;

/// Per-manager regulation choice.
#[derive(Clone, Debug)]
pub enum Regulation {
    /// No REALM unit in front of this manager (direct crossbar port).
    None,
    /// A REALM unit with this runtime configuration.
    Realm(RuntimeConfig),
}

/// Everything needed to build a [`Testbench`].
#[derive(Clone, Debug)]
pub struct TestbenchConfig {
    /// The latency-sensitive core's workload.
    pub core: CoreWorkload,
    /// The interfering DMA engine, if present.
    pub dma: Option<DmaConfig>,
    /// A malicious stalling writer, if present (DoS experiments).
    pub staller: Option<StallPlan>,
    /// Regulation in front of the core.
    pub core_regulation: Regulation,
    /// Regulation in front of the DMA.
    pub dma_regulation: Regulation,
    /// Regulation in front of the staller.
    pub staller_regulation: Regulation,
    /// Design parameters shared by all instantiated REALM units.
    pub realm_design: DesignConfig,
    /// Transactions for an unregulated *configuration master* — the manager
    /// that claims the bus guard and programs the REALM units over AXI, as
    /// CVA6 does early in Cheshire's boot flow. Empty = no such manager.
    pub config_script: Vec<Op>,
    /// Attach passive AXI4 protocol monitors to every manager and
    /// subordinate port (plus the downstream side of each REALM unit).
    /// Defaults to on; set `REALM_MONITORS=0` in the environment to default
    /// off, or override this field directly.
    pub monitors: bool,
}

/// Reads the `REALM_MONITORS` environment variable: monitors default on
/// unless it is set to `0`, `off`, or `false`.
fn monitors_enabled_by_env() -> bool {
    !matches!(
        std::env::var("REALM_MONITORS").as_deref(),
        Ok("0") | Ok("off") | Ok("false")
    )
}

impl TestbenchConfig {
    /// A single-source baseline: only the core, unregulated.
    pub fn single_source(accesses: u64) -> Self {
        Self {
            core: CoreWorkload::susan(CORE_BUFFER, accesses),
            dma: None,
            staller: None,
            core_regulation: Regulation::None,
            dma_regulation: Regulation::None,
            staller_regulation: Regulation::None,
            realm_design: DesignConfig::cheshire(),
            config_script: Vec::new(),
            monitors: monitors_enabled_by_env(),
        }
    }

    /// The paper's worst-case DMA interference pattern.
    pub fn worst_case_dma() -> DmaConfig {
        let mut dma =
            DmaConfig::worst_case((DMA_LLC_BUFFER, DMA_LLC_BUFFER_SIZE), (SPM_BASE, SPM_SIZE));
        dma.id = TxnId::new(1);
        dma
    }
}

/// The assembled system: core + DMA (+ staller) → optional REALM units →
/// crossbar → LLC / SPM / configuration register file.
pub struct Testbench {
    sim: Sim,
    core: ComponentId,
    dma: Option<ComponentId>,
    staller: Option<ComponentId>,
    core_realm: Option<ComponentId>,
    dma_realm: Option<ComponentId>,
    staller_realm: Option<ComponentId>,
    config_master: Option<ComponentId>,
    xbar: ComponentId,
    llc: ComponentId,
    spm: ComponentId,
    monitors: Vec<ComponentId>,
    scoreboard: Scoreboard,
}

/// Summary of one run, the raw material for every figure.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Cycle the core finished its workload.
    pub cycles: u64,
    /// The core's per-access latency aggregate.
    pub core_latency: LatencyStats,
    /// The core's per-access latency histogram.
    pub core_histogram: LatencyHistogram,
    /// Core accesses completed.
    pub core_accesses: u64,
    /// Bytes the DMA moved (read + written).
    pub dma_bytes: u64,
    /// Beats served by the LLC port.
    pub llc_beats: u64,
    /// How the kernel advanced time: executed ticks vs. fast-forwarded
    /// cycles (deterministic — identical across serial and parallel runs).
    pub kernel: KernelStats,
    /// The unified telemetry registry harvested from every component (see
    /// [`Sim::telemetry`]). Component-side counters and histograms in here
    /// are kernel-invariant; the `kernel.*` counters and the event lists
    /// are not, and must stay out of `results/*.json` (trace dumps only).
    pub telemetry: TelemetrySink,
}

impl RunResult {
    /// Core performance relative to a baseline run: baseline time over this
    /// run's time, as a percentage (the y-axis of Fig. 6).
    pub fn performance_pct(&self, baseline: &RunResult) -> f64 {
        baseline.cycles as f64 / self.cycles as f64 * 100.0
    }
}

/// One window of a [`Timeline`]: per-window deltas of the key metrics.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TimelineSample {
    /// Cycle at the end of the window.
    pub cycle: u64,
    /// Core accesses completed within the window.
    pub core_accesses: u64,
    /// Mean core access latency within the window, if any completed.
    pub core_mean_latency: Option<f64>,
    /// Bytes the DMA moved within the window (both directions, all
    /// regions).
    pub dma_bytes: u64,
    /// Bytes charged to the DMA's regulated region 0 within the window —
    /// the quantity the budget bounds.
    pub dma_regulated_bytes: u64,
    /// Cycles the DMA's REALM unit spent isolated within the window.
    pub dma_isolated_cycles: u64,
}

/// A sampled run: fixed-width windows of metric deltas, the raw material
/// for time-resolved views of regulation (budget duty cycles, period
/// boundaries, isolation windows).
#[derive(Clone, Debug)]
pub struct Timeline {
    /// Window width in cycles.
    pub window: u64,
    /// Samples in time order.
    pub samples: Vec<TimelineSample>,
}

impl Testbench {
    /// Builds the system.
    pub fn new(config: TestbenchConfig) -> Self {
        let mut sim = Sim::new();
        let cap = BundleCapacity::uniform(4);

        // Manager-side ports (into the crossbar) and the components that
        // feed them, with optional REALM units in between.
        let mut xbar_mgr_ports = Vec::new();
        let mut realm_ids: Vec<Option<ComponentId>> = Vec::new();
        // (name, upstream bundle, downstream bundle if a REALM sits between)
        // for the protocol monitors attached at the end of construction.
        let mut mgr_info: Vec<(&'static str, AxiBundle, Option<AxiBundle>)> = Vec::new();

        let attach = |sim: &mut Sim,
                      regulation: &Regulation,
                      mgr: &str|
         -> (AxiBundle, Option<ComponentId>) {
            let upstream = AxiBundle::new(sim.pool_mut(), cap);
            match regulation {
                Regulation::None => (upstream, None),
                Regulation::Realm(rt) => {
                    let downstream = AxiBundle::new(sim.pool_mut(), cap);
                    let unit =
                        RealmUnit::new(config.realm_design, rt.clone(), upstream, downstream)
                            .named(format!("realm.{mgr}"));
                    let id = sim.add(unit);
                    (upstream, Some(id))
                }
            }
        };

        // Core (manager 0).
        let (core_up, core_realm) = attach(&mut sim, &config.core_regulation, "core");
        let core = sim.add(CoreModel::new(config.core, core_up));
        realm_ids.push(core_realm);
        let core_down = core_realm.map(|id| {
            sim.component::<RealmUnit>(id)
                .expect("just added")
                .downstream()
        });
        xbar_mgr_ports.push(core_down.unwrap_or(core_up));
        mgr_info.push(("core", core_up, core_down));

        // DMA (manager 1).
        let (dma, dma_realm) = match &config.dma {
            Some(dma_cfg) => {
                let (dma_up, dma_realm) = attach(&mut sim, &config.dma_regulation, "dma");
                let id = sim.add(DmaModel::new(*dma_cfg, dma_up));
                let down = dma_realm.map(|r| {
                    sim.component::<RealmUnit>(r)
                        .expect("just added")
                        .downstream()
                });
                xbar_mgr_ports.push(down.unwrap_or(dma_up));
                mgr_info.push(("dma", dma_up, down));
                (Some(id), dma_realm)
            }
            None => (None, None),
        };
        realm_ids.push(dma_realm);

        // Staller (manager 2).
        let (staller, staller_realm) = match &config.staller {
            Some(plan) => {
                let (up, realm) = attach(&mut sim, &config.staller_regulation, "staller");
                let id = sim.add(StallingManager::new(*plan, up));
                let down = realm.map(|r| {
                    sim.component::<RealmUnit>(r)
                        .expect("just added")
                        .downstream()
                });
                xbar_mgr_ports.push(down.unwrap_or(up));
                mgr_info.push(("staller", up, down));
                (Some(id), realm)
            }
            None => (None, None),
        };
        realm_ids.push(staller_realm);

        // Configuration master (last manager, unregulated).
        let config_master = if config.config_script.is_empty() {
            None
        } else {
            let port = AxiBundle::new(sim.pool_mut(), cap);
            let id = sim.add(ScriptedManager::new(port, config.config_script.clone()));
            xbar_mgr_ports.push(port);
            mgr_info.push(("cfgmgr", port, None));
            Some(id)
        };

        // Subordinates: LLC (0), SPM (1), config register file (2).
        let llc_port = AxiBundle::new(sim.pool_mut(), cap);
        let spm_port = AxiBundle::new(sim.pool_mut(), cap);
        let cfg_port = AxiBundle::new(sim.pool_mut(), cap);
        let mut map = AddressMap::new();
        map.add(LLC_BASE, LLC_SIZE, SubordinateId::new(0))
            .expect("non-overlapping static map");
        map.add(SPM_BASE, SPM_SIZE, SubordinateId::new(1))
            .expect("non-overlapping static map");
        map.add(CFG_BASE, CFG_SIZE, SubordinateId::new(2))
            .expect("non-overlapping static map");

        let xbar = sim.add(
            Crossbar::new(map, xbar_mgr_ports, vec![llc_port, spm_port, cfg_port])
                .expect("static ports match the map"),
        );
        let llc = sim.add(MemoryModel::new(
            MemoryConfig::llc(LLC_BASE, LLC_SIZE),
            llc_port,
        ));
        let spm = sim.add(MemoryModel::new(
            MemoryConfig::spm(SPM_BASE, SPM_SIZE),
            spm_port,
        ));

        // Configuration register file behind the bus guard, serving every
        // instantiated REALM unit in manager order.
        let unit_regs: Vec<_> = realm_ids
            .iter()
            .flatten()
            .map(|&id| sim.component::<RealmUnit>(id).expect("realm added").regs())
            .collect();
        let guard = BusGuard::new(RealmRegFile::new(unit_regs));
        let mmio = sim.add(MmioSubordinate::new(guard, CFG_BASE, CFG_SIZE, cfg_port));
        // The register file and the REALM units share state outside the wire
        // graph (`Rc<RefCell<RegState>>`), which the event kernel cannot see.
        // Declaring the coupling flushes each unit before an MMIO tick (stats
        // reads observe reconciled counters) and wakes it afterwards (config
        // writes take effect immediately, even if the unit was asleep).
        for &id in realm_ids.iter().flatten() {
            sim.couple(mmio, id);
        }

        // Protocol monitors, attached last so functional component indices
        // are identical with monitors on or off. Each manager's upstream
        // port gets one; REALM'd managers also get one on the downstream
        // (crossbar-facing) port, linked for beat conservation; all three
        // subordinate ports close the crossbar boundary.
        let mut monitors = Vec::new();
        let mut scoreboard = Scoreboard::new();
        if config.monitors {
            let mut boundary_mgrs: Vec<String> = Vec::new();
            for (name, up, down) in &mgr_info {
                monitors.push(ProtocolMonitor::attach(&mut sim, *name, *up));
                match down {
                    Some(down) => {
                        let down_name = format!("{name}.xbar");
                        monitors.push(ProtocolMonitor::attach(&mut sim, down_name.clone(), *down));
                        scoreboard = scoreboard.link(*name, down_name.clone());
                        boundary_mgrs.push(down_name);
                    }
                    None => boundary_mgrs.push((*name).to_owned()),
                }
            }
            for (name, port) in [("llc", llc_port), ("spm", spm_port), ("cfgreg", cfg_port)] {
                monitors.push(ProtocolMonitor::attach(&mut sim, name, port));
            }
            let mgr_refs: Vec<&str> = boundary_mgrs.iter().map(String::as_str).collect();
            scoreboard = scoreboard.boundary(&mgr_refs, &["llc", "spm", "cfgreg"]);
        }

        let mut tb = Self {
            sim,
            core,
            dma,
            staller,
            core_realm: realm_ids[0],
            dma_realm: realm_ids[1],
            staller_realm: realm_ids[2],
            config_master,
            xbar,
            llc,
            spm,
            monitors,
            scoreboard,
        };

        // Elaboration-time analysis before the first cycle, mirroring the
        // monitor auto-attach: on by default, `REALM_LINT=0` opts out.
        // Feasibility findings are warnings (the paper's own Fig. 6b
        // configuration over-subscribes the LLC); only structural errors
        // abort construction.
        if realm_lint::enabled_by_env() {
            realm_lint::apply("testbench", &tb.lint_report());
        }

        // Beat-batching plan from the static dependence analysis (Pass C):
        // which components sit on uncontended point-to-point paths. Fed
        // unconditionally — it is structural permission only, consulted by
        // the arena kernel before opening a batch window and ignored by
        // every other kernel, so results stay bit-identical either way.
        let (partition, _) = realm_lint::analyze_deps(&tb.sim.topology(), &tb.lint_model());
        tb.sim.set_batch_plan(partition.batch_allowed);
        tb
    }

    /// The semantic declarations the elaboration-time analyzer checks this
    /// system against: the static address map, each subordinate's peak
    /// service rate (one 8-byte beat per cycle), every instantiated REALM
    /// unit's configuration, the crossbar ID space, and the zero-latency
    /// register coupling from the MMIO frontend into each unit.
    fn lint_model(&self) -> realm_lint::SystemModel {
        /// Peak subordinate service rate: one 64-bit beat per cycle.
        const BYTES_PER_CYCLE: u64 = 8;
        /// Upstream IDs are 4 bits wide in the Cheshire configuration.
        const MAX_TXN_ID: u32 = 15;
        let n_managers = 1
            + usize::from(self.dma.is_some())
            + usize::from(self.staller.is_some())
            + usize::from(self.config_master.is_some());
        let mut model = realm_lint::SystemModel::new()
            .window("llc", LLC_BASE, LLC_SIZE)
            .window("spm", SPM_BASE, SPM_SIZE)
            .window("cfgreg", CFG_BASE, CFG_SIZE)
            .bandwidth("llc", BYTES_PER_CYCLE)
            .bandwidth("spm", BYTES_PER_CYCLE)
            .bandwidth("cfgreg", BYTES_PER_CYCLE)
            .id_space(MAX_TXN_ID, n_managers);
        for (name, id) in [
            ("realm.core", self.core_realm),
            ("realm.dma", self.dma_realm),
            ("realm.staller", self.staller_realm),
        ] {
            let Some(id) = id else { continue };
            let unit = self.sim.component::<RealmUnit>(id).expect("realm present");
            model = model
                .realm(name, unit.design(), unit.active_config().clone())
                // Register writes land in the unit through a shared cell
                // the same cycle the MMIO frontend applies them — the one
                // genuine zero-latency coupling in the system (one-way,
                // so no cycle).
                .comb_edge("mmio", name);
        }
        model
    }

    /// Runs the elaboration-time analyzer (Pass A of `realm-lint`) over
    /// this system and returns every finding.
    pub fn lint_report(&self) -> realm_lint::Report {
        realm_lint::analyze(&self.sim.topology(), &self.lint_model())
    }

    /// Runs until the core's workload completes (or `max_cycles` elapse);
    /// returns `true` on completion.
    pub fn run_until_core_done(&mut self, max_cycles: u64) -> bool {
        let core = self.core;
        self.sim.run_until(max_cycles, |s| {
            s.component::<CoreModel>(core).expect("core").is_done()
        })
    }

    /// Advances the simulation by `cycles`.
    pub fn run(&mut self, cycles: u64) {
        self.sim.run(cycles);
    }

    /// The underlying simulator (for custom probing).
    pub fn sim(&self) -> &Sim {
        &self.sim
    }

    /// Mutable access to the underlying simulator.
    pub fn sim_mut(&mut self) -> &mut Sim {
        &mut self.sim
    }

    /// The core model.
    pub fn core(&self) -> &CoreModel {
        self.sim.component(self.core).expect("core present")
    }

    /// The DMA model, if configured.
    pub fn dma(&self) -> Option<&DmaModel> {
        self.dma
            .map(|id| self.sim.component(id).expect("dma present"))
    }

    /// The stalling manager, if configured.
    pub fn staller(&self) -> Option<&StallingManager> {
        self.staller
            .map(|id| self.sim.component(id).expect("staller present"))
    }

    /// The REALM unit in front of the core, if configured.
    pub fn core_realm(&self) -> Option<&RealmUnit> {
        self.core_realm
            .map(|id| self.sim.component(id).expect("realm present"))
    }

    /// The REALM unit in front of the DMA, if configured.
    pub fn dma_realm(&self) -> Option<&RealmUnit> {
        self.dma_realm
            .map(|id| self.sim.component(id).expect("realm present"))
    }

    /// The REALM unit in front of the staller, if configured.
    pub fn staller_realm(&self) -> Option<&RealmUnit> {
        self.staller_realm
            .map(|id| self.sim.component(id).expect("realm present"))
    }

    /// The configuration master, if a script was given.
    pub fn config_master(&self) -> Option<&ScriptedManager> {
        self.config_master
            .map(|id| self.sim.component(id).expect("config master present"))
    }

    /// The crossbar (interference statistics).
    pub fn xbar(&self) -> &Crossbar {
        self.sim.component(self.xbar).expect("xbar present")
    }

    /// The LLC memory model.
    pub fn llc(&self) -> &MemoryModel {
        self.sim.component(self.llc).expect("llc present")
    }

    /// The scratchpad memory model.
    pub fn spm(&self) -> &MemoryModel {
        self.sim.component(self.spm).expect("spm present")
    }

    /// Runs for `windows × window` cycles, sampling per-window deltas of
    /// the key metrics — a time-resolved view of the regulation in action.
    pub fn run_timeline(&mut self, windows: usize, window: u64) -> Timeline {
        let mut samples = Vec::with_capacity(windows);
        let mut prev_accesses = self.core().completed_accesses();
        let mut prev_lat_sum = self.core().latency().sum();
        let mut prev_dma = self.dma().map_or(0, |d| d.bytes_read() + d.bytes_written());
        let mut prev_regulated = self
            .dma_realm()
            .map_or(0, |r| r.monitor().regions()[0].stats.bytes_total);
        let mut prev_isolated = self.dma_realm().map_or(0, |r| r.stats().isolated_cycles);
        for _ in 0..windows {
            self.run(window);
            let accesses = self.core().completed_accesses();
            let lat_sum = self.core().latency().sum();
            let dma = self.dma().map_or(0, |d| d.bytes_read() + d.bytes_written());
            let regulated = self
                .dma_realm()
                .map_or(0, |r| r.monitor().regions()[0].stats.bytes_total);
            let isolated = self.dma_realm().map_or(0, |r| r.stats().isolated_cycles);
            let delta_accesses = accesses - prev_accesses;
            samples.push(TimelineSample {
                cycle: self.sim.cycle(),
                core_accesses: delta_accesses,
                core_mean_latency: (delta_accesses > 0)
                    .then(|| (lat_sum - prev_lat_sum) as f64 / delta_accesses as f64),
                dma_bytes: dma - prev_dma,
                dma_regulated_bytes: regulated - prev_regulated,
                dma_isolated_cycles: isolated - prev_isolated,
            });
            prev_accesses = accesses;
            prev_lat_sum = lat_sum;
            prev_dma = dma;
            prev_regulated = regulated;
            prev_isolated = isolated;
        }
        Timeline { window, samples }
    }

    /// Whether protocol monitors were attached at construction.
    pub fn monitors_enabled(&self) -> bool {
        !self.monitors.is_empty()
    }

    /// Collects the conformance verdict: per-port protocol violations, the
    /// scoreboard's beat-conservation checks across REALM units and the
    /// crossbar, and any structured push refusals from the kernel.
    pub fn conformance_report(&self) -> ConformanceReport {
        ConformanceReport::collect(&self.sim, &self.monitors, &self.scoreboard)
    }

    /// Panics with a full report if any monitor saw a violation. A no-op
    /// when monitors are disabled — except for the access sanitizer
    /// (`REALM_SANITIZE=1`), whose verdict is independent of the monitor
    /// rig: an undeclared access is a declaration bug whether or not
    /// protocol monitors are watching.
    pub fn assert_conformance(&self) {
        let san = self.sim.sanitizer_violations();
        assert!(
            san.is_empty(),
            "access sanitizer recorded {} violation(s) ({} dropped beyond the cap):\n{}",
            san.len(),
            self.sim.sanitizer_violations_dropped(),
            san.iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("\n")
        );
        if self.monitors_enabled() {
            self.conformance_report().assert_clean();
        }
    }

    /// The static dependence partition of this system (Pass C of
    /// `realm-lint`): island decomposition, evaluation schedule, and edge
    /// census. The Cheshire testbench is deliberately one island — the
    /// crossbar wires every manager to every subordinate — so the value
    /// here is the schedule/edge census and the regression that the
    /// partition never silently fragments.
    pub fn partition(&self) -> realm_lint::Partition {
        realm_lint::analyze_deps(&self.sim.topology(), &self.lint_model()).0
    }

    /// Snapshots the run into a [`RunResult`].
    pub fn result(&self) -> RunResult {
        let core = self.core();
        RunResult {
            cycles: core.finished_at().unwrap_or_else(|| self.sim.cycle()),
            core_latency: core.latency(),
            core_histogram: core.latency_histogram(),
            core_accesses: core.completed_accesses(),
            dma_bytes: self.dma().map_or(0, |d| d.bytes_read() + d.bytes_written()),
            llc_beats: self.llc().beats_served(),
            kernel: self.sim.kernel_stats(),
            telemetry: self.sim.telemetry(),
        }
    }

    /// Harvests the unified telemetry registry from every component (a
    /// fresh walk of the hooks; see [`Sim::telemetry`]).
    pub fn telemetry(&self) -> TelemetrySink {
        self.sim.telemetry()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_source_builds_and_finishes() {
        let mut tb = Testbench::new(TestbenchConfig::single_source(100));
        assert!(tb.run_until_core_done(100_000));
        let r = tb.result();
        assert_eq!(r.core_accesses, 100);
        assert!(r.core_latency.max().unwrap() <= 10);
        assert_eq!(r.dma_bytes, 0);
        assert!(tb.dma().is_none());
        assert!(tb.core_realm().is_none());
    }

    #[test]
    fn contended_system_builds() {
        let mut cfg = TestbenchConfig::single_source(50);
        cfg.dma = Some(TestbenchConfig::worst_case_dma());
        let mut tb = Testbench::new(cfg);
        assert!(tb.run_until_core_done(5_000_000));
        let r = tb.result();
        assert!(r.dma_bytes > 0);
        assert!(r.core_latency.max().unwrap() >= 256);
        assert!(tb.xbar().manager_stats(0).ar_granted > 0);
        assert!(tb.spm().beats_served() > 0);
    }

    #[test]
    fn timeline_samples_show_budget_duty_cycle() {
        use crate::experiments::llc_regulation;
        let mut cfg = TestbenchConfig::single_source(1_000_000);
        cfg.dma = Some(TestbenchConfig::worst_case_dma());
        cfg.core_regulation = Regulation::Realm(llc_regulation(256, 0, 0));
        // Tight DMA budget: 1 KiB per 1000 cycles → mostly isolated.
        cfg.dma_regulation = Regulation::Realm(llc_regulation(1, 1024, 1_000));
        let mut tb = Testbench::new(cfg);
        tb.run(2_000); // warm up
        let timeline = tb.run_timeline(10, 1_000);
        assert_eq!(timeline.samples.len(), 10);
        assert_eq!(timeline.window, 1_000);
        for s in &timeline.samples {
            // Budget cap holds per window (one in-flight fragment slack).
            assert!(
                s.dma_regulated_bytes <= 1024 + 16,
                "window at {} charged {} regulated bytes",
                s.cycle,
                s.dma_regulated_bytes
            );
            assert!(s.dma_bytes >= s.dma_regulated_bytes);
            assert!(s.dma_isolated_cycles > 400, "mostly isolated: {s:?}");
            assert!(s.core_accesses > 0, "the core keeps progressing");
            assert!(s.core_mean_latency.is_some());
        }
        // Deltas sum to the cumulative counters.
        let total_dma: u64 = timeline.samples.iter().map(|s| s.dma_bytes).sum();
        assert!(total_dma > 0);
    }

    #[test]
    fn regulated_system_builds() {
        let mut cfg = TestbenchConfig::single_source(50);
        cfg.dma = Some(TestbenchConfig::worst_case_dma());
        let mut rt = RuntimeConfig::open(2);
        rt.frag_len = 1;
        cfg.core_regulation = Regulation::Realm(rt.clone());
        cfg.dma_regulation = Regulation::Realm(rt);
        let mut tb = Testbench::new(cfg);
        assert!(tb.run_until_core_done(5_000_000));
        assert!(tb.core_realm().is_some());
        assert!(tb.dma_realm().is_some());
        assert!(tb.dma_realm().unwrap().stats().fragments_emitted > 0);
        // Fragmented, budget-regulated traffic must still be protocol-legal
        // on both sides of each REALM unit, beat for beat.
        tb.assert_conformance();
    }

    #[test]
    fn monitors_observe_cleanly_and_can_be_disabled() {
        let mut cfg = TestbenchConfig::single_source(50);
        cfg.dma = Some(TestbenchConfig::worst_case_dma());
        cfg.monitors = true;
        let mut tb = Testbench::new(cfg.clone());
        assert!(tb.run_until_core_done(5_000_000));
        assert!(tb.monitors_enabled());
        let report = tb.conformance_report();
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.total_violations(), 0);

        // Monitors are passive: disabling them changes nothing observable.
        cfg.monitors = false;
        let mut off = Testbench::new(cfg);
        assert!(off.run_until_core_done(5_000_000));
        assert!(!off.monitors_enabled());
        off.assert_conformance(); // no-op without monitors
        assert_eq!(tb.result().cycles, off.result().cycles);
        assert_eq!(tb.result().llc_beats, off.result().llc_beats);
    }
}

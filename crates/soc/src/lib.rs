//! The Cheshire-like SoC testbench of the AXI-REALM evaluation.
//!
//! Assembles the system of the paper's Fig. 5 out of the workspace's
//! substrates: a latency-sensitive core (CVA6 running *Susan*), a DSA DMA
//! engine, optional REALM units per manager, a crossbar, the LLC port, the
//! DSA scratchpad, and the bus-guarded configuration register file.
//!
//! [`experiments`] contains presets for every scenario of §IV-A —
//! *single-source*, *without reservation*, the fragmentation sweep of
//! Fig. 6a, and the budget sweep of Fig. 6b.
//!
//! # Example
//!
//! ```
//! use cheshire_soc::{Testbench, TestbenchConfig};
//!
//! let mut tb = Testbench::new(TestbenchConfig::single_source(200));
//! assert!(tb.run_until_core_done(1_000_000));
//! let result = tb.result();
//! assert!(result.core_latency.max().unwrap() <= 10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
mod testbench;

pub use testbench::{
    Regulation, RunResult, Testbench, TestbenchConfig, Timeline, TimelineSample, CFG_BASE,
    CFG_SIZE, CORE_BUFFER, DMA_LLC_BUFFER, DMA_LLC_BUFFER_SIZE, LLC_BASE, LLC_SIZE, SPM_BASE,
    SPM_SIZE,
};

/// Startup gate for experiment binaries that never construct a
/// [`Testbench`] themselves (the analytic tables): builds the default
/// contended Cheshire system, runs the elaboration-time analyzer over it,
/// and panics on error-severity findings. Honors `REALM_LINT=0`.
pub fn startup_lint(binary: &str) {
    if !realm_lint::enabled_by_env() {
        return;
    }
    let mut cfg = TestbenchConfig::single_source(1);
    cfg.dma = Some(TestbenchConfig::worst_case_dma());
    cfg.core_regulation = Regulation::Realm(experiments::llc_regulation(256, 0, 0));
    cfg.dma_regulation = Regulation::Realm(experiments::llc_regulation(256, 0, 0));
    cfg.monitors = false; // construction-only; nothing will run
    let tb = Testbench::new(cfg); // Testbench::new already gates
    realm_lint::apply(binary, &tb.lint_report());
}

//! Property-based tests of the kernel's wire semantics, the foundation all
//! timing results rest on: FIFO order, register-per-hop visibility, bounded
//! capacity, and one-beat-per-cycle throughput.

use axi4::WBeat;
use axi_sim::Wire;
use proptest::prelude::*;

/// A random schedule of interleaved push/pop attempts over many cycles.
fn arb_schedule() -> impl Strategy<Value = Vec<(bool, bool)>> {
    prop::collection::vec((any::<bool>(), any::<bool>()), 1..200)
}

proptest! {
    /// Items come out in exactly the order they went in, regardless of the
    /// push/pop interleaving.
    #[test]
    fn fifo_order(schedule in arb_schedule(), capacity in 1usize..8) {
        let mut wire = Wire::new(capacity);
        let mut next_value = 0u64;
        let mut popped = Vec::new();
        for (cycle, &(try_push, try_pop)) in schedule.iter().enumerate() {
            let cycle = cycle as u64;
            if try_push && wire.can_push(cycle) {
                wire.try_push(cycle, WBeat::full(next_value, false)).expect("can_push checked");
                next_value += 1;
            }
            if try_pop {
                if let Some(beat) = wire.pop(cycle) {
                    popped.push(beat.data);
                }
            }
        }
        let expected: Vec<u64> = (0..popped.len() as u64).collect();
        prop_assert_eq!(popped, expected);
    }

    /// An item is never observable in the cycle it was pushed.
    #[test]
    fn no_zero_cycle_hops(schedule in arb_schedule()) {
        let mut wire = Wire::new(4);
        for (cycle, &(try_push, try_pop)) in schedule.iter().enumerate() {
            let cycle = cycle as u64;
            let was_empty = wire.is_empty();
            if try_push && wire.can_push(cycle) {
                wire.try_push(cycle, WBeat::full(cycle, false)).expect("can_push checked");
                if was_empty && try_pop {
                    prop_assert!(wire.pop(cycle).is_none(), "cycle {} zero-hop", cycle);
                }
            }
        }
    }

    /// Occupancy never exceeds capacity, and the stats' high-water mark
    /// honours the same bound.
    #[test]
    fn capacity_bound(schedule in arb_schedule(), capacity in 1usize..6) {
        let mut wire = Wire::new(capacity);
        for (cycle, &(try_push, try_pop)) in schedule.iter().enumerate() {
            let cycle = cycle as u64;
            if try_push {
                let _ = wire.try_push(cycle, WBeat::full(0, false));
            }
            if try_pop {
                let _ = wire.pop(cycle);
            }
            prop_assert!(wire.len() <= capacity);
        }
        prop_assert!(wire.stats().high_water <= capacity);
    }

    /// At most one push and one pop succeed per cycle, however many are
    /// attempted.
    #[test]
    fn one_beat_per_cycle(attempts in 2usize..6, cycles in 1u64..50) {
        let mut wire = Wire::new(64);
        for cycle in 0..cycles {
            let mut pushes = 0;
            for _ in 0..attempts {
                if wire.try_push(cycle, WBeat::full(cycle, false)).is_ok() {
                    pushes += 1;
                }
            }
            prop_assert!(pushes <= 1, "cycle {}: {} pushes", cycle, pushes);
        }
        // Drain with multiple pop attempts per cycle.
        let mut total_popped = 0u64;
        for cycle in cycles..cycles + 200 {
            let mut pops = 0;
            for _ in 0..attempts {
                if wire.pop(cycle).is_some() {
                    pops += 1;
                }
            }
            prop_assert!(pops <= 1, "cycle {}: {} pops", cycle, pops);
            total_popped += pops;
        }
        prop_assert_eq!(total_popped, cycles.min(64));
    }

    /// `total_pushed` counts exactly the accepted pushes.
    #[test]
    fn stats_count_pushes(schedule in arb_schedule()) {
        let mut wire = Wire::new(3);
        let mut accepted = 0u64;
        for (cycle, &(try_push, try_pop)) in schedule.iter().enumerate() {
            let cycle = cycle as u64;
            if try_push && wire.try_push(cycle, WBeat::full(0, false)).is_ok() {
                accepted += 1;
            }
            if try_pop {
                let _ = wire.pop(cycle);
            }
        }
        prop_assert_eq!(wire.stats().total_pushed, accepted);
    }
}

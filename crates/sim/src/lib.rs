//! Cycle-stepped simulation kernel for the AXI-REALM reproduction.
//!
//! The kernel models hardware at the granularity the paper's results depend
//! on: clock cycles and beat-level channel handshakes. Its semantics are:
//!
//! - Time advances in integer clock cycles. Observably, every [`Component`]
//!   is ticked once per cycle; the default event-driven kernel only
//!   *executes* the ticks that can change state (see [`Sim`]).
//! - Channels are bounded [`Wire`]s. An item pushed at cycle *t* becomes
//!   visible to consumers at *t + 1* ("register per hop"), so results do not
//!   depend on the order components are ticked in, and every hop through a
//!   component costs at least one cycle — matching the one-cycle latency the
//!   REALM unit adds to in-flight transactions.
//! - A wire accepts at most one push and one pop per cycle, matching the
//!   one-beat-per-cycle throughput of an AXI channel handshake.
//!
//! AXI's five channels are grouped into an [`AxiBundle`] of typed wire
//! handles allocated from a [`ChannelPool`].
//!
//! # Example
//!
//! ```
//! use axi_sim::ChannelPool;
//! use axi4::WBeat;
//!
//! let mut pool = ChannelPool::new();
//! let wire = pool.new_wire::<WBeat>(2);
//!
//! // Cycle 0: producer pushes a beat.
//! assert!(pool.can_push(wire, 0));
//! pool.push(wire, 0, WBeat::full(42, true));
//!
//! // Still cycle 0: the beat is not yet visible (register-per-hop).
//! assert!(pool.pop(wire, 0).is_none());
//!
//! // Cycle 1: the consumer sees it.
//! assert_eq!(pool.pop(wire, 1).map(|b| b.data), Some(42));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arb;
mod bundle;
mod component;
mod coverage;
mod pool;
mod sim;
mod topology;
mod trace;
mod vcd;
mod watchdog;
mod wire;

pub use arb::RoundRobin;
pub use bundle::{AxiBundle, BundleCapacity};
pub use component::{Component, TickCtx};
pub use coverage::CoverageMap;
pub use pool::{Channel, ChannelPool, PushRefusal, SanitizerKind, WireActivity, WireId};
pub use sim::{
    ComponentId, ComponentProfile, ContractViolation, KernelMode, KernelStats, SanitizerViolation,
    Sim, ViolationKind,
};
pub use topology::{PortDecl, PortDir, TopoComponent, TopoWire, Topology};
pub use trace::{TraceChannel, TraceEvent, TracePayload, TraceProbe};
pub use vcd::vcd_dump;
pub use watchdog::Watchdog;
pub use wire::{PushError, Wire, WireStats};

// Re-exported so downstream crates can implement the
// `Component::telemetry` hook without a direct `realm-telemetry` dep.
pub use realm_telemetry::TelemetrySink;

/// A clock-cycle count.
///
/// Plain `u64` by design: cycle arithmetic is pervasive in component code and
/// a newtype would add friction without catching real bug classes here.
pub type Cycle = u64;

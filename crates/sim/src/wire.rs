//! Bounded, timestamped queues modelling registered channel hops.
//!
//! Storage is a fixed ring buffer sized at construction: a wire never
//! allocates after `new`, and the pool variant packs every ring of a
//! channel into one contiguous arena (see `pool.rs`). The queue metadata
//! (head/len/one-push-one-pop stamps/stats) lives in [`Ring`], shared
//! between the standalone [`Wire`] and the pool's lanes so both enforce
//! exactly the same register-per-hop semantics.

use std::error::Error;
use std::fmt;

use crate::Cycle;

/// Why a push onto a [`Wire`] was refused.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PushError {
    /// The wire's bounded queue is full — downstream backpressure.
    Full,
    /// The wire already accepted a beat this cycle (one beat per cycle).
    Busy,
}

impl fmt::Display for PushError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PushError::Full => f.write_str("wire queue is full"),
            PushError::Busy => f.write_str("wire already accepted a beat this cycle"),
        }
    }
}

impl Error for PushError {}

/// Occupancy and throughput counters of a [`Wire`], for congestion analysis.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct WireStats {
    /// Total number of items ever pushed.
    pub total_pushed: u64,
    /// Highest queue occupancy observed.
    pub high_water: usize,
    /// Number of pushes refused because the queue was full.
    pub full_stalls: u64,
}

/// Sentinel for "no cycle recorded yet" in [`Ring`] stamps. The simulation
/// never reaches cycle `u64::MAX`, so the sentinel can share the `Cycle`
/// domain and the hot-path comparisons stay branch-free integer compares.
pub(crate) const NO_CYCLE: Cycle = Cycle::MAX;

/// Queue metadata of one ring buffer: position in the backing arena plus
/// the register-per-hop guards (one push and one pop per cycle).
///
/// The ring itself holds no items — callers own a slot array (`Wire` a
/// private one, the pool one arena per channel) and ask the ring which
/// slot to read or write. Indices are `u32`: a wire capacity beyond 4
/// billion beats is not a simulation, it's a bug.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Ring {
    base: u32,
    cap: u32,
    head: u32,
    len: u32,
    last_push: Cycle,
    last_pop: Cycle,
    stats: WireStats,
}

impl Ring {
    /// Creates ring metadata for `capacity` slots starting at arena index
    /// `base`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero — a zero-capacity wire could never
    /// transport anything.
    pub(crate) fn new(base: usize, capacity: usize) -> Self {
        assert!(capacity > 0, "wire capacity must be at least 1");
        assert!(capacity <= u32::MAX as usize, "wire capacity exceeds u32");
        Self {
            base: base as u32,
            cap: capacity as u32,
            head: 0,
            len: 0,
            last_push: NO_CYCLE,
            last_pop: NO_CYCLE,
            stats: WireStats::default(),
        }
    }

    #[inline]
    pub(crate) fn capacity(&self) -> usize {
        self.cap as usize
    }

    #[inline]
    pub(crate) fn len(&self) -> usize {
        self.len as usize
    }

    #[inline]
    pub(crate) fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    pub(crate) fn stats(&self) -> WireStats {
        self.stats
    }

    #[inline]
    pub(crate) fn can_push(&self, cycle: Cycle) -> bool {
        self.len < self.cap && self.last_push != cycle
    }

    /// `true` if the ring already accepted a beat at `cycle`.
    #[inline]
    pub(crate) fn pushed_at(&self, cycle: Cycle) -> bool {
        self.last_push == cycle
    }

    /// Arena index of the slot a push would write next.
    #[inline]
    fn tail_slot(&self) -> usize {
        let mut pos = self.head + self.len;
        if pos >= self.cap {
            pos -= self.cap;
        }
        (self.base + pos) as usize
    }

    /// Arena index of the current front beat (only valid if `len > 0`).
    #[inline]
    fn front_slot(&self) -> usize {
        (self.base + self.head) as usize
    }

    /// Arena index of the `i`-th queued beat from the front (valid for
    /// `i < len`).
    #[inline]
    pub(crate) fn nth_slot(&self, i: u32) -> usize {
        let mut pos = self.head + i;
        if pos >= self.cap {
            pos -= self.cap;
        }
        (self.base + pos) as usize
    }

    /// Claims the tail slot for a push at `cycle`: enforces the
    /// one-push-per-cycle and capacity guards, stamps `last_push`, bumps
    /// stats, and returns the arena slot the caller must now fill.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] on backpressure, [`PushError::Busy`] if a beat
    /// was already pushed this cycle.
    #[inline]
    pub(crate) fn try_push(&mut self, cycle: Cycle) -> Result<usize, PushError> {
        if self.last_push == cycle {
            return Err(PushError::Busy);
        }
        if self.len >= self.cap {
            self.stats.full_stalls += 1;
            return Err(PushError::Full);
        }
        let slot = self.tail_slot();
        self.len += 1;
        self.last_push = cycle;
        self.stats.total_pushed += 1;
        if self.len as usize > self.stats.high_water {
            self.stats.high_water = self.len as usize;
        }
        Ok(slot)
    }

    /// Arena slot of the front beat if the one-pop-per-cycle guard allows
    /// a pop (or peek) at `cycle`. The caller must still check the beat's
    /// push stamp for visibility (`pushed < cycle`).
    #[inline]
    pub(crate) fn front_candidate(&self, cycle: Cycle) -> Option<usize> {
        if self.len == 0 || self.last_pop == cycle {
            None
        } else {
            Some(self.front_slot())
        }
    }

    /// Commits a pop at `cycle`: advances the head and stamps `last_pop`.
    /// Call only after `front_candidate` returned a slot whose beat is
    /// visible.
    #[inline]
    pub(crate) fn commit_pop(&mut self, cycle: Cycle) {
        self.head += 1;
        if self.head >= self.cap {
            self.head = 0;
        }
        self.len -= 1;
        self.last_pop = cycle;
    }
}

/// A bounded queue with register-per-hop timing: an item pushed at cycle *t*
/// becomes visible at *t + 1*, and at most one item may be pushed and one
/// popped per cycle.
///
/// This is the kernel's model of a registered hardware FIFO between two
/// components; see the crate docs for the rationale. Storage is a fixed
/// ring buffer — no per-push allocation.
#[derive(Clone, Debug)]
pub struct Wire<T> {
    slots: Vec<Option<(Cycle, T)>>,
    ring: Ring,
    // When tapped, every accepted push is also appended here (push cycle +
    // payload) until a collector drains it — the exactly-once observation
    // stream protocol monitors are built on.
    tap: Option<Vec<(Cycle, T)>>,
}

impl<T> Wire<T> {
    /// Creates a wire holding at most `capacity` in-flight items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero — a zero-capacity wire could never
    /// transport anything.
    pub fn new(capacity: usize) -> Self {
        let ring = Ring::new(0, capacity);
        let mut slots = Vec::with_capacity(capacity);
        slots.resize_with(capacity, || None);
        Self {
            slots,
            ring,
            tap: None,
        }
    }

    /// Starts recording every accepted push into the tap buffer.
    ///
    /// Unlike peek-based probing, the tap sees each beat exactly once, in
    /// push order, with its push cycle — even when identical payloads
    /// follow each other or a consumer pops the beat in the same cycle a
    /// peeker would have looked. A collector must call
    /// [`Wire::drain_tap_into`] regularly (ticked components do so every
    /// executed cycle) or the buffer grows unboundedly.
    pub fn enable_tap(&mut self) {
        self.tap.get_or_insert_with(Vec::new);
    }

    /// Returns `true` if pushes are being recorded.
    pub fn is_tapped(&self) -> bool {
        self.tap.is_some()
    }

    /// Moves all tapped `(push_cycle, beat)` records into `out`, oldest
    /// first, clearing the tap buffer. No-op on an untapped wire.
    pub fn drain_tap_into(&mut self, out: &mut Vec<(Cycle, T)>) {
        if let Some(tap) = &mut self.tap {
            out.append(tap);
        }
    }

    /// Returns `true` if a push at `cycle` would be accepted.
    pub fn can_push(&self, cycle: Cycle) -> bool {
        self.ring.can_push(cycle)
    }

    /// Pushes an item at `cycle`; it becomes visible to `pop` from
    /// `cycle + 1`.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] on backpressure, [`PushError::Busy`] if a beat
    /// was already pushed this cycle.
    pub fn try_push(&mut self, cycle: Cycle, item: T) -> Result<(), PushError>
    where
        T: Clone,
    {
        let slot = self.ring.try_push(cycle)?;
        if let Some(tap) = &mut self.tap {
            tap.push((cycle, item.clone()));
        }
        self.slots[slot] = Some((cycle, item));
        Ok(())
    }

    /// Returns a reference to the front item if one is visible at `cycle`
    /// and it has not been popped this cycle.
    pub fn peek(&self, cycle: Cycle) -> Option<&T> {
        let slot = self.ring.front_candidate(cycle)?;
        match &self.slots[slot] {
            Some((pushed, item)) if *pushed < cycle => Some(item),
            _ => None,
        }
    }

    /// Pops the front item if one is visible at `cycle`; at most one pop
    /// succeeds per cycle.
    pub fn pop(&mut self, cycle: Cycle) -> Option<T> {
        let slot = self.ring.front_candidate(cycle)?;
        match &self.slots[slot] {
            Some((pushed, _)) if *pushed < cycle => {
                self.ring.commit_pop(cycle);
                self.slots[slot].take().map(|(_, item)| item)
            }
            _ => None,
        }
    }

    /// Number of items currently in flight (visible or not).
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Returns `true` if no items are in flight.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// The maximum number of in-flight items.
    pub fn capacity(&self) -> usize {
        self.ring.capacity()
    }

    /// Occupancy and throughput counters.
    pub fn stats(&self) -> WireStats {
        self.ring.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_visible_next_cycle() {
        let mut w = Wire::new(4);
        w.try_push(5, "a").unwrap();
        assert!(w.peek(5).is_none());
        assert_eq!(w.peek(6), Some(&"a"));
        assert_eq!(w.pop(6), Some("a"));
        assert!(w.is_empty());
    }

    #[test]
    fn one_push_per_cycle() {
        let mut w = Wire::new(4);
        w.try_push(0, 1).unwrap();
        assert_eq!(w.try_push(0, 2), Err(PushError::Busy));
        assert!(!w.can_push(0));
        assert!(w.can_push(1));
        w.try_push(1, 2).unwrap();
        assert_eq!(w.len(), 2);
    }

    #[test]
    fn one_pop_per_cycle() {
        let mut w = Wire::new(4);
        w.try_push(0, 1).unwrap();
        w.try_push(1, 2).unwrap();
        assert_eq!(w.pop(2), Some(1));
        // Second item was pushed at cycle 1, so visible at 2 — but only one
        // pop per cycle is allowed.
        assert_eq!(w.pop(2), None);
        assert_eq!(w.peek(2), None);
        assert_eq!(w.pop(3), Some(2));
    }

    #[test]
    fn capacity_backpressure() {
        let mut w = Wire::new(2);
        w.try_push(0, 1).unwrap();
        w.try_push(1, 2).unwrap();
        assert_eq!(w.try_push(2, 3), Err(PushError::Full));
        assert!(!w.can_push(2));
        assert_eq!(w.stats().full_stalls, 1);
        // Draining frees a slot.
        assert_eq!(w.pop(2), Some(1));
        assert!(w.can_push(3));
    }

    #[test]
    fn stats_track_throughput() {
        let mut w = Wire::new(3);
        for c in 0..3 {
            w.try_push(c, c).unwrap();
        }
        let s = w.stats();
        assert_eq!(s.total_pushed, 3);
        assert_eq!(s.high_water, 3);
        assert_eq!(s.full_stalls, 0);
        assert_eq!(w.capacity(), 3);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        let _ = Wire::<u8>::new(0);
    }

    #[test]
    fn tap_sees_every_push_exactly_once() {
        let mut w = Wire::new(2);
        assert!(!w.is_tapped());
        w.enable_tap();
        assert!(w.is_tapped());
        // Two identical payloads back to back — a peek-based observer would
        // dedupe them away; the tap must not.
        w.try_push(0, 7u64).unwrap();
        w.try_push(1, 7u64).unwrap();
        assert_eq!(w.try_push(2, 8), Err(PushError::Full));
        let mut out = Vec::new();
        w.drain_tap_into(&mut out);
        assert_eq!(out, [(0, 7), (1, 7)]);
        // Drained: nothing left, refusals never recorded.
        out.clear();
        w.drain_tap_into(&mut out);
        assert!(out.is_empty());
        // Consumption does not disturb the tap.
        assert_eq!(w.pop(2), Some(7));
        w.try_push(2, 9).unwrap();
        w.drain_tap_into(&mut out);
        assert_eq!(out, [(2, 9)]);
    }

    #[test]
    fn fifo_order_preserved() {
        let mut w = Wire::new(8);
        for c in 0..5u64 {
            w.try_push(c, c * 10).unwrap();
        }
        let mut out = Vec::new();
        let mut cycle = 5;
        while let Some(v) = w.pop(cycle) {
            out.push(v);
            cycle += 1;
        }
        assert_eq!(out, [0, 10, 20, 30, 40]);
    }

    #[test]
    fn ring_wraps_without_reordering() {
        // Exercise head wrap-around: fill, drain, refill repeatedly on a
        // small ring and check FIFO order survives the wrap.
        let mut w = Wire::new(3);
        let mut cycle = 0u64;
        let mut expect = 0u64;
        for round in 0..5u64 {
            for i in 0..3 {
                w.try_push(cycle, round * 3 + i).unwrap();
                cycle += 1;
            }
            for _ in 0..3 {
                assert_eq!(w.pop(cycle), Some(expect));
                expect += 1;
                cycle += 1;
            }
            assert!(w.is_empty());
        }
        assert_eq!(w.stats().total_pushed, 15);
    }
}

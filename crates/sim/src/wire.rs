//! Bounded, timestamped queues modelling registered channel hops.

use std::collections::VecDeque;
use std::error::Error;
use std::fmt;

use crate::Cycle;

/// Why a push onto a [`Wire`] was refused.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PushError {
    /// The wire's bounded queue is full — downstream backpressure.
    Full,
    /// The wire already accepted a beat this cycle (one beat per cycle).
    Busy,
}

impl fmt::Display for PushError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PushError::Full => f.write_str("wire queue is full"),
            PushError::Busy => f.write_str("wire already accepted a beat this cycle"),
        }
    }
}

impl Error for PushError {}

/// Occupancy and throughput counters of a [`Wire`], for congestion analysis.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct WireStats {
    /// Total number of items ever pushed.
    pub total_pushed: u64,
    /// Highest queue occupancy observed.
    pub high_water: usize,
    /// Number of pushes refused because the queue was full.
    pub full_stalls: u64,
}

/// A bounded queue with register-per-hop timing: an item pushed at cycle *t*
/// becomes visible at *t + 1*, and at most one item may be pushed and one
/// popped per cycle.
///
/// This is the kernel's model of a registered hardware FIFO between two
/// components; see the crate docs for the rationale.
#[derive(Clone, Debug)]
pub struct Wire<T> {
    queue: VecDeque<(Cycle, T)>,
    capacity: usize,
    last_push: Option<Cycle>,
    last_pop: Option<Cycle>,
    stats: WireStats,
    // When tapped, every accepted push is also appended here (push cycle +
    // payload) until a collector drains it — the exactly-once observation
    // stream protocol monitors are built on.
    tap: Option<Vec<(Cycle, T)>>,
}

impl<T> Wire<T> {
    /// Creates a wire holding at most `capacity` in-flight items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero — a zero-capacity wire could never
    /// transport anything.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "wire capacity must be at least 1");
        Self {
            queue: VecDeque::with_capacity(capacity),
            capacity,
            last_push: None,
            last_pop: None,
            stats: WireStats::default(),
            tap: None,
        }
    }

    /// Starts recording every accepted push into the tap buffer.
    ///
    /// Unlike peek-based probing, the tap sees each beat exactly once, in
    /// push order, with its push cycle — even when identical payloads
    /// follow each other or a consumer pops the beat in the same cycle a
    /// peeker would have looked. A collector must call
    /// [`Wire::drain_tap_into`] regularly (ticked components do so every
    /// executed cycle) or the buffer grows unboundedly.
    pub fn enable_tap(&mut self) {
        self.tap.get_or_insert_with(Vec::new);
    }

    /// Returns `true` if pushes are being recorded.
    pub fn is_tapped(&self) -> bool {
        self.tap.is_some()
    }

    /// Moves all tapped `(push_cycle, beat)` records into `out`, oldest
    /// first, clearing the tap buffer. No-op on an untapped wire.
    pub fn drain_tap_into(&mut self, out: &mut Vec<(Cycle, T)>) {
        if let Some(tap) = &mut self.tap {
            out.append(tap);
        }
    }

    /// Returns `true` if a push at `cycle` would be accepted.
    pub fn can_push(&self, cycle: Cycle) -> bool {
        self.queue.len() < self.capacity && self.last_push != Some(cycle)
    }

    /// Pushes an item at `cycle`; it becomes visible to `pop` from
    /// `cycle + 1`.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] on backpressure, [`PushError::Busy`] if a beat
    /// was already pushed this cycle.
    pub fn try_push(&mut self, cycle: Cycle, item: T) -> Result<(), PushError>
    where
        T: Clone,
    {
        if self.last_push == Some(cycle) {
            return Err(PushError::Busy);
        }
        if self.queue.len() >= self.capacity {
            self.stats.full_stalls += 1;
            return Err(PushError::Full);
        }
        if let Some(tap) = &mut self.tap {
            tap.push((cycle, item.clone()));
        }
        self.queue.push_back((cycle, item));
        self.last_push = Some(cycle);
        self.stats.total_pushed += 1;
        self.stats.high_water = self.stats.high_water.max(self.queue.len());
        Ok(())
    }

    /// Returns a reference to the front item if one is visible at `cycle`
    /// and it has not been popped this cycle.
    pub fn peek(&self, cycle: Cycle) -> Option<&T> {
        if self.last_pop == Some(cycle) {
            return None;
        }
        match self.queue.front() {
            Some((pushed, item)) if *pushed < cycle => Some(item),
            _ => None,
        }
    }

    /// Pops the front item if one is visible at `cycle`; at most one pop
    /// succeeds per cycle.
    pub fn pop(&mut self, cycle: Cycle) -> Option<T> {
        if self.last_pop == Some(cycle) {
            return None;
        }
        match self.queue.front() {
            Some((pushed, _)) if *pushed < cycle => {
                self.last_pop = Some(cycle);
                self.queue.pop_front().map(|(_, item)| item)
            }
            _ => None,
        }
    }

    /// Number of items currently in flight (visible or not).
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Returns `true` if no items are in flight.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// The maximum number of in-flight items.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Occupancy and throughput counters.
    pub fn stats(&self) -> WireStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_visible_next_cycle() {
        let mut w = Wire::new(4);
        w.try_push(5, "a").unwrap();
        assert!(w.peek(5).is_none());
        assert_eq!(w.peek(6), Some(&"a"));
        assert_eq!(w.pop(6), Some("a"));
        assert!(w.is_empty());
    }

    #[test]
    fn one_push_per_cycle() {
        let mut w = Wire::new(4);
        w.try_push(0, 1).unwrap();
        assert_eq!(w.try_push(0, 2), Err(PushError::Busy));
        assert!(!w.can_push(0));
        assert!(w.can_push(1));
        w.try_push(1, 2).unwrap();
        assert_eq!(w.len(), 2);
    }

    #[test]
    fn one_pop_per_cycle() {
        let mut w = Wire::new(4);
        w.try_push(0, 1).unwrap();
        w.try_push(1, 2).unwrap();
        assert_eq!(w.pop(2), Some(1));
        // Second item was pushed at cycle 1, so visible at 2 — but only one
        // pop per cycle is allowed.
        assert_eq!(w.pop(2), None);
        assert_eq!(w.peek(2), None);
        assert_eq!(w.pop(3), Some(2));
    }

    #[test]
    fn capacity_backpressure() {
        let mut w = Wire::new(2);
        w.try_push(0, 1).unwrap();
        w.try_push(1, 2).unwrap();
        assert_eq!(w.try_push(2, 3), Err(PushError::Full));
        assert!(!w.can_push(2));
        assert_eq!(w.stats().full_stalls, 1);
        // Draining frees a slot.
        assert_eq!(w.pop(2), Some(1));
        assert!(w.can_push(3));
    }

    #[test]
    fn stats_track_throughput() {
        let mut w = Wire::new(3);
        for c in 0..3 {
            w.try_push(c, c).unwrap();
        }
        let s = w.stats();
        assert_eq!(s.total_pushed, 3);
        assert_eq!(s.high_water, 3);
        assert_eq!(s.full_stalls, 0);
        assert_eq!(w.capacity(), 3);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        let _ = Wire::<u8>::new(0);
    }

    #[test]
    fn tap_sees_every_push_exactly_once() {
        let mut w = Wire::new(2);
        assert!(!w.is_tapped());
        w.enable_tap();
        assert!(w.is_tapped());
        // Two identical payloads back to back — a peek-based observer would
        // dedupe them away; the tap must not.
        w.try_push(0, 7u64).unwrap();
        w.try_push(1, 7u64).unwrap();
        assert_eq!(w.try_push(2, 8), Err(PushError::Full));
        let mut out = Vec::new();
        w.drain_tap_into(&mut out);
        assert_eq!(out, [(0, 7), (1, 7)]);
        // Drained: nothing left, refusals never recorded.
        out.clear();
        w.drain_tap_into(&mut out);
        assert!(out.is_empty());
        // Consumption does not disturb the tap.
        assert_eq!(w.pop(2), Some(7));
        w.try_push(2, 9).unwrap();
        w.drain_tap_into(&mut out);
        assert_eq!(out, [(2, 9)]);
    }

    #[test]
    fn fifo_order_preserved() {
        let mut w = Wire::new(8);
        for c in 0..5u64 {
            w.try_push(c, c * 10).unwrap();
        }
        let mut out = Vec::new();
        let mut cycle = 5;
        while let Some(v) = w.pop(cycle) {
            out.push(v);
            cycle += 1;
        }
        assert_eq!(out, [0, 10, 20, 30, 40]);
    }
}

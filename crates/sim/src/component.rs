//! The component trait every simulated block implements.

use std::any::Any;

use realm_telemetry::TelemetrySink;

use crate::coverage::CoverageMap;
use crate::pool::ChannelPool;
use crate::topology::PortDecl;
use crate::Cycle;

/// Per-cycle context handed to every component: the current cycle and
/// mutable access to all wires.
#[derive(Debug)]
pub struct TickCtx<'a> {
    /// The cycle being evaluated.
    pub cycle: Cycle,
    /// All wires in the system; components address theirs by handle.
    pub pool: &'a mut ChannelPool,
}

/// A simulated hardware block, ticked once per clock cycle.
///
/// Components communicate exclusively through wires in the shared
/// [`ChannelPool`]; the register-per-hop wire semantics make the system's
/// behaviour independent of tick order (see the crate docs).
///
/// The `Any` supertrait lets a [`Sim`](crate::Sim) hand back concrete
/// component references for post-run inspection via
/// [`Sim::component`](crate::Sim::component).
pub trait Component: Any {
    /// Advances the component by one clock cycle.
    fn tick(&mut self, ctx: &mut TickCtx<'_>);

    /// A short human-readable instance name for traces and diagnostics.
    fn name(&self) -> &str {
        "component"
    }

    /// The earliest cycle `>= cycle` at which ticking this component could
    /// change any state, **assuming no push or pop happens on any of its
    /// declared wires before then**.
    ///
    /// This is the wake hint behind the event kernel in
    /// [`Sim::run`](crate::Sim::run): each component sleeps until its hint
    /// comes due or activity touches one of its [`Component::ports`] wires
    /// — a push wakes it when the beat becomes visible (and same-cycle for
    /// peers ticking later, so tap monitors stay beat-exact), a pop wakes
    /// it when the freed capacity becomes usable. Cycles on which no
    /// component is due are jumped over entirely.
    ///
    /// Return values:
    ///
    /// - `Some(cycle)` — must be ticked right now (the conservative
    ///   default, which keeps legacy components exact by simply never
    ///   letting them sleep).
    /// - `Some(later)` — ticks strictly before `later` are no-ops absent
    ///   wire activity; the kernel may elide them.
    /// - `None` — quiescent: only wire activity (or a declared
    ///   [`Sim::couple`](crate::Sim::couple) write) can require a tick.
    ///
    /// Because pops also wake, a producer blocked on a full output wire may
    /// report `None` and sleep until the consumer drains a slot. Components
    /// that declared no ports are woken by *any* wire activity and kept
    /// awake while any beat is in flight. A component whose tick holds
    /// beats queued on its Consume wires is re-ticked every cycle until
    /// those wires drain (one pop per wire per cycle, and it may decline).
    ///
    /// Returning a hint at or before an already-ticked cycle is a contract
    /// violation: the kernel re-ticks next cycle (exactness is preserved)
    /// and records it — see
    /// [`Sim::contract_violations`](crate::Sim::contract_violations).
    /// Components whose per-cycle tick mutates time-proportional counters
    /// must reconcile them in [`Component::on_fast_forward`].
    fn next_event(&self, cycle: Cycle) -> Option<Cycle> {
        Some(cycle)
    }

    /// The earliest cycle `>= cycle` at which this component could consume
    /// backlog parked on its input wires.
    ///
    /// The event kernel calls this after a tick that left beats queued on
    /// the component's Consume wires (or, for opaque components, anywhere
    /// in the pool): a consumer pops at most one beat per wire per cycle
    /// and may decline, so queued input alone does not say *when* the next
    /// pop can happen. The conservative default — "right away" — re-ticks
    /// the component every cycle until its inputs drain, which is always
    /// exact but forfeits skipping while traffic is parked upstream.
    ///
    /// Components whose intake is gated on internal state can override:
    ///
    /// - `Some(later)` — intake is closed until `later` (e.g. a budget
    ///   period boundary); ticks before then would not pop. The kernel
    ///   still wakes the component early on any push/pop touching its
    ///   wires, so the hint only needs to cover *silence*.
    /// - `None` — [`Component::next_event`] plus wire wakes already cover
    ///   every state change; queued input alone never requires a tick.
    ///
    /// The same exactness rule as [`Component::next_event`] applies: a
    /// hint must be `>= cycle`, and an override claiming `later` while a
    /// stepped run would have popped earlier diverges the kernels — the
    /// `kernel_equivalence` tests are the safety net.
    fn backlog_event(&self, cycle: Cycle) -> Option<Cycle> {
        Some(cycle)
    }

    /// The component's declared wire endpoints, for static topology
    /// analysis before cycle 0 (see [`Sim::topology`](crate::Sim::topology)
    /// and the `realm-lint` crate).
    ///
    /// The default declares nothing, which marks the component *opaque*:
    /// graph checks skip it and its wires, trading analysis coverage for
    /// zero migration effort. Components built from [`AxiBundle`]s can
    /// implement this in one line via
    /// [`AxiBundle::manager_ports`](crate::AxiBundle::manager_ports),
    /// [`AxiBundle::subordinate_ports`](crate::AxiBundle::subordinate_ports),
    /// or [`AxiBundle::observer_ports`](crate::AxiBundle::observer_ports).
    fn ports(&self) -> Vec<PortDecl> {
        Vec::new()
    }

    /// Notification that this component's ticks at cycles `from..to` were
    /// elided (it was asleep) and it is about to be observed or ticked at
    /// `to`.
    ///
    /// Components whose tick accumulates per-cycle state (e.g. an
    /// isolated-cycles counter) must apply the `to - from` elided ticks
    /// here so an event-driven run ends in exactly the state a stepped run
    /// would. The kernel may reconcile one sleep stretch in several
    /// consecutive calls (`a..b` then `b..c`), so the accounting must
    /// compose. Components with purely event-driven state need nothing —
    /// the default is a no-op.
    fn on_fast_forward(&mut self, from: Cycle, to: Cycle) {
        let _ = (from, to);
    }

    /// How many upcoming cycles (starting at `cycle`) this component can
    /// cover in one [`Component::batch_tick`] call instead of per-cycle
    /// ticks.
    ///
    /// The arena kernel (`REALM_KERNEL=arena`) opens a *batch window* of
    /// `w` cycles when every due component reports a horizon `>= w` (and
    /// the window-safety conditions around sleeping peers hold — see
    /// `DESIGN.md` §8). Within its horizon a component promises:
    ///
    /// - **No discrete status transition.** No budget exhaustion, isolation
    ///   trip, period boundary, burst completion, workload completion, or
    ///   any other state change that alters *which* actions it takes —
    ///   only the repetition of the same per-cycle action (typically
    ///   moving one beat).
    /// - **Capacity-bounded progress.** A producer's horizon never exceeds
    ///   the free slots its output wire shows *at window start*; a
    ///   consumer's or relay's never exceeds the beats already queued and
    ///   visible. This makes component-major window execution identical to
    ///   the cycle-major interleaving: nothing a peer does inside the
    ///   window can enable an action the horizon already counted on.
    /// - **Declared wires only.** All window activity stays on wires in
    ///   [`Component::ports`] (the kernel checks that every non-observer
    ///   peer of those wires participates in the window).
    ///
    /// The default of `0` opts out: the component is only ever ticked
    /// per cycle, and a due component reporting `< 2` vetoes any window
    /// at that cycle. Horizons are consulted only for components the
    /// batching plan ([`Sim::set_batch_plan`](crate::Sim::set_batch_plan))
    /// approves, so conservative implementations may assume their wires
    /// are uncontended point-to-point paths.
    fn batch_horizon(&self, cycle: Cycle, pool: &ChannelPool) -> u64 {
        let _ = (cycle, pool);
        0
    }

    /// Advances the component by `window` cycles in one call, covering
    /// cycles `ctx.cycle .. ctx.cycle + window`. Called only when
    /// [`Component::batch_horizon`] returned `>= window`.
    ///
    /// The default replays `window` ordinary ticks with per-cycle
    /// contexts, which is always exact — override it to claim the actual
    /// speedup, e.g. by moving `window` queued beats in one
    /// [`ChannelPool::batch_relay`] ring rotation. Implementations must
    /// leave the component in exactly the state `window` per-cycle ticks
    /// would have, including time-proportional counters (the kernel does
    /// **not** call [`Component::on_fast_forward`] for batched spans — the
    /// window was executed, not elided).
    fn batch_tick(&mut self, ctx: &mut TickCtx<'_>, window: u64) {
        for offset in 0..window {
            let mut sub = TickCtx {
                cycle: ctx.cycle + offset,
                pool: &mut *ctx.pool,
            };
            self.tick(&mut sub);
        }
    }

    /// Exports this component's coverage counters into `map` (see
    /// [`Sim::coverage`](crate::Sim::coverage)).
    ///
    /// Implementations should emit dotted keys prefixed with the instance
    /// name and only re-read counters the component already maintains —
    /// the hook is called after (or between) runs, never on the per-cycle
    /// hot path, and must not mutate behaviour. The default exports
    /// nothing, which keeps legacy components coverage-opaque.
    fn coverage(&self, map: &mut CoverageMap) {
        let _ = map;
    }

    /// Exports this component's telemetry — counters, gauges, latency
    /// histograms, and trace events — into `sink` (see
    /// [`Sim::telemetry`](crate::Sim::telemetry)).
    ///
    /// The same contract as [`Component::coverage`]: the hook is called
    /// after (or between) runs, never on the per-cycle hot path, it only
    /// re-reads state the component already maintains, and it must not
    /// mutate behaviour — telemetry on vs. off is required to be
    /// bit-identical (CI-gated like the protocol monitors). Counter and
    /// gauge keys are dotted and prefixed with the instance name
    /// (`"realm.dma.isolation_trips"`); unlike coverage signatures, zero
    /// counters *should* be registered so the registry documents every
    /// signal a component exports. The default exports nothing.
    fn telemetry(&self, sink: &mut TelemetrySink) {
        let _ = sink;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::WireId;
    use axi4::WBeat;

    struct Counter {
        out: WireId<WBeat>,
        sent: u64,
    }

    impl Component for Counter {
        fn tick(&mut self, ctx: &mut TickCtx<'_>) {
            if ctx.pool.can_push(self.out, ctx.cycle) {
                ctx.pool
                    .push(self.out, ctx.cycle, WBeat::full(self.sent, false));
                self.sent += 1;
            }
        }

        fn name(&self) -> &str {
            "counter"
        }
    }

    #[test]
    fn component_drives_wire_through_ctx() {
        let mut pool = ChannelPool::new();
        let out = pool.new_wire::<WBeat>(4);
        let mut c = Counter { out, sent: 0 };
        for cycle in 0..3 {
            let mut ctx = TickCtx {
                cycle,
                pool: &mut pool,
            };
            c.tick(&mut ctx);
        }
        assert_eq!(c.sent, 3);
        assert_eq!(pool.pop(out, 3).map(|b| b.data), Some(0));
        assert_eq!(c.name(), "counter");
    }
}

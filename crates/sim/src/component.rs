//! The component trait every simulated block implements.

use std::any::Any;

use crate::pool::ChannelPool;
use crate::topology::PortDecl;
use crate::Cycle;

/// Per-cycle context handed to every component: the current cycle and
/// mutable access to all wires.
#[derive(Debug)]
pub struct TickCtx<'a> {
    /// The cycle being evaluated.
    pub cycle: Cycle,
    /// All wires in the system; components address theirs by handle.
    pub pool: &'a mut ChannelPool,
}

/// A simulated hardware block, ticked once per clock cycle.
///
/// Components communicate exclusively through wires in the shared
/// [`ChannelPool`]; the register-per-hop wire semantics make the system's
/// behaviour independent of tick order (see the crate docs).
///
/// The `Any` supertrait lets a [`Sim`](crate::Sim) hand back concrete
/// component references for post-run inspection via
/// [`Sim::component`](crate::Sim::component).
pub trait Component: Any {
    /// Advances the component by one clock cycle.
    fn tick(&mut self, ctx: &mut TickCtx<'_>);

    /// A short human-readable instance name for traces and diagnostics.
    fn name(&self) -> &str {
        "component"
    }

    /// The earliest cycle `>= cycle` at which ticking this component could
    /// change any state, assuming no new beat becomes visible on its input
    /// wires before then.
    ///
    /// This is the idle-skip hint behind [`Sim::run`](crate::Sim::run)'s
    /// fast-forward: when every wire is empty and every component reports a
    /// wake cycle beyond the present, the kernel jumps the clock to the
    /// earliest wake instead of ticking through dead cycles.
    ///
    /// Return values:
    ///
    /// - `Some(cycle)` — must be ticked right now (the conservative
    ///   default, which keeps legacy components exact and simply disables
    ///   skipping while they are registered).
    /// - `Some(later)` — ticks strictly before `later` are no-ops; the
    ///   kernel may jump straight to `later`.
    /// - `None` — quiescent: only a new input beat can wake this
    ///   component.
    ///
    /// The contract is only consulted while **all** wires are empty, so a
    /// purely reactive component (crossbar, memory with no pending work)
    /// can return `None` without watching its inputs. Components whose
    /// per-cycle tick mutates time-proportional counters must reconcile
    /// them in [`Component::on_fast_forward`].
    fn next_event(&self, cycle: Cycle) -> Option<Cycle> {
        Some(cycle)
    }

    /// The component's declared wire endpoints, for static topology
    /// analysis before cycle 0 (see [`Sim::topology`](crate::Sim::topology)
    /// and the `realm-lint` crate).
    ///
    /// The default declares nothing, which marks the component *opaque*:
    /// graph checks skip it and its wires, trading analysis coverage for
    /// zero migration effort. Components built from [`AxiBundle`]s can
    /// implement this in one line via
    /// [`AxiBundle::manager_ports`](crate::AxiBundle::manager_ports),
    /// [`AxiBundle::subordinate_ports`](crate::AxiBundle::subordinate_ports),
    /// or [`AxiBundle::observer_ports`](crate::AxiBundle::observer_ports).
    fn ports(&self) -> Vec<PortDecl> {
        Vec::new()
    }

    /// Notification that the kernel is jumping the clock from `from` to
    /// `to`, skipping the ticks at cycles `from..to`.
    ///
    /// Components whose tick accumulates per-cycle state (e.g. an
    /// isolated-cycles counter) must apply the `to - from` elided ticks
    /// here so a fast-forwarded run ends in exactly the state a stepped
    /// run would. Components with purely event-driven state need nothing —
    /// the default is a no-op.
    fn on_fast_forward(&mut self, from: Cycle, to: Cycle) {
        let _ = (from, to);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::WireId;
    use axi4::WBeat;

    struct Counter {
        out: WireId<WBeat>,
        sent: u64,
    }

    impl Component for Counter {
        fn tick(&mut self, ctx: &mut TickCtx<'_>) {
            if ctx.pool.can_push(self.out, ctx.cycle) {
                ctx.pool
                    .push(self.out, ctx.cycle, WBeat::full(self.sent, false));
                self.sent += 1;
            }
        }

        fn name(&self) -> &str {
            "counter"
        }
    }

    #[test]
    fn component_drives_wire_through_ctx() {
        let mut pool = ChannelPool::new();
        let out = pool.new_wire::<WBeat>(4);
        let mut c = Counter { out, sent: 0 };
        for cycle in 0..3 {
            let mut ctx = TickCtx {
                cycle,
                pool: &mut pool,
            };
            c.tick(&mut ctx);
        }
        assert_eq!(c.sent, 3);
        assert_eq!(pool.pop(out, 3).map(|b| b.data), Some(0));
        assert_eq!(c.name(), "counter");
    }
}

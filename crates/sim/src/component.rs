//! The component trait every simulated block implements.

use std::any::Any;

use crate::pool::ChannelPool;
use crate::Cycle;

/// Per-cycle context handed to every component: the current cycle and
/// mutable access to all wires.
#[derive(Debug)]
pub struct TickCtx<'a> {
    /// The cycle being evaluated.
    pub cycle: Cycle,
    /// All wires in the system; components address theirs by handle.
    pub pool: &'a mut ChannelPool,
}

/// A simulated hardware block, ticked once per clock cycle.
///
/// Components communicate exclusively through wires in the shared
/// [`ChannelPool`]; the register-per-hop wire semantics make the system's
/// behaviour independent of tick order (see the crate docs).
///
/// The `Any` supertrait lets a [`Sim`](crate::Sim) hand back concrete
/// component references for post-run inspection via
/// [`Sim::component`](crate::Sim::component).
pub trait Component: Any {
    /// Advances the component by one clock cycle.
    fn tick(&mut self, ctx: &mut TickCtx<'_>);

    /// A short human-readable instance name for traces and diagnostics.
    fn name(&self) -> &str {
        "component"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use axi4::WBeat;
    use crate::pool::WireId;

    struct Counter {
        out: WireId<WBeat>,
        sent: u64,
    }

    impl Component for Counter {
        fn tick(&mut self, ctx: &mut TickCtx<'_>) {
            if ctx.pool.can_push(self.out, ctx.cycle) {
                ctx.pool.push(self.out, ctx.cycle, WBeat::full(self.sent, false));
                self.sent += 1;
            }
        }

        fn name(&self) -> &str {
            "counter"
        }
    }

    #[test]
    fn component_drives_wire_through_ctx() {
        let mut pool = ChannelPool::new();
        let out = pool.new_wire::<WBeat>(4);
        let mut c = Counter { out, sent: 0 };
        for cycle in 0..3 {
            let mut ctx = TickCtx {
                cycle,
                pool: &mut pool,
            };
            c.tick(&mut ctx);
        }
        assert_eq!(c.sent, 3);
        assert_eq!(pool.pop(out, 3).map(|b| b.data), Some(0));
        assert_eq!(c.name(), "counter");
    }
}

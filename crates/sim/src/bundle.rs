//! AXI channel bundles: one handle per channel of an AXI4 port.

use axi4::{ArBeat, AwBeat, BBeat, RBeat, WBeat};

use crate::pool::{ChannelPool, WireId};
use crate::topology::{PortDecl, PortDir};

/// Queue capacities for the five wires of an [`AxiBundle`].
///
/// The defaults model shallow register slices (two entries per channel) as
/// found between IPs in PULP-style interconnects.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BundleCapacity {
    /// Write-address channel depth.
    pub aw: usize,
    /// Write-data channel depth.
    pub w: usize,
    /// Write-response channel depth.
    pub b: usize,
    /// Read-address channel depth.
    pub ar: usize,
    /// Read-data channel depth.
    pub r: usize,
}

impl BundleCapacity {
    /// Uniform depth across all five channels.
    pub const fn uniform(depth: usize) -> Self {
        Self {
            aw: depth,
            w: depth,
            b: depth,
            ar: depth,
            r: depth,
        }
    }
}

impl Default for BundleCapacity {
    fn default() -> Self {
        Self::uniform(2)
    }
}

/// Wire handles for one AXI4 port: the five channels between exactly one
/// upstream and one downstream component.
///
/// The bundle is direction-agnostic — the component that *pushes* AW/W/AR
/// and *pops* B/R is the manager side; its peer is the subordinate side.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct AxiBundle {
    /// Write-address channel.
    pub aw: WireId<AwBeat>,
    /// Write-data channel.
    pub w: WireId<WBeat>,
    /// Write-response channel.
    pub b: WireId<BBeat>,
    /// Read-address channel.
    pub ar: WireId<ArBeat>,
    /// Read-data channel.
    pub r: WireId<RBeat>,
}

impl AxiBundle {
    /// Allocates the five wires of a new bundle from `pool`.
    pub fn new(pool: &mut ChannelPool, capacity: BundleCapacity) -> Self {
        Self {
            aw: pool.new_wire(capacity.aw),
            w: pool.new_wire(capacity.w),
            b: pool.new_wire(capacity.b),
            ar: pool.new_wire(capacity.ar),
            r: pool.new_wire(capacity.r),
        }
    }

    /// Allocates a bundle with the default shallow capacities.
    pub fn with_defaults(pool: &mut ChannelPool) -> Self {
        Self::new(pool, BundleCapacity::default())
    }

    /// Port declarations for the wires of this bundle with explicit
    /// per-channel directions: `req` applies to AW/W/AR, `rsp` to B/R.
    fn ports_with(&self, req: PortDir, rsp: PortDir) -> Vec<PortDecl> {
        vec![
            PortDecl::new("AW", self.aw.index(), req),
            PortDecl::new("W", self.w.index(), req),
            PortDecl::new("B", self.b.index(), rsp),
            PortDecl::new("AR", self.ar.index(), req),
            PortDecl::new("R", self.r.index(), rsp),
        ]
    }

    /// Declarations for the manager side of this port: drives AW/W/AR,
    /// consumes B/R (see [`Component::ports`](crate::Component::ports)).
    pub fn manager_ports(&self) -> Vec<PortDecl> {
        self.ports_with(PortDir::Drive, PortDir::Consume)
    }

    /// Declarations for the subordinate side of this port: consumes
    /// AW/W/AR, drives B/R.
    pub fn subordinate_ports(&self) -> Vec<PortDecl> {
        self.ports_with(PortDir::Consume, PortDir::Drive)
    }

    /// Declarations for a passive observer of this port (protocol
    /// monitors, trace probes): peeks all five channels, sources and sinks
    /// nothing.
    pub fn observer_ports(&self) -> Vec<PortDecl> {
        self.ports_with(PortDir::Observe, PortDir::Observe)
    }

    /// Returns `true` if all five wires are empty — no beats in flight on
    /// this port.
    pub fn is_idle(&self, pool: &ChannelPool) -> bool {
        pool.is_empty(self.aw)
            && pool.is_empty(self.w)
            && pool.is_empty(self.b)
            && pool.is_empty(self.ar)
            && pool.is_empty(self.r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use axi4::TxnId;

    #[test]
    fn bundle_allocates_five_wires() {
        let mut pool = ChannelPool::new();
        let b = AxiBundle::with_defaults(&mut pool);
        assert_eq!(pool.wire_count(), 5);
        assert!(b.is_idle(&pool));
    }

    #[test]
    fn capacities_apply_per_channel() {
        let mut pool = ChannelPool::new();
        let cap = BundleCapacity {
            aw: 1,
            w: 16,
            b: 2,
            ar: 8,
            r: 4,
        };
        let b = AxiBundle::new(&mut pool, cap);
        // Fill W to its larger capacity over multiple cycles.
        for c in 0..16u64 {
            assert!(pool.can_push(b.w, c));
            pool.push(b.w, c, WBeat::full(c, false));
        }
        assert!(!pool.can_push(b.w, 17));
        assert_eq!(pool.len(b.w), 16);
    }

    #[test]
    fn idle_detects_inflight_beats() {
        let mut pool = ChannelPool::new();
        let b = AxiBundle::with_defaults(&mut pool);
        pool.push(b.b, 0, BBeat::okay(TxnId::new(0)));
        assert!(!b.is_idle(&pool));
        pool.pop(b.b, 1);
        assert!(b.is_idle(&pool));
    }

    #[test]
    fn uniform_default_depth() {
        assert_eq!(BundleCapacity::default(), BundleCapacity::uniform(2));
        assert_eq!(BundleCapacity::uniform(3).r, 3);
    }
}

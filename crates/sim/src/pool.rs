//! Typed wire handles and the channel pool that owns all wires.
//!
//! Storage is arena-backed: each of the five AXI channels keeps one
//! contiguous slot arena plus a table of [`Ring`] descriptors (one per
//! wire) indexing into it. Allocating a wire extends the arena once at
//! construction; pushing and popping beats never allocates. The arena
//! layout is what makes the compiled arena kernel's bulk primitives
//! ([`ChannelPool::batch_relay`]) a ring-to-ring copy instead of a
//! per-beat `VecDeque` shuffle.

use std::fmt;
use std::marker::PhantomData;

use axi4::{ArBeat, AwBeat, BBeat, RBeat, WBeat};

use crate::wire::{PushError, Ring, WireStats};
use crate::Cycle;

/// A typed handle to a pool-owned wire.
///
/// Handles are cheap copies; components hold handles, the pool holds wires.
pub struct WireId<T> {
    index: usize,
    _marker: PhantomData<fn() -> T>,
}

impl<T> WireId<T> {
    fn new(index: usize) -> Self {
        Self {
            index,
            _marker: PhantomData,
        }
    }

    /// Returns the pool-internal index, useful only for debug output.
    pub fn index(self) -> usize {
        self.index
    }
}

// Manual impls: `derive` would bound them on `T`, but handles are plain
// indices and always copyable (C-STRUCT-BOUNDS).
impl<T> Clone for WireId<T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<T> Copy for WireId<T> {}

impl<T> PartialEq for WireId<T> {
    fn eq(&self, other: &Self) -> bool {
        self.index == other.index
    }
}

impl<T> Eq for WireId<T> {}

impl<T> fmt::Debug for WireId<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "WireId<{}>({})", std::any::type_name::<T>(), self.index)
    }
}

mod sealed {
    pub trait Sealed {}
    impl Sealed for axi4::AwBeat {}
    impl Sealed for axi4::WBeat {}
    impl Sealed for axi4::BBeat {}
    impl Sealed for axi4::ArBeat {}
    impl Sealed for axi4::RBeat {}
}

/// One channel's wires: a contiguous slot arena shared by every ring of
/// the channel, the per-wire ring descriptors, and the per-wire tap
/// buffers. Public only because the sealed [`Channel`] trait must name it;
/// all fields are private to the pool.
#[doc(hidden)]
#[derive(Debug)]
pub struct Lane<T> {
    arena: Vec<Option<(Cycle, T)>>,
    rings: Vec<Ring>,
    taps: Vec<Option<Vec<(Cycle, T)>>>,
}

impl<T> Default for Lane<T> {
    fn default() -> Self {
        Self {
            arena: Vec::new(),
            rings: Vec::new(),
            taps: Vec::new(),
        }
    }
}

/// Beat types that can travel on pool-managed wires: the five AXI channel
/// payloads. Sealed — the pool's storage is concrete per channel.
pub trait Channel: sealed::Sealed + Copy {
    /// Short channel name for diagnostics ("AW", "W", "B", "AR", "R").
    const LABEL: &'static str;
    /// Dense channel index in AW/W/B/AR/R order (kernel bookkeeping).
    #[doc(hidden)]
    const SLOT: usize;
    #[doc(hidden)]
    fn lane(pool: &ChannelPool) -> &Lane<Self>;
    #[doc(hidden)]
    fn lane_mut(pool: &mut ChannelPool) -> &mut Lane<Self>;
}

macro_rules! impl_channel {
    ($ty:ty, $field:ident, $label:literal, $slot:literal) => {
        impl Channel for $ty {
            const LABEL: &'static str = $label;
            const SLOT: usize = $slot;
            #[inline(always)]
            fn lane(pool: &ChannelPool) -> &Lane<Self> {
                &pool.$field
            }
            #[inline(always)]
            fn lane_mut(pool: &mut ChannelPool) -> &mut Lane<Self> {
                &mut pool.$field
            }
        }
    };
}

impl_channel!(AwBeat, aw, "AW", 0);
impl_channel!(WBeat, w, "W", 1);
impl_channel!(BBeat, b, "B", 2);
impl_channel!(ArBeat, ar, "AR", 3);
impl_channel!(RBeat, r, "R", 4);

/// Number of distinct AXI channels ([`Channel::SLOT`] range).
pub(crate) const CHANNEL_SLOTS: usize = 5;

/// Maps a channel label (as found in [`PortDecl`](crate::PortDecl)) to its
/// dense [`Channel::SLOT`] index.
pub(crate) fn channel_slot(label: &str) -> Option<usize> {
    match label {
        "AW" => Some(AwBeat::SLOT),
        "W" => Some(WBeat::SLOT),
        "B" => Some(BBeat::SLOT),
        "AR" => Some(ArBeat::SLOT),
        "R" => Some(RBeat::SLOT),
        _ => None,
    }
}

/// One successful push or pop, recorded while the event kernel is driving
/// ticks so it can translate wire activity into component wakes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) struct WireEvent {
    /// [`Channel::SLOT`] of the touched wire's channel.
    pub slot: usize,
    /// Pool-internal wire index within the channel.
    pub wire: usize,
    /// `true` for a push (new beat, visible next cycle), `false` for a pop
    /// (freed capacity / new front beat).
    pub push: bool,
}

/// Precomputed wake masks the arena kernel arms on the pool: per flat wire
/// index, the set of schedule positions that depend on the wire. With the
/// masks armed, every successful push and pop ORs at most two words into
/// the pool's pending wake accumulators instead of growing an event log —
/// the arena kernel's replacement for [`WireEvent`] recording.
#[derive(Debug, Default)]
pub(crate) struct WakeTables {
    /// First flat wire index per channel slot.
    pub slot_base: [usize; CHANNEL_SLOTS],
    /// `flat_wire` → schedule positions of every endpoint (drive, consume,
    /// observe) of the wire.
    pub all: Vec<u64>,
    /// `flat_wire` → schedule positions of observe-only endpoints. Pops
    /// never change what a tap-driven observer sees, so observers are
    /// excluded from pop wakes.
    pub obs: Vec<u64>,
}

/// What an access-sanitizer check caught (see
/// [`SanitizerViolation`](crate::SanitizerViolation)).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SanitizerKind {
    /// A component pushed onto a wire it does not declare with
    /// [`PortDir::Drive`](crate::PortDir::Drive).
    UndeclaredPush,
    /// A component popped a wire it does not declare with
    /// [`PortDir::Consume`](crate::PortDir::Consume).
    UndeclaredPop,
    /// A sleeping component turned out to be due without any declared wire
    /// or couple edge having woken it — it reacted to state outside its
    /// declared dependence edges (the missed-wake cross-check; `channel`
    /// and `wire` are placeholders for this kind).
    UndeclaredWake,
}

/// Declared-access tables the pool checks pushes and pops against while
/// the sanitizer is armed. Built by the sim from [`Component::ports`]
/// (see [`crate::Component`]) — the same declarations the static
/// dependence analyzer consumes, so a run that stays sanitizer-clean has
/// runtime behaviour within its statically declared dependence graph.
#[derive(Debug, Default)]
pub(crate) struct SanitizerTables {
    /// First flat wire index per channel slot.
    pub slot_base: [usize; CHANNEL_SLOTS],
    /// Total wires across all channels (row stride).
    pub total_wires: usize,
    /// `component * total_wires + flat_wire` → declared `Drive`.
    pub drive: Vec<bool>,
    /// `component * total_wires + flat_wire` → declared `Consume`.
    pub consume: Vec<bool>,
    /// Port-less components: exempt — they declare nothing by design and
    /// the dependence graph already treats them conservatively.
    pub opaque: Vec<bool>,
}

/// One raw sanitizer hit, recorded by the pool mid-tick and resolved into
/// a named [`SanitizerViolation`](crate::SanitizerViolation) by the sim
/// after the cycle.
#[derive(Clone, Copy, Debug)]
pub(crate) struct RawSanViolation {
    pub component: usize,
    pub cycle: Cycle,
    pub channel: &'static str,
    pub wire: usize,
    pub kind: SanitizerKind,
}

/// The structured record of a refused [`ChannelPool::push`]: who pushed,
/// where, when, and why. Replaces the kernel's former hard panic so a
/// misbehaving component turns into a diagnosable conformance finding
/// instead of a crash.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PushRefusal {
    /// Registration index of the component whose tick performed the push,
    /// if the push happened inside a [`Sim`](crate::Sim) tick (resolve it
    /// to a name via [`Sim::component_name`](crate::Sim::component_name)).
    pub component: Option<usize>,
    /// Channel label ("AW", "W", "B", "AR", "R").
    pub channel: &'static str,
    /// Pool-internal wire index within the channel.
    pub wire: usize,
    /// Cycle of the refused push.
    pub cycle: Cycle,
    /// Why the wire refused.
    pub error: PushError,
}

impl fmt::Display for PushRefusal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cycle {:>8}: push on {} wire {} refused ({})",
            self.cycle, self.channel, self.wire, self.error
        )?;
        if let Some(c) = self.component {
            write!(f, " by component #{c}")?;
        }
        Ok(())
    }
}

/// Upper bound on retained [`PushRefusal`] records; further refusals only
/// bump the overflow counter.
const MAX_REFUSALS: usize = 256;

/// Lifetime throughput of one wire, keyed the same way as
/// [`TopoWire`](crate::TopoWire) — the coverage-harvest view of the pool
/// (see [`ChannelPool::wire_activity`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireActivity {
    /// Channel label: `"AW"`, `"W"`, `"B"`, `"AR"`, or `"R"`.
    pub channel: &'static str,
    /// Allocation index within the channel.
    pub index: usize,
    /// Beats ever accepted onto the wire.
    pub pushes: u64,
}

/// Owns every wire in a simulated system and hands out typed [`WireId`]
/// handles.
///
/// Centralised ownership lets any number of components share access to the
/// same wires without `Rc<RefCell<…>>`: components receive
/// `&mut ChannelPool` in their tick and address wires by handle.
#[derive(Debug, Default)]
pub struct ChannelPool {
    aw: Lane<AwBeat>,
    w: Lane<WBeat>,
    b: Lane<BBeat>,
    ar: Lane<ArBeat>,
    r: Lane<RBeat>,
    // Beats currently on any wire, maintained push/pop-incrementally so the
    // kernel's idle check is O(1) instead of a walk over every wire.
    in_flight: u64,
    // Beats ever accepted onto any wire, maintained incrementally so
    // activity watchers (the watchdog) read it in O(1).
    total_pushed: u64,
    // Registration index of the component currently being ticked, stamped
    // by the kernel so refusals can name their culprit.
    owner: Option<usize>,
    refusals: Vec<PushRefusal>,
    refusals_dropped: u64,
    // Successful push/pop log, captured only while the event kernel has
    // recording on; drained after every tick to derive wakes.
    events: Vec<WireEvent>,
    recording: bool,
    // Wake-mask accumulators, armed only by the arena kernel (`None` =
    // off). `actor_bit`/`actor_later` describe the component currently
    // ticking in schedule-position space, refreshed per tick.
    wake: Option<Box<WakeTables>>,
    wake_now: u64,
    wake_next: u64,
    wake_any: bool,
    wake_events: u64,
    actor_bit: u64,
    actor_later: u64,
    // Beats moved by `batch_relay`, drained into the kernel stats.
    batched_beats: u64,
    // Access-sanitizer tables (`None` = sanitizer off, the default; checks
    // cost one `is_some` branch per successful push/pop when off).
    san: Option<SanitizerTables>,
    san_hits: Vec<RawSanViolation>,
}

impl ChannelPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a new wire with the given capacity and returns its handle.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new_wire<T: Channel>(&mut self, capacity: usize) -> WireId<T> {
        let lane = T::lane_mut(self);
        let base = lane.arena.len();
        let ring = Ring::new(base, capacity);
        lane.arena.resize_with(base + capacity, || None);
        lane.rings.push(ring);
        lane.taps.push(None);
        WireId::new(lane.rings.len() - 1)
    }

    /// Returns `true` if a push onto `id` at `cycle` would be accepted.
    pub fn can_push<T: Channel>(&self, id: WireId<T>, cycle: Cycle) -> bool {
        T::lane(self).rings[id.index].can_push(cycle)
    }

    /// Pushes a beat; visible to consumers from the next cycle.
    ///
    /// Callers must check [`ChannelPool::can_push`] first. A refused push
    /// (backpressure or double-push) is not a panic: the beat is dropped
    /// and a structured [`PushRefusal`] — component index, channel, wire,
    /// cycle, reason — is recorded and surfaced through
    /// [`ChannelPool::push_refusals`] and the conformance report. Use
    /// [`ChannelPool::try_push`] to handle refusal as data instead.
    pub fn push<T: Channel>(&mut self, id: WireId<T>, cycle: Cycle, beat: T) {
        if let Err(error) = self.try_push(id, cycle, beat) {
            if self.refusals.len() < MAX_REFUSALS {
                self.refusals.push(PushRefusal {
                    component: self.owner,
                    channel: T::LABEL,
                    wire: id.index,
                    cycle,
                    error,
                });
            } else {
                self.refusals_dropped += 1;
            }
        }
    }

    /// Pushes a beat, reporting refusal instead of panicking.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] on backpressure, [`PushError::Busy`] on a second
    /// push in the same cycle.
    pub fn try_push<T: Channel>(
        &mut self,
        id: WireId<T>,
        cycle: Cycle,
        beat: T,
    ) -> Result<(), PushError> {
        let lane = T::lane_mut(self);
        let slot = lane.rings[id.index].try_push(cycle)?;
        lane.arena[slot] = Some((cycle, beat));
        if let Some(tap) = &mut lane.taps[id.index] {
            tap.push((cycle, beat));
        }
        self.in_flight += 1;
        self.total_pushed += 1;
        if self.recording {
            self.events.push(WireEvent {
                slot: T::SLOT,
                wire: id.index,
                push: true,
            });
        }
        if let Some(wk) = &self.wake {
            let all = wk.all[wk.slot_base[T::SLOT] + id.index];
            self.wake_now |= all & self.actor_later;
            self.wake_next |= all & !self.actor_bit;
            self.wake_any = true;
            self.wake_events += 1;
        }
        if self.san.is_some() {
            self.san_check(T::SLOT, T::LABEL, id.index, cycle, true);
        }
        Ok(())
    }

    /// Returns the front beat if one is visible at `cycle`.
    pub fn peek<T: Channel>(&self, id: WireId<T>, cycle: Cycle) -> Option<&T> {
        let lane = T::lane(self);
        let slot = lane.rings[id.index].front_candidate(cycle)?;
        match &lane.arena[slot] {
            Some((pushed, beat)) if *pushed < cycle => Some(beat),
            _ => None,
        }
    }

    /// Starts recording every accepted push onto `id` into its tap buffer.
    /// The collector must drain regularly (see [`ChannelPool::drain_tap`]).
    pub fn enable_tap<T: Channel>(&mut self, id: WireId<T>) {
        T::lane_mut(self).taps[id.index].get_or_insert_with(Vec::new);
    }

    /// Moves all tapped `(push_cycle, beat)` records of `id` into `out`,
    /// oldest first. No-op on an untapped wire.
    pub fn drain_tap<T: Channel>(&mut self, id: WireId<T>, out: &mut Vec<(Cycle, T)>) {
        if let Some(tap) = &mut T::lane_mut(self).taps[id.index] {
            out.append(tap);
        }
    }

    /// Stamps the component whose tick is currently executing (kernel use;
    /// refusals recorded while an owner is set carry its index).
    pub fn set_owner(&mut self, owner: Option<usize>) {
        self.owner = owner;
    }

    /// Structured records of refused [`ChannelPool::push`] calls, oldest
    /// first (bounded; see [`ChannelPool::refusals_dropped`]). A correct
    /// system keeps this empty.
    pub fn push_refusals(&self) -> &[PushRefusal] {
        &self.refusals
    }

    /// Refusals beyond the retention bound, counted instead of stored.
    pub fn refusals_dropped(&self) -> u64 {
        self.refusals_dropped
    }

    /// Pops the front beat if one is visible at `cycle` (at most once per
    /// wire per cycle).
    pub fn pop<T: Channel>(&mut self, id: WireId<T>, cycle: Cycle) -> Option<T> {
        let lane = T::lane_mut(self);
        let ring = &mut lane.rings[id.index];
        let slot = ring.front_candidate(cycle)?;
        let beat = match &lane.arena[slot] {
            Some((pushed, _)) if *pushed < cycle => {
                ring.commit_pop(cycle);
                lane.arena[slot].take().map(|(_, beat)| beat)
            }
            _ => return None,
        };
        self.in_flight -= 1;
        if self.recording {
            self.events.push(WireEvent {
                slot: T::SLOT,
                wire: id.index,
                push: false,
            });
        }
        if let Some(wk) = &self.wake {
            let flat = wk.slot_base[T::SLOT] + id.index;
            let nonobs = wk.all[flat] & !wk.obs[flat];
            self.wake_now |= nonobs & self.actor_later;
            self.wake_next |= nonobs & !self.actor_later & !self.actor_bit;
            self.wake_any = true;
            self.wake_events += 1;
        }
        if self.san.is_some() {
            self.san_check(T::SLOT, T::LABEL, id.index, cycle, false);
        }
        beat
    }

    /// Moves up to `max` queued beats from `from` to `to` in one ring
    /// sweep, as if a relay component had popped one beat and pushed it
    /// onward on each of the cycles `start`, `start + 1`, …
    ///
    /// Beat `k` is popped and re-pushed at cycle `start + k`, so every
    /// stamp, visibility window, one-push/one-pop guard, tap record, and
    /// stats counter lands exactly where the per-cycle execution would
    /// have put it. The sweep stops early at the first cycle where the
    /// per-cycle relay would have stalled (front beat not yet visible, or
    /// `to` without headroom); callers size `max` from
    /// [`ChannelPool::relayable`] and [`ChannelPool::headroom`] so that a
    /// well-formed batch window never stops early. Returns the number of
    /// beats moved.
    ///
    /// This is the arena kernel's bulk-transfer primitive: one call
    /// replaces `moved` component ticks on an uncontended point-to-point
    /// path (see the batching plan in `realm-lint`).
    pub fn batch_relay<T: Channel>(
        &mut self,
        from: WireId<T>,
        to: WireId<T>,
        start: Cycle,
        max: u64,
    ) -> u64 {
        assert_ne!(from.index, to.index, "batch_relay needs two distinct wires");
        let moved;
        {
            let lane = T::lane_mut(self);
            let (lo, hi) = if from.index < to.index {
                (from.index, to.index)
            } else {
                (to.index, from.index)
            };
            let (left, right) = lane.rings.split_at_mut(hi);
            let (src, dst) = if from.index < to.index {
                (&mut left[lo], &mut right[0])
            } else {
                (&mut right[0], &mut left[lo])
            };
            let mut k = 0u64;
            while k < max {
                let cycle = start + k;
                let Some(slot) = src.front_candidate(cycle) else {
                    break;
                };
                let visible = matches!(&lane.arena[slot], Some((pushed, _)) if *pushed < cycle);
                if !visible || !dst.can_push(cycle) {
                    break;
                }
                let (_, beat) = lane.arena[slot].take().expect("front slot occupied");
                src.commit_pop(cycle);
                let dst_slot = dst.try_push(cycle).expect("headroom checked");
                lane.arena[dst_slot] = Some((cycle, beat));
                if let Some(tap) = &mut lane.taps[to.index] {
                    tap.push((cycle, beat));
                }
                k += 1;
            }
            moved = k;
        }
        if moved > 0 {
            // One pop and one push per beat: in-flight is net zero, the
            // lifetime counters advance by the beats moved.
            self.total_pushed += moved;
            self.batched_beats += moved;
            if self.recording {
                for _ in 0..moved {
                    self.events.push(WireEvent {
                        slot: T::SLOT,
                        wire: from.index,
                        push: false,
                    });
                    self.events.push(WireEvent {
                        slot: T::SLOT,
                        wire: to.index,
                        push: true,
                    });
                }
            }
            if let Some(wk) = &self.wake {
                let from_flat = wk.slot_base[T::SLOT] + from.index;
                let to_flat = wk.slot_base[T::SLOT] + to.index;
                let nonobs = wk.all[from_flat] & !wk.obs[from_flat];
                let all = wk.all[to_flat];
                self.wake_now |= (nonobs | all) & self.actor_later;
                self.wake_next |=
                    (all & !self.actor_bit) | (nonobs & !self.actor_later & !self.actor_bit);
                self.wake_any = true;
                self.wake_events += 2 * moved;
            }
            if self.san.is_some() {
                // One check per side: a batch is one declared access
                // pattern, not `moved` independent ones.
                self.san_check(T::SLOT, T::LABEL, from.index, start, false);
                self.san_check(T::SLOT, T::LABEL, to.index, start, true);
            }
        }
        moved
    }

    /// Longest prefix of beats on `id` a relay starting at `start` could
    /// move at one beat per cycle: beat `k` counts if it is visible at
    /// cycle `start + k` (pushed strictly before it). Zero if the wire was
    /// already popped at `start`.
    pub fn relayable<T: Channel>(&self, id: WireId<T>, start: Cycle) -> u64 {
        let lane = T::lane(self);
        let ring = &lane.rings[id.index];
        if ring.is_empty() || ring.front_candidate(start).is_none() {
            return 0;
        }
        let mut k = 0u64;
        while (k as usize) < ring.len() {
            let slot = ring.nth_slot(k as u32);
            match &lane.arena[slot] {
                Some((pushed, _)) if *pushed < start + k => k += 1,
                _ => break,
            }
        }
        k
    }

    /// Free slots on `id` available to pushes starting at `start` (zero if
    /// the wire already accepted a beat at `start`). A producer pushing
    /// one beat per cycle from `start` on can sustain exactly this many
    /// beats without feedback from its consumer — the capacity bound on a
    /// batch window.
    pub fn headroom<T: Channel>(&self, id: WireId<T>, start: Cycle) -> u64 {
        let ring = &T::lane(self).rings[id.index];
        if ring.pushed_at(start) {
            return 0;
        }
        (ring.capacity() - ring.len()) as u64
    }

    /// Number of in-flight beats on the wire.
    pub fn len<T: Channel>(&self, id: WireId<T>) -> usize {
        T::lane(self).rings[id.index].len()
    }

    /// Returns `true` if the wire has no in-flight beats.
    pub fn is_empty<T: Channel>(&self, id: WireId<T>) -> bool {
        T::lane(self).rings[id.index].is_empty()
    }

    /// Occupancy and throughput counters for the wire.
    pub fn stats<T: Channel>(&self, id: WireId<T>) -> WireStats {
        T::lane(self).rings[id.index].stats()
    }

    /// Total number of wires across all five channels (diagnostics).
    pub fn wire_count(&self) -> usize {
        self.aw.rings.len()
            + self.w.rings.len()
            + self.b.rings.len()
            + self.ar.rings.len()
            + self.r.rings.len()
    }

    /// Identity and capacity of every allocated wire, channel by channel
    /// in AW/W/B/AR/R order — the wire side of a
    /// [`Topology`](crate::Topology) snapshot.
    pub fn wire_table(&self) -> Vec<crate::TopoWire> {
        fn rows<T: Channel>(lane: &Lane<T>) -> impl Iterator<Item = crate::TopoWire> + '_ {
            lane.rings
                .iter()
                .enumerate()
                .map(|(index, ring)| crate::TopoWire {
                    channel: T::LABEL,
                    index,
                    capacity: ring.capacity(),
                })
        }
        rows(&self.aw)
            .chain(rows(&self.w))
            .chain(rows(&self.b))
            .chain(rows(&self.ar))
            .chain(rows(&self.r))
            .collect()
    }

    /// Throughput of every allocated wire, channel by channel in
    /// AW/W/B/AR/R order — the wire side of a coverage harvest (see
    /// [`Sim::coverage`](crate::Sim::coverage)). A wire with a nonzero
    /// push count is a topology edge the run actually exercised.
    pub fn wire_activity(&self) -> Vec<WireActivity> {
        fn rows<T: Channel>(lane: &Lane<T>) -> impl Iterator<Item = WireActivity> + '_ {
            lane.rings
                .iter()
                .enumerate()
                .map(|(index, ring)| WireActivity {
                    channel: T::LABEL,
                    index,
                    pushes: ring.stats().total_pushed,
                })
        }
        rows(&self.aw)
            .chain(rows(&self.w))
            .chain(rows(&self.b))
            .chain(rows(&self.ar))
            .chain(rows(&self.r))
            .collect()
    }

    /// Beats currently in flight across all wires (O(1)).
    ///
    /// Zero means no beat is buffered anywhere — the precondition for the
    /// kernel's idle-skip: with empty wires, component wake hints alone
    /// bound when anything can next happen.
    pub fn total_in_flight(&self) -> u64 {
        debug_assert_eq!(
            self.in_flight,
            {
                fn occupancy<T>(lane: &Lane<T>) -> u64 {
                    lane.rings.iter().map(|r| r.len() as u64).sum()
                }
                occupancy(&self.aw)
                    + occupancy(&self.w)
                    + occupancy(&self.b)
                    + occupancy(&self.ar)
                    + occupancy(&self.r)
            },
            "in-flight counter out of sync with wire occupancy"
        );
        self.in_flight
    }

    /// Total beats ever pushed onto any wire (O(1)) — a monotone activity
    /// counter; if it stops moving, no beat is flowing anywhere in the
    /// system.
    pub fn total_pushes(&self) -> u64 {
        debug_assert_eq!(
            self.total_pushed,
            {
                fn sum<T>(lane: &Lane<T>) -> u64 {
                    lane.rings.iter().map(|r| r.stats().total_pushed).sum()
                }
                sum(&self.aw) + sum(&self.w) + sum(&self.b) + sum(&self.ar) + sum(&self.r)
            },
            "push counter out of sync with per-wire stats"
        );
        self.total_pushed
    }

    /// Arms (or disarms, with `None`) the access sanitizer. While armed,
    /// every successful push and pop performed inside a component tick is
    /// checked against the tables; mismatches are recorded, never blocked —
    /// the sanitizer observes, results stay exact.
    pub(crate) fn set_sanitizer(&mut self, tables: Option<SanitizerTables>) {
        self.san = tables;
        if self.san.is_none() {
            self.san_hits.clear();
        }
    }

    /// Checks one successful access against the declared-access tables.
    /// Accesses outside any tick (`owner == None` — construction, direct
    /// harness pokes between runs) are not attributable and not checked.
    fn san_check(
        &mut self,
        slot: usize,
        channel: &'static str,
        wire: usize,
        cycle: Cycle,
        push: bool,
    ) {
        let Some(owner) = self.owner else { return };
        let Some(tables) = self.san.as_ref() else {
            return;
        };
        // Out-of-table owners (components added after the tables were
        // built) and opaque components are exempt.
        if tables.opaque.get(owner).copied().unwrap_or(true) {
            return;
        }
        let flat = owner * tables.total_wires + tables.slot_base[slot] + wire;
        let table = if push { &tables.drive } else { &tables.consume };
        if table.get(flat).copied().unwrap_or(false) {
            return;
        }
        self.san_hits.push(RawSanViolation {
            component: owner,
            cycle,
            channel,
            wire,
            kind: if push {
                SanitizerKind::UndeclaredPush
            } else {
                SanitizerKind::UndeclaredPop
            },
        });
    }

    /// `true` if any sanitizer hit is waiting to be drained (O(1)).
    pub(crate) fn has_san_hits(&self) -> bool {
        !self.san_hits.is_empty()
    }

    /// Moves all recorded sanitizer hits into `out`, oldest first.
    pub(crate) fn drain_san_hits_into(&mut self, out: &mut Vec<RawSanViolation>) {
        out.append(&mut self.san_hits);
    }

    /// Turns the push/pop event log on or off (event-kernel use). Turning
    /// recording off discards any not-yet-drained events.
    pub(crate) fn set_recording(&mut self, on: bool) {
        self.recording = on;
        if !on {
            self.events.clear();
        }
    }

    /// Moves all recorded [`WireEvent`]s into `out`, oldest first.
    pub(crate) fn drain_events_into(&mut self, out: &mut Vec<WireEvent>) {
        out.append(&mut self.events);
    }

    /// Arms (or disarms, with `None`) the wake-mask accumulators the arena
    /// kernel reads instead of the event log.
    pub(crate) fn set_wake_tables(&mut self, tables: Option<Box<WakeTables>>) {
        self.wake = tables;
        self.wake_now = 0;
        self.wake_next = 0;
        self.wake_any = false;
        self.actor_bit = 0;
        self.actor_later = !0;
    }

    /// `true` if wake masks are armed.
    pub(crate) fn wake_armed(&self) -> bool {
        self.wake.is_some()
    }

    /// Declares the schedule position of the component about to tick, so
    /// wake accumulation can split same-cycle (later peers) from
    /// next-cycle wakes. Position `u32::MAX` means "outside any tick":
    /// everything wakes both now and next.
    #[inline]
    pub(crate) fn begin_actor(&mut self, pos: u32) {
        if pos == u32::MAX {
            self.actor_bit = 0;
            self.actor_later = !0;
        } else {
            self.actor_bit = 1u64 << pos;
            self.actor_later = !(self.actor_bit | (self.actor_bit - 1));
        }
    }

    /// Drains the pending wake accumulators: `(due_now, due_next,
    /// any_event)` since the previous call.
    #[inline]
    pub(crate) fn take_wakes(&mut self) -> (u64, u64, bool) {
        let out = (self.wake_now, self.wake_next, self.wake_any);
        self.wake_now = 0;
        self.wake_next = 0;
        self.wake_any = false;
        out
    }

    /// Drains the wire-event count accumulated while wake masks were armed
    /// (the arena kernel's `wire_events` contribution).
    pub(crate) fn take_wake_events(&mut self) -> u64 {
        std::mem::take(&mut self.wake_events)
    }

    /// Drains the count of beats moved by [`ChannelPool::batch_relay`].
    pub(crate) fn take_batched_beats(&mut self) -> u64 {
        std::mem::take(&mut self.batched_beats)
    }

    /// In-flight beats on the wire addressed by `(slot, index)` — the
    /// untyped twin of [`ChannelPool::len`] for kernel bookkeeping.
    pub(crate) fn slot_len(&self, slot: usize, index: usize) -> usize {
        match slot {
            0 => self.aw.rings[index].len(),
            1 => self.w.rings[index].len(),
            2 => self.b.rings[index].len(),
            3 => self.ar.rings[index].len(),
            4 => self.r.rings[index].len(),
            _ => 0,
        }
    }

    /// Wire counts per channel in [`Channel::SLOT`] order.
    pub(crate) fn wire_counts(&self) -> [usize; CHANNEL_SLOTS] {
        [
            self.aw.rings.len(),
            self.w.rings.len(),
            self.b.rings.len(),
            self.ar.rings.len(),
            self.r.rings.len(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use axi4::TxnId;

    #[test]
    fn typed_wires_are_independent() {
        let mut pool = ChannelPool::new();
        let w0 = pool.new_wire::<WBeat>(2);
        let b0 = pool.new_wire::<BBeat>(2);
        // Same index, different channels.
        assert_eq!(w0.index(), 0);
        assert_eq!(b0.index(), 0);

        pool.push(w0, 0, WBeat::full(7, true));
        pool.push(b0, 0, BBeat::okay(TxnId::new(1)));
        assert_eq!(pool.pop(w0, 1).map(|b| b.data), Some(7));
        assert_eq!(pool.pop(b0, 1).map(|b| b.id), Some(TxnId::new(1)));
        assert_eq!(pool.wire_count(), 2);
    }

    #[test]
    fn try_push_reports_backpressure() {
        let mut pool = ChannelPool::new();
        let w = pool.new_wire::<WBeat>(1);
        pool.try_push(w, 0, WBeat::full(1, true)).unwrap();
        assert_eq!(
            pool.try_push(w, 1, WBeat::full(2, true)),
            Err(PushError::Full)
        );
        assert_eq!(pool.len(w), 1);
        assert!(!pool.is_empty(w));
        assert_eq!(pool.stats(w).full_stalls, 1);
    }

    #[test]
    fn push_records_structured_refusal() {
        let mut pool = ChannelPool::new();
        let w = pool.new_wire::<WBeat>(1);
        pool.push(w, 0, WBeat::full(1, true));
        assert!(pool.push_refusals().is_empty());
        // Refused pushes no longer panic: the beat is dropped and a
        // structured record names wire, cycle, and reason.
        pool.set_owner(Some(3));
        pool.push(w, 1, WBeat::full(2, true));
        pool.set_owner(None);
        pool.push(w, 1, WBeat::full(3, true));
        let r = pool.push_refusals();
        assert_eq!(r.len(), 2);
        assert_eq!(r[0].component, Some(3));
        assert_eq!(r[0].channel, "W");
        assert_eq!(r[0].wire, w.index());
        assert_eq!(r[0].cycle, 1);
        assert_eq!(r[0].error, PushError::Full);
        assert_eq!(r[1].component, None);
        assert_eq!(pool.refusals_dropped(), 0);
        assert!(r[0].to_string().contains("component #3"));
        // The wire still holds only the first beat.
        assert_eq!(pool.len(w), 1);
        assert_eq!(pool.pop(w, 2).map(|b| b.data), Some(1));
    }

    #[test]
    fn refusals_beyond_cap_are_counted() {
        let mut pool = ChannelPool::new();
        let w = pool.new_wire::<WBeat>(1);
        pool.push(w, 0, WBeat::full(0, true));
        for c in 1..=(super::MAX_REFUSALS as u64 + 5) {
            pool.push(w, c, WBeat::full(c, true));
        }
        assert_eq!(pool.push_refusals().len(), super::MAX_REFUSALS);
        assert_eq!(pool.refusals_dropped(), 5);
    }

    #[test]
    fn taps_observe_pushes_per_wire() {
        let mut pool = ChannelPool::new();
        let a = pool.new_wire::<WBeat>(4);
        let b = pool.new_wire::<WBeat>(4);
        pool.enable_tap(a);
        pool.push(a, 0, WBeat::full(1, false));
        pool.push(b, 0, WBeat::full(2, false));
        let mut out = Vec::new();
        pool.drain_tap(a, &mut out);
        pool.drain_tap(b, &mut out); // untapped: contributes nothing
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, 0);
        assert_eq!(out[0].1.data, 1);
    }

    #[test]
    fn peek_does_not_consume() {
        let mut pool = ChannelPool::new();
        let w = pool.new_wire::<WBeat>(2);
        pool.push(w, 0, WBeat::full(9, false));
        assert_eq!(pool.peek(w, 1).map(|b| b.data), Some(9));
        assert_eq!(pool.peek(w, 1).map(|b| b.data), Some(9));
        assert_eq!(pool.pop(w, 1).map(|b| b.data), Some(9));
    }

    #[test]
    fn handles_are_copy_and_eq() {
        let mut pool = ChannelPool::new();
        let a = pool.new_wire::<WBeat>(1);
        let b = a;
        assert_eq!(a, b);
        let c = pool.new_wire::<WBeat>(1);
        assert_ne!(a, c);
        let dbg = format!("{a:?}");
        assert!(dbg.contains("WireId"));
    }

    #[test]
    fn batch_relay_matches_per_cycle_relay() {
        // Drive the same five-beat stream through a relay hop twice: once
        // beat by beat, once with one batch_relay sweep. Every stamp and
        // counter must coincide.
        let mk = |pool: &mut ChannelPool| {
            let from = pool.new_wire::<WBeat>(8);
            let to = pool.new_wire::<WBeat>(8);
            for c in 0..5u64 {
                pool.push(from, c, WBeat::full(c, c == 4));
            }
            (from, to)
        };

        let mut a = ChannelPool::new();
        let (a_from, a_to) = mk(&mut a);
        for c in 5..10u64 {
            let beat = a.pop(a_from, c).unwrap();
            a.push(a_to, c, beat);
        }

        let mut b = ChannelPool::new();
        let (b_from, b_to) = mk(&mut b);
        assert_eq!(b.relayable(b_from, 5), 5);
        assert_eq!(b.headroom(b_to, 5), 8);
        assert_eq!(b.batch_relay(b_from, b_to, 5, 5), 5);

        assert_eq!(a.stats(a_to), b.stats(b_to));
        assert_eq!(a.stats(a_from), b.stats(b_from));
        assert_eq!(a.total_in_flight(), b.total_in_flight());
        assert_eq!(a.total_pushes(), b.total_pushes());
        // The moved beats carry the per-cycle stamps: beat k visible from
        // cycle 5 + k + 1 and not a cycle earlier.
        for k in 0..5u64 {
            assert!(b.peek(b_to, 5 + k).is_none() || k > 0);
        }
        for c in 10..15u64 {
            assert_eq!(
                a.pop(a_to, c).map(|w| w.data),
                b.pop(b_to, c).map(|w| w.data)
            );
        }
    }

    #[test]
    fn batch_relay_respects_visibility_and_headroom() {
        let mut pool = ChannelPool::new();
        let from = pool.new_wire::<WBeat>(8);
        let to = pool.new_wire::<WBeat>(2);
        for c in 0..4u64 {
            pool.push(from, c, WBeat::full(c, false));
        }
        // Beat 0 was pushed at cycle 0: nothing is visible at cycle 0, so
        // a relay starting there moves nothing.
        assert_eq!(pool.relayable(from, 0), 0);
        assert_eq!(pool.batch_relay(from, to, 0, 4), 0);
        // Destination capacity 2 bounds the sweep.
        assert_eq!(pool.headroom(to, 4), 2);
        assert_eq!(pool.batch_relay(from, to, 4, 4), 2);
        assert_eq!(pool.len(to), 2);
        assert_eq!(pool.len(from), 2);
    }

    #[test]
    fn batch_relay_feeds_tap_with_move_stamps() {
        let mut pool = ChannelPool::new();
        let from = pool.new_wire::<WBeat>(8);
        let to = pool.new_wire::<WBeat>(8);
        pool.enable_tap(to);
        for c in 0..3u64 {
            pool.push(from, c, WBeat::full(10 + c, false));
        }
        assert_eq!(pool.batch_relay(from, to, 3, 3), 3);
        let mut out = Vec::new();
        pool.drain_tap(to, &mut out);
        let cycles: Vec<Cycle> = out.iter().map(|(c, _)| *c).collect();
        assert_eq!(cycles, [3, 4, 5]);
    }
}

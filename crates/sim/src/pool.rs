//! Typed wire handles and the channel pool that owns all wires.

use std::fmt;
use std::marker::PhantomData;

use axi4::{ArBeat, AwBeat, BBeat, RBeat, WBeat};

use crate::wire::{PushError, Wire, WireStats};
use crate::Cycle;

/// A typed handle to a [`Wire`] owned by a [`ChannelPool`].
///
/// Handles are cheap copies; components hold handles, the pool holds wires.
pub struct WireId<T> {
    index: usize,
    _marker: PhantomData<fn() -> T>,
}

impl<T> WireId<T> {
    fn new(index: usize) -> Self {
        Self {
            index,
            _marker: PhantomData,
        }
    }

    /// Returns the pool-internal index, useful only for debug output.
    pub fn index(self) -> usize {
        self.index
    }
}

// Manual impls: `derive` would bound them on `T`, but handles are plain
// indices and always copyable (C-STRUCT-BOUNDS).
impl<T> Clone for WireId<T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<T> Copy for WireId<T> {}

impl<T> PartialEq for WireId<T> {
    fn eq(&self, other: &Self) -> bool {
        self.index == other.index
    }
}

impl<T> Eq for WireId<T> {}

impl<T> fmt::Debug for WireId<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "WireId<{}>({})", std::any::type_name::<T>(), self.index)
    }
}

mod sealed {
    pub trait Sealed {}
    impl Sealed for axi4::AwBeat {}
    impl Sealed for axi4::WBeat {}
    impl Sealed for axi4::BBeat {}
    impl Sealed for axi4::ArBeat {}
    impl Sealed for axi4::RBeat {}
}

/// Beat types that can travel on pool-managed wires: the five AXI channel
/// payloads. Sealed — the pool's storage is concrete per channel.
pub trait Channel: sealed::Sealed + Copy {
    /// Short channel name for diagnostics ("AW", "W", "B", "AR", "R").
    const LABEL: &'static str;
    /// Dense channel index in AW/W/B/AR/R order (kernel bookkeeping).
    #[doc(hidden)]
    const SLOT: usize;
    #[doc(hidden)]
    fn wires(pool: &ChannelPool) -> &Vec<Wire<Self>>;
    #[doc(hidden)]
    fn wires_mut(pool: &mut ChannelPool) -> &mut Vec<Wire<Self>>;
}

macro_rules! impl_channel {
    ($ty:ty, $field:ident, $label:literal, $slot:literal) => {
        impl Channel for $ty {
            const LABEL: &'static str = $label;
            const SLOT: usize = $slot;
            fn wires(pool: &ChannelPool) -> &Vec<Wire<Self>> {
                &pool.$field
            }
            fn wires_mut(pool: &mut ChannelPool) -> &mut Vec<Wire<Self>> {
                &mut pool.$field
            }
        }
    };
}

impl_channel!(AwBeat, aw, "AW", 0);
impl_channel!(WBeat, w, "W", 1);
impl_channel!(BBeat, b, "B", 2);
impl_channel!(ArBeat, ar, "AR", 3);
impl_channel!(RBeat, r, "R", 4);

/// Number of distinct AXI channels ([`Channel::SLOT`] range).
pub(crate) const CHANNEL_SLOTS: usize = 5;

/// Maps a channel label (as found in [`PortDecl`](crate::PortDecl)) to its
/// dense [`Channel::SLOT`] index.
pub(crate) fn channel_slot(label: &str) -> Option<usize> {
    match label {
        "AW" => Some(AwBeat::SLOT),
        "W" => Some(WBeat::SLOT),
        "B" => Some(BBeat::SLOT),
        "AR" => Some(ArBeat::SLOT),
        "R" => Some(RBeat::SLOT),
        _ => None,
    }
}

/// One successful push or pop, recorded while the event kernel is driving
/// ticks so it can translate wire activity into component wakes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) struct WireEvent {
    /// [`Channel::SLOT`] of the touched wire's channel.
    pub slot: usize,
    /// Pool-internal wire index within the channel.
    pub wire: usize,
    /// `true` for a push (new beat, visible next cycle), `false` for a pop
    /// (freed capacity / new front beat).
    pub push: bool,
}

/// What an access-sanitizer check caught (see
/// [`SanitizerViolation`](crate::SanitizerViolation)).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SanitizerKind {
    /// A component pushed onto a wire it does not declare with
    /// [`PortDir::Drive`](crate::PortDir::Drive).
    UndeclaredPush,
    /// A component popped a wire it does not declare with
    /// [`PortDir::Consume`](crate::PortDir::Consume).
    UndeclaredPop,
    /// A sleeping component turned out to be due without any declared wire
    /// or couple edge having woken it — it reacted to state outside its
    /// declared dependence edges (the missed-wake cross-check; `channel`
    /// and `wire` are placeholders for this kind).
    UndeclaredWake,
}

/// Declared-access tables the pool checks pushes and pops against while
/// the sanitizer is armed. Built by the sim from [`Component::ports`]
/// (see [`crate::Component`]) — the same declarations the static
/// dependence analyzer consumes, so a run that stays sanitizer-clean has
/// runtime behaviour within its statically declared dependence graph.
#[derive(Debug, Default)]
pub(crate) struct SanitizerTables {
    /// First flat wire index per channel slot.
    pub slot_base: [usize; CHANNEL_SLOTS],
    /// Total wires across all channels (row stride).
    pub total_wires: usize,
    /// `component * total_wires + flat_wire` → declared `Drive`.
    pub drive: Vec<bool>,
    /// `component * total_wires + flat_wire` → declared `Consume`.
    pub consume: Vec<bool>,
    /// Port-less components: exempt — they declare nothing by design and
    /// the dependence graph already treats them conservatively.
    pub opaque: Vec<bool>,
}

/// One raw sanitizer hit, recorded by the pool mid-tick and resolved into
/// a named [`SanitizerViolation`](crate::SanitizerViolation) by the sim
/// after the cycle.
#[derive(Clone, Copy, Debug)]
pub(crate) struct RawSanViolation {
    pub component: usize,
    pub cycle: Cycle,
    pub channel: &'static str,
    pub wire: usize,
    pub kind: SanitizerKind,
}

/// The structured record of a refused [`ChannelPool::push`]: who pushed,
/// where, when, and why. Replaces the kernel's former hard panic so a
/// misbehaving component turns into a diagnosable conformance finding
/// instead of a crash.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PushRefusal {
    /// Registration index of the component whose tick performed the push,
    /// if the push happened inside a [`Sim`](crate::Sim) tick (resolve it
    /// to a name via [`Sim::component_name`](crate::Sim::component_name)).
    pub component: Option<usize>,
    /// Channel label ("AW", "W", "B", "AR", "R").
    pub channel: &'static str,
    /// Pool-internal wire index within the channel.
    pub wire: usize,
    /// Cycle of the refused push.
    pub cycle: Cycle,
    /// Why the wire refused.
    pub error: PushError,
}

impl fmt::Display for PushRefusal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cycle {:>8}: push on {} wire {} refused ({})",
            self.cycle, self.channel, self.wire, self.error
        )?;
        if let Some(c) = self.component {
            write!(f, " by component #{c}")?;
        }
        Ok(())
    }
}

/// Upper bound on retained [`PushRefusal`] records; further refusals only
/// bump the overflow counter.
const MAX_REFUSALS: usize = 256;

/// Lifetime throughput of one wire, keyed the same way as
/// [`TopoWire`](crate::TopoWire) — the coverage-harvest view of the pool
/// (see [`ChannelPool::wire_activity`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireActivity {
    /// Channel label: `"AW"`, `"W"`, `"B"`, `"AR"`, or `"R"`.
    pub channel: &'static str,
    /// Allocation index within the channel.
    pub index: usize,
    /// Beats ever accepted onto the wire.
    pub pushes: u64,
}

/// Owns every wire in a simulated system and hands out typed [`WireId`]
/// handles.
///
/// Centralised ownership lets any number of components share access to the
/// same wires without `Rc<RefCell<…>>`: components receive
/// `&mut ChannelPool` in their tick and address wires by handle.
#[derive(Debug, Default)]
pub struct ChannelPool {
    aw: Vec<Wire<AwBeat>>,
    w: Vec<Wire<WBeat>>,
    b: Vec<Wire<BBeat>>,
    ar: Vec<Wire<ArBeat>>,
    r: Vec<Wire<RBeat>>,
    // Beats currently on any wire, maintained push/pop-incrementally so the
    // kernel's idle check is O(1) instead of a walk over every wire.
    in_flight: u64,
    // Beats ever accepted onto any wire, maintained incrementally so
    // activity watchers (the watchdog) read it in O(1).
    total_pushed: u64,
    // Registration index of the component currently being ticked, stamped
    // by the kernel so refusals can name their culprit.
    owner: Option<usize>,
    refusals: Vec<PushRefusal>,
    refusals_dropped: u64,
    // Successful push/pop log, captured only while the event kernel has
    // recording on; drained after every tick to derive wakes.
    events: Vec<WireEvent>,
    recording: bool,
    // Access-sanitizer tables (`None` = sanitizer off, the default; checks
    // cost one `is_some` branch per successful push/pop when off).
    san: Option<SanitizerTables>,
    san_hits: Vec<RawSanViolation>,
}

impl ChannelPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a new wire with the given capacity and returns its handle.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new_wire<T: Channel>(&mut self, capacity: usize) -> WireId<T> {
        let wires = T::wires_mut(self);
        wires.push(Wire::new(capacity));
        WireId::new(wires.len() - 1)
    }

    fn wire<T: Channel>(&self, id: WireId<T>) -> &Wire<T> {
        &T::wires(self)[id.index]
    }

    fn wire_mut<T: Channel>(&mut self, id: WireId<T>) -> &mut Wire<T> {
        &mut T::wires_mut(self)[id.index]
    }

    /// Returns `true` if a push onto `id` at `cycle` would be accepted.
    pub fn can_push<T: Channel>(&self, id: WireId<T>, cycle: Cycle) -> bool {
        self.wire(id).can_push(cycle)
    }

    /// Pushes a beat; visible to consumers from the next cycle.
    ///
    /// Callers must check [`ChannelPool::can_push`] first. A refused push
    /// (backpressure or double-push) is not a panic: the beat is dropped
    /// and a structured [`PushRefusal`] — component index, channel, wire,
    /// cycle, reason — is recorded and surfaced through
    /// [`ChannelPool::push_refusals`] and the conformance report. Use
    /// [`ChannelPool::try_push`] to handle refusal as data instead.
    pub fn push<T: Channel>(&mut self, id: WireId<T>, cycle: Cycle, beat: T) {
        if let Err(error) = self.try_push(id, cycle, beat) {
            if self.refusals.len() < MAX_REFUSALS {
                self.refusals.push(PushRefusal {
                    component: self.owner,
                    channel: T::LABEL,
                    wire: id.index,
                    cycle,
                    error,
                });
            } else {
                self.refusals_dropped += 1;
            }
        }
    }

    /// Pushes a beat, reporting refusal instead of panicking.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] on backpressure, [`PushError::Busy`] on a second
    /// push in the same cycle.
    pub fn try_push<T: Channel>(
        &mut self,
        id: WireId<T>,
        cycle: Cycle,
        beat: T,
    ) -> Result<(), PushError> {
        let result = self.wire_mut(id).try_push(cycle, beat);
        if result.is_ok() {
            self.in_flight += 1;
            self.total_pushed += 1;
            if self.recording {
                self.events.push(WireEvent {
                    slot: T::SLOT,
                    wire: id.index,
                    push: true,
                });
            }
            if self.san.is_some() {
                self.san_check(T::SLOT, T::LABEL, id.index, cycle, true);
            }
        }
        result
    }

    /// Returns the front beat if one is visible at `cycle`.
    pub fn peek<T: Channel>(&self, id: WireId<T>, cycle: Cycle) -> Option<&T> {
        self.wire(id).peek(cycle)
    }

    /// Starts recording every accepted push onto `id` into its tap buffer
    /// (see [`Wire::enable_tap`]). The collector must drain regularly.
    pub fn enable_tap<T: Channel>(&mut self, id: WireId<T>) {
        self.wire_mut(id).enable_tap();
    }

    /// Moves all tapped `(push_cycle, beat)` records of `id` into `out`,
    /// oldest first. No-op on an untapped wire.
    pub fn drain_tap<T: Channel>(&mut self, id: WireId<T>, out: &mut Vec<(Cycle, T)>) {
        self.wire_mut(id).drain_tap_into(out);
    }

    /// Stamps the component whose tick is currently executing (kernel use;
    /// refusals recorded while an owner is set carry its index).
    pub fn set_owner(&mut self, owner: Option<usize>) {
        self.owner = owner;
    }

    /// Structured records of refused [`ChannelPool::push`] calls, oldest
    /// first (bounded; see [`ChannelPool::refusals_dropped`]). A correct
    /// system keeps this empty.
    pub fn push_refusals(&self) -> &[PushRefusal] {
        &self.refusals
    }

    /// Refusals beyond the retention bound, counted instead of stored.
    pub fn refusals_dropped(&self) -> u64 {
        self.refusals_dropped
    }

    /// Pops the front beat if one is visible at `cycle` (at most once per
    /// wire per cycle).
    pub fn pop<T: Channel>(&mut self, id: WireId<T>, cycle: Cycle) -> Option<T> {
        let beat = self.wire_mut(id).pop(cycle);
        if beat.is_some() {
            self.in_flight -= 1;
            if self.recording {
                self.events.push(WireEvent {
                    slot: T::SLOT,
                    wire: id.index,
                    push: false,
                });
            }
            if self.san.is_some() {
                self.san_check(T::SLOT, T::LABEL, id.index, cycle, false);
            }
        }
        beat
    }

    /// Number of in-flight beats on the wire.
    pub fn len<T: Channel>(&self, id: WireId<T>) -> usize {
        self.wire(id).len()
    }

    /// Returns `true` if the wire has no in-flight beats.
    pub fn is_empty<T: Channel>(&self, id: WireId<T>) -> bool {
        self.wire(id).is_empty()
    }

    /// Occupancy and throughput counters for the wire.
    pub fn stats<T: Channel>(&self, id: WireId<T>) -> WireStats {
        self.wire(id).stats()
    }

    /// Total number of wires across all five channels (diagnostics).
    pub fn wire_count(&self) -> usize {
        self.aw.len() + self.w.len() + self.b.len() + self.ar.len() + self.r.len()
    }

    /// Identity and capacity of every allocated wire, channel by channel
    /// in AW/W/B/AR/R order — the wire side of a
    /// [`Topology`](crate::Topology) snapshot.
    pub fn wire_table(&self) -> Vec<crate::TopoWire> {
        fn rows<T: Channel>(wires: &[Wire<T>]) -> impl Iterator<Item = crate::TopoWire> + '_ {
            wires.iter().enumerate().map(|(index, w)| crate::TopoWire {
                channel: T::LABEL,
                index,
                capacity: w.capacity(),
            })
        }
        rows(&self.aw)
            .chain(rows(&self.w))
            .chain(rows(&self.b))
            .chain(rows(&self.ar))
            .chain(rows(&self.r))
            .collect()
    }

    /// Throughput of every allocated wire, channel by channel in
    /// AW/W/B/AR/R order — the wire side of a coverage harvest (see
    /// [`Sim::coverage`](crate::Sim::coverage)). A wire with a nonzero
    /// push count is a topology edge the run actually exercised.
    pub fn wire_activity(&self) -> Vec<WireActivity> {
        fn rows<T: Channel>(wires: &[Wire<T>]) -> impl Iterator<Item = WireActivity> + '_ {
            wires.iter().enumerate().map(|(index, w)| WireActivity {
                channel: T::LABEL,
                index,
                pushes: w.stats().total_pushed,
            })
        }
        rows(&self.aw)
            .chain(rows(&self.w))
            .chain(rows(&self.b))
            .chain(rows(&self.ar))
            .chain(rows(&self.r))
            .collect()
    }

    /// Beats currently in flight across all wires (O(1)).
    ///
    /// Zero means no beat is buffered anywhere — the precondition for the
    /// kernel's idle-skip: with empty wires, component wake hints alone
    /// bound when anything can next happen.
    pub fn total_in_flight(&self) -> u64 {
        debug_assert_eq!(
            self.in_flight,
            {
                fn occupancy<T>(wires: &[Wire<T>]) -> u64 {
                    wires.iter().map(|w| w.len() as u64).sum()
                }
                occupancy(&self.aw)
                    + occupancy(&self.w)
                    + occupancy(&self.b)
                    + occupancy(&self.ar)
                    + occupancy(&self.r)
            },
            "in-flight counter out of sync with wire occupancy"
        );
        self.in_flight
    }

    /// Total beats ever pushed onto any wire (O(1)) — a monotone activity
    /// counter; if it stops moving, no beat is flowing anywhere in the
    /// system.
    pub fn total_pushes(&self) -> u64 {
        debug_assert_eq!(
            self.total_pushed,
            {
                fn sum<T>(wires: &[Wire<T>]) -> u64 {
                    wires.iter().map(|w| w.stats().total_pushed).sum()
                }
                sum(&self.aw) + sum(&self.w) + sum(&self.b) + sum(&self.ar) + sum(&self.r)
            },
            "push counter out of sync with per-wire stats"
        );
        self.total_pushed
    }

    /// Arms (or disarms, with `None`) the access sanitizer. While armed,
    /// every successful push and pop performed inside a component tick is
    /// checked against the tables; mismatches are recorded, never blocked —
    /// the sanitizer observes, results stay exact.
    pub(crate) fn set_sanitizer(&mut self, tables: Option<SanitizerTables>) {
        self.san = tables;
        if self.san.is_none() {
            self.san_hits.clear();
        }
    }

    /// Checks one successful access against the declared-access tables.
    /// Accesses outside any tick (`owner == None` — construction, direct
    /// harness pokes between runs) are not attributable and not checked.
    fn san_check(
        &mut self,
        slot: usize,
        channel: &'static str,
        wire: usize,
        cycle: Cycle,
        push: bool,
    ) {
        let Some(owner) = self.owner else { return };
        let Some(tables) = self.san.as_ref() else {
            return;
        };
        // Out-of-table owners (components added after the tables were
        // built) and opaque components are exempt.
        if tables.opaque.get(owner).copied().unwrap_or(true) {
            return;
        }
        let flat = owner * tables.total_wires + tables.slot_base[slot] + wire;
        let table = if push { &tables.drive } else { &tables.consume };
        if table.get(flat).copied().unwrap_or(false) {
            return;
        }
        self.san_hits.push(RawSanViolation {
            component: owner,
            cycle,
            channel,
            wire,
            kind: if push {
                SanitizerKind::UndeclaredPush
            } else {
                SanitizerKind::UndeclaredPop
            },
        });
    }

    /// `true` if any sanitizer hit is waiting to be drained (O(1)).
    pub(crate) fn has_san_hits(&self) -> bool {
        !self.san_hits.is_empty()
    }

    /// Moves all recorded sanitizer hits into `out`, oldest first.
    pub(crate) fn drain_san_hits_into(&mut self, out: &mut Vec<RawSanViolation>) {
        out.append(&mut self.san_hits);
    }

    /// Turns the push/pop event log on or off (event-kernel use). Turning
    /// recording off discards any not-yet-drained events.
    pub(crate) fn set_recording(&mut self, on: bool) {
        self.recording = on;
        if !on {
            self.events.clear();
        }
    }

    /// Moves all recorded [`WireEvent`]s into `out`, oldest first.
    pub(crate) fn drain_events_into(&mut self, out: &mut Vec<WireEvent>) {
        out.append(&mut self.events);
    }

    /// In-flight beats on the wire addressed by `(slot, index)` — the
    /// untyped twin of [`ChannelPool::len`] for kernel bookkeeping.
    pub(crate) fn slot_len(&self, slot: usize, index: usize) -> usize {
        match slot {
            0 => self.aw[index].len(),
            1 => self.w[index].len(),
            2 => self.b[index].len(),
            3 => self.ar[index].len(),
            4 => self.r[index].len(),
            _ => 0,
        }
    }

    /// Wire counts per channel in [`Channel::SLOT`] order.
    pub(crate) fn wire_counts(&self) -> [usize; CHANNEL_SLOTS] {
        [
            self.aw.len(),
            self.w.len(),
            self.b.len(),
            self.ar.len(),
            self.r.len(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use axi4::TxnId;

    #[test]
    fn typed_wires_are_independent() {
        let mut pool = ChannelPool::new();
        let w0 = pool.new_wire::<WBeat>(2);
        let b0 = pool.new_wire::<BBeat>(2);
        // Same index, different channels.
        assert_eq!(w0.index(), 0);
        assert_eq!(b0.index(), 0);

        pool.push(w0, 0, WBeat::full(7, true));
        pool.push(b0, 0, BBeat::okay(TxnId::new(1)));
        assert_eq!(pool.pop(w0, 1).map(|b| b.data), Some(7));
        assert_eq!(pool.pop(b0, 1).map(|b| b.id), Some(TxnId::new(1)));
        assert_eq!(pool.wire_count(), 2);
    }

    #[test]
    fn try_push_reports_backpressure() {
        let mut pool = ChannelPool::new();
        let w = pool.new_wire::<WBeat>(1);
        pool.try_push(w, 0, WBeat::full(1, true)).unwrap();
        assert_eq!(
            pool.try_push(w, 1, WBeat::full(2, true)),
            Err(PushError::Full)
        );
        assert_eq!(pool.len(w), 1);
        assert!(!pool.is_empty(w));
        assert_eq!(pool.stats(w).full_stalls, 1);
    }

    #[test]
    fn push_records_structured_refusal() {
        let mut pool = ChannelPool::new();
        let w = pool.new_wire::<WBeat>(1);
        pool.push(w, 0, WBeat::full(1, true));
        assert!(pool.push_refusals().is_empty());
        // Refused pushes no longer panic: the beat is dropped and a
        // structured record names wire, cycle, and reason.
        pool.set_owner(Some(3));
        pool.push(w, 1, WBeat::full(2, true));
        pool.set_owner(None);
        pool.push(w, 1, WBeat::full(3, true));
        let r = pool.push_refusals();
        assert_eq!(r.len(), 2);
        assert_eq!(r[0].component, Some(3));
        assert_eq!(r[0].channel, "W");
        assert_eq!(r[0].wire, w.index());
        assert_eq!(r[0].cycle, 1);
        assert_eq!(r[0].error, PushError::Full);
        assert_eq!(r[1].component, None);
        assert_eq!(pool.refusals_dropped(), 0);
        assert!(r[0].to_string().contains("component #3"));
        // The wire still holds only the first beat.
        assert_eq!(pool.len(w), 1);
        assert_eq!(pool.pop(w, 2).map(|b| b.data), Some(1));
    }

    #[test]
    fn refusals_beyond_cap_are_counted() {
        let mut pool = ChannelPool::new();
        let w = pool.new_wire::<WBeat>(1);
        pool.push(w, 0, WBeat::full(0, true));
        for c in 1..=(super::MAX_REFUSALS as u64 + 5) {
            pool.push(w, c, WBeat::full(c, true));
        }
        assert_eq!(pool.push_refusals().len(), super::MAX_REFUSALS);
        assert_eq!(pool.refusals_dropped(), 5);
    }

    #[test]
    fn taps_observe_pushes_per_wire() {
        let mut pool = ChannelPool::new();
        let a = pool.new_wire::<WBeat>(4);
        let b = pool.new_wire::<WBeat>(4);
        pool.enable_tap(a);
        pool.push(a, 0, WBeat::full(1, false));
        pool.push(b, 0, WBeat::full(2, false));
        let mut out = Vec::new();
        pool.drain_tap(a, &mut out);
        pool.drain_tap(b, &mut out); // untapped: contributes nothing
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, 0);
        assert_eq!(out[0].1.data, 1);
    }

    #[test]
    fn peek_does_not_consume() {
        let mut pool = ChannelPool::new();
        let w = pool.new_wire::<WBeat>(2);
        pool.push(w, 0, WBeat::full(9, false));
        assert_eq!(pool.peek(w, 1).map(|b| b.data), Some(9));
        assert_eq!(pool.peek(w, 1).map(|b| b.data), Some(9));
        assert_eq!(pool.pop(w, 1).map(|b| b.data), Some(9));
    }

    #[test]
    fn handles_are_copy_and_eq() {
        let mut pool = ChannelPool::new();
        let a = pool.new_wire::<WBeat>(1);
        let b = a;
        assert_eq!(a, b);
        let c = pool.new_wire::<WBeat>(1);
        assert_ne!(a, c);
        let dbg = format!("{a:?}");
        assert!(dbg.contains("WireId"));
    }
}

//! The top-level simulator: owns the wires and the components.

use std::any::Any;
use std::fmt;

use crate::component::{Component, TickCtx};
use crate::pool::ChannelPool;
use crate::Cycle;

/// Handle to a component registered with a [`Sim`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ComponentId(usize);

impl ComponentId {
    /// Returns the registration index.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Counters describing how the kernel advanced time: real component ticks
/// versus cycles fast-forwarded over while the system was quiescent.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct KernelStats {
    /// Cycles advanced by actually ticking every component.
    pub ticks_executed: u64,
    /// Cycles jumped over because all wires were empty and every component
    /// reported no pending event.
    pub cycles_skipped: u64,
    /// Number of fast-forward jumps taken.
    pub fast_forwards: u64,
}

impl KernelStats {
    /// Total simulated cycles this kernel advanced (executed + skipped).
    pub fn cycles_total(&self) -> u64 {
        self.ticks_executed + self.cycles_skipped
    }
}

/// A cycle-stepped simulator: a [`ChannelPool`] plus an ordered list of
/// components ticked once per cycle.
///
/// [`Sim::run`] and [`Sim::run_until`] fast-forward over quiescent
/// stretches: when no beat is in flight on any wire and every component's
/// [`Component::next_event`] hint lies in the future, the clock jumps to
/// the earliest pending event instead of ticking through dead cycles. The
/// jump is exact — components reconcile time-proportional counters in
/// [`Component::on_fast_forward`] — so a fast-forwarded run finishes in
/// the same state, at the same cycle, as an explicitly stepped one; only
/// wall-clock changes. [`Sim::kernel_stats`] reports the split.
///
/// # Example
///
/// ```
/// use axi_sim::{Component, Sim, TickCtx};
///
/// struct Nop;
/// impl Component for Nop {
///     fn tick(&mut self, _ctx: &mut TickCtx<'_>) {}
/// }
///
/// let mut sim = Sim::new();
/// sim.add(Nop);
/// sim.run(100);
/// assert_eq!(sim.cycle(), 100);
/// ```
pub struct Sim {
    pool: ChannelPool,
    components: Vec<Box<dyn Component>>,
    cycle: Cycle,
    stats: KernelStats,
}

impl Sim {
    /// Creates an empty simulator at cycle 0.
    pub fn new() -> Self {
        Self {
            pool: ChannelPool::new(),
            components: Vec::new(),
            cycle: 0,
            stats: KernelStats::default(),
        }
    }

    /// The wire pool, for allocating bundles before components exist.
    pub fn pool(&self) -> &ChannelPool {
        &self.pool
    }

    /// Mutable access to the wire pool.
    pub fn pool_mut(&mut self) -> &mut ChannelPool {
        &mut self.pool
    }

    /// Registers a component; components are ticked in registration order.
    pub fn add<C: Component>(&mut self, component: C) -> ComponentId {
        self.components.push(Box::new(component));
        ComponentId(self.components.len() - 1)
    }

    /// Returns a typed reference to a registered component, or `None` if the
    /// type does not match.
    pub fn component<C: Component>(&self, id: ComponentId) -> Option<&C> {
        let c: &dyn Component = self.components[id.0].as_ref();
        (c as &dyn Any).downcast_ref::<C>()
    }

    /// Returns a typed mutable reference to a registered component, or
    /// `None` if the type does not match.
    pub fn component_mut<C: Component>(&mut self, id: ComponentId) -> Option<&mut C> {
        let c: &mut dyn Component = self.components[id.0].as_mut();
        (c as &mut dyn Any).downcast_mut::<C>()
    }

    /// The current cycle (number of completed steps).
    pub fn cycle(&self) -> Cycle {
        self.cycle
    }

    /// Executed-tick vs. skipped-cycle counters since construction.
    pub fn kernel_stats(&self) -> KernelStats {
        self.stats
    }

    /// A static snapshot of the system's structure — every component with
    /// its declared wire endpoints plus every allocated wire — for
    /// elaboration-time analysis before the first cycle runs (see the
    /// `realm-lint` crate).
    pub fn topology(&self) -> crate::Topology {
        crate::Topology::collect(&self.components, &self.pool)
    }

    /// Advances the simulation by one cycle, ticking every component once.
    pub fn step(&mut self) {
        for (index, component) in self.components.iter_mut().enumerate() {
            self.pool.set_owner(Some(index));
            let mut ctx = TickCtx {
                cycle: self.cycle,
                pool: &mut self.pool,
            };
            component.tick(&mut ctx);
        }
        self.pool.set_owner(None);
        self.cycle += 1;
        self.stats.ticks_executed += 1;
    }

    /// The instance name of the component registered at `index`, if any —
    /// resolves [`PushRefusal::component`](crate::PushRefusal) indices for
    /// reports.
    pub fn component_name(&self, index: usize) -> Option<&str> {
        self.components.get(index).map(|c| c.name())
    }

    /// The cycle the kernel may jump to without ticking, bounded by
    /// `target`, or `None` if some beat is in flight or some component has
    /// a current event.
    ///
    /// A returned cycle is strictly greater than the current one: the ticks
    /// at `cycle..jump` are all provable no-ops under the
    /// [`Component::next_event`] contract.
    fn fast_forward_target(&self, target: Cycle) -> Option<Cycle> {
        if self.pool.total_in_flight() != 0 {
            return None;
        }
        let mut jump = target;
        for component in &self.components {
            match component.next_event(self.cycle) {
                // Quiescent until new input; with all wires empty no input
                // can appear before another component acts.
                None => {}
                Some(wake) if wake <= self.cycle => return None,
                Some(wake) => jump = jump.min(wake),
            }
        }
        (jump > self.cycle).then_some(jump)
    }

    /// Advances time by one step, or by one fast-forward jump of up to
    /// `target - cycle` cycles.
    fn advance(&mut self, target: Cycle) {
        debug_assert!(self.cycle < target);
        match self.fast_forward_target(target) {
            Some(jump) => {
                for component in &mut self.components {
                    component.on_fast_forward(self.cycle, jump);
                }
                self.stats.cycles_skipped += jump - self.cycle;
                self.stats.fast_forwards += 1;
                self.cycle = jump;
            }
            None => self.step(),
        }
    }

    /// Runs for `cycles` cycles, fast-forwarding over quiescent stretches.
    pub fn run(&mut self, cycles: u64) {
        let target = self.cycle + cycles;
        while self.cycle < target {
            self.advance(target);
        }
    }

    /// Advances until `done` returns `true` or `max_cycles` elapse; returns
    /// `true` if the predicate fired.
    ///
    /// The predicate sees the simulator between advances, so it can inspect
    /// components and wires. Quiescent stretches are fast-forwarded, so the
    /// predicate is evaluated per executed tick or jump, not per skipped
    /// cycle — component state cannot change inside a skipped stretch, so
    /// no predicate flank is missed, though a predicate watching
    /// [`Sim::cycle`] itself may observe a jump past its threshold.
    pub fn run_until<F: FnMut(&Sim) -> bool>(&mut self, max_cycles: u64, mut done: F) -> bool {
        let target = self.cycle + max_cycles;
        while self.cycle < target {
            if done(self) {
                return true;
            }
            self.advance(target);
        }
        done(self)
    }
}

impl Default for Sim {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for Sim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Sim")
            .field("cycle", &self.cycle)
            .field("components", &self.components.len())
            .field("wires", &self.pool.wire_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::WireId;
    use axi4::WBeat;

    struct Producer {
        out: WireId<WBeat>,
        sent: u64,
        limit: u64,
    }

    impl Component for Producer {
        fn tick(&mut self, ctx: &mut TickCtx<'_>) {
            if self.sent < self.limit && ctx.pool.can_push(self.out, ctx.cycle) {
                ctx.pool
                    .push(self.out, ctx.cycle, WBeat::full(self.sent, false));
                self.sent += 1;
            }
        }
        fn name(&self) -> &str {
            "producer"
        }
    }

    struct Consumer {
        input: WireId<WBeat>,
        received: Vec<u64>,
    }

    impl Component for Consumer {
        fn tick(&mut self, ctx: &mut TickCtx<'_>) {
            if let Some(beat) = ctx.pool.pop(self.input, ctx.cycle) {
                self.received.push(beat.data);
            }
        }
        fn name(&self) -> &str {
            "consumer"
        }
    }

    fn build() -> (Sim, ComponentId, ComponentId) {
        let mut sim = Sim::new();
        let wire = sim.pool_mut().new_wire::<WBeat>(2);
        let p = sim.add(Producer {
            out: wire,
            sent: 0,
            limit: 5,
        });
        let c = sim.add(Consumer {
            input: wire,
            received: Vec::new(),
        });
        (sim, p, c)
    }

    #[test]
    fn producer_consumer_pipeline() {
        let (mut sim, _p, c) = build();
        sim.run(10);
        let consumer = sim.component::<Consumer>(c).unwrap();
        assert_eq!(consumer.received, [0, 1, 2, 3, 4]);
    }

    /// Tick order must not change results: swap registration order.
    #[test]
    fn order_independence() {
        let mut sim = Sim::new();
        let wire = sim.pool_mut().new_wire::<WBeat>(2);
        let c = sim.add(Consumer {
            input: wire,
            received: Vec::new(),
        });
        let _p = sim.add(Producer {
            out: wire,
            sent: 0,
            limit: 5,
        });
        sim.run(10);
        let consumer = sim.component::<Consumer>(c).unwrap();
        assert_eq!(consumer.received, [0, 1, 2, 3, 4]);
    }

    #[test]
    fn run_until_predicate() {
        let (mut sim, _p, c) = build();
        let fired = sim.run_until(100, |s| {
            s.component::<Consumer>(c)
                .is_some_and(|x| x.received.len() == 3)
        });
        assert!(fired);
        assert!(sim.cycle() < 100);
        // Predicate that never fires.
        assert!(!sim.run_until(5, |_| false));
    }

    #[test]
    fn downcast_type_mismatch_is_none() {
        let (sim, p, _c) = build();
        assert!(sim.component::<Consumer>(p).is_none());
        assert!(sim.component::<Producer>(p).is_some());
    }

    #[test]
    fn component_mut_allows_reconfiguration() {
        let (mut sim, p, c) = build();
        sim.run(2);
        sim.component_mut::<Producer>(p).unwrap().limit = 2;
        sim.run(10);
        assert_eq!(sim.component::<Consumer>(c).unwrap().received.len(), 2);
    }

    #[test]
    fn debug_shows_counts() {
        let (sim, ..) = build();
        let s = format!("{sim:?}");
        assert!(s.contains("components: 2"));
    }
}

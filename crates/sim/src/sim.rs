//! The top-level simulator: owns the wires and the components.
//!
//! Two kernels share one observable semantics:
//!
//! - [`Sim::step`] is the reference kernel: every component ticks every
//!   cycle, in registration order.
//! - [`Sim::run`]/[`Sim::run_until`] default to the *event kernel*: a
//!   wake-queue (binary heap over [`Component::next_event`] hints) plus a
//!   per-cycle dirty-set derived from wire pushes and pops, so a cycle only
//!   visits components that have a due event or fresh input, and cycles
//!   with no due component at all are jumped over entirely. Elided ticks
//!   are reconciled per component through [`Component::on_fast_forward`].
//!
//! The two must be bit-identical in every observable: `REALM_KERNEL=step`
//! forces the stepping kernel for differential runs, and the
//! `kernel_equivalence` integration tests assert the equivalence on random
//! traffic.

use std::any::Any;
use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap};
use std::fmt;

use realm_telemetry::TelemetrySink;

use crate::pool::{
    channel_slot, ChannelPool, RawSanViolation, SanitizerKind, SanitizerTables, WakeTables,
    WireEvent, CHANNEL_SLOTS,
};

use crate::component::{Component, TickCtx};
use crate::topology::PortDir;
use crate::Cycle;

/// Handle to a component registered with a [`Sim`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ComponentId(usize);

impl ComponentId {
    /// Returns the registration index.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Counters describing how the kernel advanced time: real component ticks
/// versus cycles fast-forwarded over while the system was quiescent, plus
/// the per-component split within executed cycles.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct KernelStats {
    /// Cycles advanced by executing at least one component tick.
    pub ticks_executed: u64,
    /// Cycles jumped over because no component had a due event.
    pub cycles_skipped: u64,
    /// Number of fast-forward jumps taken.
    pub fast_forwards: u64,
    /// Individual `Component::tick` calls across all executed cycles.
    pub component_ticks: u64,
    /// Component-cycles elided: sleeping components during executed cycles
    /// plus every component during skipped cycles. The invariant
    /// `component_ticks + component_skips == cycles_total() * n_components`
    /// holds for a run driven by one kernel throughout.
    pub component_skips: u64,
    /// Successful wire pushes and pops the event or arena kernel
    /// translated into wakes (0 under the stepping kernel, which needs
    /// none). Beats moved by a batched transfer count one push and one pop
    /// each, exactly as their per-cycle execution would have.
    pub wire_events: u64,
    /// Beats moved by batched transfers ([`ChannelPool::batch_relay`])
    /// instead of per-cycle ticks. Each batched beat is still one beat
    /// moved — `wire_events` includes them — this counter reports how many
    /// rode a bulk window.
    pub batched_beats: u64,
    /// Batch windows the arena kernel executed (each covering ≥ 2 cycles).
    pub batch_windows: u64,
}

impl KernelStats {
    /// Total simulated cycles this kernel advanced (executed + skipped).
    pub fn cycles_total(&self) -> u64 {
        self.ticks_executed + self.cycles_skipped
    }
}

/// Per-component attribution from the kernel self-profiler (see
/// [`Sim::profile`]): where the kernel actually spends its visits — and,
/// when the `self-profile` feature is enabled, its wall-time.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ComponentProfile {
    /// Registration index of the component.
    pub index: usize,
    /// Its [`Component::name`].
    pub name: String,
    /// `tick`/`batch_tick` calls executed for this component, across all
    /// kernels.
    pub visits: u64,
    /// Cycles covered by batch windows (each window is one visit covering
    /// `window` cycles; 0 under the non-arena kernels).
    pub batch_cycles: u64,
    /// Wakes delivered to this component by the event kernel's bookkeeping
    /// (wire activity, couple writes, opaque broadcasts). The stepping,
    /// islands, and arena kernels keep no per-component wake list and
    /// report 0.
    pub wakes: u64,
    /// Wall-clock nanoseconds spent inside this component's ticks. Always 0
    /// unless `axi-sim` is built with the `self-profile` feature — the
    /// clock reads do not exist in a default build, keeping the simulator
    /// free of wall-time (and `detlint`-clean by construction).
    pub wall_ns: u64,
}

/// Internal per-component profiler counters (see [`ComponentProfile`]).
#[derive(Clone, Copy, Default)]
struct ProfileEntry {
    visits: u64,
    batch_cycles: u64,
    wall_ns: u64,
}

/// Which kernel drives [`Sim::run`] and [`Sim::run_until`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum KernelMode {
    /// Wake-queue + dirty-set event kernel (the default).
    Event,
    /// Reference kernel: tick every component every cycle. Selected by
    /// `REALM_KERNEL=step` for differential runs.
    Step,
    /// Island kernel: tick every component every cycle, but walk the
    /// statically computed dependence islands (see
    /// [`Topology::islands`](crate::Topology::islands)) island by island
    /// instead of the flat registration order. Islands are independent by
    /// construction — no shared wire, couple, or declared endpoint crosses
    /// one — so the reordering is unobservable and results stay
    /// bit-identical to [`KernelMode::Step`]; each island could equally be
    /// stepped by its own worker once component storage is `Send` (the
    /// arena refactor). Selected by `REALM_KERNEL=islands`.
    Islands,
    /// Compiled-schedule kernel: components are pinned to *schedule
    /// positions* (island-major registration order, at most 64), every
    /// per-cycle set is a single `u64` mask, and wire activity reaches the
    /// scheduler through the pool's wake-mask accumulators instead of an
    /// event log — no heap, no per-event allocation. On top of the mask
    /// scheduler it runs beat-batched transfers: when every due component
    /// can stream ahead ([`Component::batch_horizon`]) and no sleeping
    /// component wakes inside the window, queued beats move in bulk ring
    /// copies ([`ChannelPool::batch_relay`]) instead of per-cycle virtual
    /// ticks. Selected by `REALM_KERNEL=arena`; systems with more than 64
    /// components fall back to the event kernel.
    Arena,
}

fn kernel_mode_from_env() -> KernelMode {
    match std::env::var("REALM_KERNEL").as_deref() {
        Ok("step") | Ok("stepped") | Ok("cycle") => KernelMode::Step,
        Ok("islands") | Ok("island") => KernelMode::Islands,
        Ok("arena") | Ok("compiled") => KernelMode::Arena,
        _ => KernelMode::Event,
    }
}

fn sanitize_from_env() -> bool {
    matches!(
        std::env::var("REALM_SANITIZE").as_deref(),
        Ok("1") | Ok("true") | Ok("on")
    )
}

/// How a [`ContractViolation`] was detected.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ViolationKind {
    /// `next_event(cycle)` returned a hint at or before a cycle the
    /// component had already been ticked for — the hint carries no
    /// information and the kernel fell back to re-ticking next cycle.
    StaleHint,
    /// A sleeping component's `next_event` claimed it was due at the
    /// current cycle even though nothing had scheduled it — an earlier
    /// hint under-reported, or the component reacted to state outside its
    /// declared wires (missing [`Sim::couple`] or port declaration).
    MissedWake,
}

/// A detected breach of the [`Component::next_event`] contract (see
/// [`Sim::contract_violations`]; stale hints are reported in every build,
/// the missed-wake cross-check only in debug builds). The kernel corrects
/// course — the offending component is woken — so results stay exact, but
/// each record points at a hint that silently shrinks skipping.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ContractViolation {
    /// Registration index of the offending component.
    pub component: usize,
    /// Its [`Component::name`] at detection time.
    pub name: String,
    /// The cycle at which the violation was observed.
    pub cycle: Cycle,
    /// The hint `next_event` returned.
    pub hint: Cycle,
    /// What went wrong.
    pub kind: ViolationKind,
}

impl fmt::Display for ContractViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let what = match self.kind {
            ViolationKind::StaleHint => "stale next_event hint",
            ViolationKind::MissedWake => "missed wake (undeclared dependency?)",
        };
        write!(
            f,
            "cycle {:>8}: {} from component #{} ({}): hint {}",
            self.cycle, what, self.component, self.name, self.hint
        )
    }
}

/// An undeclared cross-component access caught by the runtime access
/// sanitizer (`REALM_SANITIZE=1`, see [`Sim::sanitizer_violations`]): a
/// push, pop, or wake that the component's declared ports and couples do
/// not account for. The access itself is never blocked — results stay
/// exact — but each record is a dependence edge missing from the static
/// graph, i.e. a component the island partition and the event kernel's
/// wake bookkeeping may be reasoning about incorrectly.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SanitizerViolation {
    /// Registration index of the offending component.
    pub component: usize,
    /// Its [`Component::name`] at detection time.
    pub name: String,
    /// The cycle of the undeclared access.
    pub cycle: Cycle,
    /// Channel label of the touched wire (`"-"` for
    /// [`SanitizerKind::UndeclaredWake`], which has no wire).
    pub channel: &'static str,
    /// Pool-internal wire index (0 for `UndeclaredWake`).
    pub wire: usize,
    /// What kind of undeclared access.
    pub kind: SanitizerKind,
}

impl fmt::Display for SanitizerViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            SanitizerKind::UndeclaredPush => write!(
                f,
                "cycle {:>8}: undeclared push on {}[{}] by component #{} ({})",
                self.cycle, self.channel, self.wire, self.component, self.name
            ),
            SanitizerKind::UndeclaredPop => write!(
                f,
                "cycle {:>8}: undeclared pop on {}[{}] by component #{} ({})",
                self.cycle, self.channel, self.wire, self.component, self.name
            ),
            SanitizerKind::UndeclaredWake => write!(
                f,
                "cycle {:>8}: undeclared wake of component #{} ({}): \
                 due without any declared edge having woken it",
                self.cycle, self.component, self.name
            ),
        }
    }
}

/// Retained [`ContractViolation`] records; further ones only bump a count.
const MAX_VIOLATIONS: usize = 64;

/// Sentinel for "no pending wake".
const NEVER: Cycle = Cycle::MAX;

/// The event kernel's wake bookkeeping, rebuilt from component port
/// declarations whenever the topology changes.
#[derive(Default)]
struct Scheduler {
    /// Flat endpoint table: wire `(slot, index)` maps through `slot_base`
    /// to a `(start, end)` range in `endpoint_list` holding the
    /// registration indices of its declared endpoints (drivers, consumers,
    /// observers), deduplicated. Contiguous storage keeps the per-event
    /// lookup to two indexed reads instead of three pointer hops.
    endpoint_ranges: Vec<(u32, u32)>,
    endpoint_list: Vec<u32>,
    slot_base: [usize; CHANNEL_SLOTS],
    /// Per component: its declared Consume wires as `(slot, wire)`.
    consume: Vec<Vec<(usize, usize)>>,
    /// Components that declared no ports: woken by *any* wire activity and
    /// kept due while any beat is in flight, so undeclared topologies stay
    /// exact at the price of not sleeping through traffic.
    opaque: Vec<u32>,
    is_opaque: Vec<bool>,
    /// Per component: dependents registered via [`Sim::couple`].
    dependents: Vec<Vec<u32>>,
    /// Dirty-set for the cycle currently being processed.
    due: Vec<bool>,
    due_count: usize,
    /// Components scheduled for the immediately following cycle — the fast
    /// path that lets back-to-back beat streams ride cycle to cycle without
    /// touching the heap.
    next_flags: Vec<bool>,
    next_list: Vec<u32>,
    /// Earliest pending wake per component (`NEVER` = none); heap entries
    /// not matching it are stale and discarded on pop.
    scheduled: Vec<Cycle>,
    heap: BinaryHeap<Reverse<(Cycle, u32)>>,
    /// Scratch buffer for drained pool events.
    events: Vec<WireEvent>,
    /// Per component: wakes delivered by wire activity, couple writes, and
    /// opaque broadcasts — the self-profiler's wake attribution (see
    /// [`Sim::profile`]). Preserved across table rebuilds.
    wakes: Vec<u64>,
    /// `(components, wires, couples)` the tables were built for.
    signature: (usize, usize, usize),
}

impl Scheduler {
    fn mark_due(&mut self, j: usize) {
        if !self.due[j] {
            self.due[j] = true;
            self.due_count += 1;
        }
    }

    /// Records a wake at `at` (strictly after the cycle being processed).
    fn schedule(&mut self, j: usize, at: Cycle, current: Cycle) {
        if at >= self.scheduled[j] {
            return;
        }
        self.scheduled[j] = at;
        if at == current + 1 {
            if !self.next_flags[j] {
                self.next_flags[j] = true;
                self.next_list.push(j as u32);
            }
        } else {
            self.heap.push(Reverse((at, j as u32)));
        }
    }

    /// Translates one wire event caused by `actor`'s tick at `cycle` into
    /// wakes for peer `j`.
    #[inline]
    fn wake_peer(&mut self, j: usize, actor: usize, push: bool, cycle: Cycle) {
        if j == actor {
            return;
        }
        self.wakes[j] += 1;
        if push {
            // New beat: visible next cycle; peers ticking after the pusher
            // also look this cycle (tap monitors drain on the push cycle).
            if j > actor {
                self.mark_due(j);
            }
            self.schedule(j, cycle + 1, cycle);
        } else if j > actor {
            // Freed capacity / new front beat: usable this cycle by later
            // peers, next cycle by earlier ones.
            self.mark_due(j);
        } else {
            self.schedule(j, cycle + 1, cycle);
        }
    }

    /// Wakes every declared endpoint of the event's wire. Indexed access
    /// (rather than moving the list out) keeps the per-event cost to the
    /// wakes themselves — this runs for every push and pop in the system.
    fn wake_endpoints(&mut self, event: WireEvent, actor: usize, cycle: Cycle) {
        let (start, end) = self.endpoint_ranges[self.slot_base[event.slot] + event.wire];
        for k in start..end {
            let j = self.endpoint_list[k as usize] as usize;
            self.wake_peer(j, actor, event.push, cycle);
        }
    }

    /// Wakes every opaque component after an event-bearing tick: any wire
    /// activity may matter to a component with undeclared topology. One
    /// combined wake per tick (due now for later peers, next cycle always)
    /// over-approximates the per-event push/pop rules — extra ticks are
    /// always exact — and avoids walking the list once per event.
    fn wake_opaque(&mut self, actor: usize, cycle: Cycle) {
        for k in 0..self.opaque.len() {
            let j = self.opaque[k] as usize;
            if j == actor {
                continue;
            }
            self.wakes[j] += 1;
            if j > actor {
                self.mark_due(j);
            }
            self.schedule(j, cycle + 1, cycle);
        }
    }
}

/// The arena kernel's compiled schedule and mask scheduler. Components are
/// addressed by *schedule position* — island-major registration order, at
/// most 64 — so every per-cycle set (due now, due next, opaque) is one
/// `u64` and translating wire activity into wakes is a couple of ORs
/// against the pool's accumulators instead of a walk over an event log.
#[derive(Default)]
struct ArenaSched {
    /// `order[pos]` = registration index of the component ticked at
    /// schedule position `pos`.
    order: Vec<u32>,
    /// Positions of opaque (port-less) components: woken by any
    /// event-bearing tick, exactly like the event kernel's opaque list.
    opaque_mask: u64,
    /// Per position: declared Consume wires as `(slot, wire)`.
    consume: Vec<Vec<(usize, usize)>>,
    /// Per position: coupled dependents, as schedule positions.
    dependents: Vec<Vec<u32>>,
    /// Per position: non-observer endpoints of every wire the component
    /// drives or consumes (its own bit included). A batch window requires
    /// every such peer to be due — batched activity on the shared wire
    /// would otherwise have to wake a sleeping peer mid-window.
    peers: Vec<u64>,
    /// Positions due at the cycle being processed.
    due: u64,
    /// Positions due at the immediately following cycle (the fast path
    /// back-to-back beat streams ride without touching `wake_at`).
    due_next: u64,
    /// Per position: earliest pending far wake (`>= cycle + 2`; `NEVER` =
    /// none). Only the component's own hints land here — wire wakes always
    /// go through the masks.
    wake_at: Vec<Cycle>,
    /// Lower bound on `min(wake_at)`; may be stale after a discarded wake
    /// and is re-derived exactly on every merge scan.
    wake_min: Cycle,
    /// `(components, wires, couples)` the schedule was compiled for.
    signature: (usize, usize, usize),
}

/// A cycle-accurate simulator: a [`ChannelPool`] plus an ordered list of
/// components.
///
/// [`Sim::run`] and [`Sim::run_until`] are driven by a discrete-event
/// kernel: a wake-queue keyed on [`Component::next_event`] hints plus a
/// dirty-set fed by wire pushes/pops decides, per cycle, which components
/// tick at all; cycles with an empty dirty-set are jumped over entirely.
/// Skipping is exact — elided ticks are provable no-ops under the
/// `next_event` contract, and components reconcile time-proportional
/// counters in [`Component::on_fast_forward`] — so an event-driven run
/// finishes in the same state, at the same cycle, as an explicitly stepped
/// one; only wall-clock changes. [`Sim::kernel_stats`] reports the split.
///
/// # Example
///
/// ```
/// use axi_sim::{Component, Sim, TickCtx};
///
/// struct Nop;
/// impl Component for Nop {
///     fn tick(&mut self, _ctx: &mut TickCtx<'_>) {}
/// }
///
/// let mut sim = Sim::new();
/// sim.add(Nop);
/// sim.run(100);
/// assert_eq!(sim.cycle(), 100);
/// ```
pub struct Sim {
    pool: ChannelPool,
    components: Vec<Box<dyn Component>>,
    cycle: Cycle,
    stats: KernelStats,
    mode: KernelMode,
    /// First cycle each component has *not* yet accounted for, via tick or
    /// `on_fast_forward`. Invariant between advances: `synced_to[i] <=
    /// cycle + 1`, equal to `cycle + 1` right after component `i` ticks.
    synced_to: Vec<Cycle>,
    /// `(source, dependent)` pairs from [`Sim::couple`], in declaration
    /// order; `couple_set` is the membership index keeping `couple` O(log n).
    couples: Vec<(usize, usize)>,
    couple_set: BTreeSet<(usize, usize)>,
    sched: Scheduler,
    violations: Vec<ContractViolation>,
    violations_dropped: u64,
    /// Access sanitizer (`REALM_SANITIZE=1`): when on, pool taps check
    /// every in-tick push/pop against the declared ports and the missed-
    /// wake poll runs in every build.
    sanitize: bool,
    /// `(components, wires)` the pool's sanitizer tables were built for.
    san_signature: Option<(usize, usize)>,
    san_violations: Vec<SanitizerViolation>,
    san_violations_dropped: u64,
    san_scratch: Vec<RawSanViolation>,
    /// Island partition for [`KernelMode::Islands`] plus the
    /// `(components, wires, couples)` signature it was computed for.
    islands: Vec<Vec<usize>>,
    islands_signature: Option<(usize, usize, usize)>,
    /// Compiled schedule + mask scheduler for [`KernelMode::Arena`].
    arena: ArenaSched,
    /// Per registration index: whether the batching plan allows this
    /// component to stream through batch windows (see
    /// [`Sim::set_batch_plan`]). Empty = no plan = no batching.
    batch_allowed: Vec<bool>,
    /// Self-profiler counters, one entry per component (see
    /// [`Sim::profile`]). Counter maintenance is a single indexed add per
    /// visit; wall-time exists only under the `self-profile` feature.
    profile: Vec<ProfileEntry>,
    /// Bounded log of executed batch windows `(start, length)` for the
    /// Perfetto exporter. Armed by `REALM_TRACE` at construction (or
    /// [`Sim::set_batch_window_log`]); `None` costs nothing per window.
    batch_window_log: Option<Vec<(Cycle, u64)>>,
}

/// Retained batch-window log entries (diagnostic bound, like
/// [`MAX_VIOLATIONS`] — a trace needs the shape, not every window).
const MAX_WINDOW_LOG: usize = 4096;

use realm_telemetry::trace_from_env;

impl Sim {
    /// Creates an empty simulator at cycle 0. The kernel honours the
    /// `REALM_KERNEL` environment variable (`step` forces cycle stepping,
    /// `islands` the island-ordered stepper); `REALM_SANITIZE=1` arms the
    /// access sanitizer.
    pub fn new() -> Self {
        Self {
            pool: ChannelPool::new(),
            components: Vec::new(),
            cycle: 0,
            stats: KernelStats::default(),
            mode: kernel_mode_from_env(),
            synced_to: Vec::new(),
            couples: Vec::new(),
            couple_set: BTreeSet::new(),
            sched: Scheduler::default(),
            violations: Vec::new(),
            violations_dropped: 0,
            sanitize: sanitize_from_env(),
            san_signature: None,
            san_violations: Vec::new(),
            san_violations_dropped: 0,
            san_scratch: Vec::new(),
            islands: Vec::new(),
            islands_signature: None,
            arena: ArenaSched::default(),
            batch_allowed: Vec::new(),
            profile: Vec::new(),
            batch_window_log: trace_from_env().then(Vec::new),
        }
    }

    /// The wire pool, for allocating bundles before components exist.
    pub fn pool(&self) -> &ChannelPool {
        &self.pool
    }

    /// Mutable access to the wire pool.
    pub fn pool_mut(&mut self) -> &mut ChannelPool {
        &mut self.pool
    }

    /// Registers a component; components are ticked in registration order.
    pub fn add<C: Component>(&mut self, component: C) -> ComponentId {
        self.components.push(Box::new(component));
        self.synced_to.push(self.cycle);
        self.profile.push(ProfileEntry::default());
        ComponentId(self.components.len() - 1)
    }

    /// Declares that `source`'s tick may mutate state that `dependent`
    /// reads outside any wire (shared registers, `Rc<RefCell<…>>`
    /// couplings). The event kernel then keeps the pair exact: before
    /// `source` ticks, `dependent`'s elided ticks are reconciled, and after
    /// `source` ticks, `dependent` is woken — mirroring what cycle stepping
    /// does implicitly. Wire-only interactions need no coupling.
    pub fn couple(&mut self, source: ComponentId, dependent: ComponentId) {
        assert!(source.0 < self.components.len(), "unknown source");
        assert!(dependent.0 < self.components.len(), "unknown dependent");
        // `couples` keeps declaration order (the kernel's wake tables are
        // order-sensitive); the set makes the duplicate check O(log n)
        // instead of a linear scan per call.
        if source != dependent && self.couple_set.insert((source.0, dependent.0)) {
            self.couples.push((source.0, dependent.0));
        }
    }

    /// Returns a typed reference to a registered component, or `None` if the
    /// type does not match.
    pub fn component<C: Component>(&self, id: ComponentId) -> Option<&C> {
        let c: &dyn Component = self.components[id.0].as_ref();
        (c as &dyn Any).downcast_ref::<C>()
    }

    /// Returns a typed mutable reference to a registered component, or
    /// `None` if the type does not match.
    pub fn component_mut<C: Component>(&mut self, id: ComponentId) -> Option<&mut C> {
        let c: &mut dyn Component = self.components[id.0].as_mut();
        (c as &mut dyn Any).downcast_mut::<C>()
    }

    /// The current cycle (number of completed steps).
    pub fn cycle(&self) -> Cycle {
        self.cycle
    }

    /// Executed-tick vs. skipped-cycle counters since construction.
    pub fn kernel_stats(&self) -> KernelStats {
        self.stats
    }

    /// Which kernel [`Sim::run`]/[`Sim::run_until`] use.
    pub fn kernel_mode(&self) -> KernelMode {
        self.mode
    }

    /// Overrides the kernel selection (tests and differential tooling; the
    /// default comes from `REALM_KERNEL`).
    pub fn set_kernel_mode(&mut self, mode: KernelMode) {
        self.mode = mode;
    }

    /// [`Component::next_event`] contract breaches detected so far. The
    /// kernel always corrects course, so these are diagnostics, not
    /// failures — but a correct system keeps this empty.
    pub fn contract_violations(&self) -> &[ContractViolation] {
        &self.violations
    }

    /// Contract violations beyond the retention bound, counted not stored.
    pub fn contract_violations_dropped(&self) -> u64 {
        self.violations_dropped
    }

    /// Whether the runtime access sanitizer is armed (from
    /// `REALM_SANITIZE=1` or [`Sim::set_sanitize`]).
    pub fn sanitize_enabled(&self) -> bool {
        self.sanitize
    }

    /// Arms or disarms the access sanitizer (the default comes from
    /// `REALM_SANITIZE`). While armed, every in-tick wire push/pop is
    /// checked against the component's declared ports, and the missed-wake
    /// poll runs in release builds too; accesses are never blocked, so
    /// results are bit-identical with the sanitizer on or off.
    pub fn set_sanitize(&mut self, on: bool) {
        self.sanitize = on;
        self.san_signature = None;
        if !on {
            self.pool.set_sanitizer(None);
        }
    }

    /// Undeclared accesses the sanitizer caught so far (bounded retention;
    /// see [`Sim::sanitizer_violations_dropped`]). Always empty while the
    /// sanitizer is off. A system whose declarations match its behaviour
    /// keeps this empty — that is the runtime proof behind the static
    /// island partition.
    pub fn sanitizer_violations(&self) -> &[SanitizerViolation] {
        &self.san_violations
    }

    /// Sanitizer violations beyond the retention bound, counted not stored.
    pub fn sanitizer_violations_dropped(&self) -> u64 {
        self.san_violations_dropped
    }

    /// A static snapshot of the system's structure — every component with
    /// its declared wire endpoints plus every allocated wire — for
    /// elaboration-time analysis before the first cycle runs (see the
    /// `realm-lint` crate).
    pub fn topology(&self) -> crate::Topology {
        crate::Topology::collect(&self.components, &self.pool, &self.couples)
    }

    /// The system's island partition: connected components of the
    /// undirected dependence graph (shared wires + couples), each a group
    /// that can be stepped independently of the others. Convenience
    /// wrapper over [`Topology::islands`](crate::Topology::islands).
    pub fn partition(&self) -> Vec<Vec<usize>> {
        self.topology().islands()
    }

    /// Harvests the run's coverage: every component's
    /// [`Component::coverage`](crate::Component::coverage) export, plus an
    /// `edge.{channel}[{index}]` key for each pool wire that carried at
    /// least one beat (the lint-topology edges the run exercised).
    ///
    /// Pull-based and side-effect free — callable between runs or after
    /// completion without perturbing the simulation.
    pub fn coverage(&self) -> crate::CoverageMap {
        let mut map = crate::CoverageMap::new();
        for component in &self.components {
            component.coverage(&mut map);
        }
        for wire in self.pool.wire_activity() {
            map.add(
                format!("edge.{}[{}]", wire.channel, wire.index),
                wire.pushes,
            );
        }
        map
    }

    /// Harvests the run's telemetry: every component's
    /// [`Component::telemetry`](crate::Component::telemetry) export, plus
    /// the kernel's own signals — `kernel.*` counters from
    /// [`KernelStats`], instant events for every retained contract and
    /// sanitizer violation, and batch-window spans when the window log is
    /// armed (`REALM_TRACE` / [`Sim::set_batch_window_log`]).
    ///
    /// Pull-based and side-effect free, like [`Sim::coverage`]: collecting
    /// telemetry cannot perturb the simulation, so results are
    /// bit-identical whether or not anything reads the sink (CI-gated).
    ///
    /// Component counters and histograms are kernel-invariant (component
    /// state is bit-identical across kernels by construction). The
    /// `kernel.*` counters, violation instants, and batch-window spans
    /// describe *how* the run was executed and differ across kernels —
    /// exporters writing kernel-comparable artifacts (`results/*.json`)
    /// must draw only on the component side.
    pub fn telemetry(&self) -> TelemetrySink {
        let mut sink = TelemetrySink::new();
        for component in &self.components {
            component.telemetry(&mut sink);
        }
        let s = &self.stats;
        sink.counter("kernel.ticks_executed", s.ticks_executed);
        sink.counter("kernel.cycles_skipped", s.cycles_skipped);
        sink.counter("kernel.fast_forwards", s.fast_forwards);
        sink.counter("kernel.component_ticks", s.component_ticks);
        sink.counter("kernel.component_skips", s.component_skips);
        sink.counter("kernel.wire_events", s.wire_events);
        sink.counter("kernel.batched_beats", s.batched_beats);
        sink.counter("kernel.batch_windows", s.batch_windows);
        sink.counter(
            "kernel.contract_violations",
            self.violations.len() as u64 + self.violations_dropped,
        );
        sink.counter(
            "kernel.contract_violations_dropped",
            self.violations_dropped,
        );
        sink.counter(
            "kernel.sanitizer_violations",
            self.san_violations.len() as u64 + self.san_violations_dropped,
        );
        sink.counter(
            "kernel.sanitizer_violations_dropped",
            self.san_violations_dropped,
        );
        for v in &self.violations {
            let kind = match v.kind {
                ViolationKind::StaleHint => "stale-hint",
                ViolationKind::MissedWake => "missed-wake",
            };
            sink.instant("kernel", &format!("contract:{kind}:{}", v.name), v.cycle);
        }
        for v in &self.san_violations {
            let kind = match v.kind {
                SanitizerKind::UndeclaredPush => "push",
                SanitizerKind::UndeclaredPop => "pop",
                SanitizerKind::UndeclaredWake => "wake",
            };
            sink.instant("kernel", &format!("sanitizer:{kind}:{}", v.name), v.cycle);
        }
        if let Some(log) = &self.batch_window_log {
            for &(start, window) in log {
                sink.span("kernel", "batch-window", start, start + window);
            }
        }
        sink
    }

    /// Arms or disarms the batch-window log feeding
    /// [`Sim::telemetry`]'s `batch-window` spans (the default comes from
    /// `REALM_TRACE`). Purely observational — the log never influences
    /// window formation — and bounded, so leaving it armed is safe.
    pub fn set_batch_window_log(&mut self, on: bool) {
        self.batch_window_log = on.then(Vec::new);
    }

    /// The kernel self-profiler's per-component attribution: visits
    /// (tick/batch_tick calls), batch-covered cycles, delivered wakes, and
    /// — only when built with the `self-profile` feature — wall-time.
    ///
    /// Visit/wake/batch counters are always maintained (one indexed add on
    /// the paths that already do bookkeeping); the clock reads attributing
    /// wall-time are compiled out without the feature, so a default build
    /// contains no wall-clock reads at all. Profiles are *kernel-dependent*
    /// by nature (which visits execute is exactly what distinguishes the
    /// kernels) and belong in wall-clock artifacts like
    /// `BENCH_kernel.json`, never in kernel-compared `results/*.json`.
    pub fn profile(&self) -> Vec<ComponentProfile> {
        self.components
            .iter()
            .enumerate()
            .map(|(i, component)| ComponentProfile {
                index: i,
                name: component.name().to_owned(),
                visits: self.profile[i].visits,
                batch_cycles: self.profile[i].batch_cycles,
                wakes: self.sched.wakes.get(i).copied().unwrap_or(0),
                wall_ns: self.profile[i].wall_ns,
            })
            .collect()
    }

    /// Advances the simulation by one cycle, ticking every component once
    /// (the reference kernel). Interleaves exactly with event-driven runs:
    /// components a previous run left fast-forwarded are reconciled here.
    pub fn step(&mut self) {
        self.ensure_sanitizer();
        let cycle = self.cycle;
        for index in 0..self.components.len() {
            self.tick_component(index, cycle);
        }
        self.pool.set_owner(None);
        self.cycle += 1;
        self.stats.ticks_executed += 1;
        self.stats.component_ticks += self.components.len() as u64;
        self.drain_sanitizer();
    }

    /// Advances one cycle under the island kernel: every component ticks,
    /// but the walk goes island by island (each island's members in
    /// registration order) instead of flat registration order. Because no
    /// wire, couple, or declared endpoint crosses an island boundary, the
    /// islands cannot observe each other's intra-cycle ordering and the
    /// result is bit-identical to [`Sim::step`] — the runtime cash-in of
    /// the static dependence analysis (CI-gated on all experiments).
    fn step_islands(&mut self) {
        self.ensure_islands();
        self.ensure_sanitizer();
        let cycle = self.cycle;
        let islands = std::mem::take(&mut self.islands);
        for island in &islands {
            for &index in island {
                self.tick_component(index, cycle);
            }
        }
        self.islands = islands;
        self.pool.set_owner(None);
        self.cycle += 1;
        self.stats.ticks_executed += 1;
        self.stats.component_ticks += self.components.len() as u64;
        self.drain_sanitizer();
    }

    /// Reconciles and ticks one component at `cycle` (stepping kernels).
    fn tick_component(&mut self, index: usize, cycle: Cycle) {
        if self.synced_to[index] < cycle {
            self.components[index].on_fast_forward(self.synced_to[index], cycle);
        }
        self.synced_to[index] = cycle + 1;
        self.pool.set_owner(Some(index));
        let mut ctx = TickCtx {
            cycle,
            pool: &mut self.pool,
        };
        self.profile[index].visits += 1;
        #[cfg(feature = "self-profile")]
        let t0 = std::time::Instant::now(); // lint:allow(wall-clock) -- self-profiler, feature-gated
        self.components[index].tick(&mut ctx);
        #[cfg(feature = "self-profile")]
        {
            self.profile[index].wall_ns += t0.elapsed().as_nanos() as u64;
        }
    }

    /// Recomputes the island partition if the topology changed.
    fn ensure_islands(&mut self) {
        let signature = (
            self.components.len(),
            self.pool.wire_count(),
            self.couples.len(),
        );
        if self.islands_signature != Some(signature) {
            self.islands = self.topology().islands();
            self.islands_signature = Some(signature);
        }
    }

    /// Rebuilds the pool's sanitizer tables if the sanitizer is armed and
    /// the topology changed since they were last built. O(1) when nothing
    /// changed; a no-op entirely when the sanitizer is off.
    fn ensure_sanitizer(&mut self) {
        if !self.sanitize {
            return;
        }
        let signature = (self.components.len(), self.pool.wire_count());
        if self.san_signature == Some(signature) {
            return;
        }
        let counts = self.pool.wire_counts();
        let mut slot_base = [0usize; CHANNEL_SLOTS];
        let mut total_wires = 0;
        for (slot, &wires) in counts.iter().enumerate() {
            slot_base[slot] = total_wires;
            total_wires += wires;
        }
        let n = self.components.len();
        let mut tables = SanitizerTables {
            slot_base,
            total_wires,
            drive: vec![false; n * total_wires],
            consume: vec![false; n * total_wires],
            opaque: vec![false; n],
        };
        for (i, component) in self.components.iter().enumerate() {
            let ports = component.ports();
            if ports.is_empty() {
                tables.opaque[i] = true;
                continue;
            }
            for port in ports {
                let Some(slot) = channel_slot(port.channel) else {
                    continue;
                };
                if port.wire >= counts[slot] {
                    continue; // dangling declaration; realm-lint reports it
                }
                let flat = i * total_wires + slot_base[slot] + port.wire;
                match port.dir {
                    PortDir::Drive => tables.drive[flat] = true,
                    PortDir::Consume => tables.consume[flat] = true,
                    PortDir::Observe => {}
                }
            }
        }
        self.pool.set_sanitizer(Some(tables));
        self.san_signature = Some(signature);
    }

    /// Resolves raw pool sanitizer hits into named, bounded records.
    fn drain_sanitizer(&mut self) {
        if !self.pool.has_san_hits() {
            return;
        }
        let mut scratch = std::mem::take(&mut self.san_scratch);
        self.pool.drain_san_hits_into(&mut scratch);
        for raw in scratch.drain(..) {
            self.record_san_violation(raw);
        }
        self.san_scratch = scratch;
    }

    fn record_san_violation(&mut self, raw: RawSanViolation) {
        if self.san_violations.len() < MAX_VIOLATIONS {
            let name = self.components[raw.component].name().to_owned();
            self.san_violations.push(SanitizerViolation {
                component: raw.component,
                name,
                cycle: raw.cycle,
                channel: raw.channel,
                wire: raw.wire,
                kind: raw.kind,
            });
        } else {
            self.san_violations_dropped += 1;
        }
    }

    /// The instance name of the component registered at `index`, if any —
    /// resolves [`PushRefusal::component`](crate::PushRefusal) indices for
    /// reports.
    pub fn component_name(&self, index: usize) -> Option<&str> {
        self.components.get(index).map(|c| c.name())
    }

    /// Runs for `cycles` cycles.
    pub fn run(&mut self, cycles: u64) {
        self.drive(cycles, None::<&mut fn(&Sim) -> bool>, None);
    }

    /// Advances until `done` returns `true` or `max_cycles` elapse; returns
    /// `true` if the predicate fired.
    ///
    /// The predicate sees the simulator between advances, so it can inspect
    /// components and wires. Quiescent stretches are fast-forwarded, so the
    /// predicate is evaluated per executed cycle or jump, not per skipped
    /// cycle — component state cannot change inside a skipped stretch, so
    /// no predicate flank is missed, though a predicate watching
    /// [`Sim::cycle`] itself may observe a jump past its threshold. Use
    /// [`Sim::run_until_clamped`] when the predicate watches the clock.
    pub fn run_until<F: FnMut(&Sim) -> bool>(&mut self, max_cycles: u64, mut done: F) -> bool {
        self.drive(max_cycles, Some(&mut done), None)
    }

    /// Like [`Sim::run_until`], but fast-forward jumps never cross the
    /// absolute cycle `boundary`: a jump that would overshoot lands exactly
    /// on it, so a predicate watching [`Sim::cycle`] observes the boundary
    /// even when the system is quiescent there.
    pub fn run_until_clamped<F: FnMut(&Sim) -> bool>(
        &mut self,
        max_cycles: u64,
        boundary: Cycle,
        mut done: F,
    ) -> bool {
        self.drive(max_cycles, Some(&mut done), Some(boundary))
    }

    /// The shared driver behind [`Sim::run`]/[`Sim::run_until`].
    fn drive<F: FnMut(&Sim) -> bool>(
        &mut self,
        max_cycles: u64,
        mut done: Option<&mut F>,
        clamp: Option<Cycle>,
    ) -> bool {
        let target = self.cycle + max_cycles;
        // Arena needs one mask bit per component; larger systems fall back
        // to the event kernel, which shares its observable semantics.
        let arena = self.mode == KernelMode::Arena && self.components.len() <= 64;
        if matches!(self.mode, KernelMode::Step | KernelMode::Islands) {
            while self.cycle < target {
                if let Some(done) = done.as_mut() {
                    if done(self) {
                        return true;
                    }
                }
                match self.mode {
                    KernelMode::Islands => self.step_islands(),
                    _ => self.step(),
                }
            }
            return match done {
                Some(done) => done(self),
                None => false,
            };
        }
        if arena {
            return self.drive_arena(target, done, clamp);
        }

        self.prepare_run();
        let n = self.components.len() as u64;
        loop {
            if let Some(done) = done.as_mut() {
                // Reconcile elided ticks so the predicate observes exactly
                // the state a stepped run would show at this cycle.
                self.flush_all(self.cycle);
                if done(self) {
                    return true;
                }
            }
            if self.cycle >= target {
                break;
            }
            self.pop_due();
            if self.sched.due_count > 0 {
                self.process_cycle();
                continue;
            }
            // Nothing due at the current cycle: jump to the earliest
            // pending wake, bounded by the run target and the clamp.
            let next = match self.sched.heap.peek() {
                Some(&Reverse((at, _))) => at.min(target),
                None => target,
            };
            let jump = match clamp {
                Some(boundary) if boundary > self.cycle => next.min(boundary),
                _ => next,
            };
            debug_assert!(jump > self.cycle, "jump must make progress");
            self.stats.cycles_skipped += jump - self.cycle;
            self.stats.component_skips += (jump - self.cycle) * n;
            self.stats.fast_forwards += 1;
            self.cycle = jump;
        }
        self.flush_all(self.cycle);
        match done {
            Some(done) => done(self),
            None => false,
        }
    }

    /// Rebuilds wake tables if the topology changed, clears all pending
    /// wakes, and marks every component due at the current cycle. Starting
    /// a run from the all-due state re-synchronises any state mutated from
    /// outside (direct `component_mut` access, pool pushes between runs)
    /// exactly as the stepping kernel would see it.
    fn prepare_run(&mut self) {
        self.ensure_sanitizer();
        // A previous arena run may have left wake masks armed; the event
        // kernel derives wakes from the event log instead.
        if self.pool.wake_armed() {
            self.pool.set_wake_tables(None);
        }
        let signature = (
            self.components.len(),
            self.pool.wire_count(),
            self.couples.len(),
        );
        if self.sched.signature != signature {
            self.rebuild_scheduler();
            self.sched.signature = signature;
        }
        self.sched.heap.clear();
        self.sched.next_list.clear();
        for f in &mut self.sched.next_flags {
            *f = false;
        }
        for s in &mut self.sched.scheduled {
            *s = NEVER;
        }
        self.sched.due_count = 0;
        for j in 0..self.components.len() {
            self.sched.due[j] = false;
            self.sched.mark_due(j);
        }
        // Beats pushed from outside any run (no wake recording) become
        // visible one cycle in: give every component a look at both of the
        // first two cycles, then let the hints take over.
        if self.pool.total_in_flight() > 0 {
            for j in 0..self.components.len() {
                self.sched.schedule(j, self.cycle + 1, self.cycle);
            }
        }
        self.pool.set_recording(false);
    }

    fn rebuild_scheduler(&mut self) {
        let n = self.components.len();
        let counts = self.pool.wire_counts();
        let mut slot_base = [0usize; CHANNEL_SLOTS];
        let mut total_wires = 0;
        for (slot, &wires) in counts.iter().enumerate() {
            slot_base[slot] = total_wires;
            total_wires += wires;
        }
        let mut endpoints: Vec<Vec<u32>> = vec![Vec::new(); total_wires];
        let mut consume = vec![Vec::new(); n];
        let mut opaque = Vec::new();
        let mut is_opaque = vec![false; n];
        for (i, component) in self.components.iter().enumerate() {
            let ports = component.ports();
            if ports.is_empty() {
                opaque.push(i as u32);
                is_opaque[i] = true;
                continue;
            }
            for port in ports {
                let Some(slot) = channel_slot(port.channel) else {
                    continue;
                };
                if port.wire >= counts[slot] {
                    continue; // dangling declaration; realm-lint reports it
                }
                let peers = &mut endpoints[slot_base[slot] + port.wire];
                if !peers.contains(&(i as u32)) {
                    peers.push(i as u32);
                }
                if port.dir == PortDir::Consume {
                    let key = (slot, port.wire);
                    if !consume[i].contains(&key) {
                        consume[i].push(key);
                    }
                }
            }
        }
        let mut endpoint_ranges = Vec::with_capacity(total_wires);
        let mut endpoint_list = Vec::new();
        for peers in &endpoints {
            let start = endpoint_list.len() as u32;
            endpoint_list.extend_from_slice(peers);
            endpoint_ranges.push((start, endpoint_list.len() as u32));
        }
        let mut dependents = vec![Vec::new(); n];
        for &(source, dependent) in &self.couples {
            let dep = dependent as u32;
            if !dependents[source].contains(&dep) {
                dependents[source].push(dep);
            }
        }
        self.sched.endpoint_ranges = endpoint_ranges;
        self.sched.endpoint_list = endpoint_list;
        self.sched.slot_base = slot_base;
        self.sched.consume = consume;
        self.sched.opaque = opaque;
        self.sched.is_opaque = is_opaque;
        self.sched.dependents = dependents;
        self.sched.due = vec![false; n];
        self.sched.due_count = 0;
        self.sched.next_flags = vec![false; n];
        self.sched.next_list.clear();
        self.sched.scheduled = vec![NEVER; n];
        self.sched.heap.clear();
        // Wake attribution survives rebuilds: a rebuild only means the
        // topology grew, not that a new run started.
        self.sched.wakes.resize(n, 0);
    }

    /// Moves heap wakes that have come due at the current cycle into the
    /// dirty-set.
    fn pop_due(&mut self) {
        while let Some(&Reverse((at, j))) = self.sched.heap.peek() {
            if at > self.cycle {
                break;
            }
            self.sched.heap.pop();
            let j = j as usize;
            debug_assert!(at == self.cycle, "wake left behind in the heap");
            if self.sched.scheduled[j] == at {
                self.sched.mark_due(j);
            }
        }
    }

    /// Reconciles component `index` up to (excluding) `to`.
    fn flush_component(&mut self, index: usize, to: Cycle) {
        if self.synced_to[index] < to {
            self.components[index].on_fast_forward(self.synced_to[index], to);
            self.synced_to[index] = to;
        }
    }

    /// Reconciles every component up to (excluding) `to`.
    fn flush_all(&mut self, to: Cycle) {
        for index in 0..self.components.len() {
            self.flush_component(index, to);
        }
    }

    fn record_violation(
        &mut self,
        component: usize,
        cycle: Cycle,
        hint: Cycle,
        kind: ViolationKind,
    ) {
        if self.violations.len() < MAX_VIOLATIONS {
            let name = self.components[component].name().to_owned();
            self.violations.push(ContractViolation {
                component,
                name,
                cycle,
                hint,
                kind,
            });
        } else {
            self.violations_dropped += 1;
        }
    }

    /// Safety net (debug builds always; release builds with the sanitizer
    /// armed): a sleeping component whose `next_event` claims it is due
    /// right now was missed by the wake bookkeeping — an under-reporting
    /// hint or an undeclared dependency. Record it and wake the component
    /// so results stay exact anyway. With the sanitizer armed the miss is
    /// additionally a [`SanitizerKind::UndeclaredWake`]: the component
    /// reacted to state no declared wire or couple edge carries.
    fn poll_missed_wakes(&mut self) {
        let cycle = self.cycle;
        for i in 0..self.components.len() {
            if self.sched.due[i] {
                continue;
            }
            if let Some(hint) = self.components[i].next_event(cycle) {
                if hint <= cycle {
                    self.record_violation(i, cycle, hint, ViolationKind::MissedWake);
                    if self.sanitize {
                        self.record_san_violation(RawSanViolation {
                            component: i,
                            cycle,
                            channel: "-",
                            wire: 0,
                            kind: SanitizerKind::UndeclaredWake,
                        });
                    }
                    self.sched.mark_due(i);
                }
            }
        }
    }

    /// Executes one cycle: ticks exactly the due components in registration
    /// order, turns their wire activity into wakes, and re-arms their
    /// `next_event` hints.
    fn process_cycle(&mut self) {
        if cfg!(debug_assertions) || self.sanitize {
            self.poll_missed_wakes();
        }

        let cycle = self.cycle;
        let n = self.components.len();
        let mut ticked: u64 = 0;
        self.pool.set_recording(true);
        let mut i = 0;
        while i < n {
            if !self.sched.due[i] {
                i += 1;
                continue;
            }
            self.sched.due[i] = false;
            self.sched.due_count -= 1;

            // Shared-state couplings: reconcile each dependent before this
            // tick reads or writes the shared state. A dependent earlier in
            // tick order has had its turn this cycle, so its tick at
            // `cycle` is elided under the pre-write state.
            for k in 0..self.sched.dependents[i].len() {
                let d = self.sched.dependents[i][k] as usize;
                let to = if d < i { cycle + 1 } else { cycle };
                self.flush_component(d, to);
            }

            self.flush_component(i, cycle);
            self.synced_to[i] = cycle + 1;
            self.sched.scheduled[i] = if self.sched.next_flags[i] {
                cycle + 1
            } else {
                NEVER
            };

            self.pool.set_owner(Some(i));
            let mut ctx = TickCtx {
                cycle,
                pool: &mut self.pool,
            };
            self.profile[i].visits += 1;
            #[cfg(feature = "self-profile")]
            let t0 = std::time::Instant::now(); // lint:allow(wall-clock) -- self-profiler, feature-gated
            self.components[i].tick(&mut ctx);
            #[cfg(feature = "self-profile")]
            {
                self.profile[i].wall_ns += t0.elapsed().as_nanos() as u64;
            }
            ticked += 1;

            // Wire activity → wakes. A push is visible to peers from the
            // next cycle (register per hop); peers later in tick order also
            // get a same-cycle look so tap-draining monitors match the
            // stepping kernel beat for beat. A pop frees capacity usable by
            // peers from the next cycle, or this cycle for later peers.
            self.pool.drain_events_into(&mut self.sched.events);
            let n_events = self.sched.events.len();
            if n_events > 0 {
                self.stats.wire_events += n_events as u64;
                for k in 0..n_events {
                    let event = self.sched.events[k];
                    self.sched.wake_endpoints(event, i, cycle);
                }
                self.sched.wake_opaque(i, cycle);
                self.sched.events.clear();
            }

            // Coupled dependents observe the write next cycle, or this
            // cycle if they tick after the writer — exactly as stepping.
            for k in 0..self.sched.dependents[i].len() {
                let d = self.sched.dependents[i][k] as usize;
                self.sched.wakes[d] += 1;
                if d > i {
                    self.sched.mark_due(d);
                } else {
                    self.sched.schedule(d, cycle + 1, cycle);
                }
            }

            // Re-arm the component's own wake hint — unless a wire wake has
            // already booked it for the next cycle, in which case no hint
            // (necessarily `>= cycle + 1`) could add anything and the
            // virtual call is skipped outright. Saturated pipelines take
            // this shortcut for most ticks.
            if self.sched.scheduled[i] != cycle + 1 {
                match self.components[i].next_event(cycle + 1) {
                    None => {}
                    Some(hint) if hint <= cycle => {
                        self.record_violation(i, cycle, hint, ViolationKind::StaleHint);
                        self.sched.schedule(i, cycle + 1, cycle);
                    }
                    Some(hint) => self.sched.schedule(i, hint, cycle),
                }
            }

            // A consumer may pop at most one beat per wire per cycle (and
            // may decline): while any of its input wires holds beats, the
            // component decides via `backlog_event` when the next pop could
            // happen (the default: right away). Opaque components get the
            // conservative whole-pool version of the same rule. Skipped
            // outright when the component is already booked for the next
            // cycle — the strongest answer backlog could produce.
            if self.sched.scheduled[i] != cycle + 1 {
                let backlog = if self.sched.is_opaque[i] {
                    self.pool.total_in_flight() > 0
                } else {
                    self.sched.consume[i]
                        .iter()
                        .any(|&(slot, wire)| self.pool.slot_len(slot, wire) > 0)
                };
                if backlog {
                    match self.components[i].backlog_event(cycle + 1) {
                        None => {}
                        Some(hint) if hint <= cycle => {
                            self.record_violation(i, cycle, hint, ViolationKind::StaleHint);
                            self.sched.schedule(i, cycle + 1, cycle);
                        }
                        Some(hint) => self.sched.schedule(i, hint, cycle),
                    }
                }
            }

            i += 1;
        }
        self.pool.set_owner(None);
        self.pool.set_recording(false);
        self.drain_sanitizer();
        debug_assert_eq!(self.sched.due_count, 0, "due component not visited");

        self.cycle = cycle + 1;
        self.stats.ticks_executed += 1;
        self.stats.component_ticks += ticked;
        self.stats.component_skips += n as u64 - ticked;

        // Roll the next-cycle fast path into the dirty-set.
        let next_list = std::mem::take(&mut self.sched.next_list);
        for &j in &next_list {
            let j = j as usize;
            self.sched.next_flags[j] = false;
            self.sched.mark_due(j);
        }
        let mut next_list = next_list;
        next_list.clear();
        self.sched.next_list = next_list;
    }

    /// Installs the batching plan: `allowed[i]` says whether the component
    /// registered at index `i` may stream through batch windows (see
    /// [`Component::batch_horizon`]). The plan comes from static analysis —
    /// `realm-lint` marks a component batchable only when every wire it
    /// drives or consumes is an uncontended point-to-point path — so the
    /// kernel never has to second-guess a horizon's wire footprint. An
    /// empty plan (the default) disables batching entirely.
    pub fn set_batch_plan(&mut self, allowed: Vec<bool>) {
        self.batch_allowed = allowed;
    }

    /// The installed batching plan (empty = batching off).
    pub fn batch_plan(&self) -> &[bool] {
        &self.batch_allowed
    }

    /// The arena-kernel driver behind [`Sim::drive`]: mask scheduler plus
    /// batch windows. Bit-identical to the event and stepping kernels in
    /// every observable.
    fn drive_arena<F: FnMut(&Sim) -> bool>(
        &mut self,
        target: Cycle,
        mut done: Option<&mut F>,
        clamp: Option<Cycle>,
    ) -> bool {
        self.prepare_arena_run();
        let n = self.components.len() as u64;
        loop {
            if let Some(done) = done.as_mut() {
                self.flush_all(self.cycle);
                if done(self) {
                    return true;
                }
            }
            if self.cycle >= target {
                break;
            }
            if self.arena.wake_min <= self.cycle {
                self.merge_far_wakes();
            }
            if self.arena.due != 0 {
                // Windows only in predicate-free runs: `run_until` checks
                // its predicate before every processed cycle, and a window
                // advancing several cycles at once could overshoot the
                // exact stop cycle a stepped run would report.
                if done.is_none() && !self.batch_allowed.is_empty() {
                    if let Some(window) = self.batch_window(target, clamp) {
                        self.run_batch_window(window);
                        continue;
                    }
                }
                self.process_cycle_arena();
                continue;
            }
            // Nothing due: jump to the earliest pending far wake, bounded
            // by the run target and the clamp.
            let next = self.arena.wake_min.min(target);
            let jump = match clamp {
                Some(boundary) if boundary > self.cycle => next.min(boundary),
                _ => next,
            };
            debug_assert!(jump > self.cycle, "jump must make progress");
            self.stats.cycles_skipped += jump - self.cycle;
            self.stats.component_skips += (jump - self.cycle) * n;
            self.stats.fast_forwards += 1;
            self.cycle = jump;
        }
        self.flush_all(self.cycle);
        match done {
            Some(done) => done(self),
            None => false,
        }
    }

    /// Recompiles the schedule if the topology changed, arms the pool's
    /// wake masks, and marks every component due — the same all-due
    /// re-synchronisation the event kernel performs at run start.
    fn prepare_arena_run(&mut self) {
        self.ensure_sanitizer();
        let signature = (
            self.components.len(),
            self.pool.wire_count(),
            self.couples.len(),
        );
        if self.arena.signature != signature || !self.pool.wake_armed() {
            self.rebuild_arena();
            self.arena.signature = signature;
        }
        let n = self.components.len();
        let all = if n >= 64 { !0u64 } else { (1u64 << n) - 1 };
        self.arena.due = all;
        // Beats pushed from outside any run become visible one cycle in:
        // give every component a look at both of the first two cycles.
        self.arena.due_next = if self.pool.total_in_flight() > 0 {
            all
        } else {
            0
        };
        for at in &mut self.arena.wake_at {
            *at = NEVER;
        }
        self.arena.wake_min = NEVER;
        self.pool.set_recording(false);
        self.pool.begin_actor(u32::MAX);
        // Wake accumulation from pushes between runs carries no information
        // beyond the all-due start; drop it along with its event count.
        let _ = self.pool.take_wakes();
        let _ = self.pool.take_wake_events();
    }

    /// Compiles the island-major schedule and the per-wire wake masks.
    fn rebuild_arena(&mut self) {
        let n = self.components.len();
        assert!(n <= 64, "arena kernel supports at most 64 components");
        // Island-major order: each island's members in registration order —
        // the islands kernel's walk, whose reordering is unobservable.
        let islands = self.topology().islands();
        let mut order: Vec<u32> = Vec::with_capacity(n);
        for island in &islands {
            order.extend(island.iter().map(|&i| i as u32));
        }
        debug_assert_eq!(order.len(), n, "partition must cover every component");
        let mut pos_of = vec![0u32; n];
        for (pos, &i) in order.iter().enumerate() {
            pos_of[i as usize] = pos as u32;
        }

        let counts = self.pool.wire_counts();
        let mut slot_base = [0usize; CHANNEL_SLOTS];
        let mut total_wires = 0;
        for (slot, &wires) in counts.iter().enumerate() {
            slot_base[slot] = total_wires;
            total_wires += wires;
        }
        let mut all = vec![0u64; total_wires];
        let mut active = vec![0u64; total_wires]; // drive/consume endpoints
        let mut opaque_mask = 0u64;
        let mut consume = vec![Vec::new(); n];
        let mut touched = vec![Vec::new(); n]; // non-observe flats per position
        for (i, component) in self.components.iter().enumerate() {
            let pos = pos_of[i] as usize;
            let bit = 1u64 << pos;
            let ports = component.ports();
            if ports.is_empty() {
                opaque_mask |= bit;
                continue;
            }
            for port in ports {
                let Some(slot) = channel_slot(port.channel) else {
                    continue;
                };
                if port.wire >= counts[slot] {
                    continue; // dangling declaration; realm-lint reports it
                }
                let flat = slot_base[slot] + port.wire;
                all[flat] |= bit;
                match port.dir {
                    PortDir::Drive => {
                        active[flat] |= bit;
                        touched[pos].push(flat);
                    }
                    PortDir::Consume => {
                        active[flat] |= bit;
                        touched[pos].push(flat);
                        let key = (slot, port.wire);
                        if !consume[pos].contains(&key) {
                            consume[pos].push(key);
                        }
                    }
                    PortDir::Observe => {}
                }
            }
        }
        // Observe-only endpoints: excluded from pop wakes (their ticks only
        // drain taps, which fill on pushes) and deferrable across batch
        // windows (tap records carry their own cycle stamps).
        let obs: Vec<u64> = all.iter().zip(&active).map(|(a, act)| a & !act).collect();
        let peers: Vec<u64> = touched
            .iter()
            .map(|flats| flats.iter().fold(0u64, |acc, &f| acc | active[f]))
            .collect();
        let mut dependents = vec![Vec::new(); n];
        for &(source, dependent) in &self.couples {
            let (sp, dp) = (pos_of[source] as usize, pos_of[dependent]);
            if !dependents[sp].contains(&dp) {
                dependents[sp].push(dp);
            }
        }
        self.arena.order = order;
        self.arena.opaque_mask = opaque_mask;
        self.arena.consume = consume;
        self.arena.dependents = dependents;
        self.arena.peers = peers;
        self.arena.wake_at = vec![NEVER; n];
        self.arena.wake_min = NEVER;
        self.pool.set_wake_tables(Some(Box::new(WakeTables {
            slot_base,
            all,
            obs,
        })));
    }

    /// Pulls far wakes that have come due into the due mask and re-derives
    /// the exact minimum (the stored one may be a stale lower bound).
    fn merge_far_wakes(&mut self) {
        let cycle = self.cycle;
        let mut min = NEVER;
        for (pos, at) in self.arena.wake_at.iter_mut().enumerate() {
            if *at <= cycle {
                self.arena.due |= 1u64 << pos;
                *at = NEVER;
            } else if *at < min {
                min = *at;
            }
        }
        self.arena.wake_min = min;
    }

    /// Books a wake for the component at schedule position `pos`.
    fn arena_schedule(&mut self, pos: usize, bit: u64, at: Cycle, current: Cycle) {
        if at == current + 1 {
            self.arena.due_next |= bit;
        } else if at < self.arena.wake_at[pos] {
            self.arena.wake_at[pos] = at;
            if at < self.arena.wake_min {
                self.arena.wake_min = at;
            }
        }
    }

    /// The arena twin of [`Sim::poll_missed_wakes`], over the due mask.
    fn poll_missed_wakes_arena(&mut self) {
        let cycle = self.cycle;
        for pos in 0..self.components.len() {
            if self.arena.due & (1u64 << pos) != 0 {
                continue;
            }
            let i = self.arena.order[pos] as usize;
            if let Some(hint) = self.components[i].next_event(cycle) {
                if hint <= cycle {
                    self.record_violation(i, cycle, hint, ViolationKind::MissedWake);
                    if self.sanitize {
                        self.record_san_violation(RawSanViolation {
                            component: i,
                            cycle,
                            channel: "-",
                            wire: 0,
                            kind: SanitizerKind::UndeclaredWake,
                        });
                    }
                    self.arena.due |= 1u64 << pos;
                }
            }
        }
    }

    /// Executes one cycle under the mask scheduler: exactly the event
    /// kernel's wake semantics, with every set a `u64` and wire activity
    /// read from the pool's accumulators.
    fn process_cycle_arena(&mut self) {
        if cfg!(debug_assertions) || self.sanitize {
            self.poll_missed_wakes_arena();
        }
        let cycle = self.cycle;
        let n = self.components.len();
        let mut due = std::mem::take(&mut self.arena.due);
        let mut ticked: u64 = 0;
        while due != 0 {
            let pos = due.trailing_zeros() as usize;
            due &= due - 1;
            let bit = 1u64 << pos;
            let i = self.arena.order[pos] as usize;

            // Shared-state couplings: reconcile each dependent before this
            // tick reads or writes the shared state (see process_cycle).
            for k in 0..self.arena.dependents[pos].len() {
                let dp = self.arena.dependents[pos][k] as usize;
                let d = self.arena.order[dp] as usize;
                let to = if dp < pos { cycle + 1 } else { cycle };
                self.flush_component(d, to);
            }

            self.flush_component(i, cycle);
            self.synced_to[i] = cycle + 1;
            // Any pending far wake is superseded by the re-arm below; the
            // stored minimum may go stale-low, which the merge scan fixes.
            self.arena.wake_at[pos] = NEVER;
            self.pool.set_owner(Some(i));
            self.pool.begin_actor(pos as u32);
            let mut ctx = TickCtx {
                cycle,
                pool: &mut self.pool,
            };
            self.profile[i].visits += 1;
            #[cfg(feature = "self-profile")]
            let t0 = std::time::Instant::now(); // lint:allow(wall-clock) -- self-profiler, feature-gated
            self.components[i].tick(&mut ctx);
            #[cfg(feature = "self-profile")]
            {
                self.profile[i].wall_ns += t0.elapsed().as_nanos() as u64;
            }
            ticked += 1;

            // Wire activity → wakes, accumulated by the pool as masks.
            let (now, next, any) = self.pool.take_wakes();
            due |= now;
            self.arena.due_next |= next;
            if any && self.arena.opaque_mask != 0 {
                // Opaque components: due now for later positions, next
                // cycle always — the event kernel's combined opaque wake.
                due |= self.arena.opaque_mask & !(bit | (bit - 1));
                self.arena.due_next |= self.arena.opaque_mask & !bit;
            }

            // Coupled dependents observe the write next cycle, or this
            // cycle if they tick after the writer.
            for k in 0..self.arena.dependents[pos].len() {
                let dp = self.arena.dependents[pos][k];
                if (dp as usize) > pos {
                    due |= 1u64 << dp;
                } else {
                    self.arena.due_next |= 1u64 << dp;
                }
            }

            // Re-arm the wake hint unless already booked for next cycle.
            if self.arena.due_next & bit == 0 {
                match self.components[i].next_event(cycle + 1) {
                    None => {}
                    Some(hint) if hint <= cycle => {
                        self.record_violation(i, cycle, hint, ViolationKind::StaleHint);
                        self.arena.due_next |= bit;
                    }
                    Some(hint) => self.arena_schedule(pos, bit, hint, cycle),
                }
            }
            // Parked backlog on Consume wires keeps the consumer live.
            if self.arena.due_next & bit == 0 {
                let backlog = if self.arena.opaque_mask & bit != 0 {
                    self.pool.total_in_flight() > 0
                } else {
                    self.arena.consume[pos]
                        .iter()
                        .any(|&(slot, wire)| self.pool.slot_len(slot, wire) > 0)
                };
                if backlog {
                    match self.components[i].backlog_event(cycle + 1) {
                        None => {}
                        Some(hint) if hint <= cycle => {
                            self.record_violation(i, cycle, hint, ViolationKind::StaleHint);
                            self.arena.due_next |= bit;
                        }
                        Some(hint) => self.arena_schedule(pos, bit, hint, cycle),
                    }
                }
            }
        }
        self.pool.set_owner(None);
        self.stats.wire_events += self.pool.take_wake_events();
        self.drain_sanitizer();

        self.cycle = cycle + 1;
        self.stats.ticks_executed += 1;
        self.stats.component_ticks += ticked;
        self.stats.component_skips += n as u64 - ticked;
        self.arena.due = std::mem::take(&mut self.arena.due_next);
    }

    /// Decides whether a batch window can start at the current cycle and
    /// how long it may run. `Some(w)` (with `w >= 2`) requires:
    ///
    /// - every due component is plan-approved and reports a batch horizon
    ///   covering `w` cycles;
    /// - every non-observer peer on any wire a due component touches is
    ///   itself due (a sleeping drive/consume peer would be woken mid-
    ///   window by the batched activity — per-cycle execution must handle
    ///   that, so the window is refused);
    /// - every opaque component is due (any event wakes them);
    /// - no due component has coupled dependents (shared-state writes are
    ///   per-cycle by definition);
    /// - no sleeping component's far wake, the run target, or the clamp
    ///   boundary lands inside the window.
    fn batch_window(&mut self, target: Cycle, clamp: Option<Cycle>) -> Option<u64> {
        let cycle = self.cycle;
        let due = self.arena.due;
        // Pending next-cycle dues (the all-due second look after a run
        // start with beats in flight) must be honoured per cycle — a
        // window would jump straight past them.
        if self.arena.due_next != 0 {
            return None;
        }
        if self.arena.opaque_mask & !due != 0 {
            return None;
        }
        let mut bound = self.arena.wake_min.min(target);
        if let Some(boundary) = clamp {
            if boundary > cycle {
                bound = bound.min(boundary);
            }
        }
        if bound < cycle + 2 {
            return None;
        }
        let mut window = bound - cycle;
        let mut m = due;
        while m != 0 {
            let pos = m.trailing_zeros() as usize;
            m &= m - 1;
            let i = self.arena.order[pos] as usize;
            if !self.batch_allowed.get(i).copied().unwrap_or(false)
                || !self.arena.dependents[pos].is_empty()
                || self.arena.peers[pos] & !due != 0
            {
                return None;
            }
            let horizon = self.components[i].batch_horizon(cycle, &self.pool);
            if horizon < 2 {
                return None;
            }
            window = window.min(horizon);
            if window < 2 {
                return None;
            }
        }
        Some(window)
    }

    /// Executes one batch window of `window` cycles: every due component's
    /// [`Component::batch_tick`] covers the whole span, component-major.
    /// Horizons are capacity-bounded (a producer never outruns the free
    /// slots it saw at window start, a consumer never outruns the beats
    /// already queued), so component-major execution is beat-for-beat
    /// identical to the cycle-major interleaving.
    fn run_batch_window(&mut self, window: u64) {
        let cycle = self.cycle;
        let n = self.components.len() as u64;
        let due = std::mem::take(&mut self.arena.due);
        let mut m = due;
        let mut ticked: u64 = 0;
        while m != 0 {
            let pos = m.trailing_zeros() as usize;
            m &= m - 1;
            let i = self.arena.order[pos] as usize;
            self.flush_component(i, cycle);
            self.synced_to[i] = cycle + window;
            self.arena.wake_at[pos] = NEVER;
            self.pool.set_owner(Some(i));
            self.pool.begin_actor(pos as u32);
            let mut ctx = TickCtx {
                cycle,
                pool: &mut self.pool,
            };
            self.profile[i].visits += 1;
            self.profile[i].batch_cycles += window;
            #[cfg(feature = "self-profile")]
            let t0 = std::time::Instant::now(); // lint:allow(wall-clock) -- self-profiler, feature-gated
            self.components[i].batch_tick(&mut ctx, window);
            #[cfg(feature = "self-profile")]
            {
                self.profile[i].wall_ns += t0.elapsed().as_nanos() as u64;
            }
            ticked += 1;
        }
        self.pool.set_owner(None);
        // Post-window wakes are conservative: every participant plus every
        // position the window's wire activity touched is due at the first
        // cycle after the window. Extra ticks mirror the stepping kernel.
        let (now, next, any) = self.pool.take_wakes();
        self.arena.due = due | now | next;
        if any {
            self.arena.due |= self.arena.opaque_mask;
        }
        self.stats.wire_events += self.pool.take_wake_events();
        self.stats.batched_beats += self.pool.take_batched_beats();
        self.stats.batch_windows += 1;
        if let Some(log) = &mut self.batch_window_log {
            if log.len() < MAX_WINDOW_LOG {
                log.push((cycle, window));
            }
        }
        self.drain_sanitizer();
        self.cycle = cycle + window;
        self.stats.ticks_executed += window;
        self.stats.component_ticks += ticked * window;
        self.stats.component_skips += (n - ticked) * window;
    }
}

impl Default for Sim {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for Sim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Sim")
            .field("cycle", &self.cycle)
            .field("components", &self.components.len())
            .field("wires", &self.pool.wire_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::WireId;
    use crate::topology::PortDecl;
    use axi4::WBeat;

    struct Producer {
        out: WireId<WBeat>,
        sent: u64,
        limit: u64,
    }

    impl Component for Producer {
        fn tick(&mut self, ctx: &mut TickCtx<'_>) {
            if self.sent < self.limit && ctx.pool.can_push(self.out, ctx.cycle) {
                ctx.pool
                    .push(self.out, ctx.cycle, WBeat::full(self.sent, false));
                self.sent += 1;
            }
        }
        fn name(&self) -> &str {
            "producer"
        }
        fn ports(&self) -> Vec<PortDecl> {
            vec![PortDecl::new("W", self.out.index(), PortDir::Drive)]
        }
    }

    struct Consumer {
        input: WireId<WBeat>,
        received: Vec<u64>,
    }

    impl Component for Consumer {
        fn tick(&mut self, ctx: &mut TickCtx<'_>) {
            if let Some(beat) = ctx.pool.pop(self.input, ctx.cycle) {
                self.received.push(beat.data);
            }
        }
        fn name(&self) -> &str {
            "consumer"
        }
        fn ports(&self) -> Vec<PortDecl> {
            vec![PortDecl::new("W", self.input.index(), PortDir::Consume)]
        }
    }

    fn build() -> (Sim, ComponentId, ComponentId) {
        let mut sim = Sim::new();
        let wire = sim.pool_mut().new_wire::<WBeat>(2);
        let p = sim.add(Producer {
            out: wire,
            sent: 0,
            limit: 5,
        });
        let c = sim.add(Consumer {
            input: wire,
            received: Vec::new(),
        });
        (sim, p, c)
    }

    #[test]
    fn producer_consumer_pipeline() {
        let (mut sim, _p, c) = build();
        sim.run(10);
        let consumer = sim.component::<Consumer>(c).unwrap();
        assert_eq!(consumer.received, [0, 1, 2, 3, 4]);
    }

    /// Tick order must not change results: swap registration order.
    #[test]
    fn order_independence() {
        let mut sim = Sim::new();
        let wire = sim.pool_mut().new_wire::<WBeat>(2);
        let c = sim.add(Consumer {
            input: wire,
            received: Vec::new(),
        });
        let _p = sim.add(Producer {
            out: wire,
            sent: 0,
            limit: 5,
        });
        sim.run(10);
        let consumer = sim.component::<Consumer>(c).unwrap();
        assert_eq!(consumer.received, [0, 1, 2, 3, 4]);
    }

    #[test]
    fn run_until_predicate() {
        let (mut sim, _p, c) = build();
        let fired = sim.run_until(100, |s| {
            s.component::<Consumer>(c)
                .is_some_and(|x| x.received.len() == 3)
        });
        assert!(fired);
        assert!(sim.cycle() < 100);
        // Predicate that never fires.
        assert!(!sim.run_until(5, |_| false));
    }

    #[test]
    fn downcast_type_mismatch_is_none() {
        let (sim, p, _c) = build();
        assert!(sim.component::<Consumer>(p).is_none());
        assert!(sim.component::<Producer>(p).is_some());
    }

    #[test]
    fn component_mut_allows_reconfiguration() {
        let (mut sim, p, c) = build();
        sim.run(2);
        sim.component_mut::<Producer>(p).unwrap().limit = 2;
        sim.run(10);
        assert_eq!(sim.component::<Consumer>(c).unwrap().received.len(), 2);
    }

    #[test]
    fn debug_shows_counts() {
        let (sim, ..) = build();
        let s = format!("{sim:?}");
        assert!(s.contains("components: 2"));
    }

    /// Step-kernel and event-kernel accounting both cover every cycle.
    #[test]
    fn component_tick_accounting_is_exhaustive() {
        let (mut sim, ..) = build();
        sim.run(50);
        let s = sim.kernel_stats();
        assert_eq!(s.cycles_total(), 50);
        assert_eq!(s.component_ticks + s.component_skips, 50 * 2);

        let (mut slow, ..) = build();
        slow.set_kernel_mode(KernelMode::Step);
        slow.run(50);
        let s = slow.kernel_stats();
        assert_eq!(s.ticks_executed, 50);
        assert_eq!(s.cycles_skipped, 0);
        assert_eq!(s.component_ticks, 50 * 2);
        assert_eq!(s.component_skips, 0);
    }

    /// Mixed driving — explicit steps between event-driven runs — stays
    /// consistent: state and cycle match an all-stepped twin.
    #[test]
    fn step_and_run_interleave() {
        let (mut a, _pa, ca) = build();
        let (mut b, _pb, cb) = build();
        a.run(3);
        a.step();
        a.run(6);
        for _ in 0..10 {
            b.step();
        }
        assert_eq!(a.cycle(), b.cycle());
        assert_eq!(
            a.component::<Consumer>(ca).unwrap().received,
            b.component::<Consumer>(cb).unwrap().received
        );
    }

    /// A quiescent predicate target at an otherwise-skipped cycle: the
    /// plain run_until may jump past it, the clamped variant must not.
    #[test]
    fn run_until_clamped_observes_boundary() {
        struct Sleeper;
        impl Component for Sleeper {
            fn tick(&mut self, _ctx: &mut TickCtx<'_>) {}
            fn next_event(&self, _cycle: Cycle) -> Option<Cycle> {
                None
            }
        }
        let mut sim = Sim::new();
        sim.add(Sleeper);
        // Nothing ever happens: the event kernel jumps straight to the
        // target, so a `cycle == 500` predicate never observes 500…
        assert!(!sim.run_until(1_000, |s| s.cycle() == 500));
        assert_eq!(sim.cycle(), 1_000);
        // …while the clamped variant lands on the boundary exactly.
        let mut sim = Sim::new();
        sim.add(Sleeper);
        assert!(sim.run_until_clamped(1_000, 500, |s| s.cycle() == 500));
        assert_eq!(sim.cycle(), 500);
        let stats = sim.kernel_stats();
        assert!(stats.cycles_skipped >= 499, "boundary reached by jumping");
    }

    /// A component whose `next_event` under-reports (returns a stale hint)
    /// is detected in debug builds and corrected, not silently degraded.
    #[cfg(debug_assertions)]
    #[test]
    fn stale_hint_is_reported_and_corrected() {
        struct StaleHinter {
            ticks: u64,
        }
        impl Component for StaleHinter {
            fn tick(&mut self, _ctx: &mut TickCtx<'_>) {
                self.ticks += 1;
            }
            fn name(&self) -> &str {
                "stale-hinter"
            }
            fn next_event(&self, cycle: Cycle) -> Option<Cycle> {
                // Deliberately broken: always claims a wake in the past.
                Some(cycle.saturating_sub(1))
            }
        }
        let mut sim = Sim::new();
        let id = sim.add(StaleHinter { ticks: 0 });
        sim.run(10);
        // Exactness is preserved: the component still ticked every cycle.
        assert_eq!(sim.component::<StaleHinter>(id).unwrap().ticks, 10);
        let violations = sim.contract_violations();
        assert!(!violations.is_empty(), "stale hint must be reported");
        assert_eq!(violations[0].kind, ViolationKind::StaleHint);
        assert_eq!(violations[0].name, "stale-hinter");
        assert!(violations[0].to_string().contains("stale"));
    }

    /// Coupled shared state (an `Rc<RefCell<…>>` side channel) stays exact
    /// under the event kernel when declared via `Sim::couple`.
    #[test]
    fn coupled_shared_state_matches_stepping() {
        use std::cell::RefCell;
        use std::rc::Rc;

        type Shared = Rc<RefCell<u64>>;

        /// Writes to shared state at one fixed cycle, then sleeps forever.
        struct Writer {
            shared: Shared,
            at: Cycle,
        }
        impl Component for Writer {
            fn tick(&mut self, ctx: &mut TickCtx<'_>) {
                if ctx.cycle == self.at {
                    *self.shared.borrow_mut() = ctx.cycle;
                }
            }
            fn next_event(&self, cycle: Cycle) -> Option<Cycle> {
                (cycle <= self.at).then_some(self.at)
            }
        }

        /// Sleeps until woken; samples the shared state every tick.
        struct Reader {
            shared: Shared,
            samples: Vec<(Cycle, u64)>,
        }
        impl Component for Reader {
            fn tick(&mut self, ctx: &mut TickCtx<'_>) {
                self.samples.push((ctx.cycle, *self.shared.borrow()));
            }
            fn next_event(&self, _cycle: Cycle) -> Option<Cycle> {
                None
            }
        }

        let run = |mode: KernelMode| {
            let shared: Shared = Rc::new(RefCell::new(0));
            let mut sim = Sim::new();
            sim.set_kernel_mode(mode);
            let writer = sim.add(Writer {
                shared: Rc::clone(&shared),
                at: 400,
            });
            let reader = sim.add(Reader {
                shared: Rc::clone(&shared),
                samples: Vec::new(),
            });
            sim.couple(writer, reader);
            sim.run(1_000);
            let reader = sim.component::<Reader>(reader).unwrap();
            // Drop cycle-0 samples (run-start tick-all); keep the rest.
            reader
                .samples
                .iter()
                .filter(|(c, _)| *c > 0)
                .cloned()
                .collect::<Vec<_>>()
        };
        let fast = run(KernelMode::Event);
        // The reader saw the write: it was woken at the writer's cycle.
        assert!(
            fast.iter().any(|&(c, v)| c == 400 && v == 400),
            "coupled reader must observe the write at its cycle: {fast:?}"
        );
    }

    struct Nop;
    impl Component for Nop {
        fn tick(&mut self, _ctx: &mut TickCtx<'_>) {}
    }

    /// Registering couples stays cheap at scale and keeps declaration
    /// order; duplicates and self-couples are ignored.
    #[test]
    fn couple_dedup_scales_and_keeps_order() {
        let mut sim = Sim::new();
        let ids: Vec<_> = (0..101).map(|_| sim.add(Nop)).collect();
        let mut expected = Vec::new();
        for &a in &ids {
            for &b in &ids {
                if a != b {
                    sim.couple(a, b);
                    expected.push((a.index(), b.index()));
                }
            }
        }
        // Re-register every pair (all duplicates) plus self-couples.
        for &a in &ids {
            for &b in &ids {
                sim.couple(a, b);
            }
        }
        let topo = sim.topology();
        assert_eq!(topo.couples.len(), 101 * 100, "10100 distinct couples");
        assert_eq!(topo.couples, expected, "declaration order preserved");
    }

    /// Deliberately broken hinter: always claims a wake in the past, so
    /// every processed cycle records a stale-hint violation.
    struct AlwaysStale;
    impl Component for AlwaysStale {
        fn tick(&mut self, _ctx: &mut TickCtx<'_>) {}
        fn name(&self) -> &str {
            "always-stale"
        }
        fn next_event(&self, cycle: Cycle) -> Option<Cycle> {
            Some(cycle.saturating_sub(1))
        }
    }

    /// Violations beyond the retention bound are counted, not stored.
    #[test]
    fn contract_violations_beyond_cap_are_counted() {
        let mut sim = Sim::new();
        sim.add(AlwaysStale);
        sim.run(MAX_VIOLATIONS as u64 + 50);
        assert_eq!(sim.contract_violations().len(), MAX_VIOLATIONS);
        assert!(
            sim.contract_violations_dropped() >= 1,
            "overflow must be counted, got {}",
            sim.contract_violations_dropped()
        );
    }

    /// Pushes an undeclared W wire every cycle while declaring only a B
    /// wire: with the sanitizer armed, every push is an UndeclaredPush.
    struct RoguePusher {
        declared: WireId<axi4::BBeat>,
        undeclared: WireId<WBeat>,
    }
    impl Component for RoguePusher {
        fn tick(&mut self, ctx: &mut TickCtx<'_>) {
            // Drain our own backlog so the wire never fills up.
            ctx.pool.pop(self.undeclared, ctx.cycle);
            if ctx.pool.can_push(self.undeclared, ctx.cycle) {
                ctx.pool
                    .push(self.undeclared, ctx.cycle, WBeat::full(1, true));
            }
        }
        fn name(&self) -> &str {
            "rogue"
        }
        fn ports(&self) -> Vec<PortDecl> {
            vec![PortDecl::new("B", self.declared.index(), PortDir::Drive)]
        }
    }

    /// Sanitizer violations beyond the retention bound are counted, not
    /// stored — mirroring the contract-violation cap — and the stored
    /// records carry the offender's name and access kind.
    #[test]
    fn sanitizer_violations_beyond_cap_are_counted() {
        let mut sim = Sim::new();
        let declared = sim.pool_mut().new_wire::<axi4::BBeat>(2);
        let undeclared = sim.pool_mut().new_wire::<WBeat>(2);
        sim.add(RoguePusher {
            declared,
            undeclared,
        });
        sim.set_sanitize(true);
        sim.run(3 * MAX_VIOLATIONS as u64);
        let violations = sim.sanitizer_violations();
        assert_eq!(violations.len(), MAX_VIOLATIONS);
        assert!(
            sim.sanitizer_violations_dropped() >= 1,
            "overflow must be counted, got {}",
            sim.sanitizer_violations_dropped()
        );
        assert!(violations
            .iter()
            .all(|v| v.name == "rogue" && v.kind != SanitizerKind::UndeclaredWake));
        // Both reporting paths surface in the telemetry sink: a total that
        // includes the dropped tail, plus one instant per retained record.
        let sink = sim.telemetry();
        assert_eq!(
            sink.get_counter("kernel.sanitizer_violations"),
            Some(MAX_VIOLATIONS as u64 + sim.sanitizer_violations_dropped())
        );
        assert!(sink
            .instants()
            .iter()
            .filter(|i| i.name.starts_with("sanitizer:"))
            .count()
            .eq(&MAX_VIOLATIONS));
    }

    /// Contract violations surface through `Sim::telemetry` the same way.
    #[test]
    fn contract_violations_surface_in_telemetry() {
        let mut sim = Sim::new();
        sim.add(AlwaysStale);
        sim.run(10);
        let sink = sim.telemetry();
        let total = sink.get_counter("kernel.contract_violations").unwrap();
        assert_eq!(total, sim.contract_violations().len() as u64);
        assert!(total > 0);
        assert!(sink
            .instants()
            .iter()
            .any(|i| i.track == "kernel" && i.name.contains("stale-hint:always-stale")));
    }

    /// The self-profiler attributes visits per component under every
    /// kernel, and the event kernel additionally attributes wakes.
    #[test]
    fn profiler_attributes_visits_and_wakes() {
        let mut sim = Sim::new();
        let wire = sim.pool_mut().new_wire::<WBeat>(2);
        sim.add(Producer {
            out: wire,
            sent: 0,
            limit: 5,
        });
        sim.add(Consumer {
            input: wire,
            received: Vec::new(),
        });
        sim.run(50);
        let profile = sim.profile();
        assert_eq!(profile.len(), 2);
        assert!(profile[0].visits >= 5, "producer visits: {profile:?}");
        assert!(profile[1].visits >= 5, "consumer visits: {profile:?}");
        assert!(
            profile[1].wakes > 0,
            "consumer must be woken by pushes: {profile:?}"
        );
        assert_eq!(profile[0].name, sim.component_name(0).unwrap());
        // Without the self-profile feature no wall-time is attributed.
        #[cfg(not(feature = "self-profile"))]
        assert!(profile.iter().all(|p| p.wall_ns == 0));
    }

    /// An early predicate exit out of `run_until_clamped` must not lose
    /// the violation reports accumulated before the exit.
    #[test]
    fn stale_hint_reports_survive_clamped_early_exit() {
        let mut sim = Sim::new();
        sim.add(AlwaysStale);
        let fired = sim.run_until_clamped(1_000, 500, |s| s.cycle() >= 5);
        assert!(fired);
        assert!(sim.cycle() >= 5 && sim.cycle() < 1_000, "early exit");
        let violations = sim.contract_violations();
        assert!(
            !violations.is_empty(),
            "stale-hint reports must survive the early exit"
        );
        assert!(violations
            .iter()
            .any(|v| v.kind == ViolationKind::StaleHint));
    }

    /// Two producer/consumer pairs on disjoint wires: in registration order
    /// `[pa, ca, pb, cb]` the dependence graph splits into two islands.
    fn build_pairs() -> (Sim, ComponentId, ComponentId) {
        let mut sim = Sim::new();
        let wa = sim.pool_mut().new_wire::<WBeat>(2);
        let wb = sim.pool_mut().new_wire::<WBeat>(2);
        sim.add(Producer {
            out: wa,
            sent: 0,
            limit: 5,
        });
        let ca = sim.add(Consumer {
            input: wa,
            received: Vec::new(),
        });
        sim.add(Producer {
            out: wb,
            sent: 0,
            limit: 7,
        });
        let cb = sim.add(Consumer {
            input: wb,
            received: Vec::new(),
        });
        (sim, ca, cb)
    }

    #[test]
    fn independent_pairs_form_two_islands() {
        let (sim, ..) = build_pairs();
        assert_eq!(sim.partition(), vec![vec![0, 1], vec![2, 3]]);
    }

    /// The island kernel's island-major walk is unobservable: results are
    /// bit-identical to flat stepping and to the event kernel, including
    /// when registration order interleaves the islands (so the walk really
    /// does reorder ticks across island boundaries).
    #[test]
    fn islands_kernel_matches_stepping() {
        let observe = |mode: KernelMode| {
            let (mut sim, ca, cb) = build_pairs();
            sim.set_kernel_mode(mode);
            sim.run(25);
            (
                sim.cycle(),
                sim.component::<Consumer>(ca).unwrap().received.clone(),
                sim.component::<Consumer>(cb).unwrap().received.clone(),
            )
        };
        assert_eq!(observe(KernelMode::Islands), observe(KernelMode::Step));
        assert_eq!(observe(KernelMode::Islands), observe(KernelMode::Event));

        // Interleaved registration: islands {0,2} and {1,3}, so the island
        // walk ticks 0,2 then 1,3 — a genuine reorder vs. flat stepping.
        let observe_interleaved = |mode: KernelMode| {
            let mut sim = Sim::new();
            let wa = sim.pool_mut().new_wire::<WBeat>(2);
            let wb = sim.pool_mut().new_wire::<WBeat>(2);
            sim.add(Producer {
                out: wa,
                sent: 0,
                limit: 5,
            });
            sim.add(Producer {
                out: wb,
                sent: 0,
                limit: 7,
            });
            let ca = sim.add(Consumer {
                input: wa,
                received: Vec::new(),
            });
            let cb = sim.add(Consumer {
                input: wb,
                received: Vec::new(),
            });
            if mode == KernelMode::Islands {
                assert_eq!(sim.partition(), vec![vec![0, 2], vec![1, 3]]);
            }
            sim.set_kernel_mode(mode);
            sim.run(25);
            (
                sim.component::<Consumer>(ca).unwrap().received.clone(),
                sim.component::<Consumer>(cb).unwrap().received.clone(),
            )
        };
        assert_eq!(
            observe_interleaved(KernelMode::Islands),
            observe_interleaved(KernelMode::Step)
        );
    }

    /// Declares one wire, touches another: the armed sanitizer flags both
    /// the push and the pop, with names resolved.
    struct Rogue {
        declared: WireId<WBeat>,
        actual: WireId<WBeat>,
    }
    impl Component for Rogue {
        fn tick(&mut self, ctx: &mut TickCtx<'_>) {
            if ctx.pool.can_push(self.actual, ctx.cycle) {
                ctx.pool.push(self.actual, ctx.cycle, WBeat::full(9, false));
            }
            ctx.pool.pop(self.actual, ctx.cycle);
        }
        fn name(&self) -> &str {
            "rogue"
        }
        fn ports(&self) -> Vec<PortDecl> {
            vec![
                PortDecl::new("W", self.declared.index(), PortDir::Drive),
                PortDecl::new("W", self.declared.index(), PortDir::Consume),
            ]
        }
    }

    #[test]
    fn sanitizer_flags_undeclared_accesses() {
        let mut sim = Sim::new();
        let declared = sim.pool_mut().new_wire::<WBeat>(2);
        let actual = sim.pool_mut().new_wire::<WBeat>(2);
        sim.add(Rogue { declared, actual });
        sim.set_sanitize(true);
        assert!(sim.sanitize_enabled());
        sim.run(4);
        let violations = sim.sanitizer_violations();
        assert!(
            violations
                .iter()
                .any(|v| v.kind == SanitizerKind::UndeclaredPush
                    && v.channel == "W"
                    && v.wire == actual.index()),
            "push on the undeclared wire must be flagged: {violations:?}"
        );
        assert!(
            violations
                .iter()
                .any(|v| v.kind == SanitizerKind::UndeclaredPop),
            "pop on the undeclared wire must be flagged: {violations:?}"
        );
        assert_eq!(violations[0].name, "rogue");
        assert!(violations[0].to_string().contains("undeclared"));
    }

    /// Off by default: the same rogue records nothing; and a system whose
    /// declarations match its behaviour stays clean with the sanitizer on.
    #[test]
    fn sanitizer_default_off_and_declared_traffic_is_clean() {
        let mut sim = Sim::new();
        let declared = sim.pool_mut().new_wire::<WBeat>(2);
        let actual = sim.pool_mut().new_wire::<WBeat>(2);
        sim.add(Rogue { declared, actual });
        sim.run(4);
        assert!(sim.sanitizer_violations().is_empty());

        let (mut sim, ..) = build();
        sim.set_sanitize(true);
        sim.run(20);
        assert!(
            sim.sanitizer_violations().is_empty(),
            "declared producer/consumer must be sanitizer-clean: {:?}",
            sim.sanitizer_violations()
        );
        assert_eq!(sim.sanitizer_violations_dropped(), 0);
    }

    /// A component whose wake hint secretly watches shared state that no
    /// couple declares: the armed sanitizer reports the undeclared wake
    /// (in release builds too — this is the missed-wake poll, promoted
    /// from a debug-only check).
    #[test]
    fn sanitizer_reports_undeclared_wake() {
        use std::cell::RefCell;
        use std::rc::Rc;
        type Shared = Rc<RefCell<bool>>;

        struct Setter {
            shared: Shared,
            at: Cycle,
        }
        impl Component for Setter {
            fn tick(&mut self, ctx: &mut TickCtx<'_>) {
                if ctx.cycle == self.at {
                    *self.shared.borrow_mut() = true;
                }
            }
            fn next_event(&self, cycle: Cycle) -> Option<Cycle> {
                (cycle <= self.at).then_some(self.at)
            }
        }

        struct Latcher {
            shared: Shared,
        }
        impl Component for Latcher {
            fn tick(&mut self, _ctx: &mut TickCtx<'_>) {}
            fn name(&self) -> &str {
                "latcher"
            }
            fn next_event(&self, cycle: Cycle) -> Option<Cycle> {
                self.shared.borrow().then_some(cycle)
            }
        }

        let shared: Shared = Rc::new(RefCell::new(false));
        let mut sim = Sim::new();
        sim.set_sanitize(true);
        sim.add(Setter {
            shared: Rc::clone(&shared),
            at: 10,
        });
        let latcher = sim.add(Latcher {
            shared: Rc::clone(&shared),
        });
        sim.add(Nop); // heartbeat: keeps every cycle processed
        sim.run(20);
        assert!(
            sim.sanitizer_violations()
                .iter()
                .any(|v| v.kind == SanitizerKind::UndeclaredWake && v.component == latcher.index()),
            "undeclared wake must be flagged: {:?}",
            sim.sanitizer_violations()
        );
    }

    // --- Batch windows (beat-batched transfers, `DESIGN.md` §8) ---------
    //
    // A three-stage pipeline with honest capacity-bounded horizons:
    //
    //   BatchProducer → w1 → BatchRelay → w2 → BatchConsumer
    //
    // The relay and consumer hold off until `start_at`, letting the
    // producer build queue depth; once everyone runs, the occupancies are
    // steady (one push + one pop per wire per cycle), so windows form
    // repeatedly. Every horizon is bounded by `relayable`/`headroom` at
    // window start, which is exactly what makes component-major window
    // execution equal to the cycle-major interleaving.

    struct BatchProducer {
        out: WireId<WBeat>,
        sent: u64,
        limit: u64,
    }
    impl Component for BatchProducer {
        fn tick(&mut self, ctx: &mut TickCtx<'_>) {
            if self.sent < self.limit && ctx.pool.can_push(self.out, ctx.cycle) {
                ctx.pool
                    .push(self.out, ctx.cycle, WBeat::full(self.sent, false));
                self.sent += 1;
            }
        }
        fn name(&self) -> &str {
            "bproducer"
        }
        fn ports(&self) -> Vec<PortDecl> {
            vec![PortDecl::new("W", self.out.index(), PortDir::Drive)]
        }
        fn batch_horizon(&self, cycle: Cycle, pool: &ChannelPool) -> u64 {
            // One push per cycle: bounded by the output headroom at window
            // start and by the beats left before the completion transition.
            pool.headroom(self.out, cycle).min(self.limit - self.sent)
        }
        // Default `batch_tick` (per-cycle replay) — the window still
        // collapses the *relay's* beats into one ring sweep.
    }

    struct BatchRelay {
        input: WireId<WBeat>,
        out: WireId<WBeat>,
        start_at: Cycle,
    }
    impl Component for BatchRelay {
        fn tick(&mut self, ctx: &mut TickCtx<'_>) {
            if ctx.cycle < self.start_at {
                return;
            }
            if ctx.pool.can_push(self.out, ctx.cycle) {
                if let Some(beat) = ctx.pool.pop(self.input, ctx.cycle) {
                    ctx.pool.push(self.out, ctx.cycle, beat);
                }
            }
        }
        fn name(&self) -> &str {
            "brelay"
        }
        fn ports(&self) -> Vec<PortDecl> {
            vec![
                PortDecl::new("W", self.input.index(), PortDir::Consume),
                PortDecl::new("W", self.out.index(), PortDir::Drive),
            ]
        }
        fn batch_horizon(&self, cycle: Cycle, pool: &ChannelPool) -> u64 {
            if cycle < self.start_at {
                return 0; // the start transition must land on a tick
            }
            pool.relayable(self.input, cycle)
                .min(pool.headroom(self.out, cycle))
        }
        fn batch_tick(&mut self, ctx: &mut TickCtx<'_>, window: u64) {
            debug_assert!(ctx.cycle >= self.start_at);
            let moved = ctx
                .pool
                .batch_relay(self.input, self.out, ctx.cycle, window);
            debug_assert_eq!(moved, window, "horizon sized the window");
        }
    }

    struct BatchConsumer {
        input: WireId<WBeat>,
        start_at: Cycle,
        received: Vec<u64>,
    }
    impl Component for BatchConsumer {
        fn tick(&mut self, ctx: &mut TickCtx<'_>) {
            if ctx.cycle < self.start_at {
                return;
            }
            if let Some(beat) = ctx.pool.pop(self.input, ctx.cycle) {
                self.received.push(beat.data);
            }
        }
        fn name(&self) -> &str {
            "bconsumer"
        }
        fn ports(&self) -> Vec<PortDecl> {
            vec![PortDecl::new("W", self.input.index(), PortDir::Consume)]
        }
        fn batch_horizon(&self, cycle: Cycle, pool: &ChannelPool) -> u64 {
            if cycle < self.start_at {
                return 0;
            }
            pool.relayable(self.input, cycle)
        }
    }

    /// Builds the pipeline; `plan` installs the all-approved batching plan.
    fn build_batch_pipeline(plan: bool, limit: u64) -> (Sim, ComponentId) {
        let mut sim = Sim::new();
        let w1 = sim.pool_mut().new_wire::<WBeat>(8);
        let w2 = sim.pool_mut().new_wire::<WBeat>(8);
        sim.add(BatchProducer {
            out: w1,
            sent: 0,
            limit,
        });
        sim.add(BatchRelay {
            input: w1,
            out: w2,
            start_at: 4,
        });
        let c = sim.add(BatchConsumer {
            input: w2,
            start_at: 6,
            received: Vec::new(),
        });
        if plan {
            sim.set_batch_plan(vec![true; 3]);
        }
        (sim, c)
    }

    /// Windows form on the steady backlogged pipeline, move beats through
    /// `batch_relay`, and the result is bit-identical to flat stepping.
    #[test]
    fn batch_windows_form_and_match_stepping() {
        let run = |mode: KernelMode, plan: bool| {
            let (mut sim, c) = build_batch_pipeline(plan, 40);
            sim.set_kernel_mode(mode);
            sim.run(80);
            let stats = sim.kernel_stats();
            let received = sim.component::<BatchConsumer>(c).unwrap().received.clone();
            (sim.cycle(), received, stats)
        };
        let (cycle_a, recv_a, stats_a) = run(KernelMode::Arena, true);
        let (cycle_s, recv_s, stats_s) = run(KernelMode::Step, true);
        assert_eq!(cycle_a, cycle_s);
        assert_eq!(recv_a, (0..40).collect::<Vec<_>>());
        assert_eq!(recv_a, recv_s);
        assert!(
            stats_a.batch_windows > 0,
            "steady backlog must open windows: {stats_a:?}"
        );
        assert!(
            stats_a.batched_beats > 0,
            "the relay's sweeps must be accounted: {stats_a:?}"
        );
        // Batched beats ride in windows; both count toward neither kernel's
        // observable results.
        assert_eq!(stats_s.batch_windows, 0);
        assert_eq!(stats_s.batched_beats, 0);
        // Every cycle is accounted exactly once in the arena run too.
        assert_eq!(stats_a.ticks_executed + stats_a.cycles_skipped, 80);
    }

    /// Without a plan the arena kernel never consults horizons: same
    /// results, zero windows.
    #[test]
    fn no_plan_means_no_windows() {
        let (mut sim, c) = build_batch_pipeline(false, 40);
        sim.set_kernel_mode(KernelMode::Arena);
        sim.run(80);
        assert_eq!(sim.kernel_stats().batch_windows, 0);
        assert_eq!(sim.kernel_stats().batched_beats, 0);
        assert_eq!(
            sim.component::<BatchConsumer>(c).unwrap().received,
            (0..40).collect::<Vec<_>>()
        );
    }

    /// A contended steady stream (occupancy one) yields horizons below
    /// two: the window degenerates to zero-length and batching never
    /// engages — the plan alone is not enough.
    #[test]
    fn zero_length_window_on_contended_path() {
        let mut sim = Sim::new();
        let w1 = sim.pool_mut().new_wire::<WBeat>(8);
        let w2 = sim.pool_mut().new_wire::<WBeat>(8);
        sim.add(BatchProducer {
            out: w1,
            sent: 0,
            limit: 40,
        });
        // No hold-off: the relay and consumer drain from cycle zero, so
        // every wire's occupancy stays at one beat and `relayable` never
        // reaches the two-cycle minimum.
        sim.add(BatchRelay {
            input: w1,
            out: w2,
            start_at: 0,
        });
        let c = sim.add(BatchConsumer {
            input: w2,
            start_at: 0,
            received: Vec::new(),
        });
        sim.set_batch_plan(vec![true; 3]);
        sim.set_kernel_mode(KernelMode::Arena);
        sim.run(80);
        assert_eq!(
            sim.kernel_stats().batch_windows,
            0,
            "occupancy-one streaming must not batch: {:?}",
            sim.kernel_stats()
        );
        assert_eq!(
            sim.component::<BatchConsumer>(c).unwrap().received,
            (0..40).collect::<Vec<_>>()
        );
    }

    /// A due component outside the plan vetoes the window even when every
    /// other participant could batch.
    #[test]
    fn unapproved_due_component_vetoes_window() {
        let (mut sim, c) = build_batch_pipeline(true, 40);
        // Overwrite the plan: the relay is no longer approved.
        sim.set_batch_plan(vec![true, false, true]);
        sim.set_kernel_mode(KernelMode::Arena);
        sim.run(80);
        assert_eq!(sim.kernel_stats().batch_windows, 0);
        assert_eq!(
            sim.component::<BatchConsumer>(c).unwrap().received,
            (0..40).collect::<Vec<_>>()
        );
    }

    /// The sanitizer stays armed through batch windows: the relay's ring
    /// sweeps land on declared wires and report nothing.
    #[test]
    fn batch_windows_are_sanitizer_clean() {
        let (mut sim, _c) = build_batch_pipeline(true, 40);
        sim.set_sanitize(true);
        sim.set_kernel_mode(KernelMode::Arena);
        sim.run(80);
        assert!(sim.kernel_stats().batch_windows > 0);
        assert!(
            sim.sanitizer_violations().is_empty(),
            "batched relays are declared traffic: {:?}",
            sim.sanitizer_violations()
        );
    }

    /// Predicate-driven runs disable windows entirely: `run_until` checks
    /// its predicate before every processed cycle, and a window advancing
    /// several cycles at once could overshoot the exact stop cycle a
    /// stepped run reports. Stop cycles must stay bit-identical.
    #[test]
    fn run_until_disables_windows_for_exact_stop_cycles() {
        let observe = |mode: KernelMode| {
            let (mut sim, c) = build_batch_pipeline(true, 40);
            sim.set_kernel_mode(mode);
            let fired = sim.run_until(200, |s| {
                s.component::<BatchConsumer>(c)
                    .is_some_and(|x| x.received.len() >= 17)
            });
            (fired, sim.cycle(), sim.kernel_stats().batch_windows)
        };
        let (fired_a, cycle_a, windows_a) = observe(KernelMode::Arena);
        let (fired_s, cycle_s, _) = observe(KernelMode::Step);
        assert_eq!((fired_a, cycle_a), (fired_s, cycle_s));
        assert_eq!(windows_a, 0, "predicate runs must not batch");
    }
}

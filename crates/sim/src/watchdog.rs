//! A quiescence watchdog: flags systems where no beat has moved for a
//! configurable number of cycles.
//!
//! Whether silence means *done* or *wedged* is the harness's call — the
//! watchdog only reports how long the interconnect has been silent, so a
//! test can abort a deadlocked run in thousands of cycles instead of
//! burning its full `run_until` budget.

use crate::component::{Component, TickCtx};
use crate::Cycle;

/// Observes the whole channel pool's activity counter and tracks how long
/// it has been still.
///
/// ```
/// use axi_sim::{Sim, Watchdog};
///
/// let mut sim = Sim::new();
/// let dog = sim.add(Watchdog::new(100));
/// sim.run(300); // nothing pushes anything
/// let dog = sim.component::<Watchdog>(dog).expect("added above");
/// assert!(dog.is_quiet());
/// assert!(dog.idle_cycles() >= 100);
/// ```
#[derive(Debug)]
pub struct Watchdog {
    threshold: Cycle,
    last_total: u64,
    last_change: Cycle,
    idle: Cycle,
    name: String,
}

impl Watchdog {
    /// Creates a watchdog that reports quiet after `threshold` consecutive
    /// cycles without any wire push.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is zero.
    pub fn new(threshold: Cycle) -> Self {
        assert!(threshold > 0, "a zero threshold is always quiet");
        Self {
            threshold,
            last_total: 0,
            last_change: 0,
            idle: 0,
            name: "watchdog".to_owned(),
        }
    }

    /// Consecutive cycles without any beat movement, as of the last tick.
    pub fn idle_cycles(&self) -> Cycle {
        self.idle
    }

    /// `true` once the system has been silent for at least the threshold.
    pub fn is_quiet(&self) -> bool {
        self.idle >= self.threshold
    }
}

impl Component for Watchdog {
    fn tick(&mut self, ctx: &mut TickCtx<'_>) {
        let total = ctx.pool.total_pushes();
        if total != self.last_total {
            self.last_total = total;
            self.last_change = ctx.cycle;
        }
        self.idle = ctx.cycle - self.last_change;
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn next_event(&self, cycle: Cycle) -> Option<Cycle> {
        // The only observable transition left while the system is silent is
        // crossing the quiet threshold; past it, only new activity (which
        // implies in-flight beats) changes anything.
        if self.idle >= self.threshold {
            None
        } else {
            Some((self.last_change + self.threshold).max(cycle))
        }
    }

    fn backlog_event(&self, _cycle: Cycle) -> Option<Cycle> {
        // Beats parked in flight do not move `total_pushes`; the opaque
        // push-wakes plus the threshold hint above cover every transition,
        // so backlog alone never requires a tick.
        None
    }

    fn on_fast_forward(&mut self, _from: Cycle, to: Cycle) {
        // Reconcile the per-cycle idle counter to what the elided ticks
        // (the last at cycle `to - 1`) would have left behind. No push can
        // have happened during the skip, so `last_change` is current.
        self.idle = (to - 1).saturating_sub(self.last_change);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bundle::AxiBundle;
    use crate::sim::Sim;
    use axi4::WBeat;

    #[test]
    fn quiet_system_trips() {
        let mut sim = Sim::new();
        let dog = sim.add(Watchdog::new(50));
        sim.run(100);
        let d = sim.component::<Watchdog>(dog).unwrap();
        assert!(d.is_quiet());
        assert!(d.idle_cycles() >= 50);
    }

    #[test]
    fn activity_resets_the_counter() {
        let mut sim = Sim::new();
        let bundle = AxiBundle::with_defaults(sim.pool_mut());
        let dog = sim.add(Watchdog::new(50));
        sim.run(40);
        let c = sim.cycle();
        sim.pool_mut().push(bundle.w, c, WBeat::full(1, true));
        sim.run(40);
        let d = sim.component::<Watchdog>(dog).unwrap();
        assert!(!d.is_quiet(), "push at cycle 40 reset the idle counter");
        sim.run(60);
        assert!(sim.component::<Watchdog>(dog).unwrap().is_quiet());
    }

    #[test]
    fn early_deadlock_detection_pattern() {
        // The intended harness use: race "done" against "quiet".
        let mut sim = Sim::new();
        let dog = sim.add(Watchdog::new(100));
        let tripped = sim.run_until(10_000, |s| {
            s.component::<Watchdog>(dog).is_some_and(Watchdog::is_quiet)
        });
        assert!(tripped, "the empty system goes quiet immediately");
        assert!(sim.cycle() < 200, "aborted early, not at the 10k budget");
    }

    #[test]
    #[should_panic(expected = "zero threshold")]
    fn zero_threshold_panics() {
        let _ = Watchdog::new(0);
    }
}

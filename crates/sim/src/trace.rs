//! Beat-level tracing: record what crosses an AXI port, cycle by cycle.
//!
//! A [`TraceProbe`] is a passive component watching one [`AxiBundle`]'s
//! wires. Every beat visible on a wire is recorded exactly once, with its
//! cycle and channel, into a bounded ring of [`TraceEvent`]s. Probes never
//! consume beats — they only peek — so inserting one does not perturb
//! timing.
//!
//! The textual dump (`{cycle:>8} {channel} {payload}`) is stable enough to
//! diff in tests and to skim when debugging arbitration.

use std::collections::VecDeque;
use std::fmt;

use axi4::{ArBeat, AwBeat, BBeat, RBeat, WBeat};

use crate::bundle::AxiBundle;
use crate::component::{Component, TickCtx};
use crate::Cycle;

/// Which of the five channels an event was observed on.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum TraceChannel {
    /// Write-address channel.
    Aw,
    /// Write-data channel.
    W,
    /// Write-response channel.
    B,
    /// Read-address channel.
    Ar,
    /// Read-data channel.
    R,
}

impl fmt::Display for TraceChannel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TraceChannel::Aw => "AW",
            TraceChannel::W => "W ",
            TraceChannel::B => "B ",
            TraceChannel::Ar => "AR",
            TraceChannel::R => "R ",
        };
        f.write_str(s)
    }
}

/// The payload of a traced beat.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum TracePayload {
    /// A write-address beat.
    Aw(AwBeat),
    /// A write-data beat.
    W(WBeat),
    /// A write-response beat.
    B(BBeat),
    /// A read-address beat.
    Ar(ArBeat),
    /// A read-data beat.
    R(RBeat),
}

/// One observed beat.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct TraceEvent {
    /// Cycle the beat became visible at the probe.
    pub cycle: Cycle,
    /// Channel it appeared on.
    pub channel: TraceChannel,
    /// The beat itself.
    pub payload: TracePayload,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:>8} {} ", self.cycle, self.channel)?;
        match &self.payload {
            TracePayload::Aw(b) => {
                write!(f, "id={} addr={} len={} {}", b.id, b.addr, b.len, b.burst)
            }
            TracePayload::W(b) => write!(
                f,
                "data={:#018x} strb={:#04x} last={}",
                b.data, b.strb, b.last
            ),
            TracePayload::B(b) => write!(f, "id={} resp={}", b.id, b.resp),
            TracePayload::Ar(b) => {
                write!(f, "id={} addr={} len={} {}", b.id, b.addr, b.len, b.burst)
            }
            TracePayload::R(b) => write!(
                f,
                "id={} data={:#018x} resp={} last={}",
                b.id, b.data, b.resp, b.last
            ),
        }
    }
}

/// A passive probe recording every beat that appears on one bundle.
///
/// Each wire's beats are recorded exactly once even though a beat may stay
/// visible for several cycles under backpressure: the probe fingerprints
/// the front beat per wire and records on change.
#[derive(Debug)]
pub struct TraceProbe {
    bundle: AxiBundle,
    events: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
    // Last recorded front beat per wire, to record each beat once.
    last_aw: Option<AwBeat>,
    last_w: Option<WBeat>,
    last_b: Option<BBeat>,
    last_ar: Option<ArBeat>,
    last_r: Option<RBeat>,
    name: String,
}

impl TraceProbe {
    /// Creates a probe over `bundle` holding up to `capacity` events
    /// (oldest dropped first).
    pub fn new(bundle: AxiBundle, capacity: usize) -> Self {
        Self {
            bundle,
            events: VecDeque::with_capacity(capacity.min(1024)),
            capacity,
            dropped: 0,
            last_aw: None,
            last_w: None,
            last_b: None,
            last_ar: None,
            last_r: None,
            name: "trace".to_owned(),
        }
    }

    /// The recorded events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` if nothing has been recorded (or everything was dropped).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events the bounded ring could not retain: beats displaced by newer
    /// ones once the ring was full, plus every beat refused outright by a
    /// capacity-0 probe. The invariant `len() + dropped() == total beats
    /// observed` always holds, so `dropped() == 0` certifies the ring as a
    /// complete record of the run.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Renames the probe (used as its telemetry track and key prefix).
    pub fn named(mut self, name: &str) -> Self {
        self.name = name.to_owned();
        self
    }

    /// Events on one channel, oldest first.
    pub fn channel(&self, channel: TraceChannel) -> Vec<&TraceEvent> {
        self.events
            .iter()
            .filter(|e| e.channel == channel)
            .collect()
    }

    /// Renders the whole trace as text, one event per line.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&e.to_string());
            out.push('\n');
        }
        out
    }

    /// Renders the trace as a JSON array of structured events (the machine
    /// twin of [`TraceProbe::dump`]), feeding the same exporters as the
    /// telemetry hook. Deterministic: events in ring order, integer fields
    /// only.
    pub fn export_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("[");
        let mut first = true;
        for e in &self.events {
            if !first {
                out.push(',');
            }
            first = false;
            let channel = match e.channel {
                TraceChannel::Aw => "AW",
                TraceChannel::W => "W",
                TraceChannel::B => "B",
                TraceChannel::Ar => "AR",
                TraceChannel::R => "R",
            };
            let _ = write!(
                out,
                "\n  {{\"cycle\": {}, \"channel\": \"{channel}\", ",
                e.cycle
            );
            match &e.payload {
                TracePayload::Aw(b) => {
                    let _ = write!(
                        out,
                        "\"id\": {}, \"addr\": {}, \"len\": {}}}",
                        b.id.raw(),
                        b.addr.raw(),
                        b.len.beats()
                    );
                }
                TracePayload::Ar(b) => {
                    let _ = write!(
                        out,
                        "\"id\": {}, \"addr\": {}, \"len\": {}}}",
                        b.id.raw(),
                        b.addr.raw(),
                        b.len.beats()
                    );
                }
                TracePayload::W(b) => {
                    let _ = write!(
                        out,
                        "\"data\": {}, \"strb\": {}, \"last\": {}}}",
                        b.data, b.strb, b.last
                    );
                }
                TracePayload::B(b) => {
                    let _ = write!(out, "\"id\": {}, \"resp\": \"{}\"}}", b.id.raw(), b.resp);
                }
                TracePayload::R(b) => {
                    let _ = write!(
                        out,
                        "\"id\": {}, \"data\": {}, \"resp\": \"{}\", \"last\": {}}}",
                        b.id.raw(),
                        b.data,
                        b.resp,
                        b.last
                    );
                }
            }
        }
        out.push_str(if first { "]\n" } else { "\n]\n" });
        out
    }

    fn record(&mut self, cycle: Cycle, channel: TraceChannel, payload: TracePayload) {
        // A capacity-0 probe retains nothing: refuse the event outright.
        // (Falling through would pop an empty ring and then push, leaving
        // one event in a ring whose capacity says zero, with `dropped`
        // off by one against the `len + dropped == total` invariant.)
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.events.len() >= self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(TraceEvent {
            cycle,
            channel,
            payload,
        });
    }
}

impl Component for TraceProbe {
    fn tick(&mut self, ctx: &mut TickCtx<'_>) {
        let cycle = ctx.cycle;
        if let Some(&beat) = ctx.pool.peek(self.bundle.aw, cycle) {
            if self.last_aw != Some(beat) {
                self.last_aw = Some(beat);
                self.record(cycle, TraceChannel::Aw, TracePayload::Aw(beat));
            }
        }
        if let Some(&beat) = ctx.pool.peek(self.bundle.w, cycle) {
            if self.last_w != Some(beat) {
                self.last_w = Some(beat);
                self.record(cycle, TraceChannel::W, TracePayload::W(beat));
            }
        }
        if let Some(&beat) = ctx.pool.peek(self.bundle.b, cycle) {
            if self.last_b != Some(beat) {
                self.last_b = Some(beat);
                self.record(cycle, TraceChannel::B, TracePayload::B(beat));
            }
        }
        if let Some(&beat) = ctx.pool.peek(self.bundle.ar, cycle) {
            if self.last_ar != Some(beat) {
                self.last_ar = Some(beat);
                self.record(cycle, TraceChannel::Ar, TracePayload::Ar(beat));
            }
        }
        if let Some(&beat) = ctx.pool.peek(self.bundle.r, cycle) {
            if self.last_r != Some(beat) {
                self.last_r = Some(beat);
                self.record(cycle, TraceChannel::R, TracePayload::R(beat));
            }
        }
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn ports(&self) -> Vec<crate::PortDecl> {
        self.bundle.observer_ports()
    }

    // Purely reactive: the probe only mutates state when a front beat
    // changes, which cannot happen while every wire is empty.
    fn next_event(&self, _cycle: Cycle) -> Option<Cycle> {
        None
    }

    fn telemetry(&self, sink: &mut realm_telemetry::TelemetrySink) {
        sink.counter(&format!("{}.events", self.name), self.events.len() as u64);
        sink.counter(&format!("{}.dropped", self.name), self.dropped);
        for e in &self.events {
            let label = match e.channel {
                TraceChannel::Aw => "AW",
                TraceChannel::W => "W",
                TraceChannel::B => "B",
                TraceChannel::Ar => "AR",
                TraceChannel::R => "R",
            };
            sink.instant(&self.name, label, e.cycle);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::ChannelPool;
    use crate::sim::Sim;
    use axi4::TxnId;

    #[test]
    fn records_each_beat_once() {
        let mut sim = Sim::new();
        let bundle = AxiBundle::with_defaults(sim.pool_mut());
        let probe = sim.add(TraceProbe::new(bundle, 16));
        // Push two W beats on consecutive cycles; nothing consumes them, so
        // the front stays visible for many cycles — recorded once each.
        sim.pool_mut().push(bundle.w, 0, WBeat::full(1, false));
        sim.run(3);
        let c = sim.cycle();
        sim.pool_mut().pop(bundle.w, c); // consume first
        sim.pool_mut().push(bundle.w, c, WBeat::full(2, true));
        sim.run(3);
        let p = sim.component::<TraceProbe>(probe).unwrap();
        let w: Vec<_> = p.channel(TraceChannel::W);
        assert_eq!(w.len(), 2);
        assert!(matches!(w[0].payload, TracePayload::W(b) if b.data == 1));
        assert!(matches!(w[1].payload, TracePayload::W(b) if b.data == 2));
        assert!(!p.is_empty());
        assert_eq!(p.dropped(), 0);
    }

    #[test]
    fn ring_drops_oldest() {
        let mut sim = Sim::new();
        let bundle = AxiBundle::with_defaults(sim.pool_mut());
        let probe = sim.add(TraceProbe::new(bundle, 2));
        for i in 0..4u64 {
            let c = sim.cycle();
            sim.pool_mut().pop(bundle.b, c);
            sim.pool_mut()
                .push(bundle.b, c, BBeat::okay(TxnId::new(i as u32)));
            sim.run(2);
        }
        let p = sim.component::<TraceProbe>(probe).unwrap();
        assert_eq!(p.len(), 2);
        assert!(p.dropped() >= 1);
        // Oldest remaining is not id 0.
        let first = p.events().next().unwrap();
        assert!(matches!(first.payload, TracePayload::B(b) if b.id != TxnId::new(0)));
    }

    /// Every displaced event is counted: after heavy overflow the ring
    /// holds exactly the newest `capacity` events and `dropped` accounts
    /// for all the rest.
    #[test]
    fn overflow_accounts_for_every_event() {
        let mut sim = Sim::new();
        let bundle = AxiBundle::with_defaults(sim.pool_mut());
        let probe = sim.add(TraceProbe::new(bundle, 4));
        const TOTAL: u64 = 20;
        for i in 0..TOTAL {
            let c = sim.cycle();
            sim.pool_mut().pop(bundle.b, c);
            sim.pool_mut()
                .push(bundle.b, c, BBeat::okay(TxnId::new(i as u32)));
            sim.run(2);
        }
        let p = sim.component::<TraceProbe>(probe).unwrap();
        assert_eq!(p.len(), 4);
        assert_eq!(p.dropped() + p.len() as u64, TOTAL);
        // The survivors are the newest events, still in order.
        let ids: Vec<u32> = p
            .events()
            .map(|e| match e.payload {
                TracePayload::B(b) => b.id.raw(),
                _ => unreachable!("only B beats were pushed"),
            })
            .collect();
        assert_eq!(ids, [16, 17, 18, 19]);
    }

    /// A probe must see every beat even when the kernel fast-forwards over
    /// the idle gaps between them. The producer sleeps 1000 cycles between
    /// beats, so almost all simulated time is jumped over.
    #[test]
    fn fast_forward_does_not_lose_beats() {
        struct SparseProducer {
            out: crate::pool::WireId<BBeat>,
            sent: u32,
            next_at: Cycle,
        }
        impl Component for SparseProducer {
            fn tick(&mut self, ctx: &mut TickCtx<'_>) {
                if ctx.cycle >= self.next_at && self.sent < 5 {
                    ctx.pool
                        .push(self.out, ctx.cycle, BBeat::okay(TxnId::new(self.sent)));
                    self.sent += 1;
                    self.next_at = ctx.cycle + 1000;
                }
            }
            fn next_event(&self, cycle: Cycle) -> Option<Cycle> {
                (self.sent < 5).then(|| self.next_at.max(cycle))
            }
        }
        struct Sink {
            input: crate::pool::WireId<BBeat>,
        }
        impl Component for Sink {
            fn tick(&mut self, ctx: &mut TickCtx<'_>) {
                ctx.pool.pop(self.input, ctx.cycle);
            }
            fn next_event(&self, _cycle: Cycle) -> Option<Cycle> {
                None
            }
        }

        let mut sim = Sim::new();
        let bundle = AxiBundle::with_defaults(sim.pool_mut());
        let probe = sim.add(TraceProbe::new(bundle, 16));
        sim.add(SparseProducer {
            out: bundle.b,
            sent: 0,
            next_at: 0,
        });
        sim.add(Sink { input: bundle.b });
        sim.run(6_000);
        assert!(
            sim.kernel_stats().fast_forwards >= 4,
            "idle gaps must be jumped: {:?}",
            sim.kernel_stats()
        );
        let p = sim.component::<TraceProbe>(probe).unwrap();
        let ids: Vec<u32> = p
            .events()
            .map(|e| match e.payload {
                TracePayload::B(b) => b.id.raw(),
                _ => unreachable!("only B beats were pushed"),
            })
            .collect();
        assert_eq!(ids, [0, 1, 2, 3, 4], "no beat may be lost across jumps");
        assert_eq!(p.dropped(), 0);
    }

    /// A capacity-0 probe is a pure drop counter: it must never retain an
    /// event (the ring's capacity bound is absolute) and `dropped` must
    /// account for every observed beat.
    #[test]
    fn capacity_zero_retains_nothing_and_counts_everything() {
        let mut sim = Sim::new();
        let bundle = AxiBundle::with_defaults(sim.pool_mut());
        let probe = sim.add(TraceProbe::new(bundle, 0));
        for i in 0..3u64 {
            let c = sim.cycle();
            sim.pool_mut().pop(bundle.b, c);
            sim.pool_mut()
                .push(bundle.b, c, BBeat::okay(TxnId::new(i as u32)));
            sim.run(2);
        }
        let p = sim.component::<TraceProbe>(probe).unwrap();
        assert_eq!(p.len(), 0, "capacity 0 must hold zero events");
        assert!(p.is_empty());
        assert_eq!(p.dropped(), 3, "every observed beat must be counted");
        assert_eq!(p.export_json().trim(), "[]");
    }

    #[test]
    fn export_json_mirrors_the_ring() {
        let mut pool = ChannelPool::new();
        let bundle = AxiBundle::with_defaults(&mut pool);
        let mut probe = TraceProbe::new(bundle, 8).named("port0");
        probe.record(
            5,
            TraceChannel::R,
            TracePayload::R(RBeat::okay(TxnId::new(1), 0xabc, true)),
        );
        probe.record(7, TraceChannel::W, TracePayload::W(WBeat::full(3, false)));
        let json = probe.export_json();
        assert!(json.starts_with('['));
        assert!(json.contains("\"cycle\": 5"));
        assert!(json.contains("\"channel\": \"R\""));
        assert!(json.contains("\"data\": 2748")); // 0xabc
        assert!(json.contains("\"last\": false"));
        assert_eq!(json.matches("\"cycle\"").count(), 2);

        let mut sink = realm_telemetry::TelemetrySink::new();
        Component::telemetry(&probe, &mut sink);
        assert_eq!(sink.get_counter("port0.events"), Some(2));
        assert_eq!(sink.get_counter("port0.dropped"), Some(0));
        assert_eq!(sink.instants().len(), 2);
        assert_eq!(sink.instants()[0].track, "port0");
    }

    #[test]
    fn dump_is_line_per_event() {
        let mut pool = ChannelPool::new();
        let bundle = AxiBundle::with_defaults(&mut pool);
        let mut probe = TraceProbe::new(bundle, 8);
        probe.record(
            5,
            TraceChannel::R,
            TracePayload::R(RBeat::okay(TxnId::new(1), 0xabc, true)),
        );
        let dump = probe.dump();
        assert_eq!(dump.lines().count(), 1);
        assert!(dump.contains("R "));
        assert!(dump.contains("last=true"));
        assert!(dump.contains("OKAY"));
    }

    #[test]
    fn display_formats_every_channel() {
        use axi4::{Addr, BurstKind, BurstLen, BurstSize};
        let aw = AwBeat::new(
            TxnId::new(1),
            Addr::new(0x1000),
            BurstLen::ONE,
            BurstSize::bus64(),
            BurstKind::Incr,
        );
        let events = [
            TraceEvent {
                cycle: 1,
                channel: TraceChannel::Aw,
                payload: TracePayload::Aw(aw),
            },
            TraceEvent {
                cycle: 2,
                channel: TraceChannel::W,
                payload: TracePayload::W(WBeat::full(7, true)),
            },
            TraceEvent {
                cycle: 3,
                channel: TraceChannel::Ar,
                payload: TracePayload::Ar(ArBeat::new(
                    TxnId::new(2),
                    Addr::new(0x2000),
                    BurstLen::ONE,
                    BurstSize::bus64(),
                    BurstKind::Incr,
                )),
            },
        ];
        for e in &events {
            assert!(!e.to_string().is_empty());
        }
        assert!(events[0].to_string().contains("INCR"));
    }
}

//! Round-robin arbitration, the fairness primitive of burst-based
//! interconnects.

/// A round-robin arbiter over `n` requestors.
///
/// Each call to [`RoundRobin::grant`] picks the first requesting index at or
/// after the last grant + 1, wrapping around — the classic work-conserving
/// RR scheme AXI crossbars use per subordinate port.
///
/// ```
/// use axi_sim::RoundRobin;
///
/// let mut rr = RoundRobin::new(3);
/// assert_eq!(rr.grant(|i| i != 1), Some(0));
/// assert_eq!(rr.grant(|_| true), Some(1));
/// assert_eq!(rr.grant(|_| true), Some(2));
/// assert_eq!(rr.grant(|_| true), Some(0));
/// assert_eq!(rr.grant(|_| false), None);
/// ```
#[derive(Clone, Debug)]
pub struct RoundRobin {
    n: usize,
    last: usize,
}

impl RoundRobin {
    /// Creates an arbiter over `n` requestors; the first grant favours
    /// index 0.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "round-robin arbiter needs at least one requestor");
        Self { n, last: n - 1 }
    }

    /// Grants the next requesting index in round-robin order, advancing the
    /// pointer; returns `None` (without advancing) if nothing requests.
    pub fn grant<F: FnMut(usize) -> bool>(&mut self, mut requesting: F) -> Option<usize> {
        for offset in 1..=self.n {
            let candidate = (self.last + offset) % self.n;
            if requesting(candidate) {
                self.last = candidate;
                return Some(candidate);
            }
        }
        None
    }

    /// Like [`RoundRobin::grant`] but *without* advancing the pointer —
    /// useful to test whether a grant would occur.
    pub fn peek<F: FnMut(usize) -> bool>(&self, mut requesting: F) -> Option<usize> {
        for offset in 1..=self.n {
            let candidate = (self.last + offset) % self.n;
            if requesting(candidate) {
                return Some(candidate);
            }
        }
        None
    }

    /// Number of requestors this arbiter serves.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Always `false`: an arbiter has at least one requestor.
    pub fn is_empty(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fair_rotation_under_full_load() {
        let mut rr = RoundRobin::new(4);
        let grants: Vec<_> = (0..8).map(|_| rr.grant(|_| true).unwrap()).collect();
        assert_eq!(grants, [0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn skips_idle_requestors() {
        let mut rr = RoundRobin::new(4);
        let grants: Vec<_> = (0..4).map(|_| rr.grant(|i| i % 2 == 1).unwrap()).collect();
        assert_eq!(grants, [1, 3, 1, 3]);
    }

    #[test]
    fn none_when_no_requests_and_pointer_unchanged() {
        let mut rr = RoundRobin::new(3);
        assert_eq!(rr.grant(|_| false), None);
        // Pointer did not advance: next grant still favours 0.
        assert_eq!(rr.grant(|_| true), Some(0));
    }

    #[test]
    fn peek_does_not_advance() {
        let mut rr = RoundRobin::new(3);
        assert_eq!(rr.peek(|_| true), Some(0));
        assert_eq!(rr.peek(|_| true), Some(0));
        assert_eq!(rr.grant(|_| true), Some(0));
        assert_eq!(rr.peek(|_| true), Some(1));
    }

    #[test]
    fn single_requestor_always_wins() {
        let mut rr = RoundRobin::new(1);
        for _ in 0..3 {
            assert_eq!(rr.grant(|_| true), Some(0));
        }
        assert_eq!(rr.len(), 1);
        assert!(!rr.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_requestors_panics() {
        let _ = RoundRobin::new(0);
    }

    /// No requestor under continuous load waits more than n grants — the
    /// starvation-freedom property the paper relies on (and which breaks
    /// down at *burst* granularity, motivating the splitter).
    #[test]
    fn starvation_freedom() {
        let n = 5;
        let mut rr = RoundRobin::new(n);
        let mut since_grant = vec![0usize; n];
        for _ in 0..100 {
            let g = rr.grant(|_| true).unwrap();
            for (i, s) in since_grant.iter_mut().enumerate() {
                if i == g {
                    *s = 0;
                } else {
                    *s += 1;
                    assert!(*s < n, "requestor {i} starved");
                }
            }
        }
    }
}

//! Post-run coverage harvesting for guided fuzzing.
//!
//! A [`CoverageMap`] is a flat, deterministic `key -> count` table filled
//! from counters components already maintain during a run (arbiter grants,
//! protocol-rule observations, wire activity). Harvesting is pull-based:
//! [`Sim::coverage`](crate::Sim::coverage) walks every component's
//! [`Component::coverage`](crate::Component::coverage) hook after (or
//! during) a run, so the hot simulation path pays nothing for coverage —
//! the counters are the same ones diagnostics and reports read.
//!
//! The *signature* of a run is the sorted set of keys with a nonzero
//! count. A campaign driver treats a seed that produces previously unseen
//! keys as having discovered new behaviour, regardless of the counts.

use std::collections::BTreeMap;

/// A deterministic `key -> count` coverage table.
///
/// Keys are dotted paths naming the behaviour observed, e.g.
/// `xbar2x1.m0.ar.win` (manager 0 won an AR grant),
/// `conf.mgr.rule.AW_BURST_ILLEGAL` (a monitor rule fired), or
/// `edge.AW[3]` (topology wire 3 on the AW channel carried a beat).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CoverageMap {
    counts: BTreeMap<String, u64>,
}

impl CoverageMap {
    /// An empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `n` observations of `key`. Zero-count observations are
    /// dropped so the signature only contains behaviour that happened.
    pub fn add(&mut self, key: impl Into<String>, n: u64) {
        if n == 0 {
            return;
        }
        *self.counts.entry(key.into()).or_insert(0) += n;
    }

    /// Records a single observation of `key`.
    pub fn hit(&mut self, key: impl Into<String>) {
        self.add(key, 1);
    }

    /// The count recorded for `key` (zero if never observed).
    pub fn count(&self, key: &str) -> u64 {
        self.counts.get(key).copied().unwrap_or(0)
    }

    /// Number of distinct keys observed.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// True if nothing has been observed.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// The underlying sorted `key -> count` table.
    pub fn counts(&self) -> &BTreeMap<String, u64> {
        &self.counts
    }

    /// The coverage signature: every observed key, sorted.
    pub fn signature(&self) -> Vec<&str> {
        self.counts.keys().map(String::as_str).collect()
    }

    /// A stable 64-bit hash of the signature (FNV-1a over the sorted
    /// keys) — a compact corpus-dedup token. Counts are deliberately
    /// excluded: two runs exercising the same behaviours with different
    /// intensities share a signature.
    pub fn signature_hash(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for key in self.counts.keys() {
            for byte in key.bytes().chain([0xff]) {
                h ^= u64::from(byte);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        h
    }

    /// Folds another map's counts into this one.
    pub fn merge(&mut self, other: &CoverageMap) {
        for (key, n) in &other.counts {
            self.add(key.clone(), *n);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_counts_never_enter_the_signature() {
        let mut map = CoverageMap::new();
        map.add("a.b", 0);
        assert!(map.is_empty());
        map.hit("a.b");
        map.add("a.c", 3);
        assert_eq!(map.count("a.b"), 1);
        assert_eq!(map.count("a.c"), 3);
        assert_eq!(map.signature(), vec!["a.b", "a.c"]);
    }

    #[test]
    fn signature_hash_ignores_counts_but_not_keys() {
        let mut a = CoverageMap::new();
        a.hit("x");
        a.add("y", 7);
        let mut b = CoverageMap::new();
        b.add("x", 100);
        b.hit("y");
        assert_eq!(a.signature_hash(), b.signature_hash());
        b.hit("z");
        assert_ne!(a.signature_hash(), b.signature_hash());
    }

    #[test]
    fn merge_sums_counts() {
        let mut a = CoverageMap::new();
        a.add("k", 2);
        let mut b = CoverageMap::new();
        b.add("k", 3);
        b.hit("only.b");
        a.merge(&b);
        assert_eq!(a.count("k"), 5);
        assert_eq!(a.count("only.b"), 1);
    }
}

//! Static topology introspection: which component touches which wire.
//!
//! Components declare their wire endpoints through [`Component::ports`]
//! (see [`crate::Component`]); [`Sim::topology`](crate::Sim::topology)
//! assembles the declarations into a [`Topology`] snapshot that static
//! analyzers (the `realm-lint` crate) check before cycle 0: dangling or
//! doubly-driven wires, unreachable components, and declared zero-latency
//! couplings that could form combinational cycles.

use std::collections::BTreeMap;

use crate::component::Component;
use crate::pool::ChannelPool;

/// How a component relates to one wire.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PortDir {
    /// The component pushes beats onto the wire.
    Drive,
    /// The component pops beats off the wire.
    Consume,
    /// The component only peeks or taps the wire (passive monitor/probe);
    /// it neither sources nor sinks beats.
    Observe,
}

/// One declared wire endpoint of a component.
///
/// Wires are identified by `(channel, wire)` — the channel label of the
/// beat type ("AW", "W", "B", "AR", "R") plus the pool-internal index
/// within that channel, exactly as [`WireId::index`](crate::WireId::index)
/// reports it.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PortDecl {
    /// Channel label of the wire's beat type.
    pub channel: &'static str,
    /// Pool-internal wire index within the channel.
    pub wire: usize,
    /// The component's relation to the wire.
    pub dir: PortDir,
}

impl PortDecl {
    /// Creates a declaration.
    pub fn new(channel: &'static str, wire: usize, dir: PortDir) -> Self {
        Self { channel, wire, dir }
    }
}

/// One component's row in a [`Topology`]: registration index, instance
/// name, and declared wire endpoints.
#[derive(Clone, Debug)]
pub struct TopoComponent {
    /// Registration index within the [`Sim`](crate::Sim).
    pub index: usize,
    /// The component's [`Component::name`].
    pub name: String,
    /// Declared wire endpoints (empty for components that do not implement
    /// [`Component::ports`] — such components are opaque to graph checks).
    pub ports: Vec<PortDecl>,
}

impl TopoComponent {
    /// Returns `true` if the component declared no endpoints at all.
    pub fn is_opaque(&self) -> bool {
        self.ports.is_empty()
    }

    /// Returns `true` if the component only observes (no drive/consume).
    pub fn is_observer(&self) -> bool {
        !self.ports.is_empty() && self.ports.iter().all(|p| p.dir == PortDir::Observe)
    }
}

/// One wire's row in a [`Topology`]: identity plus queue capacity.
///
/// Every pool wire is *registered* — a beat pushed at cycle *t* is visible
/// at *t + 1* — so wire hops always add latency; only explicitly declared
/// combinational couplings (see `realm-lint`'s system model) can create
/// zero-latency paths.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TopoWire {
    /// Channel label of the wire's beat type.
    pub channel: &'static str,
    /// Pool-internal wire index within the channel.
    pub index: usize,
    /// Bounded queue depth.
    pub capacity: usize,
}

/// A static snapshot of a simulated system's structure: every registered
/// component with its declared ports, and every allocated wire.
#[derive(Clone, Debug, Default)]
pub struct Topology {
    /// Components in registration (tick) order.
    pub components: Vec<TopoComponent>,
    /// All allocated wires across the five channels.
    pub wires: Vec<TopoWire>,
    /// `(source, dependent)` out-of-band couplings declared via
    /// [`Sim::couple`](crate::Sim::couple), in declaration order.
    pub couples: Vec<(usize, usize)>,
}

/// Disjoint-set forest over component indices (island computation).
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        Self {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, i: usize) -> usize {
        let mut root = i;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        let mut i = i;
        while self.parent[i] != root {
            let next = self.parent[i];
            self.parent[i] = root;
            i = next;
        }
        root
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            // Attach the larger root under the smaller one so every island
            // is rooted at its lowest-indexed member (determinism aid).
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.parent[hi] = lo;
        }
    }
}

impl Topology {
    /// Assembles a topology from registered components, the wire pool, and
    /// the declared couples.
    pub(crate) fn collect(
        components: &[Box<dyn Component>],
        pool: &ChannelPool,
        couples: &[(usize, usize)],
    ) -> Self {
        Self {
            components: components
                .iter()
                .enumerate()
                .map(|(index, c)| TopoComponent {
                    index,
                    name: c.name().to_owned(),
                    ports: c.ports(),
                })
                .collect(),
            wires: pool.wire_table(),
            couples: couples.to_vec(),
        }
    }

    /// Number of components that declared no ports (opaque to graph
    /// analysis).
    pub fn opaque_components(&self) -> usize {
        self.components.iter().filter(|c| c.is_opaque()).count()
    }

    /// Partitions the components into **islands**: connected components of
    /// the undirected dependence graph whose edges are shared wires (any
    /// two endpoints of one wire, whatever their direction) and declared
    /// couples. Components in different islands can never observe each
    /// other within a cycle, so each island can be stepped independently.
    ///
    /// Opaque (port-less) components may touch any wire, so each one is
    /// conservatively merged with every other component — a single opaque
    /// component collapses the partition to one island.
    ///
    /// Islands are ordered by their smallest member; members are in
    /// registration order. Deterministic for a given topology.
    pub fn islands(&self) -> Vec<Vec<usize>> {
        self.islands_with(&[])
    }

    /// Like [`Topology::islands`], but with additional undirected
    /// `(a, b)` edges merged in (out-of-range indices are ignored) —
    /// static analyzers use this to fold in zero-latency couplings that
    /// live outside the topology proper.
    pub fn islands_with(&self, extra_edges: &[(usize, usize)]) -> Vec<Vec<usize>> {
        let n = self.components.len();
        let mut uf = UnionFind::new(n);
        // Every pair of declared endpoints of one wire is dependent: they
        // share the wire's queue (capacity freed by a pop is visible to the
        // driver; taps observe pushes same-cycle).
        let mut by_wire: BTreeMap<(&str, usize), usize> = BTreeMap::new();
        for c in &self.components {
            for p in &c.ports {
                match by_wire.get(&(p.channel, p.wire)) {
                    Some(&first) => uf.union(first, c.index),
                    None => {
                        by_wire.insert((p.channel, p.wire), c.index);
                    }
                }
            }
        }
        for &(source, dependent) in &self.couples {
            if source < n && dependent < n {
                uf.union(source, dependent);
            }
        }
        for &(a, b) in extra_edges {
            if a < n && b < n {
                uf.union(a, b);
            }
        }
        for c in &self.components {
            if c.is_opaque() {
                for other in 0..n {
                    uf.union(c.index, other);
                }
            }
        }
        let mut islands: Vec<Vec<usize>> = Vec::new();
        let mut island_of_root: BTreeMap<usize, usize> = BTreeMap::new();
        for i in 0..n {
            let root = uf.find(i);
            match island_of_root.get(&root) {
                Some(&k) => islands[k].push(i),
                None => {
                    island_of_root.insert(root, islands.len());
                    islands.push(vec![i]);
                }
            }
        }
        islands
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bundle::AxiBundle;
    use crate::component::TickCtx;
    use crate::sim::Sim;

    struct Declared {
        bundle: AxiBundle,
    }

    impl Component for Declared {
        fn tick(&mut self, _ctx: &mut TickCtx<'_>) {}
        fn name(&self) -> &str {
            "declared"
        }
        fn ports(&self) -> Vec<PortDecl> {
            self.bundle.manager_ports()
        }
    }

    struct Opaque;
    impl Component for Opaque {
        fn tick(&mut self, _ctx: &mut TickCtx<'_>) {}
    }

    #[test]
    fn topology_collects_ports_and_wires() {
        let mut sim = Sim::new();
        let bundle = AxiBundle::with_defaults(sim.pool_mut());
        sim.add(Declared { bundle });
        sim.add(Opaque);
        let topo = sim.topology();
        assert_eq!(topo.components.len(), 2);
        assert_eq!(topo.wires.len(), 5);
        assert_eq!(topo.components[0].ports.len(), 5);
        assert!(!topo.components[0].is_opaque());
        assert!(topo.components[1].is_opaque());
        assert_eq!(topo.opaque_components(), 1);
        // Manager side drives the request channels, consumes the responses.
        let aw = topo.components[0]
            .ports
            .iter()
            .find(|p| p.channel == "AW")
            .unwrap();
        assert_eq!(aw.dir, PortDir::Drive);
        let r = topo.components[0]
            .ports
            .iter()
            .find(|p| p.channel == "R")
            .unwrap();
        assert_eq!(r.dir, PortDir::Consume);
        // Wire capacities come from the pool.
        assert!(topo.wires.iter().all(|w| w.capacity == 2));
    }

    #[test]
    fn observer_detection() {
        let mut sim = Sim::new();
        let bundle = AxiBundle::with_defaults(sim.pool_mut());
        struct Watcher {
            bundle: AxiBundle,
        }
        impl Component for Watcher {
            fn tick(&mut self, _ctx: &mut TickCtx<'_>) {}
            fn ports(&self) -> Vec<PortDecl> {
                self.bundle.observer_ports()
            }
        }
        sim.add(Watcher { bundle });
        let topo = sim.topology();
        assert!(topo.components[0].is_observer());
        assert!(!topo.components[0].is_opaque());
    }

    #[test]
    fn islands_split_on_disjoint_wires_and_merge_on_couples() {
        let mut sim = Sim::new();
        let b1 = AxiBundle::with_defaults(sim.pool_mut());
        let b2 = AxiBundle::with_defaults(sim.pool_mut());
        let a = sim.add(Declared { bundle: b1 });
        let b = sim.add(Declared { bundle: b2 });
        let topo = sim.topology();
        assert!(topo.couples.is_empty());
        assert_eq!(topo.islands(), vec![vec![0], vec![1]]);
        // A couple is a dependence edge: it merges the two islands.
        sim.couple(a, b);
        let topo = sim.topology();
        assert_eq!(topo.couples, vec![(0, 1)]);
        assert_eq!(topo.islands(), vec![vec![0, 1]]);
    }

    #[test]
    fn shared_wires_merge_islands() {
        let mut sim = Sim::new();
        let bundle = AxiBundle::with_defaults(sim.pool_mut());
        sim.add(Declared { bundle });
        sim.add(Declared { bundle });
        assert_eq!(sim.topology().islands(), vec![vec![0, 1]]);
    }

    #[test]
    fn opaque_component_collapses_partition() {
        let mut sim = Sim::new();
        let b1 = AxiBundle::with_defaults(sim.pool_mut());
        let b2 = AxiBundle::with_defaults(sim.pool_mut());
        sim.add(Declared { bundle: b1 });
        sim.add(Declared { bundle: b2 });
        sim.add(Opaque);
        // The port-less component may touch anything: one island only.
        assert_eq!(sim.topology().islands(), vec![vec![0, 1, 2]]);
    }

    #[test]
    fn islands_with_extra_edges_merges_and_ignores_bad_indices() {
        let mut sim = Sim::new();
        let b1 = AxiBundle::with_defaults(sim.pool_mut());
        let b2 = AxiBundle::with_defaults(sim.pool_mut());
        sim.add(Declared { bundle: b1 });
        sim.add(Declared { bundle: b2 });
        let topo = sim.topology();
        assert_eq!(topo.islands_with(&[(7, 9)]), vec![vec![0], vec![1]]);
        assert_eq!(topo.islands_with(&[(1, 0)]), vec![vec![0, 1]]);
    }
}

//! Static topology introspection: which component touches which wire.
//!
//! Components declare their wire endpoints through [`Component::ports`]
//! (see [`crate::Component`]); [`Sim::topology`](crate::Sim::topology)
//! assembles the declarations into a [`Topology`] snapshot that static
//! analyzers (the `realm-lint` crate) check before cycle 0: dangling or
//! doubly-driven wires, unreachable components, and declared zero-latency
//! couplings that could form combinational cycles.

use crate::component::Component;
use crate::pool::ChannelPool;

/// How a component relates to one wire.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PortDir {
    /// The component pushes beats onto the wire.
    Drive,
    /// The component pops beats off the wire.
    Consume,
    /// The component only peeks or taps the wire (passive monitor/probe);
    /// it neither sources nor sinks beats.
    Observe,
}

/// One declared wire endpoint of a component.
///
/// Wires are identified by `(channel, wire)` — the channel label of the
/// beat type ("AW", "W", "B", "AR", "R") plus the pool-internal index
/// within that channel, exactly as [`WireId::index`](crate::WireId::index)
/// reports it.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PortDecl {
    /// Channel label of the wire's beat type.
    pub channel: &'static str,
    /// Pool-internal wire index within the channel.
    pub wire: usize,
    /// The component's relation to the wire.
    pub dir: PortDir,
}

impl PortDecl {
    /// Creates a declaration.
    pub fn new(channel: &'static str, wire: usize, dir: PortDir) -> Self {
        Self { channel, wire, dir }
    }
}

/// One component's row in a [`Topology`]: registration index, instance
/// name, and declared wire endpoints.
#[derive(Clone, Debug)]
pub struct TopoComponent {
    /// Registration index within the [`Sim`](crate::Sim).
    pub index: usize,
    /// The component's [`Component::name`].
    pub name: String,
    /// Declared wire endpoints (empty for components that do not implement
    /// [`Component::ports`] — such components are opaque to graph checks).
    pub ports: Vec<PortDecl>,
}

impl TopoComponent {
    /// Returns `true` if the component declared no endpoints at all.
    pub fn is_opaque(&self) -> bool {
        self.ports.is_empty()
    }

    /// Returns `true` if the component only observes (no drive/consume).
    pub fn is_observer(&self) -> bool {
        !self.ports.is_empty() && self.ports.iter().all(|p| p.dir == PortDir::Observe)
    }
}

/// One wire's row in a [`Topology`]: identity plus queue capacity.
///
/// Every pool wire is *registered* — a beat pushed at cycle *t* is visible
/// at *t + 1* — so wire hops always add latency; only explicitly declared
/// combinational couplings (see `realm-lint`'s system model) can create
/// zero-latency paths.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TopoWire {
    /// Channel label of the wire's beat type.
    pub channel: &'static str,
    /// Pool-internal wire index within the channel.
    pub index: usize,
    /// Bounded queue depth.
    pub capacity: usize,
}

/// A static snapshot of a simulated system's structure: every registered
/// component with its declared ports, and every allocated wire.
#[derive(Clone, Debug, Default)]
pub struct Topology {
    /// Components in registration (tick) order.
    pub components: Vec<TopoComponent>,
    /// All allocated wires across the five channels.
    pub wires: Vec<TopoWire>,
}

impl Topology {
    /// Assembles a topology from registered components and the wire pool.
    pub(crate) fn collect(components: &[Box<dyn Component>], pool: &ChannelPool) -> Self {
        Self {
            components: components
                .iter()
                .enumerate()
                .map(|(index, c)| TopoComponent {
                    index,
                    name: c.name().to_owned(),
                    ports: c.ports(),
                })
                .collect(),
            wires: pool.wire_table(),
        }
    }

    /// Number of components that declared no ports (opaque to graph
    /// analysis).
    pub fn opaque_components(&self) -> usize {
        self.components.iter().filter(|c| c.is_opaque()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bundle::AxiBundle;
    use crate::component::TickCtx;
    use crate::sim::Sim;

    struct Declared {
        bundle: AxiBundle,
    }

    impl Component for Declared {
        fn tick(&mut self, _ctx: &mut TickCtx<'_>) {}
        fn name(&self) -> &str {
            "declared"
        }
        fn ports(&self) -> Vec<PortDecl> {
            self.bundle.manager_ports()
        }
    }

    struct Opaque;
    impl Component for Opaque {
        fn tick(&mut self, _ctx: &mut TickCtx<'_>) {}
    }

    #[test]
    fn topology_collects_ports_and_wires() {
        let mut sim = Sim::new();
        let bundle = AxiBundle::with_defaults(sim.pool_mut());
        sim.add(Declared { bundle });
        sim.add(Opaque);
        let topo = sim.topology();
        assert_eq!(topo.components.len(), 2);
        assert_eq!(topo.wires.len(), 5);
        assert_eq!(topo.components[0].ports.len(), 5);
        assert!(!topo.components[0].is_opaque());
        assert!(topo.components[1].is_opaque());
        assert_eq!(topo.opaque_components(), 1);
        // Manager side drives the request channels, consumes the responses.
        let aw = topo.components[0]
            .ports
            .iter()
            .find(|p| p.channel == "AW")
            .unwrap();
        assert_eq!(aw.dir, PortDir::Drive);
        let r = topo.components[0]
            .ports
            .iter()
            .find(|p| p.channel == "R")
            .unwrap();
        assert_eq!(r.dir, PortDir::Consume);
        // Wire capacities come from the pool.
        assert!(topo.wires.iter().all(|w| w.capacity == 2));
    }

    #[test]
    fn observer_detection() {
        let mut sim = Sim::new();
        let bundle = AxiBundle::with_defaults(sim.pool_mut());
        struct Watcher {
            bundle: AxiBundle,
        }
        impl Component for Watcher {
            fn tick(&mut self, _ctx: &mut TickCtx<'_>) {}
            fn ports(&self) -> Vec<PortDecl> {
                self.bundle.observer_ports()
            }
        }
        sim.add(Watcher { bundle });
        let topo = sim.topology();
        assert!(topo.components[0].is_observer());
        assert!(!topo.components[0].is_opaque());
    }
}

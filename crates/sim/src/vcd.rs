//! VCD (Value Change Dump) export for trace probes.
//!
//! Renders the events of one or more [`TraceProbe`]s as an IEEE-1364 VCD
//! document, so beat-level activity opens in standard waveform viewers
//! (GTKWave & friends). Each probe becomes a scope with one vector signal
//! per channel (the beat's key fields packed into 64 bits) plus a `valid`
//! bit that pulses for every observed beat.

use std::fmt::Write as _;

use crate::trace::{TraceChannel, TraceEvent, TracePayload, TraceProbe};
use crate::Cycle;

/// Packs the identifying fields of a beat into a displayable 64-bit value.
fn pack(payload: &TracePayload) -> u64 {
    match payload {
        // Address beats: low 32 bits of the address | id in the high bits.
        TracePayload::Aw(b) => (u64::from(b.id.raw()) << 40) | (b.addr.raw() & 0xff_ffff_ffff),
        TracePayload::Ar(b) => (u64::from(b.id.raw()) << 40) | (b.addr.raw() & 0xff_ffff_ffff),
        TracePayload::W(b) => b.data,
        TracePayload::R(b) => b.data,
        TracePayload::B(b) => u64::from(b.id.raw()),
    }
}

const CHANNELS: [TraceChannel; 5] = [
    TraceChannel::Aw,
    TraceChannel::W,
    TraceChannel::B,
    TraceChannel::Ar,
    TraceChannel::R,
];

fn channel_name(c: TraceChannel) -> &'static str {
    match c {
        TraceChannel::Aw => "aw",
        TraceChannel::W => "w",
        TraceChannel::B => "b",
        TraceChannel::Ar => "ar",
        TraceChannel::R => "r",
    }
}

/// VCD identifier for probe `p`, channel index `c`, valid-bit flag.
/// Multi-character identifiers avoid collisions with VCD syntax characters.
fn ident(p: usize, c: usize, valid: bool) -> String {
    format!("s{}", p * 10 + c * 2 + usize::from(valid))
}

/// Renders named probes into one VCD document.
///
/// Probe names become scopes; timestamps are the simulation cycles the
/// beats were observed at (timescale 1 ns per cycle, by convention).
///
/// ```
/// use axi_sim::{vcd_dump, AxiBundle, ChannelPool, TraceProbe};
///
/// let mut pool = ChannelPool::new();
/// let bundle = AxiBundle::with_defaults(&mut pool);
/// let probe = TraceProbe::new(bundle, 16);
/// let doc = vcd_dump(&[("core", &probe)]);
/// assert!(doc.starts_with("$timescale"));
/// ```
pub fn vcd_dump(probes: &[(&str, &TraceProbe)]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "$timescale 1ns $end");

    // Header: one scope per probe, two signals per channel.
    for (p, (name, _)) in probes.iter().enumerate() {
        let _ = writeln!(out, "$scope module {name} $end");
        for (c, channel) in CHANNELS.iter().enumerate() {
            let cname = channel_name(*channel);
            let _ = writeln!(out, "$var wire 64 {} {cname}_beat $end", ident(p, c, false));
            let _ = writeln!(out, "$var wire 1 {} {cname}_valid $end", ident(p, c, true));
        }
        let _ = writeln!(out, "$upscope $end");
    }
    let _ = writeln!(out, "$enddefinitions $end");

    // Merge events from all probes in time order.
    let mut events: Vec<(Cycle, usize, &TraceEvent)> = Vec::new();
    for (p, (_, probe)) in probes.iter().enumerate() {
        for e in probe.events() {
            events.push((e.cycle, p, e));
        }
    }
    events.sort_by_key(|(cycle, p, _)| (*cycle, *p));

    let mut last_time: Option<Cycle> = None;
    let mut pulsed: Vec<(usize, usize)> = Vec::new();
    for (cycle, p, event) in events {
        if last_time != Some(cycle) {
            // Drop the previous cycle's valid pulses before advancing.
            if let Some(prev) = last_time {
                let _ = writeln!(out, "#{}", prev + 1);
                for (pp, cc) in pulsed.drain(..) {
                    let _ = writeln!(out, "0{}", ident(pp, cc, true));
                }
            }
            let _ = writeln!(out, "#{cycle}");
            last_time = Some(cycle);
        }
        let c = CHANNELS
            .iter()
            .position(|&ch| ch == event.channel)
            .expect("channel in table");
        let _ = writeln!(out, "b{:b} {}", pack(&event.payload), ident(p, c, false));
        let _ = writeln!(out, "1{}", ident(p, c, true));
        pulsed.push((p, c));
    }
    if let Some(t) = last_time {
        let _ = writeln!(out, "#{}", t + 1);
        for (pp, cc) in pulsed {
            let _ = writeln!(out, "0{}", ident(pp, cc, true));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bundle::AxiBundle;
    use crate::component::Component as _;
    use crate::pool::ChannelPool;
    use axi4::{BBeat, TxnId, WBeat};

    /// Drives a W beat then a B beat past an owned probe.
    fn probe_with_traffic() -> TraceProbe {
        let mut pool = ChannelPool::new();
        let bundle = AxiBundle::with_defaults(&mut pool);
        let mut probe = TraceProbe::new(bundle, 64);
        pool.push(bundle.w, 0, WBeat::full(0xAB, false));
        let mut ctx = crate::component::TickCtx {
            cycle: 1,
            pool: &mut pool,
        };
        probe.tick(&mut ctx);
        let mut ctx = crate::component::TickCtx {
            cycle: 2,
            pool: &mut pool,
        };
        ctx.pool.pop(bundle.w, 2);
        ctx.pool.push(bundle.b, 2, BBeat::okay(TxnId::new(3)));
        probe.tick(&mut ctx);
        let mut ctx = crate::component::TickCtx {
            cycle: 3,
            pool: &mut pool,
        };
        probe.tick(&mut ctx);
        assert!(probe.len() >= 2);
        probe
    }

    #[test]
    fn header_declares_scopes_and_vars() {
        let probe = probe_with_traffic();
        let doc = vcd_dump(&[("mgr0", &probe)]);
        assert!(doc.starts_with("$timescale 1ns $end"));
        assert!(doc.contains("$scope module mgr0 $end"));
        assert!(doc.contains("w_beat"));
        assert!(doc.contains("r_valid"));
        assert!(doc.contains("$enddefinitions $end"));
    }

    #[test]
    fn events_appear_in_time_order() {
        let probe = probe_with_traffic();
        let doc = vcd_dump(&[("mgr0", &probe)]);
        let times: Vec<u64> = doc
            .lines()
            .filter_map(|l| l.strip_prefix('#'))
            .map(|t| t.parse().expect("numeric timestamp"))
            .collect();
        assert!(!times.is_empty());
        let mut sorted = times.clone();
        sorted.sort_unstable();
        assert_eq!(times, sorted, "timestamps monotone: {times:?}");
        // The W beat's data is dumped in binary.
        assert!(doc.contains(&format!("b{:b} ", 0xABu64)));
    }

    #[test]
    fn valid_bits_pulse() {
        let probe = probe_with_traffic();
        let doc = vcd_dump(&[("mgr0", &probe)]);
        let rises = doc.lines().filter(|l| l.starts_with('1')).count();
        let falls = doc.lines().filter(|l| l.starts_with('0')).count();
        assert_eq!(rises, falls, "every valid pulse falls again");
        assert!(rises >= 2);
    }

    #[test]
    fn empty_probe_yields_header_only() {
        let mut pool = ChannelPool::new();
        let bundle = AxiBundle::with_defaults(&mut pool);
        let probe = TraceProbe::new(bundle, 8);
        let doc = vcd_dump(&[("idle", &probe)]);
        assert!(doc.contains("$enddefinitions $end"));
        assert!(!doc.contains('#'), "no timestamps without events");
    }

    #[test]
    fn multiple_probes_share_one_document() {
        let probe_a = probe_with_traffic();
        let probe_b = probe_with_traffic();
        let doc = vcd_dump(&[("mgr0", &probe_a), ("mgr1", &probe_b)]);
        assert!(doc.contains("$scope module mgr0 $end"));
        assert!(doc.contains("$scope module mgr1 $end"));
    }
}

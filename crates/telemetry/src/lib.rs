//! Deterministic observability primitives for the AXI-REALM reproduction.
//!
//! The simulator's components export their runtime signals through a
//! [`TelemetrySink`]: a registry of named counters and gauges, log-bucketed
//! latency [`Histogram`]s, and event streams ([`Span`]s and
//! [`InstantEvent`]s) that render to Chrome `trace_event` JSON via
//! [`chrome_trace`] for ui.perfetto.dev.
//!
//! Everything here is *pull-based and deterministic by construction*:
//!
//! - The sink is populated after (or between) runs via the
//!   `Component::telemetry` hook — never on the per-cycle hot path — so
//!   collecting telemetry cannot perturb simulated behaviour.
//! - All maps are `BTreeMap`s and all values integers, so two runs of the
//!   same system produce byte-identical exports regardless of kernel,
//!   thread count, or platform.
//!
//! The crate is dependency-free so every layer of the workspace (including
//! `axi-sim` itself, which defines the hook) can use it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A log-bucketed (HDR-style) histogram over `u64` samples.
///
/// Bucket `0` holds the value `0`; bucket `i >= 1` holds the half-open
/// power-of-two range `[2^(i-1), 2^i - 1]`. Exact count, sum, and max are
/// kept alongside the buckets, so means are exact and only quantiles are
/// subject to bucket resolution (a factor of two). Backed by a `BTreeMap`
/// for deterministic iteration.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Histogram {
    buckets: BTreeMap<u32, u64>,
    count: u64,
    sum: u64,
    max: u64,
}

/// Bucket index for a sample: 0 for 0, else `64 - leading_zeros`.
fn bucket_of(value: u64) -> u32 {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros()
    }
}

/// The inclusive `[lo, hi]` value range of bucket `index`.
pub fn bucket_bounds(index: u32) -> (u64, u64) {
    match index {
        0 => (0, 0),
        64 => (1 << 63, u64::MAX),
        i => (1 << (i - 1), (1 << i) - 1),
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        *self.buckets.entry(bucket_of(value)).or_insert(0) += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Exact maximum sample, 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact mean, `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Upper bound of the bucket containing the `p`-quantile (`0.0..=1.0`),
    /// clamped to the exact max; `None` when empty.
    ///
    /// The bound is conservative: the true quantile lies within a factor of
    /// two below the returned value.
    pub fn quantile_bound(&self, p: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((p * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (&bucket, &n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return Some(bucket_bounds(bucket).1.min(self.max));
            }
        }
        Some(self.max)
    }

    /// Median bucket bound (see [`Histogram::quantile_bound`]).
    pub fn median_bound(&self) -> Option<u64> {
        self.quantile_bound(0.5)
    }

    /// Iterates `(bucket_index, count)` pairs in ascending bucket order.
    pub fn buckets(&self) -> impl Iterator<Item = (u32, u64)> + '_ {
        self.buckets.iter().map(|(&b, &n)| (b, n))
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (&bucket, &n) in &other.buckets {
            *self.buckets.entry(bucket).or_insert(0) += n;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }
}

/// A completed interval on a named track (e.g. one transaction's lifetime
/// on a manager's track), in cycles.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Span {
    /// Track (Perfetto thread) the span renders on.
    pub track: String,
    /// Event name shown on the slice.
    pub name: String,
    /// First cycle of the interval.
    pub start: u64,
    /// Last cycle of the interval (inclusive; zero-length spans allowed).
    pub end: u64,
}

/// A point event on a named track (isolation trip, budget exhaustion,
/// contract/sanitizer violation, criticality switch, ...).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InstantEvent {
    /// Track (Perfetto thread) the instant renders on.
    pub track: String,
    /// Event name.
    pub name: String,
    /// Cycle at which the event occurred.
    pub cycle: u64,
}

/// The unified telemetry registry one simulation run exports into.
///
/// Populated by walking every component's `telemetry` hook; see the crate
/// docs for the determinism contract. Counter and gauge keys are
/// conventionally `"<component>.<signal>"`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TelemetrySink {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
    spans: Vec<Span>,
    instants: Vec<InstantEvent>,
}

impl TelemetrySink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to counter `key` (registering it at zero first). Unlike
    /// coverage signatures, zero counters are kept: the registry describes
    /// what a component *can* report, not only what happened.
    pub fn counter(&mut self, key: &str, n: u64) {
        *self.counters.entry(key.to_owned()).or_insert(0) += n;
    }

    /// Sets gauge `key` to its current level `value` (last write wins).
    pub fn gauge(&mut self, key: &str, value: u64) {
        self.gauges.insert(key.to_owned(), value);
    }

    /// Records one sample into histogram `key`.
    pub fn record(&mut self, key: &str, value: u64) {
        self.histograms
            .entry(key.to_owned())
            .or_default()
            .record(value);
    }

    /// Merges a pre-built histogram into histogram `key`.
    pub fn histogram(&mut self, key: &str, hist: &Histogram) {
        self.histograms
            .entry(key.to_owned())
            .or_default()
            .merge(hist);
    }

    /// Appends a completed span.
    pub fn span(&mut self, track: &str, name: &str, start: u64, end: u64) {
        self.spans.push(Span {
            track: track.to_owned(),
            name: name.to_owned(),
            start,
            end,
        });
    }

    /// Appends an instant event.
    pub fn instant(&mut self, track: &str, name: &str, cycle: u64) {
        self.instants.push(InstantEvent {
            track: track.to_owned(),
            name: name.to_owned(),
            cycle,
        });
    }

    /// Folds another sink into this one.
    pub fn merge(&mut self, other: &TelemetrySink) {
        for (k, &v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, &v) in &other.gauges {
            self.gauges.insert(k.clone(), v);
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(h);
        }
        self.spans.extend(other.spans.iter().cloned());
        self.instants.extend(other.instants.iter().cloned());
    }

    /// All counters, key-sorted.
    pub fn counters(&self) -> &BTreeMap<String, u64> {
        &self.counters
    }

    /// All gauges, key-sorted.
    pub fn gauges(&self) -> &BTreeMap<String, u64> {
        &self.gauges
    }

    /// All histograms, key-sorted.
    pub fn histograms(&self) -> &BTreeMap<String, Histogram> {
        &self.histograms
    }

    /// Counter `key`, if registered.
    pub fn get_counter(&self, key: &str) -> Option<u64> {
        self.counters.get(key).copied()
    }

    /// Histogram `key`, if registered.
    pub fn get_histogram(&self, key: &str) -> Option<&Histogram> {
        self.histograms.get(key)
    }

    /// All spans, in recording order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// All instant events, in recording order.
    pub fn instants(&self) -> &[InstantEvent] {
        &self.instants
    }

    /// True when nothing has been registered or recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
            && self.spans.is_empty()
            && self.instants.is_empty()
    }
}

/// `true` when the `REALM_TRACE` environment variable requests event
/// capture.
///
/// Unset, empty, `0`, and `off` all mean disabled; any other value (most
/// usefully an output path the harness writes the trace to) enables it.
/// Trace capture must never change simulated behaviour — only whether
/// spans and instants are retained for export.
pub fn trace_from_env() -> bool {
    match std::env::var("REALM_TRACE").as_deref() {
        Ok("") | Ok("0") | Ok("off") | Err(_) => false,
        Ok(_) => true,
    }
}

/// Escapes `s` as the body of a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders the sink's spans and instants as Chrome `trace_event` JSON
/// (`{"traceEvents": [...]}`), loadable in ui.perfetto.dev or
/// `chrome://tracing`.
///
/// Each distinct track becomes a named thread under pid 1 (a
/// `thread_name` metadata event plus a stable tid from the sorted track
/// order). Spans render as complete (`"ph":"X"`) events with `ts`/`dur`
/// in cycles (the viewer's "µs" are cycles, 1:1); instants render as
/// thread-scoped (`"ph":"i"`) events. Events are emitted in
/// `(tid, ts, name)` order, so the output is byte-deterministic.
pub fn chrome_trace(sink: &TelemetrySink) -> String {
    let mut tracks: Vec<&str> = sink
        .spans()
        .iter()
        .map(|s| s.track.as_str())
        .chain(sink.instants().iter().map(|i| i.track.as_str()))
        .collect();
    tracks.sort_unstable();
    tracks.dedup();
    let tid_of = |track: &str| tracks.binary_search(&track).expect("track indexed") + 1;

    let mut events: Vec<(usize, u64, String)> = Vec::new();
    for span in sink.spans() {
        let tid = tid_of(&span.track);
        events.push((
            tid,
            span.start,
            format!(
                "{{\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{},\"name\":\"{}\",\"cat\":\"txn\"}}",
                tid,
                span.start,
                span.end.saturating_sub(span.start).max(1),
                escape(&span.name),
            ),
        ));
    }
    for instant in sink.instants() {
        let tid = tid_of(&instant.track);
        events.push((
            tid,
            instant.cycle,
            format!(
                "{{\"ph\":\"i\",\"pid\":1,\"tid\":{},\"ts\":{},\"s\":\"t\",\"name\":\"{}\",\"cat\":\"event\"}}",
                tid,
                instant.cycle,
                escape(&instant.name),
            ),
        ));
    }
    events.sort();

    let mut out = String::from("{\"traceEvents\":[\n");
    let mut first = true;
    for (tid, track) in tracks.iter().enumerate().map(|(i, t)| (i + 1, t)) {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        let _ = write!(
            out,
            "{{\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\"name\":\"thread_name\",\"args\":{{\"name\":\"{}\"}}}}",
            escape(track)
        );
    }
    for (_, _, json) in &events {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str(json);
    }
    out.push_str("\n]}\n");
    out
}

/// Renders the full registry (counters, gauges, histograms, event streams)
/// as deterministic JSON for `REALM_TELEMETRY` dumps and per-run reports.
pub fn to_json_string(sink: &TelemetrySink) -> String {
    let mut out = String::from("{\n  \"counters\": {");
    let mut first = true;
    for (k, v) in sink.counters() {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "\n    \"{}\": {v}", escape(k));
    }
    out.push_str(if first { "},\n" } else { "\n  },\n" });

    out.push_str("  \"gauges\": {");
    first = true;
    for (k, v) in sink.gauges() {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "\n    \"{}\": {v}", escape(k));
    }
    out.push_str(if first { "},\n" } else { "\n  },\n" });

    out.push_str("  \"histograms\": {");
    first = true;
    for (k, h) in sink.histograms() {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "\n    \"{}\": {{\"count\": {}, \"sum\": {}, \"max\": {}, \"median_bound\": {}, \"p99_bound\": {}, \"buckets\": [",
            escape(k),
            h.count(),
            h.sum(),
            h.max(),
            h.median_bound().unwrap_or(0),
            h.quantile_bound(0.99).unwrap_or(0),
        );
        let mut first_b = true;
        for (bucket, n) in h.buckets() {
            if !first_b {
                out.push_str(", ");
            }
            first_b = false;
            let (lo, hi) = bucket_bounds(bucket);
            let _ = write!(out, "[{lo}, {hi}, {n}]");
        }
        out.push_str("]}");
    }
    out.push_str(if first { "},\n" } else { "\n  },\n" });

    let _ = writeln!(out, "  \"spans\": {},", sink.spans().len());
    let _ = write!(out, "  \"instants\": [");
    first = true;
    for i in sink.instants() {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "\n    {{\"track\": \"{}\", \"name\": \"{}\", \"cycle\": {}}}",
            escape(&i.track),
            escape(&i.name),
            i.cycle
        );
    }
    out.push_str(if first { "]\n" } else { "\n  ]\n" });
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_indexing_covers_the_u64_range() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        for i in 0..=64 {
            let (lo, hi) = bucket_bounds(i);
            assert!(lo <= hi);
            assert_eq!(bucket_of(lo), i, "lo of bucket {i}");
            assert_eq!(bucket_of(hi), i, "hi of bucket {i}");
        }
    }

    #[test]
    fn histogram_exact_stats_and_quantile_bounds() {
        let mut h = Histogram::new();
        for v in [0, 1, 2, 3, 5, 8, 13, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 8);
        assert_eq!(h.sum(), 132);
        assert_eq!(h.max(), 100);
        assert!((h.mean().unwrap() - 16.5).abs() < 1e-9);
        // Median rank 4 lands in bucket [2,3].
        assert_eq!(h.median_bound(), Some(3));
        // The top quantile clamps to the exact max, not the bucket bound 127.
        assert_eq!(h.quantile_bound(1.0), Some(100));
        assert_eq!(Histogram::new().median_bound(), None);
    }

    #[test]
    fn histogram_merge_matches_recording_everything_in_one() {
        let samples_a = [1u64, 7, 7, 90];
        let samples_b = [0u64, 2, 512];
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut whole = Histogram::new();
        for v in samples_a {
            a.record(v);
            whole.record(v);
        }
        for v in samples_b {
            b.record(v);
            whole.record(v);
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }

    #[test]
    fn sink_counters_keep_zero_registrations() {
        let mut sink = TelemetrySink::new();
        sink.counter("unit.trips", 0);
        sink.counter("unit.beats", 3);
        sink.counter("unit.beats", 2);
        assert_eq!(sink.get_counter("unit.trips"), Some(0));
        assert_eq!(sink.get_counter("unit.beats"), Some(5));
        assert_eq!(sink.get_counter("absent"), None);
    }

    #[test]
    fn sink_merge_sums_counters_and_concatenates_events() {
        let mut a = TelemetrySink::new();
        a.counter("c", 1);
        a.gauge("g", 10);
        a.record("h", 4);
        a.span("t", "s", 0, 5);
        let mut b = TelemetrySink::new();
        b.counter("c", 2);
        b.gauge("g", 20);
        b.record("h", 8);
        b.instant("t", "i", 7);
        a.merge(&b);
        assert_eq!(a.get_counter("c"), Some(3));
        assert_eq!(a.gauges()["g"], 20);
        assert_eq!(a.get_histogram("h").unwrap().count(), 2);
        assert_eq!(a.spans().len(), 1);
        assert_eq!(a.instants().len(), 1);
    }

    #[test]
    fn chrome_trace_emits_metadata_spans_and_instants() {
        let mut sink = TelemetrySink::new();
        sink.span("core", "read#1", 10, 18);
        sink.instant("realm.dma", "budget-exhausted", 42);
        let json = chrome_trace(&sink);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("\"args\":{\"name\":\"core\"}"));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"dur\":8"));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"s\":\"t\""));
        assert!(json.trim_end().ends_with("]}"));
    }

    #[test]
    fn chrome_trace_is_deterministic_under_recording_order() {
        let mut a = TelemetrySink::new();
        a.span("x", "s1", 0, 1);
        a.span("x", "s0", 0, 1);
        let mut b = TelemetrySink::new();
        b.span("x", "s0", 0, 1);
        b.span("x", "s1", 0, 1);
        assert_eq!(chrome_trace(&a), chrome_trace(&b));
    }

    #[test]
    fn json_dump_escapes_and_orders_keys() {
        let mut sink = TelemetrySink::new();
        sink.counter("b\"key", 1);
        sink.counter("a.key", 2);
        sink.record("lat", 6);
        let json = to_json_string(&sink);
        assert!(json.contains("\"a.key\": 2"));
        assert!(json.contains("\\\"key\": 1"));
        let a = json.find("a.key").unwrap();
        let b = json.find("b\\\"key").unwrap();
        assert!(a < b, "keys must be sorted");
        assert!(
            json.contains("\"median_bound\": 6"),
            "bound clamps to the exact max"
        );
        assert!(json.contains("[4, 7, 1]"));
    }
}

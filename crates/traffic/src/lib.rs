//! Traffic generators for the AXI-REALM testbench.
//!
//! Four manager models drive the experiments:
//!
//! - [`ScriptedManager`] executes an explicit list of transactions and
//!   records completions — the workhorse of directed tests.
//! - [`CoreModel`] is the latency-sensitive, blocking in-order processor
//!   standing in for CVA6 running *Susan*: dependent memory accesses
//!   interleaved with short compute phases, scanning an image-like buffer.
//! - [`DmaModel`] is the bandwidth-hungry DSA DMA engine: double-buffered
//!   full-length bursts (256 beats by default) ping-ponging between two
//!   memory regions with multiple transactions in flight.
//! - [`StallingManager`] is the malicious writer of the DoS experiment: it
//!   reserves the interconnect's W channel with an `AW` and then withholds
//!   the data.
//! - [`RandomManager`] issues seeded random legal transactions and checks
//!   every read against its own memory model — the end-to-end fuzzer.
//!
//! [`FuzzSpec`] complements them: it expands a `u64` seed into a random but
//! protocol-legal script for the [`ScriptedManager`], and [`shrink`] reduces
//! a failing script to a minimal reproducer by greedy delta debugging.
//!
//! All generators are deterministic; [`LatencyStats`] aggregates per-access
//! latency for the paper's worst-case numbers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod core_model;
mod dma;
mod fuzz;
mod random;
mod replay;
mod script;
mod stall;
mod stats;

pub use core_model::{CoreModel, CoreWorkload};
pub use dma::{DmaConfig, DmaModel};
pub use fuzz::{shrink, FuzzSpec};
pub use random::{RandomConfig, RandomManager};
pub use replay::{ParseTraceError, Trace, TraceManager, TraceRecord};
pub use script::{Completion, CompletionKind, Op, ScriptedManager};
pub use stall::{StallPlan, StallingManager};
pub use stats::{LatencyHistogram, LatencyStats};

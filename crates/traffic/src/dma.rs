//! The bandwidth-hungry DSA DMA engine model.

use std::collections::VecDeque;

use axi4::{Addr, ArBeat, AwBeat, BurstKind, BurstLen, BurstSize, TxnId, WBeat};
use axi_sim::{AxiBundle, Component, Cycle, TickCtx};

/// Configuration of a [`DmaModel`].
///
/// The paper's worst-case interference pattern: *"double-buffering
/// full-length data bursts of 256 beats between the system's LLC and the
/// DSA's local SPM"*, with several transactions kept in flight.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DmaConfig {
    /// First ping-pong region (the LLC window in the Cheshire testbench).
    pub region_a: (Addr, u64),
    /// Second ping-pong region (the DSA scratchpad).
    pub region_b: (Addr, u64),
    /// Beats per burst (256 = full-length AXI4 bursts).
    pub burst_beats: u16,
    /// Maximum read bursts kept in flight.
    pub outstanding: usize,
    /// Stop after this many transfers; `None` runs forever (pure
    /// interference source).
    pub total_transfers: Option<u64>,
    /// Transaction ID used for every burst.
    pub id: TxnId,
    /// First cycle the engine may issue.
    pub start_cycle: Cycle,
}

impl DmaConfig {
    /// The paper's contention generator: endless 256-beat double-buffering
    /// with eight reads in flight.
    pub fn worst_case(llc: (Addr, u64), spm: (Addr, u64)) -> Self {
        Self {
            region_a: llc,
            region_b: spm,
            burst_beats: 256,
            outstanding: 8,
            total_transfers: None,
            id: TxnId::new(1),
            start_cycle: 0,
        }
    }
}

#[derive(Debug)]
struct Transfer {
    id: TxnId,
    dst: Addr,
    expected_beats: u16,
    data: Vec<u64>,
}

#[derive(Debug)]
enum WriteState {
    IssueAw { aw: AwBeat, data: Vec<u64> },
    Stream { data: Vec<u64>, next: usize },
}

/// A double-buffering DMA engine: reads a full burst from one region,
/// then writes it to the other, alternating directions, keeping up to
/// [`DmaConfig::outstanding`] read bursts in flight.
///
/// This is the untrusted bandwidth hog of the evaluation — the manager the
/// REALM unit fragments and budgets.
#[derive(Debug)]
pub struct DmaModel {
    cfg: DmaConfig,
    port: AxiBundle,
    issued_reads: u64,
    /// IDs not currently bound to an in-flight read. Distinct IDs per slot
    /// keep per-ID ordering trivially satisfied even though consecutive
    /// transfers target different subordinates.
    free_ids: Vec<TxnId>,
    reads_in_flight: Vec<Transfer>,
    write_queue: VecDeque<Transfer>,
    write_state: Option<WriteState>,
    /// Whether the last tick's AW/W/AR push attempt hit a full wire. A full
    /// wire only drains via a consumer pop, and pops wake sleeping
    /// components, so a blocked engine can sleep instead of retrying every
    /// cycle — the refinement that lets a budget-throttled DMA quiesce.
    aw_blocked: bool,
    w_blocked: bool,
    ar_blocked: bool,
    b_outstanding: u64,
    transfers_completed: u64,
    bytes_read: u64,
    bytes_written: u64,
    name: String,
}

impl DmaModel {
    /// Creates a DMA engine on `port`.
    ///
    /// # Panics
    ///
    /// Panics if either region is smaller than one burst or the burst size
    /// would cross a 4 KiB boundary from an aligned start (i.e. burst
    /// payload > 4 KiB).
    pub fn new(cfg: DmaConfig, port: AxiBundle) -> Self {
        let burst_bytes = u64::from(cfg.burst_beats) * BurstSize::bus64().bytes();
        assert!(burst_bytes <= 4096, "burst payload must fit a 4 KiB page");
        assert!(
            cfg.region_a.1 >= burst_bytes && cfg.region_b.1 >= burst_bytes,
            "regions must hold at least one burst"
        );
        Self {
            cfg,
            port,
            issued_reads: 0,
            free_ids: (0..cfg.outstanding as u32)
                .map(|slot| TxnId::new(cfg.id.raw() + slot))
                .collect(),
            reads_in_flight: Vec::new(),
            write_queue: VecDeque::new(),
            write_state: None,
            aw_blocked: false,
            w_blocked: false,
            ar_blocked: false,
            b_outstanding: 0,
            transfers_completed: 0,
            bytes_read: 0,
            bytes_written: 0,
            name: "dma".to_owned(),
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &DmaConfig {
        &self.cfg
    }

    /// The manager-side AXI port.
    pub fn port(&self) -> AxiBundle {
        self.port
    }

    /// Fully completed transfers (read + write + response).
    pub fn transfers_completed(&self) -> u64 {
        self.transfers_completed
    }

    /// Bytes read from the source regions.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read
    }

    /// Bytes written to the destination regions.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// `true` once the configured number of transfers has fully drained.
    pub fn is_done(&self) -> bool {
        self.cfg
            .total_transfers
            .is_some_and(|total| self.transfers_completed >= total)
    }

    fn burst_bytes(&self) -> u64 {
        u64::from(self.cfg.burst_beats) * BurstSize::bus64().bytes()
    }

    /// Source/destination of the n-th transfer: even transfers move A→B,
    /// odd ones B→A, each sliding one burst forward inside its region.
    fn route(&self, n: u64) -> (Addr, Addr) {
        let bb = self.burst_bytes();
        let slot = |region: (Addr, u64), k: u64| {
            let slots = (region.1 / bb).max(1);
            region.0 + (k % slots) * bb
        };
        if n.is_multiple_of(2) {
            (
                slot(self.cfg.region_a, n / 2),
                slot(self.cfg.region_b, n / 2),
            )
        } else {
            (
                slot(self.cfg.region_b, n / 2),
                slot(self.cfg.region_a, n / 2),
            )
        }
    }

    fn more_reads_allowed(&self) -> bool {
        match self.cfg.total_transfers {
            Some(total) => self.issued_reads < total,
            None => true,
        }
    }
}

impl Component for DmaModel {
    fn tick(&mut self, ctx: &mut TickCtx<'_>) {
        // Recomputed below at each push attempt; an unattempted channel is
        // unblocked by definition (its gate is tracked by `next_event`).
        self.aw_blocked = false;
        self.w_blocked = false;
        self.ar_blocked = false;

        // Collect read data, demultiplexed by transaction ID.
        if let Some(r) = ctx.pool.pop(self.port.r, ctx.cycle) {
            if let Some(idx) = self.reads_in_flight.iter().position(|t| t.id == r.id) {
                self.reads_in_flight[idx].data.push(r.data);
                self.bytes_read += 8;
                if r.last {
                    let t = self.reads_in_flight.swap_remove(idx);
                    debug_assert_eq!(t.data.len(), t.expected_beats as usize);
                    self.free_ids.push(t.id);
                    self.write_queue.push_back(t);
                }
            }
        }

        // Issue the next read burst while the window allows.
        if ctx.cycle >= self.cfg.start_cycle
            && self.more_reads_allowed()
            && self.reads_in_flight.len() < self.cfg.outstanding
        {
            if ctx.pool.can_push(self.port.ar, ctx.cycle) {
                let (src, dst) = self.route(self.issued_reads);
                let id = self.free_ids.pop().expect("in-flight below outstanding");
                let ar = ArBeat::new(
                    id,
                    src,
                    BurstLen::new(self.cfg.burst_beats).expect("validated in new"),
                    BurstSize::bus64(),
                    BurstKind::Incr,
                );
                debug_assert!(ar.validate().is_ok(), "DMA burst must be legal: {ar:?}");
                ctx.pool.push(self.port.ar, ctx.cycle, ar);
                self.reads_in_flight.push(Transfer {
                    id,
                    dst,
                    expected_beats: self.cfg.burst_beats,
                    data: Vec::with_capacity(self.cfg.burst_beats as usize),
                });
                self.issued_reads += 1;
            } else {
                self.ar_blocked = true;
            }
        }

        // Write engine: one write burst streaming at a time.
        if self.write_state.is_none() {
            if let Some(t) = self.write_queue.pop_front() {
                let aw = AwBeat::new(
                    t.id,
                    t.dst,
                    BurstLen::new(t.expected_beats).expect("validated in new"),
                    BurstSize::bus64(),
                    BurstKind::Incr,
                );
                self.write_state = Some(WriteState::IssueAw { aw, data: t.data });
            }
        }
        self.write_state = match self.write_state.take() {
            Some(WriteState::IssueAw { aw, data }) => {
                if ctx.pool.can_push(self.port.aw, ctx.cycle) {
                    ctx.pool.push(self.port.aw, ctx.cycle, aw);
                    Some(WriteState::Stream { data, next: 0 })
                } else {
                    self.aw_blocked = true;
                    Some(WriteState::IssueAw { aw, data })
                }
            }
            Some(WriteState::Stream { data, next }) => {
                if ctx.pool.can_push(self.port.w, ctx.cycle) {
                    let last = next + 1 == data.len();
                    ctx.pool
                        .push(self.port.w, ctx.cycle, WBeat::full(data[next], last));
                    self.bytes_written += 8;
                    if last {
                        self.b_outstanding += 1;
                        None
                    } else {
                        Some(WriteState::Stream {
                            data,
                            next: next + 1,
                        })
                    }
                } else {
                    self.w_blocked = true;
                    Some(WriteState::Stream { data, next })
                }
            }
            None => None,
        };

        // Drain write responses.
        if self.b_outstanding > 0 && ctx.pool.pop(self.port.b, ctx.cycle).is_some() {
            self.b_outstanding -= 1;
            self.transfers_completed += 1;
        }
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn ports(&self) -> Vec<axi_sim::PortDecl> {
        self.port.manager_ports()
    }

    fn next_event(&self, cycle: Cycle) -> Option<Cycle> {
        // The write engine wants to push — but if its last attempt hit a
        // full wire, only a consumer pop can change that, and pops wake
        // sleepers, so a blocked engine need not spin.
        match &self.write_state {
            Some(WriteState::IssueAw { .. }) if !self.aw_blocked => return Some(cycle),
            Some(WriteState::Stream { .. }) if !self.w_blocked => return Some(cycle),
            Some(_) => {}
            None => {
                if !self.write_queue.is_empty() {
                    // Promoting a queued transfer into the engine is itself
                    // a state change.
                    return Some(cycle);
                }
            }
        }
        // An issue slot is open and more reads are wanted; before the start
        // window the engine sleeps until `start_cycle`, and behind a full
        // AR wire it sleeps until the pop that drains it.
        if self.more_reads_allowed()
            && self.reads_in_flight.len() < self.cfg.outstanding
            && !self.ar_blocked
        {
            return Some(self.cfg.start_cycle.max(cycle));
        }
        // Blocked on wire capacity or R/B beats (or fully drained): purely
        // reactive.
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use axi_mem::{MemoryConfig, MemoryModel};
    use axi_sim::{BundleCapacity, Sim};

    const A: Addr = Addr::new(0x8000_0000);
    const B: Addr = Addr::new(0x1000_0000);

    /// Direct DMA→memory hookup where one memory covers both regions.
    fn run(cfg: DmaConfig, cycles: u64) -> (Sim, axi_sim::ComponentId, axi_sim::ComponentId) {
        let mut sim = Sim::new();
        let port = AxiBundle::new(sim.pool_mut(), BundleCapacity::uniform(4));
        let dma = sim.add(DmaModel::new(cfg, port));
        let mem = sim.add(MemoryModel::new(
            MemoryConfig::spm(Addr::new(0), 1 << 32),
            port,
        ));
        sim.run(cycles);
        (sim, dma, mem)
    }

    fn small_cfg(transfers: u64) -> DmaConfig {
        DmaConfig {
            region_a: (A, 64 * 1024),
            region_b: (B, 64 * 1024),
            burst_beats: 16,
            outstanding: 2,
            total_transfers: Some(transfers),
            id: TxnId::new(1),
            start_cycle: 0,
        }
    }

    #[test]
    fn completes_configured_transfers() {
        let (sim, dma, _) = run(small_cfg(4), 2000);
        let d = sim.component::<DmaModel>(dma).unwrap();
        assert!(d.is_done());
        assert_eq!(d.transfers_completed(), 4);
        assert_eq!(d.bytes_read(), 4 * 16 * 8);
        assert_eq!(d.bytes_written(), 4 * 16 * 8);
    }

    #[test]
    fn copies_data_between_regions() {
        let mut sim = Sim::new();
        let port = AxiBundle::new(sim.pool_mut(), BundleCapacity::uniform(4));
        let cfg = small_cfg(1); // single transfer A→B
        let dma = sim.add(DmaModel::new(cfg, port));
        let mem = sim.add(MemoryModel::new(
            MemoryConfig::spm(Addr::new(0), 1 << 32),
            port,
        ));
        // Preload the source burst with a recognisable pattern.
        {
            let m = sim.component_mut::<MemoryModel>(mem).unwrap();
            for i in 0..16u64 {
                m.storage_mut().write_word(A + i * 8, 0x1000 + i, 0xff);
            }
        }
        assert!(sim.run_until(2000, |s| s.component::<DmaModel>(dma).unwrap().is_done()));
        let m = sim.component::<MemoryModel>(mem).unwrap();
        for i in 0..16u64 {
            assert_eq!(m.storage().read_word(B + i * 8), 0x1000 + i, "word {i}");
        }
        let _ = sim.component::<DmaModel>(dma).unwrap().config();
    }

    #[test]
    fn endless_mode_keeps_issuing() {
        let mut cfg = small_cfg(0);
        cfg.total_transfers = None;
        let (sim, dma, _) = run(cfg, 3000);
        let d = sim.component::<DmaModel>(dma).unwrap();
        assert!(!d.is_done());
        assert!(d.transfers_completed() > 10);
    }

    #[test]
    fn start_cycle_delays_traffic() {
        let mut cfg = small_cfg(1);
        cfg.start_cycle = 500;
        let (sim, dma, _) = run(cfg, 400);
        assert_eq!(sim.component::<DmaModel>(dma).unwrap().bytes_read(), 0);
    }

    #[test]
    fn outstanding_bounds_reads_in_flight() {
        // With outstanding=1 the second read only issues after the first
        // completes; with 2 they overlap and finish sooner.
        let time_for = |outstanding: usize| {
            let mut cfg = small_cfg(6);
            cfg.outstanding = outstanding;
            let mut sim = Sim::new();
            let port = AxiBundle::new(sim.pool_mut(), BundleCapacity::uniform(4));
            let dma = sim.add(DmaModel::new(cfg, port));
            sim.add(MemoryModel::new(
                MemoryConfig::spm(Addr::new(0), 1 << 32),
                port,
            ));
            assert!(sim.run_until(10_000, |s| s.component::<DmaModel>(dma).unwrap().is_done()));
            sim.cycle()
        };
        assert!(time_for(2) < time_for(1));
    }

    #[test]
    #[should_panic(expected = "regions must hold")]
    fn tiny_region_panics() {
        let mut sim = Sim::new();
        let port = AxiBundle::with_defaults(sim.pool_mut());
        let mut bad = small_cfg(1);
        bad.region_a = (A, 16);
        let _ = DmaModel::new(bad, port);
    }
}

//! Trace replay: drive recorded access traces through the system.
//!
//! Real-time engineers often hold measured address traces rather than
//! synthetic workload models. [`TraceManager`] replays a simple text format
//! (one access per line: `cycle,op,addr,beats`) with the recorded issue
//! times as *earliest* issue times, blocking on completions like the other
//! managers.
//!
//! ```text
//! # cycle, R|W, hex address, beats
//! 100,R,0x80000000,4
//! 140,W,0x80001000,2
//! ```

use std::collections::VecDeque;
use std::error::Error;
use std::fmt;
use std::str::FromStr;

use axi4::{Addr, ArBeat, AwBeat, BurstKind, BurstLen, BurstSize, TxnId, WBeat};
use axi_sim::{AxiBundle, Component, Cycle, TickCtx};

use crate::stats::LatencyStats;

/// One recorded access.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TraceRecord {
    /// Earliest cycle the access may issue.
    pub cycle: Cycle,
    /// `true` for a write.
    pub is_write: bool,
    /// Start address.
    pub addr: Addr,
    /// Burst length in beats.
    pub beats: u16,
}

/// A parsed access trace.
///
/// Comment lines (`#`-prefixed) and blank lines are skipped.
///
/// ```
/// use axi_traffic::Trace;
///
/// let trace: Trace = "10,R,0x1000,4\n\n20,W,0x2000,1\n".parse()?;
/// assert_eq!(trace.records().len(), 2);
/// assert!(trace.records()[1].is_write);
/// # Ok::<(), axi_traffic::ParseTraceError>(())
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Trace {
    records: Vec<TraceRecord>,
}

impl Trace {
    /// The records, in file order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Builds a trace from records, validating ordering and burst lengths.
    ///
    /// # Errors
    ///
    /// [`ParseTraceError::OutOfOrder`] if cycles decrease,
    /// [`ParseTraceError::BadBeats`] for a length outside 1..=256.
    pub fn from_records(records: Vec<TraceRecord>) -> Result<Self, ParseTraceError> {
        let mut last = 0;
        for (line, r) in records.iter().enumerate() {
            if r.cycle < last {
                return Err(ParseTraceError::OutOfOrder { line: line + 1 });
            }
            last = r.cycle;
            if r.beats == 0 || r.beats > 256 {
                return Err(ParseTraceError::BadBeats {
                    line: line + 1,
                    beats: r.beats,
                });
            }
        }
        Ok(Self { records })
    }
}

/// Trace parsing error, with the 1-based line it occurred on.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ParseTraceError {
    /// A line did not have the four `cycle,op,addr,beats` fields.
    BadLine {
        /// Offending line number.
        line: usize,
    },
    /// A field failed to parse.
    BadField {
        /// Offending line number.
        line: usize,
        /// Which field.
        field: &'static str,
    },
    /// Cycles must be non-decreasing.
    OutOfOrder {
        /// Offending line number.
        line: usize,
    },
    /// Burst length outside 1..=256.
    BadBeats {
        /// Offending line number.
        line: usize,
        /// The rejected value.
        beats: u16,
    },
}

impl fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseTraceError::BadLine { line } => {
                write!(f, "line {line}: expected `cycle,op,addr,beats`")
            }
            ParseTraceError::BadField { line, field } => {
                write!(f, "line {line}: could not parse {field}")
            }
            ParseTraceError::OutOfOrder { line } => {
                write!(f, "line {line}: cycles must be non-decreasing")
            }
            ParseTraceError::BadBeats { line, beats } => {
                write!(f, "line {line}: burst length {beats} outside 1..=256")
            }
        }
    }
}

impl Error for ParseTraceError {}

impl FromStr for Trace {
    type Err = ParseTraceError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut records = Vec::new();
        for (idx, raw) in s.lines().enumerate() {
            let line = idx + 1;
            let trimmed = raw.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            let fields: Vec<&str> = trimmed.split(',').map(str::trim).collect();
            let [cycle, op, addr, beats] = fields.as_slice() else {
                return Err(ParseTraceError::BadLine { line });
            };
            let cycle: Cycle = cycle.parse().map_err(|_| ParseTraceError::BadField {
                line,
                field: "cycle",
            })?;
            let is_write = match *op {
                "R" | "r" => false,
                "W" | "w" => true,
                _ => return Err(ParseTraceError::BadField { line, field: "op" }),
            };
            let addr_raw = addr
                .strip_prefix("0x")
                .map_or_else(
                    || addr.parse().ok(),
                    |hex| u64::from_str_radix(hex, 16).ok(),
                )
                .ok_or(ParseTraceError::BadField {
                    line,
                    field: "addr",
                })?;
            let beats: u16 = beats.parse().map_err(|_| ParseTraceError::BadField {
                line,
                field: "beats",
            })?;
            records.push(TraceRecord {
                cycle,
                is_write,
                addr: Addr::new(addr_raw),
                beats,
            });
        }
        Self::from_records(records)
    }
}

#[derive(Debug)]
enum State {
    Waiting,
    IssueRead(ArBeat),
    AwaitRead,
    IssueWrite(AwBeat),
    StreamWrite { beats_left: u16 },
    AwaitB,
    Done,
}

/// Replays a [`Trace`] as a blocking manager: each record issues at its
/// recorded cycle at the earliest (later if the previous access is still
/// outstanding), and latency statistics accumulate per access.
#[derive(Debug)]
pub struct TraceManager {
    port: AxiBundle,
    queue: VecDeque<TraceRecord>,
    id: TxnId,
    state: State,
    issued_at: Cycle,
    latency: LatencyStats,
    completed: u64,
    finished_at: Option<Cycle>,
    name: String,
}

impl TraceManager {
    /// Creates a replay manager for `trace` on `port` using `id` for all
    /// transactions.
    pub fn new(trace: Trace, id: TxnId, port: AxiBundle) -> Self {
        Self {
            port,
            queue: trace.records.into(),
            id,
            state: State::Waiting,
            issued_at: 0,
            latency: LatencyStats::new(),
            completed: 0,
            finished_at: None,
            name: "replay".to_owned(),
        }
    }

    /// Accesses completed so far.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Per-access latency statistics.
    pub fn latency(&self) -> LatencyStats {
        self.latency
    }

    /// `true` once the whole trace has replayed.
    pub fn is_done(&self) -> bool {
        self.finished_at.is_some()
    }
}

impl Component for TraceManager {
    fn tick(&mut self, ctx: &mut TickCtx<'_>) {
        self.state = match std::mem::replace(&mut self.state, State::Done) {
            State::Waiting => match self.queue.front() {
                None => {
                    self.finished_at.get_or_insert(ctx.cycle);
                    State::Done
                }
                Some(r) if ctx.cycle >= r.cycle => {
                    let r = self.queue.pop_front().expect("front exists");
                    let len = BurstLen::new(r.beats).expect("validated at parse");
                    if r.is_write {
                        State::IssueWrite(AwBeat::new(
                            self.id,
                            r.addr,
                            len,
                            BurstSize::bus64(),
                            BurstKind::Incr,
                        ))
                    } else {
                        State::IssueRead(ArBeat::new(
                            self.id,
                            r.addr,
                            len,
                            BurstSize::bus64(),
                            BurstKind::Incr,
                        ))
                    }
                }
                Some(_) => State::Waiting,
            },
            State::IssueRead(ar) => {
                if ctx.pool.can_push(self.port.ar, ctx.cycle) {
                    ctx.pool.push(self.port.ar, ctx.cycle, ar);
                    self.issued_at = ctx.cycle;
                    State::AwaitRead
                } else {
                    State::IssueRead(ar)
                }
            }
            State::AwaitRead => match ctx.pool.pop(self.port.r, ctx.cycle) {
                Some(r) if r.last => {
                    self.latency.record(ctx.cycle - self.issued_at);
                    self.completed += 1;
                    State::Waiting
                }
                _ => State::AwaitRead,
            },
            State::IssueWrite(aw) => {
                if ctx.pool.can_push(self.port.aw, ctx.cycle) {
                    let beats = aw.len.beats();
                    ctx.pool.push(self.port.aw, ctx.cycle, aw);
                    self.issued_at = ctx.cycle;
                    State::StreamWrite { beats_left: beats }
                } else {
                    State::IssueWrite(aw)
                }
            }
            State::StreamWrite { beats_left } => {
                if ctx.pool.can_push(self.port.w, ctx.cycle) {
                    let last = beats_left == 1;
                    ctx.pool
                        .push(self.port.w, ctx.cycle, WBeat::full(self.completed, last));
                    if last {
                        State::AwaitB
                    } else {
                        State::StreamWrite {
                            beats_left: beats_left - 1,
                        }
                    }
                } else {
                    State::StreamWrite { beats_left }
                }
            }
            State::AwaitB => {
                if ctx.pool.pop(self.port.b, ctx.cycle).is_some() {
                    self.latency.record(ctx.cycle - self.issued_at);
                    self.completed += 1;
                    State::Waiting
                } else {
                    State::AwaitB
                }
            }
            State::Done => State::Done,
        };
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn ports(&self) -> Vec<axi_sim::PortDecl> {
        self.port.manager_ports()
    }

    fn next_event(&self, cycle: Cycle) -> Option<Cycle> {
        match &self.state {
            // An empty queue still owes the transition into `Done` (which
            // stamps `finished_at`); a pending record wakes at its earliest
            // recorded issue time.
            State::Waiting => match self.queue.front() {
                None => Some(cycle),
                Some(r) => Some(r.cycle.max(cycle)),
            },
            State::IssueRead(_) | State::IssueWrite(_) | State::StreamWrite { .. } => Some(cycle),
            State::AwaitRead | State::AwaitB | State::Done => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use axi_mem::{MemoryConfig, MemoryModel};
    use axi_sim::Sim;

    #[test]
    fn parse_accepts_comments_and_blank_lines() {
        let trace: Trace = "\
# header
10,R,0x1000,4

20 , W , 0x2000 , 1
30,r,4096,2
"
        .parse()
        .unwrap();
        assert_eq!(trace.records().len(), 3);
        assert_eq!(trace.records()[0].beats, 4);
        assert!(trace.records()[1].is_write);
        assert_eq!(trace.records()[2].addr, Addr::new(4096));
    }

    #[test]
    fn parse_errors_name_the_line() {
        let e = "10,R,0x1000".parse::<Trace>().unwrap_err();
        assert!(matches!(e, ParseTraceError::BadLine { line: 1 }));
        let e = "10,X,0x1000,4".parse::<Trace>().unwrap_err();
        assert!(matches!(
            e,
            ParseTraceError::BadField {
                line: 1,
                field: "op"
            }
        ));
        let e = "10,R,zzz,4".parse::<Trace>().unwrap_err();
        assert!(matches!(e, ParseTraceError::BadField { field: "addr", .. }));
        let e = "20,R,0x0,4\n10,R,0x0,4".parse::<Trace>().unwrap_err();
        assert!(matches!(e, ParseTraceError::OutOfOrder { line: 2 }));
        let e = "10,R,0x0,300".parse::<Trace>().unwrap_err();
        assert!(matches!(e, ParseTraceError::BadBeats { beats: 300, .. }));
        assert!(e.to_string().contains("300"));
    }

    #[test]
    fn replay_honours_recorded_times() {
        let trace: Trace = "0,W,0x100,2\n500,R,0x100,2".parse().unwrap();
        let mut sim = Sim::new();
        let port = AxiBundle::with_defaults(sim.pool_mut());
        let mgr = sim.add(TraceManager::new(trace, TxnId::new(0), port));
        sim.add(MemoryModel::new(
            MemoryConfig::spm(Addr::new(0), 0x1000),
            port,
        ));
        assert!(sim.run_until(2_000, |s| s
            .component::<TraceManager>(mgr)
            .unwrap()
            .is_done()));
        let m = sim.component::<TraceManager>(mgr).unwrap();
        assert_eq!(m.completed(), 2);
        assert!(m.latency().max().unwrap() < 50);
        // The read issued no earlier than cycle 500.
        assert!(sim.cycle() >= 500);
    }

    #[test]
    fn replay_blocks_until_prior_completion() {
        // Two back-to-back records at cycle 0: the second waits for the
        // first's completion (blocking manager).
        let trace: Trace = "0,R,0x0,16\n0,R,0x100,1".parse().unwrap();
        let mut sim = Sim::new();
        let port = AxiBundle::with_defaults(sim.pool_mut());
        let mgr = sim.add(TraceManager::new(trace, TxnId::new(0), port));
        sim.add(MemoryModel::new(
            MemoryConfig::spm(Addr::new(0), 0x1000),
            port,
        ));
        assert!(sim.run_until(2_000, |s| s
            .component::<TraceManager>(mgr)
            .unwrap()
            .is_done()));
        assert_eq!(sim.component::<TraceManager>(mgr).unwrap().completed(), 2);
    }

    #[test]
    fn empty_trace_finishes_immediately() {
        let trace: Trace = "# nothing\n".parse().unwrap();
        let mut sim = Sim::new();
        let port = AxiBundle::with_defaults(sim.pool_mut());
        let mgr = sim.add(TraceManager::new(trace, TxnId::new(0), port));
        sim.run(3);
        assert!(sim.component::<TraceManager>(mgr).unwrap().is_done());
    }
}

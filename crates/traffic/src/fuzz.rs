//! Seeded fuzz-script generation and greedy shrinking.
//!
//! [`FuzzSpec::generate`] turns a `u64` seed into a script of legal,
//! randomized [`Op`]s for a [`ScriptedManager`](crate::ScriptedManager) —
//! mixed reads, writes, and idle gaps over a configurable address window.
//! Generation is a pure function of `(spec, seed)`, so a failure observed
//! under any oracle (conformance monitors, data checks, watchdogs) is
//! reproduced bit-identically from its printed seed.
//!
//! [`shrink`] then reduces a failing script to a minimal reproducer in two
//! phases: greedy delta debugging first (repeatedly delete chunks of
//! shrinking size while the caller's oracle still reports failure), then
//! parameter minimization over the surviving ops (burst lengths and wait
//! durations step toward 1 while the failure persists). The oracle decides
//! what "failing" means; this module never runs a simulation itself, which
//! keeps the traffic crate independent of any checker.

use axi4::{Addr, ArBeat, AwBeat, BurstKind, BurstLen, BurstSize, TxnId, WriteTxn};
use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::script::Op;

/// Parameters of a generated fuzz script: where the traffic may go and
/// what shape it takes.
#[derive(Clone, Copy, Debug)]
pub struct FuzzSpec {
    /// Base address of the legal window; must be 8-byte aligned.
    pub base: Addr,
    /// Window size in bytes.
    pub size: u64,
    /// Number of operations to generate.
    pub ops: usize,
    /// Maximum burst length in beats (1..=256).
    pub max_beats: u16,
    /// Maximum idle gap inserted by a `Wait` op, in cycles; 0 disables
    /// waits entirely.
    pub max_wait: u64,
    /// Probability that a transfer op is a read (the rest are writes).
    pub read_ratio: f64,
}

impl FuzzSpec {
    /// A spec with moderate defaults: 32 ops, bursts up to 16 beats,
    /// short idle gaps, balanced reads and writes.
    pub fn new(base: Addr, size: u64) -> Self {
        assert!(
            base.raw().is_multiple_of(8),
            "window base must be 8-byte aligned"
        );
        assert!(size >= 4096, "window must hold at least one 4 KiB page");
        Self {
            base,
            size,
            ops: 32,
            max_beats: 16,
            max_wait: 8,
            read_ratio: 0.5,
        }
    }

    /// Returns a copy generating `ops` operations.
    pub fn with_ops(mut self, ops: usize) -> Self {
        self.ops = ops;
        self
    }

    /// Returns a copy with bursts up to `max_beats` beats.
    pub fn with_max_beats(mut self, max_beats: u16) -> Self {
        assert!((1..=256).contains(&max_beats));
        self.max_beats = max_beats;
        self
    }

    /// Draws a legal (window-contained, non-4K-crossing) INCR burst start
    /// address for a burst of `beats` 8-byte beats.
    fn draw_addr(&self, rng: &mut StdRng, beats: u16) -> Addr {
        let bytes = u64::from(beats) * 8;
        // Rejection-sample 8-byte-aligned starts; windows are >= 4 KiB so
        // legal positions are dense and this terminates fast. The loop is
        // deterministic per seed like every other draw.
        loop {
            let slots = (self.size - bytes) / 8 + 1;
            let addr = self.base.raw() + rng.gen_range(0..slots) * 8;
            if (addr % 4096) + bytes <= 4096 {
                return Addr::new(addr);
            }
        }
    }

    /// Generates the script for `seed`. Pure: equal `(spec, seed)` pairs
    /// produce identical scripts, beat for beat.
    pub fn generate(&self, seed: u64) -> Vec<Op> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut script = Vec::with_capacity(self.ops);
        for i in 0..self.ops {
            if self.max_wait > 0 && rng.gen_bool(0.125) {
                script.push(Op::Wait(rng.gen_range(1..=self.max_wait)));
                continue;
            }
            let beats = rng.gen_range(1..=self.max_beats);
            let addr = self.draw_addr(&mut rng, beats);
            let id = TxnId::new(i as u32 & 0xf);
            let len = BurstLen::new(beats).expect("1..=256 by construction");
            if rng.gen_bool(self.read_ratio) {
                script.push(Op::Read(ArBeat::new(
                    id,
                    addr,
                    len,
                    BurstSize::bus64(),
                    BurstKind::Incr,
                )));
            } else {
                let aw = AwBeat::new(id, addr, len, BurstSize::bus64(), BurstKind::Incr);
                let words = (0..beats).map(|_| rng.gen::<u64>());
                script.push(Op::Write(
                    WriteTxn::from_words(aw, words).expect("legal burst by construction"),
                ));
            }
        }
        script
    }
}

/// Greedily shrinks a failing script to a locally minimal reproducer.
///
/// `still_fails` must return `true` when the given script still triggers
/// the original failure. Two phases:
///
/// 1. **Structural** delta debugging: chunks of decreasing size (half,
///    quarter, …, one op) are deleted as long as the failure persists,
///    until no single op can be removed — the surviving op *set* is
///    1-minimal (assuming a deterministic oracle).
/// 2. **Parameter** minimization: each surviving op's magnitudes (burst
///    length in beats, wait duration in cycles) step toward 1 — jump to
///    1, halve, decrement — keeping every step the oracle still accepts
///    as failing. Addresses and IDs are preserved, and a shortened burst
///    stays legal (same start, strictly contained footprint).
///
/// The input must itself fail; callers should check
/// `still_fails(script)` first and only shrink genuine failures.
pub fn shrink<F: FnMut(&[Op]) -> bool>(script: &[Op], mut still_fails: F) -> Vec<Op> {
    let mut current: Vec<Op> = script.to_vec();
    if current.is_empty() {
        return current;
    }
    let mut chunk = current.len().div_ceil(2);
    loop {
        let mut start = 0;
        let mut removed_any = false;
        while start < current.len() {
            let end = (start + chunk).min(current.len());
            let candidate: Vec<Op> = current[..start]
                .iter()
                .chain(&current[end..])
                .cloned()
                .collect();
            if still_fails(&candidate) {
                current = candidate;
                removed_any = true;
                // Do not advance: new content now sits at `start`.
            } else {
                start = end;
            }
        }
        if chunk == 1 {
            if !removed_any {
                break;
            }
        } else {
            chunk = chunk.div_ceil(2).min(current.len().max(1));
        }
        if current.is_empty() {
            break;
        }
    }
    minimize_params(&mut current, &mut still_fails);
    current
}

/// Candidate smaller values for a magnitude `n > 1`, most aggressive
/// first: 1, n/2, n-1 (deduplicated, all in `1..n`).
fn smaller(n: u64) -> Vec<u64> {
    let mut vals = Vec::new();
    for v in [1, n / 2, n.saturating_sub(1)] {
        if (1..n).contains(&v) && !vals.contains(&v) {
            vals.push(v);
        }
    }
    vals
}

/// Smaller-parameter variants of one op, most aggressive first.
fn param_candidates(op: &Op) -> Vec<Op> {
    match op {
        Op::Wait(n) => smaller(*n).into_iter().map(Op::Wait).collect(),
        Op::Read(ar) => smaller(u64::from(ar.len.beats()))
            .into_iter()
            .map(|beats| {
                let mut shorter = *ar;
                shorter.len = BurstLen::new(beats as u16).expect("1..n stays legal");
                Op::Read(shorter)
            })
            .collect(),
        Op::Write(txn) => smaller(u64::from(txn.aw().len.beats()))
            .into_iter()
            .map(|beats| {
                let (mut aw, mut data) = txn.clone().into_parts();
                aw.len = BurstLen::new(beats as u16).expect("1..n stays legal");
                data.truncate(beats as usize);
                data.last_mut().expect("beats >= 1").last = true;
                Op::Write(WriteTxn::new(aw, data).expect("shortened burst stays legal"))
            })
            .collect(),
    }
}

/// Phase 2 of [`shrink`]: greedily lowers each op's magnitudes while the
/// oracle still fails. Every accepted step strictly decreases one
/// magnitude, so the pass terminates; the outer loop re-sweeps until a
/// full pass accepts nothing (oracles may couple ops).
fn minimize_params<F: FnMut(&[Op]) -> bool>(current: &mut [Op], still_fails: &mut F) {
    let mut progress = true;
    while progress {
        progress = false;
        for i in 0..current.len() {
            loop {
                let accepted = param_candidates(&current[i]).into_iter().find(|cand| {
                    let mut candidate = current.to_vec();
                    candidate[i] = cand.clone();
                    still_fails(&candidate)
                });
                match accepted {
                    Some(cand) => {
                        current[i] = cand;
                        progress = true;
                    }
                    None => break,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> FuzzSpec {
        FuzzSpec::new(Addr::new(0x8000_0000), 64 * 1024)
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = spec().generate(42);
        let b = spec().generate(42);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        let c = spec().generate(43);
        assert_ne!(format!("{a:?}"), format!("{c:?}"), "seeds must matter");
        assert_eq!(a.len(), spec().ops);
    }

    #[test]
    fn generated_bursts_are_legal() {
        for seed in 0..20 {
            for op in spec().with_ops(64).generate(seed) {
                match op {
                    Op::Read(ar) => {
                        ar.validate().expect("generated reads must be legal");
                        assert!(ar.addr.raw() >= 0x8000_0000);
                        assert!(ar.addr.raw() + ar.total_bytes() <= 0x8000_0000 + 64 * 1024);
                    }
                    Op::Write(txn) => {
                        let (aw, beats) = txn.into_parts();
                        aw.validate().expect("generated writes must be legal");
                        assert_eq!(beats.len(), usize::from(aw.len.beats()));
                        assert!(beats.last().unwrap().last);
                    }
                    Op::Wait(cycles) => assert!((1..=8).contains(&cycles)),
                }
            }
        }
    }

    #[test]
    fn shrink_finds_single_culprit() {
        // Failure = script contains a Wait of exactly 7 cycles.
        let mut script = spec().with_ops(40).generate(7);
        script[23] = Op::Wait(7);
        let is_bad = |s: &[Op]| s.iter().any(|op| matches!(op, Op::Wait(7)));
        assert!(is_bad(&script));
        let minimal = shrink(&script, |s| is_bad(s));
        assert_eq!(minimal.len(), 1, "1-minimal: only the culprit remains");
        assert!(matches!(minimal[0], Op::Wait(7)));
    }

    #[test]
    fn shrink_keeps_interacting_pair() {
        // Failure requires BOTH sentinel ops — shrink must keep exactly the
        // pair even though they are far apart.
        let mut script = spec().with_ops(50).generate(9);
        script[3] = Op::Wait(101);
        script[47] = Op::Wait(102);
        let is_bad = |s: &[Op]| {
            s.iter().any(|op| matches!(op, Op::Wait(101)))
                && s.iter().any(|op| matches!(op, Op::Wait(102)))
        };
        let minimal = shrink(&script, |s| is_bad(s));
        assert_eq!(minimal.len(), 2);
    }

    #[test]
    fn shrink_minimizes_parameters_after_structure() {
        // Failure = the script reads from the window's upper half. The
        // structural phase alone kept the culprit read with its original
        // burst length; the parameter phase must shrink it to one beat.
        let half = 0x8000_0000 + 32 * 1024;
        let script = spec().with_ops(40).generate(3);
        let is_bad = |s: &[Op]| {
            s.iter()
                .any(|op| matches!(op, Op::Read(ar) if ar.addr.raw() >= half))
        };
        // Precondition: this seed's culprit read is a multi-beat burst, so
        // the parameter phase has real work to do.
        let culprit_beats: Vec<u16> = script
            .iter()
            .filter_map(|op| match op {
                Op::Read(ar) if ar.addr.raw() >= half => Some(ar.len.beats()),
                _ => None,
            })
            .collect();
        assert!(
            culprit_beats.iter().any(|&b| b > 1),
            "seed must generate a multi-beat upper-half read (got {culprit_beats:?})"
        );
        let minimal = shrink(&script, |s| is_bad(s));
        assert_eq!(minimal.len(), 1, "structural phase keeps one culprit");
        let Op::Read(ar) = &minimal[0] else {
            panic!("culprit must be a read, got {:?}", minimal[0]);
        };
        assert!(ar.addr.raw() >= half);
        assert_eq!(
            ar.len.beats(),
            1,
            "parameter phase must shrink the surviving burst to one beat"
        );
    }

    #[test]
    fn shrink_minimizes_wait_durations() {
        // Failure = total wait time >= 5 cycles. Structure keeps some Wait
        // ops; parameters must then descend to the smallest failing values.
        let script = vec![
            Op::Wait(40),
            Op::Read(ArBeat::new(
                TxnId::new(0),
                Addr::new(0x8000_0000),
                BurstLen::new(4).unwrap(),
                BurstSize::bus64(),
                BurstKind::Incr,
            )),
            Op::Wait(30),
        ];
        let total_wait = |s: &[Op]| {
            s.iter()
                .map(|op| if let Op::Wait(n) = op { *n } else { 0 })
                .sum::<u64>()
        };
        let minimal = shrink(&script, |s| total_wait(s) >= 5);
        assert_eq!(minimal.len(), 1, "one wait suffices");
        assert_eq!(total_wait(&minimal), 5, "wait shrinks to the threshold");
    }

    #[test]
    fn shrink_is_deterministic() {
        let script = spec().with_ops(30).generate(5);
        let oracle = |s: &[Op]| s.len() >= 3; // fails while 3+ ops remain
        let a = shrink(&script, oracle);
        let b = shrink(&script, oracle);
        assert_eq!(a.len(), 3);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }
}

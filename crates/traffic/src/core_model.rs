//! The latency-sensitive core model (CVA6 running *Susan*).

use axi4::{Addr, ArBeat, AwBeat, BurstKind, BurstLen, BurstSize, TxnId, WBeat};
use axi_sim::{AxiBundle, Component, Cycle, TickCtx};

use crate::stats::{LatencyHistogram, LatencyStats};

/// Workload parameters of a [`CoreModel`].
///
/// The model is a blocking, in-order processor: it computes for
/// [`CoreWorkload::compute_cycles`], issues one memory access, waits for it
/// to complete, and repeats — the structure that makes execution time a
/// direct function of memory latency, as for *Susan* on CVA6.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CoreWorkload {
    /// Total number of memory accesses to perform.
    pub accesses: u64,
    /// Compute cycles between consecutive accesses.
    pub compute_cycles: u64,
    /// First address of the data buffer.
    pub base: Addr,
    /// Buffer size in bytes; the scan wraps inside it.
    pub footprint: u64,
    /// Bytes between consecutive accesses (sequential image scan).
    pub stride: u64,
    /// Every n-th access is a write (0 = reads only).
    pub write_every: u64,
    /// Beats per access (1 = word accesses through a hot LLC).
    pub beats_per_access: u16,
    /// Transaction ID used for every access.
    pub id: TxnId,
}

impl CoreWorkload {
    /// A Susan-like image-processing loop over a 64 KiB buffer: highly
    /// memory-intensive (two compute cycles per access), word-granular,
    /// one write per four accesses.
    pub fn susan(base: Addr, accesses: u64) -> Self {
        Self {
            accesses,
            compute_cycles: 2,
            base,
            footprint: 64 * 1024,
            stride: 8,
            write_every: 4,
            beats_per_access: 1,
            id: TxnId::new(0),
        }
    }
}

#[derive(Debug)]
enum State {
    Compute { until: Cycle },
    IssueRead { ar: ArBeat },
    AwaitRead { issued: Cycle },
    IssueWrite { aw: AwBeat },
    StreamWrite { issued: Cycle, beats_left: u16 },
    AwaitB { issued: Cycle },
    Done,
}

/// A blocking in-order core: the latency-sensitive manager of the paper's
/// evaluation.
///
/// Execution time and per-access latency are the two measurements every
/// figure is built from: *performance* is the ratio of single-source to
/// contended execution time, *worst-case memory access latency* is
/// [`LatencyStats::max`] over the run.
#[derive(Debug)]
pub struct CoreModel {
    workload: CoreWorkload,
    port: AxiBundle,
    state: State,
    issued_accesses: u64,
    completed_accesses: u64,
    latency: LatencyStats,
    histogram: LatencyHistogram,
    finished_at: Option<Cycle>,
    name: String,
}

impl CoreModel {
    /// Creates a core executing `workload` on `port`.
    pub fn new(workload: CoreWorkload, port: AxiBundle) -> Self {
        Self {
            workload,
            port,
            state: State::Compute { until: 0 },
            issued_accesses: 0,
            completed_accesses: 0,
            latency: LatencyStats::new(),
            histogram: LatencyHistogram::new(),
            finished_at: None,
            name: "core".to_owned(),
        }
    }

    /// The workload being executed.
    pub fn workload(&self) -> &CoreWorkload {
        &self.workload
    }

    /// The manager-side AXI port.
    pub fn port(&self) -> AxiBundle {
        self.port
    }

    /// Per-access latency aggregate.
    pub fn latency(&self) -> LatencyStats {
        self.latency
    }

    /// Per-access latency histogram (power-of-two buckets).
    pub fn latency_histogram(&self) -> LatencyHistogram {
        self.histogram
    }

    /// Accesses completed so far.
    pub fn completed_accesses(&self) -> u64 {
        self.completed_accesses
    }

    /// Cycle the workload finished, `None` while running.
    pub fn finished_at(&self) -> Option<Cycle> {
        self.finished_at
    }

    /// Returns `true` once all accesses completed.
    pub fn is_done(&self) -> bool {
        self.finished_at.is_some()
    }

    fn next_addr(&self) -> Addr {
        let offset = (self.issued_accesses * self.workload.stride) % self.workload.footprint;
        self.workload.base + offset
    }

    fn is_write(&self) -> bool {
        self.workload.write_every != 0
            && self.issued_accesses % self.workload.write_every == self.workload.write_every - 1
    }

    fn begin_next(&mut self, cycle: Cycle) -> State {
        if self.issued_accesses >= self.workload.accesses {
            self.finished_at.get_or_insert(cycle);
            return State::Done;
        }
        let addr = self.next_addr();
        let len = BurstLen::new(self.workload.beats_per_access).expect("validated in new");
        if self.is_write() {
            State::IssueWrite {
                aw: AwBeat::new(
                    self.workload.id,
                    addr,
                    len,
                    BurstSize::bus64(),
                    BurstKind::Incr,
                ),
            }
        } else {
            State::IssueRead {
                ar: ArBeat::new(
                    self.workload.id,
                    addr,
                    len,
                    BurstSize::bus64(),
                    BurstKind::Incr,
                ),
            }
        }
    }

    fn complete(&mut self, issued: Cycle, cycle: Cycle) -> State {
        self.latency.record(cycle - issued);
        self.histogram.record(cycle - issued);
        self.completed_accesses += 1;
        State::Compute {
            until: cycle + self.workload.compute_cycles,
        }
    }
}

impl Component for CoreModel {
    fn tick(&mut self, ctx: &mut TickCtx<'_>) {
        self.state = match std::mem::replace(&mut self.state, State::Done) {
            State::Compute { until } => {
                if ctx.cycle >= until {
                    self.begin_next(ctx.cycle)
                } else {
                    State::Compute { until }
                }
            }
            State::IssueRead { ar } => {
                if ctx.pool.can_push(self.port.ar, ctx.cycle) {
                    ctx.pool.push(self.port.ar, ctx.cycle, ar);
                    self.issued_accesses += 1;
                    State::AwaitRead { issued: ctx.cycle }
                } else {
                    State::IssueRead { ar }
                }
            }
            State::AwaitRead { issued } => {
                if let Some(r) = ctx.pool.pop(self.port.r, ctx.cycle) {
                    if r.last {
                        self.complete(issued, ctx.cycle)
                    } else {
                        State::AwaitRead { issued }
                    }
                } else {
                    State::AwaitRead { issued }
                }
            }
            State::IssueWrite { aw } => {
                if ctx.pool.can_push(self.port.aw, ctx.cycle) {
                    let beats = aw.len.beats();
                    ctx.pool.push(self.port.aw, ctx.cycle, aw);
                    self.issued_accesses += 1;
                    State::StreamWrite {
                        issued: ctx.cycle,
                        beats_left: beats,
                    }
                } else {
                    State::IssueWrite { aw }
                }
            }
            State::StreamWrite { issued, beats_left } => {
                if ctx.pool.can_push(self.port.w, ctx.cycle) {
                    let last = beats_left == 1;
                    // The data value encodes the access index, making write
                    // contents checkable in functional tests.
                    ctx.pool.push(
                        self.port.w,
                        ctx.cycle,
                        WBeat::full(self.issued_accesses, last),
                    );
                    if last {
                        State::AwaitB { issued }
                    } else {
                        State::StreamWrite {
                            issued,
                            beats_left: beats_left - 1,
                        }
                    }
                } else {
                    State::StreamWrite { issued, beats_left }
                }
            }
            State::AwaitB { issued } => {
                if ctx.pool.pop(self.port.b, ctx.cycle).is_some() {
                    self.complete(issued, ctx.cycle)
                } else {
                    State::AwaitB { issued }
                }
            }
            State::Done => {
                self.finished_at.get_or_insert(ctx.cycle);
                State::Done
            }
        };
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn ports(&self) -> Vec<axi_sim::PortDecl> {
        self.port.manager_ports()
    }

    fn next_event(&self, cycle: Cycle) -> Option<Cycle> {
        match &self.state {
            // Nothing happens until the compute phase ends.
            State::Compute { until } => Some((*until).max(cycle)),
            // Wants to push a beat right now.
            State::IssueRead { .. } | State::IssueWrite { .. } | State::StreamWrite { .. } => {
                Some(cycle)
            }
            // Blocked on a response beat; with every wire empty none can
            // arrive until another component acts.
            State::AwaitRead { .. } | State::AwaitB { .. } => None,
            // `finished_at` was set on entry to Done, so ticks are no-ops.
            State::Done => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use axi_mem::{MemoryConfig, MemoryModel};
    use axi_sim::Sim;

    fn run_core(workload: CoreWorkload) -> (Sim, axi_sim::ComponentId) {
        let mut sim = Sim::new();
        let port = AxiBundle::with_defaults(sim.pool_mut());
        let core = sim.add(CoreModel::new(workload, port));
        sim.add(MemoryModel::new(
            MemoryConfig::spm(Addr::new(0x8000_0000), 1 << 20),
            port,
        ));
        assert!(sim.run_until(1_000_000, |s| {
            s.component::<CoreModel>(core).unwrap().is_done()
        }));
        (sim, core)
    }

    #[test]
    fn susan_completes_all_accesses() {
        let (sim, core) = run_core(CoreWorkload::susan(Addr::new(0x8000_0000), 100));
        let c = sim.component::<CoreModel>(core).unwrap();
        assert_eq!(c.completed_accesses(), 100);
        assert_eq!(c.latency().count(), 100);
        assert!(c.finished_at().is_some());
    }

    #[test]
    fn reads_and_writes_mixed() {
        let mut w = CoreWorkload::susan(Addr::new(0x8000_0000), 8);
        w.write_every = 2; // every 2nd access writes
        let (sim, core) = run_core(w);
        let c = sim.component::<CoreModel>(core).unwrap();
        assert_eq!(c.completed_accesses(), 8);
    }

    #[test]
    fn reads_only_when_write_every_zero() {
        let mut w = CoreWorkload::susan(Addr::new(0x8000_0000), 10);
        w.write_every = 0;
        let (sim, core) = run_core(w);
        assert_eq!(
            sim.component::<CoreModel>(core)
                .unwrap()
                .completed_accesses(),
            10
        );
    }

    #[test]
    fn single_source_latency_is_small_and_stable() {
        let (sim, core) = run_core(CoreWorkload::susan(Addr::new(0x8000_0000), 200));
        let lat = sim.component::<CoreModel>(core).unwrap().latency();
        // Direct connection: every access completes within the paper's
        // eight-cycle single-source envelope.
        assert!(lat.max().unwrap() <= 8, "max latency {:?}", lat.max());
        assert_eq!(lat.min(), lat.max(), "no contention, constant latency");
    }

    #[test]
    fn addresses_wrap_within_footprint() {
        let mut w = CoreWorkload::susan(Addr::new(0x8000_0000), 4);
        w.footprint = 16;
        w.stride = 8;
        w.write_every = 0;
        let (sim, core) = run_core(w);
        // 4 accesses over a 16-byte footprint touch only two words.
        let c = sim.component::<CoreModel>(core).unwrap();
        assert_eq!(c.completed_accesses(), 4);
    }

    #[test]
    fn execution_time_scales_with_compute() {
        let fast = {
            let mut w = CoreWorkload::susan(Addr::new(0x8000_0000), 100);
            w.compute_cycles = 0;
            let (sim, core) = run_core(w);
            sim.component::<CoreModel>(core)
                .unwrap()
                .finished_at()
                .unwrap()
        };
        let slow = {
            let mut w = CoreWorkload::susan(Addr::new(0x8000_0000), 100);
            w.compute_cycles = 20;
            let (sim, core) = run_core(w);
            sim.component::<CoreModel>(core)
                .unwrap()
                .finished_at()
                .unwrap()
        };
        assert!(slow > fast + 100 * 10, "fast={fast} slow={slow}");
    }
}

//! The malicious stalling writer of the denial-of-service experiment.

use axi4::{Addr, AwBeat, BurstKind, BurstLen, BurstSize, TxnId, WBeat};
use axi_sim::{AxiBundle, Component, Cycle, TickCtx};

/// What the [`StallingManager`] does after issuing its `AW`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct StallPlan {
    /// Target address of the write burst.
    pub addr: Addr,
    /// Burst length in beats.
    pub beats: u16,
    /// Deliver the write data this many cycles after the `AW` was accepted;
    /// `None` withholds it forever (a permanent DoS without countermeasures).
    pub release_after: Option<u64>,
    /// Transaction ID of the burst.
    pub id: TxnId,
}

impl StallPlan {
    /// A writer that reserves the W channel for a 16-beat burst and never
    /// delivers — the attack the paper's write buffer defuses.
    pub fn forever(addr: Addr) -> Self {
        Self {
            addr,
            beats: 16,
            release_after: None,
            id: TxnId::new(9),
        }
    }
}

#[derive(Debug)]
enum State {
    IssueAw,
    Stalling { since: Cycle },
    Stream { beats_left: u16 },
    AwaitB,
    Done,
}

/// A manager modelling the paper's misbehaving writer: it wins W-channel
/// arbitration with an `AW` and then stalls, denying the channel to every
/// later writer until (optionally) releasing the data.
#[derive(Debug)]
pub struct StallingManager {
    plan: StallPlan,
    port: AxiBundle,
    state: State,
    aw_issued_at: Option<Cycle>,
    completed_at: Option<Cycle>,
    name: String,
}

impl StallingManager {
    /// Creates the manager on `port`.
    pub fn new(plan: StallPlan, port: AxiBundle) -> Self {
        Self {
            plan,
            port,
            state: State::IssueAw,
            aw_issued_at: None,
            completed_at: None,
            name: "staller".to_owned(),
        }
    }

    /// The plan being executed.
    pub fn plan(&self) -> &StallPlan {
        &self.plan
    }

    /// The manager-side AXI port.
    pub fn port(&self) -> AxiBundle {
        self.port
    }

    /// Cycle the `AW` was issued, if it has been.
    pub fn aw_issued_at(&self) -> Option<Cycle> {
        self.aw_issued_at
    }

    /// Cycle the write response arrived, if the write ever completed.
    pub fn completed_at(&self) -> Option<Cycle> {
        self.completed_at
    }
}

impl Component for StallingManager {
    fn tick(&mut self, ctx: &mut TickCtx<'_>) {
        self.state = match std::mem::replace(&mut self.state, State::Done) {
            State::IssueAw => {
                if ctx.pool.can_push(self.port.aw, ctx.cycle) {
                    let aw = AwBeat::new(
                        self.plan.id,
                        self.plan.addr,
                        BurstLen::new(self.plan.beats).expect("beats within 1..=256"),
                        BurstSize::bus64(),
                        BurstKind::Incr,
                    );
                    ctx.pool.push(self.port.aw, ctx.cycle, aw);
                    self.aw_issued_at = Some(ctx.cycle);
                    State::Stalling { since: ctx.cycle }
                } else {
                    State::IssueAw
                }
            }
            State::Stalling { since } => match self.plan.release_after {
                Some(delay) if ctx.cycle >= since + delay => State::Stream {
                    beats_left: self.plan.beats,
                },
                _ => State::Stalling { since },
            },
            State::Stream { beats_left } => {
                if ctx.pool.can_push(self.port.w, ctx.cycle) {
                    let last = beats_left == 1;
                    ctx.pool.push(self.port.w, ctx.cycle, WBeat::full(0, last));
                    if last {
                        State::AwaitB
                    } else {
                        State::Stream {
                            beats_left: beats_left - 1,
                        }
                    }
                } else {
                    State::Stream { beats_left }
                }
            }
            State::AwaitB => {
                if ctx.pool.pop(self.port.b, ctx.cycle).is_some() {
                    self.completed_at = Some(ctx.cycle);
                    State::Done
                } else {
                    State::AwaitB
                }
            }
            State::Done => State::Done,
        };
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn ports(&self) -> Vec<axi_sim::PortDecl> {
        self.port.manager_ports()
    }

    fn next_event(&self, cycle: Cycle) -> Option<Cycle> {
        match &self.state {
            State::IssueAw | State::Stream { .. } => Some(cycle),
            // A permanent stall is genuinely quiescent; a timed one wakes
            // exactly when the release delay elapses.
            State::Stalling { since } => self
                .plan
                .release_after
                .map(|delay| (since + delay).max(cycle)),
            State::AwaitB | State::Done => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use axi_mem::{MemoryConfig, MemoryModel};
    use axi_sim::Sim;

    fn setup(plan: StallPlan) -> (Sim, axi_sim::ComponentId) {
        let mut sim = Sim::new();
        let port = AxiBundle::with_defaults(sim.pool_mut());
        let s = sim.add(StallingManager::new(plan, port));
        sim.add(MemoryModel::new(
            MemoryConfig::spm(Addr::new(0), 1 << 20),
            port,
        ));
        (sim, s)
    }

    #[test]
    fn forever_never_completes() {
        let (mut sim, s) = setup(StallPlan::forever(Addr::new(0x100)));
        sim.run(2000);
        let m = sim.component::<StallingManager>(s).unwrap();
        assert!(m.aw_issued_at().is_some());
        assert!(m.completed_at().is_none());
    }

    #[test]
    fn release_completes_the_write() {
        let mut plan = StallPlan::forever(Addr::new(0x100));
        plan.release_after = Some(100);
        let (mut sim, s) = setup(plan);
        sim.run(500);
        let m = sim.component::<StallingManager>(s).unwrap();
        let issued = m.aw_issued_at().unwrap();
        let done = m.completed_at().unwrap();
        assert!(done >= issued + 100 + u64::from(plan.beats));
        assert_eq!(m.plan().beats, 16);
    }
}

//! A self-checking randomized manager: issues random legal transactions
//! and verifies every read against its own memory model.

use std::collections::BTreeMap;
use std::collections::VecDeque;

use axi4::{Addr, ArBeat, AwBeat, BurstKind, BurstLen, BurstSize, Resp, TxnId, WBeat, BOUNDARY_4K};
use axi_sim::{AxiBundle, Component, Cycle, TickCtx};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of a [`RandomManager`].
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct RandomConfig {
    /// Address window the manager stays inside.
    pub window: (Addr, u64),
    /// Number of transactions to issue.
    pub ops: u64,
    /// Maximum burst length in beats.
    pub max_beats: u16,
    /// Probability of a write (vs. a verifying read-back), in `0.0..=1.0`.
    pub write_ratio: f64,
    /// RNG seed — runs are fully deterministic per seed.
    pub seed: u64,
    /// Transaction ID for all accesses.
    pub id: TxnId,
}

impl RandomConfig {
    /// A balanced read/write fuzzer over `window`.
    pub fn fuzz(window: (Addr, u64), ops: u64, seed: u64) -> Self {
        Self {
            window,
            ops,
            max_beats: 32,
            write_ratio: 0.5,
            seed,
            id: TxnId::new(0),
        }
    }
}

#[derive(Debug)]
enum State {
    Idle,
    IssueRead {
        ar: ArBeat,
        expect: Vec<Option<u64>>,
    },
    AwaitRead {
        expect: Vec<Option<u64>>,
        got: usize,
    },
    IssueWrite {
        aw: AwBeat,
        words: VecDeque<u64>,
    },
    StreamWrite {
        words: VecDeque<u64>,
        total: usize,
    },
    AwaitB,
    Done,
}

/// A manager that issues seeded random reads and writes inside a window,
/// modelling the memory contents itself and flagging any data mismatch —
/// the workhorse of end-to-end fuzz tests through REALM + crossbar +
/// memory.
///
/// Transactions are always AXI4-legal: `INCR`, 8-byte beats, aligned, never
/// crossing a 4 KiB boundary.
#[derive(Debug)]
pub struct RandomManager {
    cfg: RandomConfig,
    port: AxiBundle,
    rng: StdRng,
    model: BTreeMap<u64, u64>,
    state: State,
    issued: u64,
    completed: u64,
    mismatches: u64,
    error_resps: u64,
    finished_at: Option<Cycle>,
    name: String,
}

impl RandomManager {
    /// Creates the manager.
    ///
    /// # Panics
    ///
    /// Panics if the window is smaller than one maximum burst or
    /// `max_beats` is zero.
    pub fn new(cfg: RandomConfig, port: AxiBundle) -> Self {
        assert!(cfg.max_beats >= 1, "need at least one beat per burst");
        assert!(
            cfg.window.1 >= u64::from(cfg.max_beats) * 8,
            "window must hold at least one burst"
        );
        Self {
            cfg,
            port,
            rng: StdRng::seed_from_u64(cfg.seed),
            model: BTreeMap::new(),
            state: State::Idle,
            issued: 0,
            completed: 0,
            mismatches: 0,
            error_resps: 0,
            finished_at: None,
            name: "random".to_owned(),
        }
    }

    /// Transactions completed so far.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Read beats whose data did not match the self-model — must stay zero
    /// in a correct system.
    pub fn mismatches(&self) -> u64 {
        self.mismatches
    }

    /// Non-`OKAY` responses received — must stay zero inside a mapped
    /// window.
    pub fn error_resps(&self) -> u64 {
        self.error_resps
    }

    /// `true` once all operations completed.
    pub fn is_done(&self) -> bool {
        self.finished_at.is_some()
    }

    /// Picks a random legal burst: aligned, inside the window, not
    /// crossing 4 KiB.
    fn pick_burst(&mut self) -> (Addr, u16) {
        let beats = self.rng.gen_range(1..=self.cfg.max_beats);
        let bytes = u64::from(beats) * 8;
        loop {
            let max_start = self.cfg.window.1 - bytes;
            let offset = self.rng.gen_range(0..=max_start / 8) * 8;
            let addr = self.cfg.window.0 + offset;
            let end = addr.raw() + bytes - 1;
            if addr.raw() / BOUNDARY_4K == end / BOUNDARY_4K {
                return (addr, beats);
            }
        }
    }

    fn begin_op(&mut self) -> State {
        if self.issued >= self.cfg.ops {
            return State::Done;
        }
        let (addr, beats) = self.pick_burst();
        let len = BurstLen::new(beats).expect("beats within 1..=256");
        let write = self.rng.gen_bool(self.cfg.write_ratio);
        self.issued += 1;
        if write {
            let words: VecDeque<u64> = (0..beats).map(|_| self.rng.gen()).collect();
            // Update the self-model immediately: the system must preserve
            // program order for a single blocking manager.
            for (i, &w) in words.iter().enumerate() {
                self.model.insert(addr.raw() + i as u64 * 8, w);
            }
            State::IssueWrite {
                aw: AwBeat::new(self.cfg.id, addr, len, BurstSize::bus64(), BurstKind::Incr),
                words,
            }
        } else {
            let expect: Vec<Option<u64>> = (0..beats)
                .map(|i| self.model.get(&(addr.raw() + u64::from(i) * 8)).copied())
                .collect();
            State::IssueRead {
                ar: ArBeat::new(self.cfg.id, addr, len, BurstSize::bus64(), BurstKind::Incr),
                expect,
            }
        }
    }
}

impl Component for RandomManager {
    fn tick(&mut self, ctx: &mut TickCtx<'_>) {
        self.state = match std::mem::replace(&mut self.state, State::Done) {
            State::Idle => self.begin_op(),
            State::IssueRead { ar, expect } => {
                if ctx.pool.can_push(self.port.ar, ctx.cycle) {
                    ctx.pool.push(self.port.ar, ctx.cycle, ar);
                    State::AwaitRead { expect, got: 0 }
                } else {
                    State::IssueRead { ar, expect }
                }
            }
            State::AwaitRead { expect, mut got } => {
                if let Some(r) = ctx.pool.pop(self.port.r, ctx.cycle) {
                    if r.resp != Resp::Okay {
                        self.error_resps += 1;
                    }
                    // Untouched memory reads as zero in this workspace's
                    // storage; unknown model entries accept anything.
                    if let Some(Some(want)) = expect.get(got) {
                        if r.data != *want {
                            self.mismatches += 1;
                        }
                    }
                    got += 1;
                    if r.last {
                        if got != expect.len() {
                            self.mismatches += 1;
                        }
                        self.completed += 1;
                        self.state = State::Idle;
                        return;
                    }
                }
                State::AwaitRead { expect, got }
            }
            State::IssueWrite { aw, words } => {
                if ctx.pool.can_push(self.port.aw, ctx.cycle) {
                    ctx.pool.push(self.port.aw, ctx.cycle, aw);
                    let total = words.len();
                    State::StreamWrite { words, total }
                } else {
                    State::IssueWrite { aw, words }
                }
            }
            State::StreamWrite { mut words, total } => {
                if let Some(&word) = words.front() {
                    if ctx.pool.can_push(self.port.w, ctx.cycle) {
                        let last = words.len() == 1;
                        ctx.pool
                            .push(self.port.w, ctx.cycle, WBeat::full(word, last));
                        words.pop_front();
                    }
                }
                if words.is_empty() {
                    State::AwaitB
                } else {
                    State::StreamWrite { words, total }
                }
            }
            State::AwaitB => {
                if let Some(b) = ctx.pool.pop(self.port.b, ctx.cycle) {
                    if b.resp != Resp::Okay {
                        self.error_resps += 1;
                    }
                    self.completed += 1;
                    State::Idle
                } else {
                    State::AwaitB
                }
            }
            State::Done => {
                self.finished_at.get_or_insert(ctx.cycle);
                State::Done
            }
        };
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn ports(&self) -> Vec<axi_sim::PortDecl> {
        self.port.manager_ports()
    }

    fn next_event(&self, cycle: Cycle) -> Option<Cycle> {
        match &self.state {
            State::Idle
            | State::IssueRead { .. }
            | State::IssueWrite { .. }
            | State::StreamWrite { .. } => Some(cycle),
            State::AwaitRead { .. } | State::AwaitB => None,
            // `finished_at` is stamped lazily on the first `Done` tick; only
            // after that is the manager truly quiescent.
            State::Done => self.finished_at.is_none().then_some(cycle),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use axi_mem::{MemoryConfig, MemoryModel};
    use axi_sim::Sim;

    fn run_fuzz(seed: u64, ops: u64) -> (u64, u64, u64) {
        let mut sim = Sim::new();
        let port = AxiBundle::with_defaults(sim.pool_mut());
        let mgr = sim.add(RandomManager::new(
            RandomConfig::fuzz((Addr::new(0x1000), 64 * 1024), ops, seed),
            port,
        ));
        sim.add(MemoryModel::new(
            MemoryConfig::spm(Addr::new(0x1000), 64 * 1024),
            port,
        ));
        assert!(sim.run_until(ops * 2_000, |s| {
            s.component::<RandomManager>(mgr).unwrap().is_done()
        }));
        let m = sim.component::<RandomManager>(mgr).unwrap();
        (m.completed(), m.mismatches(), m.error_resps())
    }

    #[test]
    fn fuzz_against_plain_memory_is_clean() {
        for seed in [1, 42, 0xdead_beef] {
            let (completed, mismatches, errors) = run_fuzz(seed, 150);
            assert_eq!(completed, 150, "seed {seed}");
            assert_eq!(mismatches, 0, "seed {seed}");
            assert_eq!(errors, 0, "seed {seed}");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = run_fuzz(7, 60);
        let b = run_fuzz(7, 60);
        assert_eq!(a, b);
    }

    #[test]
    fn detects_corruption() {
        // A memory that always returns zero makes written-then-read data
        // mismatch, proving the checker can actually fail.
        let mut sim = Sim::new();
        let port = AxiBundle::with_defaults(sim.pool_mut());
        let mgr = sim.add(RandomManager::new(
            RandomConfig {
                write_ratio: 0.5,
                ..RandomConfig::fuzz((Addr::new(0x9000_0000), 64 * 1024), 80, 3)
            },
            port,
        ));
        // Memory window does NOT cover the manager's window → SLVERR + zero
        // data for everything.
        sim.add(MemoryModel::new(
            MemoryConfig::spm(Addr::new(0x1000), 0x1000),
            port,
        ));
        assert!(sim.run_until(200_000, |s| {
            s.component::<RandomManager>(mgr).unwrap().is_done()
        }));
        let m = sim.component::<RandomManager>(mgr).unwrap();
        assert!(m.error_resps() > 0);
        assert!(m.mismatches() > 0, "reads of written data must mismatch");
    }

    #[test]
    fn bursts_never_cross_4k() {
        let mut cfg = RandomConfig::fuzz((Addr::new(0x1000), 1 << 20), 0, 11);
        cfg.max_beats = 256;
        let mut sim = Sim::new();
        let port = AxiBundle::with_defaults(sim.pool_mut());
        let mut m = RandomManager::new(cfg, port);
        for _ in 0..500 {
            let (addr, beats) = m.pick_burst();
            let ar = ArBeat::new(
                TxnId::new(0),
                addr,
                BurstLen::new(beats).unwrap(),
                BurstSize::bus64(),
                BurstKind::Incr,
            );
            ar.validate()
                .unwrap_or_else(|e| panic!("illegal burst: {e}"));
        }
    }
}

//! A manager that executes an explicit transaction script.

use std::collections::VecDeque;

use axi4::{ArBeat, AwBeat, Resp, TxnId, WBeat, WriteTxn};
use axi_sim::{AxiBundle, Component, Cycle, TickCtx};

/// One step of a [`ScriptedManager`]'s script.
#[derive(Clone, Debug)]
pub enum Op {
    /// Issue a read burst and wait for its last data beat.
    Read(ArBeat),
    /// Issue a write transaction and wait for its response.
    Write(WriteTxn),
    /// Stay idle for the given number of cycles.
    Wait(u64),
}

/// Whether a [`Completion`] finished a read or a write.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CompletionKind {
    /// A read burst completed (`RLAST` seen).
    Read,
    /// A write completed (`B` received).
    Write,
}

/// The record of one completed scripted transaction.
#[derive(Clone, Debug)]
pub struct Completion {
    /// Transaction ID as issued.
    pub id: TxnId,
    /// Read or write.
    pub kind: CompletionKind,
    /// Final (merged, for reads: worst-beat) response.
    pub resp: Resp,
    /// Cycle the address beat was pushed.
    pub issued: Cycle,
    /// Cycle the last response beat arrived.
    pub finished: Cycle,
    /// Data beats, in order, for reads; empty for writes.
    pub data: Vec<u64>,
}

impl Completion {
    /// Access latency in cycles, issue to completion.
    pub fn latency(&self) -> u64 {
        self.finished - self.issued
    }
}

#[derive(Debug)]
enum State {
    Idle,
    Waiting {
        until: Cycle,
    },
    IssueRead(ArBeat),
    AwaitRead {
        id: TxnId,
        issued: Cycle,
        data: Vec<u64>,
        resp: Resp,
    },
    IssueWrite {
        aw: AwBeat,
        beats: VecDeque<WBeat>,
    },
    StreamWrite {
        id: TxnId,
        issued: Cycle,
        beats: VecDeque<WBeat>,
    },
    AwaitB {
        id: TxnId,
        issued: Cycle,
    },
    Done,
}

/// A manager that runs a fixed script of transactions, strictly one at a
/// time, recording every completion.
///
/// Directed tests use it to drive precise traffic through interconnect
/// components and assert on ordering, data, responses, and latency.
#[derive(Debug)]
pub struct ScriptedManager {
    port: AxiBundle,
    script: VecDeque<Op>,
    state: State,
    completions: Vec<Completion>,
    name: String,
}

impl ScriptedManager {
    /// Creates a manager that will execute `script` in order on `port`.
    pub fn new<I: IntoIterator<Item = Op>>(port: AxiBundle, script: I) -> Self {
        Self {
            port,
            script: script.into_iter().collect(),
            state: State::Idle,
            completions: Vec::new(),
            name: "scripted".to_owned(),
        }
    }

    /// Appends another operation to the script.
    pub fn push_op(&mut self, op: Op) {
        self.script.push_back(op);
        if matches!(self.state, State::Done) {
            self.state = State::Idle;
        }
    }

    /// Completions recorded so far, in finish order.
    pub fn completions(&self) -> &[Completion] {
        &self.completions
    }

    /// Returns `true` once the script has fully executed.
    pub fn is_done(&self) -> bool {
        matches!(self.state, State::Done)
    }

    /// The manager-side AXI port.
    pub fn port(&self) -> AxiBundle {
        self.port
    }
}

impl Component for ScriptedManager {
    fn tick(&mut self, ctx: &mut TickCtx<'_>) {
        // A state can make at most one channel action per cycle; transitions
        // chain across cycles.
        match std::mem::replace(&mut self.state, State::Done) {
            State::Idle => {
                self.state = match self.script.pop_front() {
                    Some(Op::Wait(cycles)) => State::Waiting {
                        until: ctx.cycle + cycles,
                    },
                    Some(Op::Read(ar)) => State::IssueRead(ar),
                    Some(Op::Write(txn)) => {
                        let (aw, beats) = txn.into_parts();
                        State::IssueWrite {
                            aw,
                            beats: beats.into(),
                        }
                    }
                    None => State::Done,
                };
            }
            State::Waiting { until } => {
                self.state = if ctx.cycle >= until {
                    State::Idle
                } else {
                    State::Waiting { until }
                };
            }
            State::IssueRead(ar) => {
                if ctx.pool.can_push(self.port.ar, ctx.cycle) {
                    ctx.pool.push(self.port.ar, ctx.cycle, ar);
                    self.state = State::AwaitRead {
                        id: ar.id,
                        issued: ctx.cycle,
                        data: Vec::new(),
                        resp: Resp::Okay,
                    };
                } else {
                    self.state = State::IssueRead(ar);
                }
            }
            State::AwaitRead {
                id,
                issued,
                mut data,
                mut resp,
            } => {
                if let Some(r) = ctx.pool.pop(self.port.r, ctx.cycle) {
                    debug_assert_eq!(r.id, id, "in-order single-outstanding manager");
                    data.push(r.data);
                    resp = resp.merge(r.resp);
                    if r.last {
                        self.completions.push(Completion {
                            id,
                            kind: CompletionKind::Read,
                            resp,
                            issued,
                            finished: ctx.cycle,
                            data,
                        });
                        self.state = State::Idle;
                        return;
                    }
                }
                self.state = State::AwaitRead {
                    id,
                    issued,
                    data,
                    resp,
                };
            }
            State::IssueWrite { aw, beats } => {
                if ctx.pool.can_push(self.port.aw, ctx.cycle) {
                    ctx.pool.push(self.port.aw, ctx.cycle, aw);
                    self.state = State::StreamWrite {
                        id: aw.id,
                        issued: ctx.cycle,
                        beats,
                    };
                } else {
                    self.state = State::IssueWrite { aw, beats };
                }
            }
            State::StreamWrite {
                id,
                issued,
                mut beats,
            } => {
                if let Some(&beat) = beats.front() {
                    if ctx.pool.can_push(self.port.w, ctx.cycle) {
                        ctx.pool.push(self.port.w, ctx.cycle, beat);
                        beats.pop_front();
                    }
                }
                self.state = if beats.is_empty() {
                    State::AwaitB { id, issued }
                } else {
                    State::StreamWrite { id, issued, beats }
                };
            }
            State::AwaitB { id, issued } => {
                if let Some(b) = ctx.pool.pop(self.port.b, ctx.cycle) {
                    debug_assert_eq!(b.id, id, "in-order single-outstanding manager");
                    self.completions.push(Completion {
                        id,
                        kind: CompletionKind::Write,
                        resp: b.resp,
                        issued,
                        finished: ctx.cycle,
                        data: Vec::new(),
                    });
                    self.state = State::Idle;
                } else {
                    self.state = State::AwaitB { id, issued };
                }
            }
            State::Done => {
                self.state = State::Done;
            }
        }
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn ports(&self) -> Vec<axi_sim::PortDecl> {
        self.port.manager_ports()
    }

    fn next_event(&self, cycle: Cycle) -> Option<Cycle> {
        match &self.state {
            // Idle still has a transition to make (pop the next op, or
            // retire into `Done`), so it must be ticked now.
            State::Idle => Some(cycle),
            State::Waiting { until } => Some((*until).max(cycle)),
            State::IssueRead(_) | State::IssueWrite { .. } | State::StreamWrite { .. } => {
                Some(cycle)
            }
            State::AwaitRead { .. } | State::AwaitB { .. } | State::Done => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use axi4::{Addr, BurstKind, BurstLen, BurstSize};
    use axi_mem::{MemoryConfig, MemoryModel};
    use axi_sim::Sim;

    fn read_op(id: u32, addr: u64, beats: u16) -> Op {
        Op::Read(ArBeat::new(
            TxnId::new(id),
            Addr::new(addr),
            BurstLen::new(beats).unwrap(),
            BurstSize::bus64(),
            BurstKind::Incr,
        ))
    }

    fn write_op(id: u32, addr: u64, words: &[u64]) -> Op {
        let aw = AwBeat::new(
            TxnId::new(id),
            Addr::new(addr),
            BurstLen::new(words.len() as u16).unwrap(),
            BurstSize::bus64(),
            BurstKind::Incr,
        );
        Op::Write(WriteTxn::from_words(aw, words.iter().copied()).unwrap())
    }

    /// Wire a scripted manager straight to a memory (no crossbar).
    fn setup(script: Vec<Op>) -> (Sim, axi_sim::ComponentId) {
        let mut sim = Sim::new();
        let port = AxiBundle::with_defaults(sim.pool_mut());
        let mgr = sim.add(ScriptedManager::new(port, script));
        sim.add(MemoryModel::new(
            MemoryConfig::spm(Addr::new(0), 0x10000),
            port,
        ));
        (sim, mgr)
    }

    #[test]
    fn write_then_read_back() {
        let (mut sim, mgr) = setup(vec![
            write_op(1, 0x100, &[0xaa, 0xbb, 0xcc]),
            read_op(2, 0x100, 3),
        ]);
        assert!(sim.run_until(200, |s| {
            s.component::<ScriptedManager>(mgr).unwrap().is_done()
        }));
        let m = sim.component::<ScriptedManager>(mgr).unwrap();
        assert_eq!(m.completions().len(), 2);
        let w = &m.completions()[0];
        assert_eq!(w.kind, CompletionKind::Write);
        assert_eq!(w.resp, Resp::Okay);
        let r = &m.completions()[1];
        assert_eq!(r.kind, CompletionKind::Read);
        assert_eq!(r.data, [0xaa, 0xbb, 0xcc]);
        assert!(r.latency() > 0);
    }

    #[test]
    fn wait_inserts_idle_time() {
        let (mut sim, mgr) = setup(vec![read_op(1, 0x0, 1), Op::Wait(50), read_op(2, 0x8, 1)]);
        assert!(sim.run_until(300, |s| {
            s.component::<ScriptedManager>(mgr).unwrap().is_done()
        }));
        let m = sim.component::<ScriptedManager>(mgr).unwrap();
        let gap = m.completions()[1].issued - m.completions()[0].finished;
        assert!(gap >= 50, "gap {gap} should include the 50-cycle wait");
    }

    #[test]
    fn push_op_resumes_done_manager() {
        let (mut sim, mgr) = setup(vec![read_op(1, 0x0, 1)]);
        assert!(sim.run_until(100, |s| {
            s.component::<ScriptedManager>(mgr).unwrap().is_done()
        }));
        sim.component_mut::<ScriptedManager>(mgr)
            .unwrap()
            .push_op(read_op(2, 0x8, 1));
        assert!(sim.run_until(100, |s| {
            s.component::<ScriptedManager>(mgr).unwrap().is_done()
        }));
        assert_eq!(
            sim.component::<ScriptedManager>(mgr)
                .unwrap()
                .completions()
                .len(),
            2
        );
    }

    #[test]
    fn read_latency_is_single_source_baseline() {
        // Direct manager→memory link: latency is the kernel's floor
        // (2 wire hops + queue promotion + read latency + return hop).
        let (mut sim, mgr) = setup(vec![read_op(1, 0x0, 1)]);
        assert!(sim.run_until(100, |s| {
            s.component::<ScriptedManager>(mgr).unwrap().is_done()
        }));
        let lat = sim.component::<ScriptedManager>(mgr).unwrap().completions()[0].latency();
        assert!((4..=8).contains(&lat), "direct latency was {lat}");
    }
}
